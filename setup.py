"""Legacy setup shim so `pip install -e .` works without network access.

The environment has no `wheel` package and no index access, so pip's
PEP 517 editable path (which builds a wheel) fails; this shim lets pip
fall back to `setup.py develop`.
"""
from setuptools import setup

setup()
