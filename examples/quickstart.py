"""Quickstart: exact KNN join with Sweet KNN on the simulated GPU.

Runs a self-join on a small clustered dataset with every engine the
library ships, verifies they agree, and prints the work/regularity
profile that explains the simulated speedups.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro import knn_join

K = 10


def make_dataset(n=3000, dim=16, n_clusters=25, seed=7):
    """A shuffled Gaussian-mixture point set (clusterable, like most
    tabular data — the regime TI filtering thrives on)."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=12.0, size=(n_clusters, dim))
    assignment = rng.integers(n_clusters, size=n)
    points = centers[assignment] + rng.normal(size=(n, dim))
    rng.shuffle(points)
    return points


def main():
    points = make_dataset()
    print("dataset: %d points, %d dims, k=%d (self-join)\n"
          % (points.shape[0], points.shape[1], K))

    oracle = knn_join(points, points, K, method="brute")
    baseline = knn_join(points, points, K, method="cublas")

    print("%-10s %12s %10s %10s %8s" % (
        "method", "sim time", "saved", "warp eff", "exact?"))
    for method in ("cublas", "ti-gpu", "sweet"):
        result = knn_join(points, points, K, method=method, seed=0)
        eff = (result.profile.filter_warp_efficiency()
               if method != "cublas" else result.profile.warp_efficiency)
        print("%-10s %10.3f ms %9.1f%% %9.1f%% %8s" % (
            method, result.sim_time_s * 1e3,
            100 * result.stats.saved_fraction, 100 * eff,
            result.matches(oracle)))
        if method == "sweet":
            sweet = result

    print("\nSweet KNN adaptive decisions:", sweet.stats.extra)
    print("speedup over the CUBLAS-style baseline: %.1fx"
          % (baseline.sim_time_s / sweet.sim_time_s))
    print("\nnearest neighbours of point 0:")
    print("  indices  :", sweet.indices[0])
    print("  distances:", np.round(sweet.distances[0], 3))


if __name__ == "__main__":
    main()
