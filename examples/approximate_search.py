"""Trading bounded error for speed with approximate Sweet KNN.

An extension beyond the paper: the same TI machinery absorbs an
approximation budget by pruning against ``theta / (1 + eps)``.  The
guarantee is hard — the returned k-th distance is at most ``(1+eps)``
times the true k-th distance — while saved distance computations grow
with the slack.

Usage::

    python examples/approximate_search.py
"""

import numpy as np

from repro import knn_join

N, DIM, K = 4000, 24, 10


def main():
    rng = np.random.default_rng(17)
    centers = rng.normal(scale=9.0, size=(40, DIM))
    points = centers[rng.integers(40, size=N)] + rng.normal(size=(N, DIM))
    rng.shuffle(points)

    oracle = knn_join(points, points, K, method="brute")
    print("dataset: %d points, %d dims, k=%d\n" % (N, DIM, K))
    print("%8s %10s %12s %10s %10s" % (
        "epsilon", "saved", "max kth err", "recall", "sim time"))

    for eps in (0.0, 0.1, 0.25, 0.5, 1.0, 2.0):
        result = knn_join(points, points, K, method="sweet", seed=0,
                          epsilon=eps)
        kth_err = np.max(result.distances[:, -1]
                         / np.maximum(oracle.distances[:, -1], 1e-12)) - 1
        recall = np.mean([
            len(set(result.indices[q]) & set(oracle.indices[q])) / K
            for q in range(0, N, 11)])
        print("%8.2f %9.2f%% %11.2f%% %9.1f%% %7.3f ms" % (
            eps, 100 * result.stats.saved_fraction, 100 * kth_err,
            100 * recall, result.sim_time_s * 1e3))

    print("\nthe k-th distance error always stays within epsilon —")
    print("a hard guarantee from the triangle-inequality pruning rule.")


if __name__ == "__main__":
    main()
