"""Spatial KNN join on road-network points (the 3DNet workload).

The paper's largest win (up to 120x) is on the UCI 3D spatial-network
dataset: GPS points along Danish roads with altitude.  This example
reproduces that workload shape with the library's road-network
generator and answers a classic spatial query: *for every probe
reading, find the k nearest charging stations*, comparing the
TI-filtered join against the brute-force GPU baseline — including the
device-memory partitioning that cripples the baseline at this scale.

Usage::

    python examples/spatial_join.py
"""

import numpy as np

from repro import knn_join, tesla_k20c
from repro.datasets.synthetic import road_network_3d

PROBES = 6000
STATIONS = 3000
K = 5


def main():
    rng = np.random.default_rng(11)
    probes = road_network_3d(PROBES, rng, n_roads=48)
    stations = road_network_3d(STATIONS, rng, n_roads=48)
    print("probes: %d road points; stations: %d; k=%d\n"
          % (PROBES, STATIONS, K))

    # A device small enough that the baseline's |Q| x |T| distance
    # matrix does not fit — the regime the paper reports for 3DNet
    # (175 partitions on the real K20c at 434k points).
    device = tesla_k20c(global_mem_bytes=2 * 1024 * 1024)

    baseline = knn_join(probes, stations, K, method="cublas",
                        device=device)
    sweet = knn_join(probes, stations, K, method="sweet", device=device,
                     seed=0)
    assert sweet.matches(baseline)

    print("baseline: %6.2f ms simulated, %3d memory partitions"
          % (baseline.sim_time_s * 1e3,
             baseline.stats.extra["partitions"]))
    print("sweet   : %6.2f ms simulated, %3d memory partitions, "
          "%.1f%% distances avoided"
          % (sweet.sim_time_s * 1e3, sweet.stats.extra["partitions"],
             100 * sweet.stats.saved_fraction))
    print("speedup : %.1fx\n" % (baseline.sim_time_s / sweet.sim_time_s))

    order = np.argsort(sweet.distances[:, 0])
    print("probes closest to a station:")
    for probe in order[:3]:
        print("  probe %-5d -> station %-5d at distance %.3f"
              % (probe, sweet.indices[probe, 0],
                 sweet.distances[probe, 0]))
    far = order[-1]
    print("most isolated probe: %d (nearest station %.2f away)"
          % (far, sweet.distances[far, 0]))


if __name__ == "__main__":
    main()
