"""A tour of Sweet KNN's adaptive scheme (Fig. 8 of the paper).

Walks one dataset shape after another past the adaptive scheme and
shows which configuration it picks — filter strength, kNearests
placement, threads per query — and what each choice buys against
running the same problem with the decision forced the other way.

Usage::

    python examples/adaptive_tour.py
"""

import numpy as np

from repro import knn_join, tesla_k20c

DEVICE = tesla_k20c()


def scenario(title, points, k, forced):
    """Run adaptively and with one decision forced; report both."""
    adaptive = knn_join(points, points, k, method="sweet", seed=0,
                        device=DEVICE)
    forced_run = knn_join(points, points, k, method="sweet", seed=0,
                          device=DEVICE, **forced)
    decisions = adaptive.stats.extra
    print(title)
    print("  problem: |Q|=|T|=%d d=%d k=%d  (k/d=%.2f)" % (
        points.shape[0], points.shape[1], k, k / points.shape[1]))
    print("  adaptive picked: filter=%s placement=%s tpq=%d" % (
        decisions["filter"], decisions["placement"],
        decisions["threads_per_query"]))
    print("  forced %-38s" % (forced,))
    print("  simulated time: adaptive %.3f ms vs forced %.3f ms" % (
        adaptive.sim_time_s * 1e3, forced_run.sim_time_s * 1e3))
    assert adaptive.matches(forced_run)
    print()


def clustered(n, dim, rng, n_clusters=30, spread=10.0):
    centers = rng.normal(scale=spread, size=(n_clusters, dim))
    points = centers[rng.integers(n_clusters, size=n)] + rng.normal(
        size=(n, dim))
    rng.shuffle(points)
    return points


def main():
    rng = np.random.default_rng(5)

    # 1. Large k on low-dimensional data: k/d = 64 > 8, so the scheme
    #    weakens the level-2 filter (Table V's regime).
    scenario("1. partial filtering kicks in at large k/d",
             clustered(2500, 4, rng), k=256,
             forced={"force_filter": "full"})

    # 2. Tiny k: the kNearests array fits under th1 = 24 bytes, so it
    #    goes to shared memory.
    scenario("2. tiny kNearests lives in shared memory",
             clustered(2500, 24, rng), k=6,
             forced={"force_placement": "global"})

    # 3. Moderate k: registers (th1 < k*4 <= th2).
    scenario("3. moderate kNearests lives in registers",
             clustered(2500, 24, rng), k=32,
             forced={"force_placement": "global"})

    # 4. A small query set cannot fill the device with one thread per
    #    query; the scheme splits each query across many threads.
    scenario("4. small |Q| triggers multi-thread-per-query",
             clustered(96, 48, rng, n_clusters=8), k=8,
             forced={"threads_per_query": 1})


if __name__ == "__main__":
    main()
