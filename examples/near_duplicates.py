"""Near-duplicate detection over noisy records with a KNN self-join.

A classic data-engineering use of the KNN join (the paper's problem
setting): find record pairs that are almost identical — deduplicating
a feature-hashed catalogue where some entries were re-ingested with
noise.  A k=2 self-join suffices: a record whose nearest *other*
neighbour lies within a distance threshold is flagged as a duplicate
pair.

Usage::

    python examples/near_duplicates.py
"""

import numpy as np

from repro import knn_join

CATALOG = 3000
DUPLICATE_RATE = 0.12
DIM = 32
THRESHOLD = 0.35


def make_catalog(rng):
    """Feature-hashed records, a fraction re-ingested with jitter.

    Records cluster by product category (40 categories), which is the
    structure TI filtering exploits.
    """
    n_unique = int(CATALOG * (1 - DUPLICATE_RATE))
    categories = rng.normal(scale=10.0, size=(40, DIM))
    base = (categories[rng.integers(40, size=n_unique)]
            + rng.normal(scale=1.0, size=(n_unique, DIM)))
    n_dupes = CATALOG - n_unique
    originals = rng.integers(n_unique, size=n_dupes)
    dupes = base[originals] + rng.normal(scale=0.05, size=(n_dupes, DIM))
    records = np.concatenate([base, dupes])
    truth = np.concatenate([np.full(n_unique, -1), originals])
    order = rng.permutation(CATALOG)
    inverse = np.empty(CATALOG, dtype=np.int64)
    inverse[order] = np.arange(CATALOG)
    remapped_truth = np.where(truth[order] >= 0,
                              inverse[np.maximum(truth[order], 0)], -1)
    return records[order], remapped_truth


def main():
    rng = np.random.default_rng(23)
    records, truth = make_catalog(rng)
    n_true_dupes = int((truth >= 0).sum())
    print("catalogue: %d records, %d noisy re-ingestions hidden\n"
          % (CATALOG, n_true_dupes))

    # k=2: self plus the nearest *other* record.
    result = knn_join(records, records, 2, method="sweet", seed=0)
    nearest_other = result.distances[:, 1]
    partner = result.indices[:, 1]

    flagged = np.flatnonzero(nearest_other < THRESHOLD)
    # A record is truly part of a duplicate pair if it is a noisy
    # re-ingestion or the original of one.
    in_pair = truth >= 0
    in_pair[truth[truth >= 0]] = True
    true_positive = int(in_pair[flagged].sum())
    precision = true_positive / max(1, flagged.size)
    recall = true_positive / max(1, int(in_pair.sum()))

    print("flagged %d records as near-duplicates (threshold %.2f)"
          % (flagged.size, THRESHOLD))
    print("precision %.1f%%  recall %.1f%%"
          % (100 * precision, 100 * recall))
    print("TI filtering avoided %.1f%% of distance computations; "
          "simulated GPU time %.3f ms"
          % (100 * result.stats.saved_fraction, result.sim_time_s * 1e3))

    print("\nexample pairs:")
    for record in flagged[:3]:
        print("  record %-5d <-> record %-5d  distance %.4f"
              % (record, partner[record], nearest_other[record]))


if __name__ == "__main__":
    main()
