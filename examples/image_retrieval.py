"""Image-descriptor retrieval and KNN classification with Sweet KNN.

The paper motivates KNN with image classification and information
retrieval.  This example builds a synthetic descriptor corpus (class
prototypes + within-class variation, mimicking pooled CNN or SIFT-BoW
descriptors), indexes it once with :class:`repro.SweetKNN`, and then:

1. retrieves the k most similar corpus images for a query batch, and
2. classifies the queries by majority vote over the neighbours,

reporting accuracy and the simulated GPU cost against the brute-force
baseline.

Usage::

    python examples/image_retrieval.py
"""

import numpy as np

from repro import SweetKNN, knn_join

N_CLASSES = 20
CORPUS_SIZE = 4000
QUERY_SIZE = 400
DESCRIPTOR_DIM = 64
K = 15


def make_corpus(rng):
    """Class prototypes in descriptor space with per-class spread."""
    prototypes = rng.normal(scale=8.0, size=(N_CLASSES, DESCRIPTOR_DIM))
    labels = rng.integers(N_CLASSES, size=CORPUS_SIZE)
    descriptors = prototypes[labels] + rng.normal(
        scale=1.2, size=(CORPUS_SIZE, DESCRIPTOR_DIM))
    return descriptors, labels, prototypes


def make_queries(rng, prototypes):
    labels = rng.integers(N_CLASSES, size=QUERY_SIZE)
    descriptors = prototypes[labels] + rng.normal(
        scale=1.4, size=(QUERY_SIZE, DESCRIPTOR_DIM))
    return descriptors, labels


def classify(neighbour_labels):
    """Majority vote per row of neighbour labels."""
    votes = np.apply_along_axis(np.bincount, 1, neighbour_labels,
                                minlength=N_CLASSES)
    return votes.argmax(axis=1)


def main():
    rng = np.random.default_rng(42)
    corpus, corpus_labels, prototypes = make_corpus(rng)
    queries, query_labels = make_queries(rng, prototypes)
    print("corpus: %d descriptors (%d classes, d=%d); %d queries; k=%d\n"
          % (CORPUS_SIZE, N_CLASSES, DESCRIPTOR_DIM, QUERY_SIZE, K))

    index = SweetKNN(corpus, seed=0)
    result = index.query(queries, K)
    baseline = knn_join(queries, corpus, K, method="cublas")
    assert result.matches(baseline), "Sweet KNN must be exact"

    predictions = classify(corpus_labels[result.indices])
    accuracy = float(np.mean(predictions == query_labels))

    print("retrieval for query 0 (true class %d):" % query_labels[0])
    for rank in range(5):
        idx = result.indices[0, rank]
        print("  #%d  corpus image %-5d class %-3d distance %.3f"
              % (rank + 1, idx, corpus_labels[idx],
                 result.distances[0, rank]))

    print("\nclassification accuracy: %.1f%%" % (100 * accuracy))
    print("distance computations avoided by TI filtering: %.1f%%"
          % (100 * result.stats.saved_fraction))
    print("simulated GPU time: sweet %.3f ms vs baseline %.3f ms "
          "(%.1fx speedup)" % (result.sim_time_s * 1e3,
                               baseline.sim_time_s * 1e3,
                               baseline.sim_time_s / result.sim_time_s))


if __name__ == "__main__":
    main()
