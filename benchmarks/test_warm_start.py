"""Warm start — cold index build vs mmap load from disk.

Not a paper figure: the paper's pipeline clusters the target set on
every run (Sec. III-A "cluster once, query many" amortises it within a
run, not across runs).  The :mod:`repro.index` persistence layer (PR 6)
extends the amortisation across processes: ``Index.save`` writes the
clustered state once and ``Index.load(mmap=True)`` reattaches it as
read-only views, so a fresh serving process skips the clustering pass
entirely and worker processes share the same physical pages.

Recorded here: the cold build wall clock, the mmap and eager load wall
clocks, time-to-first-answer for each path, and the per-worker RSS
growth when a forked worker attaches the index eagerly vs via mmap.
The headline assertion — mmap load at least ``MIN_LOAD_SPEEDUP``x
faster than a cold build — is gated on the build being slow enough to
measure, so noisy 1-core CI hosts still record numbers without flaking.
"""

import multiprocessing
import time

import numpy as np
import pytest

from repro.bench.reporting import emit, emit_json, format_table
from repro.index import Index

N_TARGETS = 16384
DIM = 16
N_QUERIES = 256
K = 10

#: Acceptance floor: reattaching a saved index must beat re-clustering
#: by a wide margin, or persistence is pointless.
MIN_LOAD_SPEEDUP = 5.0
#: Only assert the speedup when the cold build is comfortably above
#: timer noise.
MIN_MEASURABLE_BUILD_S = 0.05


def _vm_rss_bytes():
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) * 1024
    return 0


def _worker_attach(queue, path, mmap, queries):
    """Runs in a forked child: attach the index, answer one batch, and
    report how much resident memory the attachment cost."""
    before = _vm_rss_bytes()
    index = Index.load(path, mmap=mmap)
    plan = index.join_plan(queries)
    # Touch the prepared state the way a shard worker would.
    _ = plan.target_clusters.points[:: max(1, len(index.targets) // 64)]
    after = _vm_rss_bytes()
    queue.put(after - before)


def _forked_rss_delta(path, mmap, queries, workers=2):
    context = multiprocessing.get_context("fork")
    queue = context.Queue()
    processes = [
        context.Process(target=_worker_attach,
                        args=(queue, path, mmap, queries))
        for _ in range(workers)]
    for process in processes:
        process.start()
    deltas = [queue.get(timeout=120) for _ in processes]
    for process in processes:
        process.join(timeout=120)
    return deltas


@pytest.mark.paper_experiment("warm_start")
def test_warm_start(tmp_path):
    rng = np.random.default_rng(5)
    centers = rng.normal(scale=8.0, size=(64, DIM))
    targets = np.concatenate(
        [center + rng.normal(scale=0.6, size=(N_TARGETS // 64, DIM))
         for center in centers])
    queries = rng.normal(size=(N_QUERIES, DIM))
    path = str(tmp_path / "warm-idx")

    start = time.perf_counter()
    cold = Index(targets, seed=1)
    build_s = time.perf_counter() - start
    cold.save(path)  # snapshot the pre-draw rng state the loads resume
    start_first = time.perf_counter()
    first = cold.join_plan(queries)
    cold_first_answer_s = build_s + (time.perf_counter() - start_first)

    start = time.perf_counter()
    warm = Index.load(path, mmap=True)
    mmap_load_s = time.perf_counter() - start
    plan = warm.join_plan(queries)
    warm_first_answer_s = time.perf_counter() - start

    start = time.perf_counter()
    Index.load(path, mmap=False)
    eager_load_s = time.perf_counter() - start

    # Loaded state is the built state, so the warm path answers with
    # the exact same plan geometry.
    np.testing.assert_array_equal(plan.query_clusters.center_indices,
                                  first.query_clusters.center_indices)

    mmap_rss = _forked_rss_delta(path, True, queries)
    eager_rss = _forked_rss_delta(path, False, queries)

    speedup = build_s / max(mmap_load_s, 1e-9)
    rows = [
        ["cold build", build_s * 1e3, cold_first_answer_s * 1e3, "-"],
        ["mmap load", mmap_load_s * 1e3, warm_first_answer_s * 1e3,
         "%.1f" % (np.mean(mmap_rss) / 2**20)],
        ["eager load", eager_load_s * 1e3, "-",
         "%.1f" % (np.mean(eager_rss) / 2**20)],
    ]
    emit("warm_start", format_table(
        "Warm start — n=%d d=%d (%d forked workers sampled)"
        % (len(targets), DIM, len(mmap_rss)),
        ["path", "prepare ms", "first answer ms", "worker RSS delta MiB"],
        rows,
        notes=["mmap load speedup over cold build: %.1fx" % speedup,
               "index on disk: %.1f MiB" % (warm.nbytes / 2**20)]))
    emit_json("warm_start", {
        "n_targets": len(targets), "dim": DIM, "k": K,
        "build_s": round(build_s, 6),
        "mmap_load_s": round(mmap_load_s, 6),
        "eager_load_s": round(eager_load_s, 6),
        "cold_first_answer_s": round(cold_first_answer_s, 6),
        "warm_first_answer_s": round(warm_first_answer_s, 6),
        "load_speedup": round(speedup, 2),
        "worker_rss_delta_mmap_bytes": mmap_rss,
        "worker_rss_delta_eager_bytes": eager_rss,
        "index_nbytes": int(warm.nbytes)})

    if build_s >= MIN_MEASURABLE_BUILD_S:
        assert speedup >= MIN_LOAD_SPEEDUP, (
            "expected mmap load >= %.0fx faster than cold build, got "
            "%.1fx (build %.3fs, load %.3fs)"
            % (MIN_LOAD_SPEEDUP, speedup, build_s, mmap_load_s))
