"""Table IV — saved computations and warp efficiency.

Reproduces: for each dataset, the fraction of |Q| x |T| distance
computations the level-2 filter avoided and the level-2 kernel's warp
efficiency, for basic KNN-TI and Sweet KNN (k=20).

Expected shape (paper): >90 % saved on the clustered sets (99+ % at
full UCI cardinality; at our scaled-down |T| the achievable ceiling is
1 - c*k/|T|), low savings on arcene; Sweet warp efficiency well above
basic's (the paper reports a ~3x average gain).
"""

import pytest

from repro.bench import paper, run_method
from repro.bench.reporting import emit, emit_json, format_table

DATASETS = paper.DATASET_ORDER
K = 20

_rows = {}
_records = {}


@pytest.mark.paper_experiment("table4")
@pytest.mark.parametrize("dataset", DATASETS)
def test_table4_dataset(benchmark, dataset):
    basic = run_method(dataset, "basic", K)

    def run_sweet():
        return run_method(dataset, "sweet", K)

    sweet = benchmark.pedantic(run_sweet, rounds=1, iterations=1)

    paper_basic = paper.TABLE4_PROFILE[dataset]["basic"]
    paper_sweet = paper.TABLE4_PROFILE[dataset]["sweet"]
    _records[dataset] = {"basic": basic, "sweet": sweet}
    _rows[dataset] = (
        dataset,
        basic.saved_fraction, basic.warp_efficiency,
        sweet.saved_fraction, sweet.warp_efficiency,
        paper_basic[0], paper_basic[1], paper_sweet[0], paper_sweet[1])
    benchmark.extra_info.update({
        "saved_basic": round(basic.saved_fraction, 4),
        "weff_basic": round(basic.warp_efficiency, 3),
        "saved_sweet": round(sweet.saved_fraction, 4),
        "weff_sweet": round(sweet.warp_efficiency, 3),
    })

    # Shape assertions.
    if dataset == "arcene":
        assert basic.saved_fraction < 0.5       # weakly clusterable
    else:
        assert basic.saved_fraction > 0.85      # TI prunes the bulk
    assert sweet.warp_efficiency > basic.warp_efficiency
    if len(_rows) == len(DATASETS):
        _emit_table()


def _emit_table():
    rows = [_rows[d] for d in DATASETS if d in _rows]
    text = format_table(
        "Table IV - level-2 filter profile (k=20): saved computations "
        "and warp efficiency",
        ["dataset", "TI saved", "TI weff", "Sweet saved", "Sweet weff",
         "paper TI saved", "paper TI weff", "paper Sw saved",
         "paper Sw weff"],
        rows,
        notes=[
            "Saved fraction ceiling at scaled-down |T| is 1 - c*k/|T| "
            "(computed distances per query",
            "cannot drop below k), so clustered stand-ins sit at 0.92-"
            "0.99 where the paper reports 0.99+.",
        ])
    emit("table4_profile", text)
    emit_json("table4_profile", {
        "experiment": "table4_profile", "k": K,
        "runs": [_records[d][m].payload()
                 for d in DATASETS if d in _records
                 for m in ("basic", "sweet")],
    })
