"""Multi-core sharded execution — speedup vs worker count.

Not a paper figure: the paper parallelises across GPU threads, while
:mod:`repro.parallel` (PR 4) shards query tiles across host processes.
This bench records the scaling trajectory of the sequential TI engine
on the Fig. 9 medium shape (kegg, |Q| = |T| = 4096, k = 20): per
worker count, the end-to-end wall clock, the parallelised query-phase
wall clock, per-shard wall times and the bit-identity check against
the serial run.

The speedup assertion only applies where it can physically hold — on
hosts with at least 4 usable cores; elsewhere (e.g. a 1-core CI
container) the numbers are still recorded in ``BENCH_*.json``.
"""

import os

import numpy as np
import pytest

from repro.bench.harness import run_method
from repro.bench.reporting import emit, emit_json, format_table

DATASET = "kegg"   # the Fig. 9 medium shape (4096 x 29 stand-in)
METHOD = "ti-cpu"  # host engine: wall clock is the real, unsimulated cost
K = 20
WORKER_COUNTS = (1, 2, 4)

#: Acceptance floor for the 4-worker query-phase speedup (only
#: asserted on hosts with >= 4 usable cores).
MIN_SPEEDUP_AT_4 = 1.5


def _usable_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


@pytest.mark.paper_experiment("parallel_scaling")
def test_parallel_scaling():
    serial = run_method(DATASET, METHOD, K)
    records = {1: serial}
    for workers in WORKER_COUNTS[1:]:
        records[workers] = run_method(DATASET, METHOD, K, workers=workers,
                                      pool="process")

    # The correctness contract: sharded results and counters are
    # bit-for-bit the serial ones, at every worker count.
    for workers, record in records.items():
        assert np.array_equal(record.result.indices, serial.result.indices)
        assert np.array_equal(record.result.distances,
                              serial.result.distances)
        assert record.funnel == serial.funnel, workers

    rows = []
    runs = []
    for workers in WORKER_COUNTS:
        record = records[workers]
        query_speedup = serial.query_time_s / record.query_time_s
        wall_speedup = serial.wall_time_s / record.wall_time_s
        rows.append([workers, record.shards,
                     record.wall_time_s * 1e3, record.query_time_s * 1e3,
                     query_speedup, wall_speedup])
        payload = record.payload()
        payload["query_speedup"] = round(query_speedup, 4)
        payload["wall_speedup"] = round(wall_speedup, 4)
        runs.append(payload)

    cpus = _usable_cpus()
    emit("parallel_scaling", format_table(
        "Sharded execution — %s, %s, k=%d (host: %d usable cores)"
        % (METHOD, DATASET, K, cpus),
        ["workers", "shards", "wall ms", "query ms",
         "query speedup(x)", "wall speedup(x)"],
        rows,
        notes=["sharded results verified bit-identical to serial",
               "speedups are host wall clock; the prepare phase is "
               "shared and serial"]))
    emit_json("parallel_scaling", {
        "dataset": DATASET, "method": METHOD, "k": K,
        "usable_cpus": cpus, "runs": runs})

    if cpus >= 4:
        four = records[4]
        assert serial.query_time_s / four.query_time_s >= MIN_SPEEDUP_AT_4, (
            "expected >= %.1fx query-phase speedup at 4 workers, got %.2fx"
            % (MIN_SPEEDUP_AT_4, serial.query_time_s / four.query_time_s))
