"""Figure 11 — sensitivity to the number of landmarks.

Reproduces: Sweet KNN speedup on kegg, keggD and blog across a sweep
of landmark (cluster) counts.  The paper sweeps {100..3200} around its
3*sqrt(N) ~= 745 rule for the ~60k-point originals; the stand-ins are
~16x smaller, so the sweep brackets the correspondingly scaled rule
(3*sqrt(n) ~= 192 for kegg) with the same x2 geometric spacing.

Expected shape (paper): speedup rises to a peak near the 3*sqrt(N)
rule and falls beyond it (clustering overhead and cluster bookkeeping
outgrow the filtering gain).
"""

import numpy as np
import pytest

from repro.bench import paper, run_method
from repro.bench.figures import series_chart
from repro.bench.reporting import emit, format_table
from repro.datasets import DATASETS as SPECS

DATASETS = ["kegg", "keggd", "blog"]
COUNTS = [24, 48, 96, 192, 384, 768]
K = 20

_speedups = {}


@pytest.mark.paper_experiment("fig11")
@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("count", COUNTS)
def test_fig11_point(benchmark, dataset, count):
    base = run_method(dataset, "cublas", K)

    def run_sweet():
        return run_method(dataset, "sweet", K, mq=count, mt=count)

    sweet = benchmark.pedantic(run_sweet, rounds=1, iterations=1)
    speedup = base.sim_time_s / sweet.sim_time_s
    _speedups[(dataset, count)] = speedup
    benchmark.extra_info["speedup"] = round(speedup, 2)
    if len(_speedups) == len(DATASETS) * len(COUNTS):
        _emit_table()


def _emit_table():
    rows = []
    for dataset in DATASETS:
        rule = int(round(3 * np.sqrt(SPECS[dataset].n)))
        row = [dataset] + [_speedups.get((dataset, c)) for c in COUNTS]
        row.append(rule)
        rows.append(row)
    text = format_table(
        "Figure 11 - Sweet KNN speedup vs number of landmarks (k=20)",
        ["dataset"] + ["m=%d" % c for c in COUNTS] + ["3*sqrt(n)"],
        rows,
        notes=["Paper sweep: {100..3200} around 3*sqrt(N)~745 at ~60k "
               "points; counts here bracket the",
               "scaled rule with the same x2 spacing."])
    charts = [series_chart(
        "Fig. 11 (shape) - %s: speedup vs landmark count "
        "(rule: 3*sqrt(n)=%d)" % (
            dataset, int(round(3 * np.sqrt(SPECS[dataset].n)))),
        ["m=%d" % c for c in COUNTS],
        [_speedups.get((dataset, c)) for c in COUNTS])
        for dataset in DATASETS]
    emit("fig11_landmarks", text + "\n" + "\n".join(charts))

    # Shape: an interior peak — the best count beats both extremes.
    for dataset in DATASETS:
        series = [_speedups[(dataset, c)] for c in COUNTS
                  if (dataset, c) in _speedups]
        if len(series) == len(COUNTS):
            best = max(series)
            assert best >= series[0]
            assert best >= series[-1]
