"""Serving throughput — the ``repro.serve`` subsystem under load.

Unlike the figure/table benchmarks this does not reproduce a paper
artefact; it records the serving layer's acceptance criteria: a
sustained open-loop run over one shared target set must serve every
request from the cached index (>95% hit rate) with answers exactly
equal to a direct :func:`repro.knn_join`, and a deliberately saturated
run must stay bounded — typed rejections, no deadlock, no lost
in-flight requests.
"""

import numpy as np
import pytest

from repro import knn_join
from repro.bench.reporting import emit, format_table
from repro.serve import KNNServer, run_open_loop

N_REQUESTS = 240
N_TARGETS = 400
DIM = 8
K = 10

_reports = {}


@pytest.fixture(scope="module")
def workload(bench_seed):
    rng = np.random.default_rng(bench_seed)
    targets = rng.normal(size=(N_TARGETS, DIM))
    base = rng.choice(N_TARGETS, size=N_REQUESTS)
    queries = targets[base] + 0.05 * rng.normal(size=(N_REQUESTS, DIM))
    return targets, queries


@pytest.mark.paper_experiment("serving")
def test_sustained_load_is_cached_and_exact(benchmark, workload):
    targets, queries = workload

    def serve():
        with KNNServer(method="sweet", max_batch_size=32,
                       max_wait_s=0.002) as server:
            return run_open_loop(server, targets, queries, K)

    report = benchmark.pedantic(serve, rounds=1, iterations=1)
    _reports["sustained"] = report

    assert report.served == N_REQUESTS
    assert report.rejected == 0 and report.expired == 0
    assert report.errors == []
    assert report.stats.cache_hit_rate > 0.95

    direct = knn_join(queries, targets, K, method="sweet")
    for i, response in report.responses:
        assert np.array_equal(response.indices, direct.indices[i])
        assert np.array_equal(response.distances, direct.distances[i])

    benchmark.extra_info.update({
        "served_rps": round(report.served_rate, 1),
        "cache_hit_rate": round(report.stats.cache_hit_rate, 4),
        "p50_ms": round(1e3 * report.stats.latency_percentile(50), 3),
        "p99_ms": round(1e3 * report.stats.latency_percentile(99), 3),
    })


@pytest.mark.paper_experiment("serving")
def test_saturation_is_bounded_and_lossless(workload):
    targets, queries = workload
    with KNNServer(method="sweet", degraded_method="brute",
                   max_batch_size=8, max_wait_s=0.02,
                   max_queue_depth=8, degrade_at=0.5) as server:
        report = run_open_loop(server, targets, queries, K)
    _reports["saturated"] = report

    # Bounded queue: every request is either served or rejected with a
    # typed error — none lost, none deadlocked.
    assert report.served + report.rejected + report.expired == N_REQUESTS
    assert report.errors == []
    assert report.stats.queue_depth == 0

    direct = knn_join(queries, targets, K, method="sweet")
    direct_brute = knn_join(queries, targets, K, method="brute")
    for i, response in report.responses:
        reference = direct_brute if response.degraded else direct
        assert np.array_equal(np.sort(response.indices),
                              np.sort(reference.indices[i]))
        assert np.allclose(response.distances, reference.distances[i],
                           rtol=0, atol=1e-9)
    _emit_table()


def _emit_table():
    rows = []
    for scenario in ("sustained", "saturated"):
        report = _reports.get(scenario)
        if report is None:
            continue
        stats = report.stats
        rows.append([
            scenario, report.n_requests, report.served, report.rejected,
            report.expired, stats.degraded,
            round(100.0 * stats.cache_hit_rate, 1),
            round(stats.mean_batch_rows, 1),
            round(1e3 * stats.latency_percentile(50), 2),
            round(1e3 * stats.latency_percentile(99), 2),
            round(report.served_rate, 1),
        ])
    text = format_table(
        "Serving throughput - repro.serve under open-loop load",
        ["scenario", "offered", "served", "rejected", "expired",
         "degraded", "cache hit %", "batch rows", "p50 ms", "p99 ms",
         "served/s"],
        rows,
        notes=["sustained: defaults sized so nothing is dropped; "
               "answers bit-equal to direct knn_join.",
               "saturated: queue depth 8 forces admission control; "
               "every request is served or typed-rejected."])
    emit("serving_throughput", text)
