"""Shared configuration for the paper-reproduction benchmarks.

Each benchmark file regenerates one table or figure of the paper's
evaluation (Section V).  Runs are memoised in
:mod:`repro.bench.harness`, so experiments that profile the same join
(e.g. Fig. 9 and Table IV) execute it once.

The emitted tables land in ``benchmarks/results/`` and are the source
of the paper-vs-measured record in EXPERIMENTS.md.  At session end
every ``BENCH_*.json`` payload is ingested into the append-only
``TRAJECTORY.jsonl`` (deduplicated per commit), so each benchmark run
extends the history ``python -m repro bench-gate`` gates against.
"""

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_configure(config):
    # The suite is meant to run with --benchmark-only; when invoked as
    # plain pytest the tests still pass (they just also run the body).
    config.addinivalue_line(
        "markers", "paper_experiment(name): reproduces a paper artefact")


def pytest_sessionfinish(session, exitstatus):
    """Feed fresh bench payloads into the regression-gate trajectory."""
    if exitstatus != 0 or not RESULTS_DIR.is_dir():
        return
    from repro.obs.baseline import (TRAJECTORY_NAME, append_trajectory,
                                    bench_name, ingest_payload)

    records = []
    for path in sorted(RESULTS_DIR.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        records.extend(ingest_payload(bench_name(path), payload))
    written = append_trajectory(RESULTS_DIR / TRAJECTORY_NAME, records)
    if written:
        print("\ntrajectory: appended %d metric record(s) -> %s"
              % (len(written), RESULTS_DIR / TRAJECTORY_NAME))


@pytest.fixture(scope="session")
def bench_seed():
    return 1
