"""Shared configuration for the paper-reproduction benchmarks.

Each benchmark file regenerates one table or figure of the paper's
evaluation (Section V).  Runs are memoised in
:mod:`repro.bench.harness`, so experiments that profile the same join
(e.g. Fig. 9 and Table IV) execute it once.

The emitted tables land in ``benchmarks/results/`` and are the source
of the paper-vs-measured record in EXPERIMENTS.md.
"""

import pytest


def pytest_configure(config):
    # The suite is meant to run with --benchmark-only; when invoked as
    # plain pytest the tests still pass (they just also run the body).
    config.addinivalue_line(
        "markers", "paper_experiment(name): reproduces a paper artefact")


@pytest.fixture(scope="session")
def bench_seed():
    return 1
