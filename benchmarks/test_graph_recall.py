"""Graph tier vs exact TI — recall/latency trade-off (not a paper
figure; the motivating case *is* in the paper).

Table IV of Sweet KNN shows the TI filter collapsing on
high-intrinsic-dimension data: on arcene (d=10000) the funnel saves
almost nothing and every query degenerates to a brute scan.  The
:mod:`repro.graph` tier (PR 7) is the repository's answer: an
NN-descent k-NN graph whose query cost tracks the graph degree rather
than ``|T|``, at a *measured* recall cost.

Two workloads:

* **clustered** — the paper's favourable regime (low intrinsic
  dimension, clear blobs).  Exact TI already prunes most distances
  here; the graph's speedup is modest and this table documents that
  honestly.
* **arcene-like** — high ambient dimension with moderate intrinsic
  dimension (a random linear embedding), the regime the exact filter
  cannot prune.  This is where the approximate tier earns its keep,
  and where the acceptance floors are asserted: at the ``ef`` the
  stored calibration curve picks for ``recall_target=0.9``, the walk
  must measure recall@10 >= 0.9 on held-out queries while answering
  at least ``MIN_SPEEDUP``x faster than the exact TI join.

Recorded in ``BENCH_graph_recall.json``: per-set exact timings and
saved fractions, the full (ef, recall, query_time_s, speedup) sweep,
the calibration curve, and the calibrated operating point.
"""

import time

import numpy as np
import pytest

from repro.bench.reporting import emit, emit_json, format_table
from repro.core.ti_knn import ti_knn_join
from repro.graph import GraphConfig, build_graph, calibrate
from repro.graph.recall import measured_recall
from repro.graph.search import graph_knn_search
from repro.index import Index

K = 10
N_QUERIES = 128
EF_SWEEP = (32, 64, 128, 256)
RECALL_TARGET = 0.9

#: Acceptance floors, asserted on the arcene-like set at the
#: calibrated ef.
MIN_RECALL = 0.9
MIN_SPEEDUP = 5.0
#: Only assert the wall-clock ratio when the exact join is comfortably
#: above timer noise (mirrors the warm-start benchmark's gate).
MIN_MEASURABLE_EXACT_S = 0.2


def _clustered_set(rng):
    """The paper's favourable regime: blobs with low intrinsic dim."""
    n, dim = 4000, 32
    centers = rng.normal(scale=8.0, size=(48, dim))
    points = np.concatenate(
        [center + rng.normal(scale=0.6, size=(n // 48, dim))
         for center in centers])
    return "clustered", points


def _arcene_like_set(rng):
    """High ambient dimension, moderate intrinsic dimension: a random
    linear embedding of a 40-d latent cloud into 200 dimensions —
    the shape on which Table IV reports the TI funnel collapsing."""
    n, ambient, intrinsic = 6000, 200, 40
    latent = rng.normal(size=(n, intrinsic))
    mix = rng.normal(size=(intrinsic, ambient)) / np.sqrt(intrinsic)
    points = latent @ mix + 0.01 * rng.normal(size=(n, ambient))
    return "arcene-like", points


def _probe_like_queries(targets, rng):
    rows = rng.integers(0, len(targets), size=N_QUERIES)
    scale = targets.std(axis=0)
    return targets[rows] + 0.05 * scale * rng.standard_normal(
        (N_QUERIES, targets.shape[1]))


def _bench_one(name, targets, rng):
    queries = _probe_like_queries(targets, rng)

    start = time.perf_counter()
    index = Index(targets, seed=1)
    index_build_s = time.perf_counter() - start

    start = time.perf_counter()
    graph = build_graph(index, GraphConfig(graph_k=24, sample=256),
                        seed=9)
    graph_build_s = time.perf_counter() - start
    curve = calibrate(graph, index, k=K, ef_grid=EF_SWEEP, n_probe=96)

    exact_rng = np.random.default_rng(2)
    plan = index.join_plan(queries, rng=exact_rng)
    start = time.perf_counter()
    exact = ti_knn_join(queries, targets, K, exact_rng, plan=plan)
    exact_s = time.perf_counter() - start

    sweep = []
    for ef in EF_SWEEP:
        start = time.perf_counter()
        approx = graph_knn_search(graph, queries, targets, K, ef=ef)
        approx_s = time.perf_counter() - start
        sweep.append({
            "ef": ef,
            "recall": round(measured_recall(approx.indices,
                                            exact.indices), 4),
            "query_time_s": round(approx_s, 6),
            "speedup": round(exact_s / max(approx_s, 1e-9), 2),
            "distances_per_query": int(
                approx.stats.level2_distance_computations
                // len(queries)),
        })

    calibrated_ef = graph.ef_for(RECALL_TARGET, K)
    calibrated = next((entry for entry in sweep
                       if entry["ef"] == calibrated_ef), None)
    if calibrated is None:
        start = time.perf_counter()
        approx = graph_knn_search(graph, queries, targets, K,
                                  ef=calibrated_ef)
        approx_s = time.perf_counter() - start
        calibrated = {
            "ef": int(calibrated_ef),
            "recall": round(measured_recall(approx.indices,
                                            exact.indices), 4),
            "query_time_s": round(approx_s, 6),
            "speedup": round(exact_s / max(approx_s, 1e-9), 2),
            "distances_per_query": int(
                approx.stats.level2_distance_computations
                // len(queries)),
        }

    return {
        "dataset": name,
        "n_targets": int(len(targets)),
        "dim": int(targets.shape[1]),
        "k": K,
        "n_queries": N_QUERIES,
        "index_build_s": round(index_build_s, 6),
        "graph_build_s": round(graph_build_s, 6),
        "graph_build_distances": int(graph.build_distance_computations),
        "graph_iterations": list(graph.iteration_updates),
        "exact_query_time_s": round(exact_s, 6),
        "exact_saved_fraction": round(exact.stats.saved_fraction, 4),
        "calibration": curve.describe(),
        "recall_target": RECALL_TARGET,
        "calibrated": calibrated,
        "sweep": sweep,
    }


@pytest.mark.paper_experiment("graph_recall")
def test_graph_recall():
    rng = np.random.default_rng(17)
    records = [_bench_one(*_clustered_set(rng), rng=rng),
               _bench_one(*_arcene_like_set(rng), rng=rng)]

    rows = []
    for record in records:
        rows.append([record["dataset"], "exact TI", "-", "1.00",
                     "%.1f" % (1e3 * record["exact_query_time_s"]),
                     "1.0",
                     "%.1f%%" % (100 * record["exact_saved_fraction"])])
        for entry in record["sweep"]:
            marker = ("*" if entry["ef"] == record["calibrated"]["ef"]
                      else "")
            rows.append([record["dataset"],
                         "graph-bfs%s" % marker, entry["ef"],
                         "%.3f" % entry["recall"],
                         "%.1f" % (1e3 * entry["query_time_s"]),
                         "%.1f" % entry["speedup"],
                         "-"])
    emit("graph_recall", format_table(
        "Approximate graph tier vs exact TI (k=%d, %d queries; * = ef "
        "calibrated for recall >= %.1f)" % (K, N_QUERIES, RECALL_TARGET),
        ["dataset", "engine", "ef", "recall@%d" % K, "query ms",
         "speedup(x)", "TI saved"],
        rows,
        notes=["exact TI saves %.1f%% of distances on the clustered set "
               "but only %.1f%% on the arcene-like set — the regime the "
               "graph tier exists for"
               % (100 * records[0]["exact_saved_fraction"],
                  100 * records[1]["exact_saved_fraction"])]))
    emit_json("graph_recall", {"recall_target": RECALL_TARGET,
                               "min_recall": MIN_RECALL,
                               "min_speedup": MIN_SPEEDUP,
                               "datasets": records})

    # Acceptance floors on the high-dimensional set.
    high_dim = records[1]
    operating = high_dim["calibrated"]
    assert operating["recall"] >= MIN_RECALL, (
        "calibrated ef=%d measured recall %.3f < %.2f"
        % (operating["ef"], operating["recall"], MIN_RECALL))
    if high_dim["exact_query_time_s"] >= MIN_MEASURABLE_EXACT_S:
        assert operating["speedup"] >= MIN_SPEEDUP, (
            "calibrated ef=%d speedup %.1fx < %.1fx"
            % (operating["ef"], operating["speedup"], MIN_SPEEDUP))
