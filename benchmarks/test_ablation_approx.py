"""Extension: the (1+epsilon)-approximate mode's accuracy/work curve.

Not a paper figure — the paper's related work motivates approximate
methods as the *other* way to cut distance computations; this sweep
shows how Sweet KNN's TI machinery absorbs an approximation budget:
pruning against ``theta / (1+eps)`` trades bounded error for further
saved computations.
"""

import numpy as np
import pytest

from repro.bench import run_method
from repro.bench.reporting import emit, format_table
from repro.datasets import load

K = 20
EPSILONS = [0.0, 0.1, 0.25, 0.5, 1.0]

_rows = []


@pytest.mark.paper_experiment("ablation-ext")
@pytest.mark.parametrize("eps", EPSILONS)
def test_ablation_epsilon(benchmark, eps):
    points, spec = load("kegg")

    def run():
        return run_method("kegg", "sweet", K, epsilon=eps)

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    exact = run_method("kegg", "sweet", K, epsilon=0.0)
    oracle = exact.result  # epsilon=0 is exact (tested in the suite)

    kth_ratio = float(np.max(
        (record.result.distances[:, -1] + 1e-12)
        / (oracle.distances[:, -1] + 1e-12)))
    recall = float(np.mean([
        len(set(record.result.indices[q]) & set(oracle.indices[q])) / K
        for q in range(0, spec.n, 7)]))
    _rows.append((eps, record.saved_fraction, kth_ratio, recall,
                  record.sim_time_s * 1e3))

    # The guarantee: k-th distance within (1+eps) of the true value.
    assert kth_ratio <= 1.0 + eps + 1e-9
    # Work never increases with slack.
    assert record.saved_fraction >= exact.saved_fraction - 1e-12

    if len(_rows) == len(EPSILONS):
        text = format_table(
            "Extension - (1+eps)-approximate Sweet KNN on kegg (k=20)",
            ["epsilon", "saved fraction", "max kth ratio", "recall",
             "sim ms"],
            _rows,
            notes=["Guarantee: returned k-th distance <= (1+eps) x "
                   "true k-th distance."])
        emit("ablation_epsilon", text)
