"""Ablations of Sweet KNN's individual design choices.

These are not paper figures; they isolate the contribution of each
optimisation DESIGN.md calls out, on a representative dataset:

* thread-data remapping (Section IV-C1, Tables I/II),
* point-matrix layout (Section IV-C3, Fig. 7),
* kNearests placement (Section IV-C2) and Fig. 6's two global layouts,
* bound updating inside the full filter.
"""

import pytest

from repro.bench import run_method
from repro.bench.reporting import emit, format_table

K = 20

_rows = []


@pytest.mark.paper_experiment("ablation")
def test_ablation_remapping(benchmark):
    """Remapping on/off: warp efficiency and time on kegg."""
    off = run_method("kegg", "sweet", K, remap=False)

    def run_on():
        return run_method("kegg", "sweet", K)

    on = benchmark.pedantic(run_on, rounds=1, iterations=1)
    _rows.append(("remapping", "on vs off",
                  on.sim_time_s * 1e3, off.sim_time_s * 1e3,
                  on.warp_efficiency, off.warp_efficiency))
    assert on.warp_efficiency > off.warp_efficiency
    assert on.sim_time_s < off.sim_time_s


@pytest.mark.paper_experiment("ablation")
def test_ablation_layout(benchmark):
    """Row-major + float4 vs column-major on blog (d=281)."""
    col = run_method("blog", "sweet", K, force_layout="col")

    def run_row():
        return run_method("blog", "sweet", K)

    row = benchmark.pedantic(run_row, rounds=1, iterations=1)
    _rows.append(("layout", "row vs col",
                  row.sim_time_s * 1e3, col.sim_time_s * 1e3,
                  row.warp_efficiency, col.warp_efficiency))
    assert row.sim_time_s < col.sim_time_s


@pytest.mark.paper_experiment("ablation")
def test_ablation_placement(benchmark):
    """kNearests forced to global vs the adaptive (registers) choice
    on keggd at k=20."""
    in_global = run_method("keggd", "sweet", K, force_placement="global")

    def run_adaptive():
        return run_method("keggd", "sweet", K)

    adaptive = benchmark.pedantic(run_adaptive, rounds=1, iterations=1)
    assert adaptive.decisions["placement"] == "registers"
    _rows.append(("placement", "registers vs global",
                  adaptive.sim_time_s * 1e3, in_global.sim_time_s * 1e3,
                  adaptive.warp_efficiency, in_global.warp_efficiency))
    assert adaptive.sim_time_s <= in_global.sim_time_s


@pytest.mark.paper_experiment("ablation")
def test_ablation_knearests_fig6_layouts(benchmark):
    """Fig. 6: interleaved (layout 2) vs per-thread-contiguous
    (layout 1) kNearests in global memory, on kegg."""
    layout1 = run_method("kegg", "sweet", K, force_placement="global",
                         knearests_coalesced=False)

    def run_layout2():
        return run_method("kegg", "sweet", K, force_placement="global")

    layout2 = benchmark.pedantic(run_layout2, rounds=1, iterations=1)
    _rows.append(("kNearests Fig.6", "layout2 vs layout1",
                  layout2.sim_time_s * 1e3, layout1.sim_time_s * 1e3,
                  layout2.warp_efficiency, layout1.warp_efficiency))
    assert layout2.sim_time_s <= layout1.sim_time_s


@pytest.mark.paper_experiment("ablation")
def test_ablation_emit_table(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _rows
    text = format_table(
        "Ablations - contribution of individual Sweet KNN techniques "
        "(k=20)",
        ["technique", "comparison", "with ms", "without ms",
         "weff with", "weff without"],
        _rows)
    emit("ablations", text)
