"""Native-compiled kernel tier — flat fallback and numba speedups.

Not a paper figure: the paper's level-2 scan runs as CUDA kernels,
while PR 9's ``repro.native`` package compiles the same Algorithm 2
loop for the host — a numba-jitted tier (``ti-native`` /
``sweet-native``) with an always-available vectorized numpy fallback
(``ti-flat`` / ``sweet-flat``).  Both tiers are exact *and*
funnel-exact: results and work counters are bit-identical to the
sequential reference engine.

This bench records, on the Fig. 9 medium shape (kegg, |Q| = |T| =
4096, k = 20):

* the numpy flat tier's query-phase speedup over ``ti-cpu`` (asserted
  >= 2x, always — the fallback must pay for itself);
* the numba tier's speedup (asserted >= 10x, only when numba is
  importable; recorded as absent otherwise) with the one-time JIT
  compile reported separately (``native_compile_s``);
* the bit-identity checks for both filter strengths (the ``sweet-*``
  engines implement the paper's partial filter; their reference is
  ``ti-cpu`` with ``filter_strength="partial"``).
"""

import numpy as np
import pytest

from repro.bench.harness import run_method
from repro.bench.reporting import emit, emit_json, format_table
from repro.native.support import numba_available

DATASET = "kegg"   # the Fig. 9 medium shape (4096 x 29 stand-in)
BASELINE = "ti-cpu"
K = 20

#: Acceptance floor for the numpy flat tier (always asserted).
MIN_FLAT_SPEEDUP = 2.0
#: Acceptance floor for the numba tier (asserted when numba imports).
MIN_NATIVE_SPEEDUP = 10.0


def _assert_identical(reference, contender):
    """Results and the filtering funnel, bit for bit."""
    assert np.array_equal(reference.result.indices,
                          contender.result.indices), contender.method
    assert np.array_equal(reference.result.distances,
                          contender.result.distances), contender.method
    assert reference.funnel == contender.funnel, contender.method


@pytest.mark.paper_experiment("native_kernels")
def test_native_kernels():
    full_ref = run_method(DATASET, BASELINE, K)
    partial_ref = run_method(DATASET, BASELINE, K,
                             filter_strength="partial")
    references = {"full": full_ref, "partial": partial_ref}
    contenders = [("ti-flat", "full"), ("sweet-flat", "partial")]
    if numba_available():
        contenders += [("ti-native", "full"), ("sweet-native", "partial")]

    rows = [[BASELINE + " (full)", "reference",
             full_ref.query_time_s * 1e3, 0.0, 1.0],
            [BASELINE + " (partial)", "reference",
             partial_ref.query_time_s * 1e3, 0.0, 1.0]]
    runs = [full_ref.payload(), partial_ref.payload()]
    speedups = {}
    for method, strength in contenders:
        reference = references[strength]
        record = run_method(DATASET, method, K)
        _assert_identical(reference, record)
        speedup = reference.query_time_s / record.query_time_s
        speedups[method] = speedup
        rows.append([method, record.kernel_tier,
                     record.query_time_s * 1e3,
                     record.native_compile_s * 1e3, speedup])
        payload = record.payload()
        payload["query_speedup"] = round(speedup, 4)
        runs.append(payload)

    notes = ["results and funnel counters verified bit-identical to "
             "the %s reference per filter strength" % BASELINE,
             "speedups are query-phase wall clock; the numba tier's "
             "one-time JIT compile is reported separately"]
    if not numba_available():
        notes.append("numba not importable on this host: the *-native "
                     "rows are absent, the numpy flat tier is the "
                     "answering fallback")
    emit("native_kernels", format_table(
        "Native kernel tier — %s, k=%d (numba %s)"
        % (DATASET, K,
           "available" if numba_available() else "not installed"),
        ["engine", "kernel tier", "query ms", "compile ms", "speedup(x)"],
        rows, notes=notes))
    emit_json("native_kernels", {
        "dataset": DATASET, "baseline": BASELINE, "k": K,
        "numba_available": bool(numba_available()), "runs": runs})

    assert speedups["ti-flat"] >= MIN_FLAT_SPEEDUP, (
        "expected >= %.1fx query-phase speedup from the numpy flat "
        "tier, got %.2fx" % (MIN_FLAT_SPEEDUP, speedups["ti-flat"]))
    if numba_available():
        assert speedups["ti-native"] >= MIN_NATIVE_SPEEDUP, (
            "expected >= %.1fx query-phase speedup from the numba "
            "tier, got %.2fx"
            % (MIN_NATIVE_SPEEDUP, speedups["ti-native"]))
