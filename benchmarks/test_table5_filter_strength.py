"""Table V — full versus partial level-2 filtering at k=512.

Reproduces: on the six datasets with k/d > 8 at k=512, the saved
computations and speedup of Sweet KNN when forced to the full filter
versus the partial filter the adaptive scheme selects.

Expected shape (paper): the partial filter gives up only a few points
of saved computations (95-98 % vs 98-99 %) but wins on speed on every
dataset — the evidence for the elastic filter design.
"""

import pytest

from repro.bench import paper, run_method
from repro.bench.reporting import emit, format_table
from repro.datasets import DATASETS as SPECS

DATASETS = list(paper.TABLE5_FILTER_STRENGTH)
K = 512

_rows = {}


@pytest.mark.paper_experiment("table5")
@pytest.mark.parametrize("dataset", DATASETS)
def test_table5_dataset(benchmark, dataset):
    base = run_method(dataset, "cublas", K)
    full = run_method(dataset, "sweet", K, force_filter="full")

    def run_partial():
        return run_method(dataset, "sweet", K)  # adaptive picks partial

    partial = benchmark.pedantic(run_partial, rounds=1, iterations=1)
    assert partial.decisions["filter"] == "partial"

    spd_full = base.sim_time_s / full.sim_time_s
    spd_partial = base.sim_time_s / partial.sim_time_s
    paper_full = paper.TABLE5_FILTER_STRENGTH[dataset]["full"]
    paper_partial = paper.TABLE5_FILTER_STRENGTH[dataset]["partial"]
    _rows[dataset] = (dataset, full.saved_fraction, spd_full,
                      partial.saved_fraction, spd_partial,
                      paper_full[0], paper_full[1],
                      paper_partial[0], paper_partial[1])
    benchmark.extra_info.update({
        "speedup_full": round(spd_full, 2),
        "speedup_partial": round(spd_partial, 2),
    })

    # Shape: the weakened filter computes more distances...
    assert partial.saved_fraction <= full.saved_fraction + 1e-9
    # ...but runs faster — the Table V trade-off.  At stand-in scale
    # the flip requires the extra computed distances to stay cheaper
    # than the full filter's global-memory kNearests maintenance; on
    # the two high-dimensional stand-ins (ipums d=61, kdd d=42) the
    # k/|T| scale effect (see Fig. 10's note) makes the extra
    # distances dominate instead, so the direction is asserted on the
    # low/mid-dimensional datasets and reported for all six.
    if SPECS[dataset].dim <= 32:
        assert partial.sim_time_s < full.sim_time_s
    if len(_rows) == len(DATASETS):
        _emit_table()


def _emit_table():
    rows = [_rows[d] for d in DATASETS if d in _rows]
    text = format_table(
        "Table V - full vs partial level-2 filter at k=512 "
        "(k/d > 8 datasets)",
        ["dataset", "full saved", "full spd(x)", "partial saved",
         "partial spd(x)", "paper full saved", "paper full spd",
         "paper part saved", "paper part spd"],
        rows,
        notes=["Partial beats full on the low/mid-dimensional "
               "datasets; on ipums (d=61) and kdd",
               "(d=42) the k=512 scale effect (k/|T| of 6-9%) makes "
               "the partial filter's extra",
               "distance computations dominate its regularity gain."])
    emit("table5_filter_strength", text)
