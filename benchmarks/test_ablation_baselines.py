"""Extension ablations: pivot selection and the KD-tree alternative.

Two studies beyond the paper's figures that probe its design context:

* **Landmark selection** — the paper adopts the 10-trial random-spread
  heuristic of Ding et al. [4]; farthest-point (maxmin) traversal from
  the pivot-selection literature it cites ([3], [17]) is the obvious
  alternative.  Compared here on filtering effectiveness and end time.
* **KD-tree vs TI filtering** — the related-work section positions TI
  filtering against KD-trees; this sweep shows the KD-tree's pruning
  collapse with dimensionality while TI degrades gracefully, i.e. why
  the paper builds on TI.
"""

import numpy as np
import pytest

from repro.bench.reporting import emit, format_table
from repro.baselines.kdtree import kdtree_knn
from repro.core.landmarks import select_landmarks_maxmin
from repro.core.ti_knn import ti_knn_join
from repro.datasets import load, synthetic

K = 20


@pytest.mark.paper_experiment("ablation-ext")
def test_ablation_landmark_selection(benchmark):
    """Random-spread (the paper's choice) vs maxmin pivots on kegg."""
    points, spec = load("kegg")

    def run_random_spread():
        return ti_knn_join(points, points, K, np.random.default_rng(1))

    random_spread = benchmark.pedantic(run_random_spread, rounds=1,
                                       iterations=1)

    rng = np.random.default_rng(1)
    m = random_spread.stats.mq
    maxmin_q = select_landmarks_maxmin(points, m, rng)
    from repro.core.clustering import cluster_points, center_distances
    from repro.core.ti_knn import JoinPlan
    cq = cluster_points(points, maxmin_q)
    ct = cluster_points(points, select_landmarks_maxmin(points, m, rng),
                        sort_descending=True)
    plan = JoinPlan(query_clusters=cq, target_clusters=ct,
                    center_dists=center_distances(cq, ct))
    maxmin = ti_knn_join(points, points, K, None, plan=plan)

    rows = [
        ("random-spread x10 (paper)", random_spread.stats.saved_fraction,
         random_spread.stats.candidate_cluster_pairs),
        ("maxmin (farthest-point)", maxmin.stats.saved_fraction,
         maxmin.stats.candidate_cluster_pairs),
    ]
    text = format_table(
        "Ablation - landmark selection strategy (kegg, k=20)",
        ["strategy", "saved fraction", "candidate cluster pairs"], rows)
    emit("ablation_landmark_selection", text)
    # Both must stay in the high-savings regime; neither result is
    # allowed to be wrong.
    np.testing.assert_allclose(maxmin.distances, random_spread.distances,
                               atol=1e-9)
    assert maxmin.stats.saved_fraction > 0.9
    assert random_spread.stats.saved_fraction > 0.9


@pytest.mark.paper_experiment("ablation-ext")
@pytest.mark.parametrize("dim", [2, 8, 32, 128])
def test_ablation_kdtree_vs_ti_dimensionality(benchmark, dim):
    """Distance computations of KD-tree vs TI as dimension grows."""
    rng = np.random.default_rng(dim)
    points = synthetic.gaussian_mixture(1200, dim, rng, n_clusters=20,
                                        intrinsic_dim=min(dim, 6))

    def run_ti():
        return ti_knn_join(points, points, K, np.random.default_rng(1))

    ti = benchmark.pedantic(run_ti, rounds=1, iterations=1)
    tree = kdtree_knn(points, points, K)
    np.testing.assert_allclose(ti.distances, tree.distances, atol=1e-9)

    n2 = len(points) ** 2
    _KD_ROWS[dim] = (dim, tree.stats.level2_distance_computations / n2,
                     ti.stats.level2_distance_computations / n2)
    if len(_KD_ROWS) == 4:
        text = format_table(
            "Ablation - KD-tree vs TI filtering: computed distance "
            "fraction vs dimension (n=1200, k=20)",
            ["dim", "kdtree computed frac", "TI computed frac"],
            [_KD_ROWS[d] for d in sorted(_KD_ROWS)],
            notes=["KD-tree pruning collapses with dimension; TI "
                   "tracks intrinsic (not ambient) dimension."])
        emit("ablation_kdtree_dimensionality", text)
        # The crossover: KD-tree wins at d=2, TI wins by d=32.
        assert _KD_ROWS[128][1] > _KD_ROWS[128][2]


_KD_ROWS = {}
