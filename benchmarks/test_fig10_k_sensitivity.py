"""Figure 10 — Sweet KNN speedup versus k.

Reproduces: Sweet KNN's speedup over the baseline for
k in {1, 8, 20, 64, 512} on every dataset (arcene has only 100 points
and therefore no k=512 column, as in the paper).

Expected shape (paper): speedups generally decline from k=1 to k=64
(larger kNearests -> more divergence and update cost), then *recover*
at k=512 where the adaptive scheme switches the k/d>8 datasets to the
partial filter.
"""

import pytest

from repro.bench import paper, run_method
from repro.bench.figures import series_chart
from repro.bench.reporting import emit, format_table
from repro.datasets import DATASETS as SPECS

DATASETS = paper.DATASET_ORDER
K_VALUES = paper.FIG10_K_SWEEPS["k_values"]

_speedups = {}


def _pairs():
    for dataset in DATASETS:
        for k in K_VALUES:
            if k <= SPECS[dataset].n:
                yield dataset, k


@pytest.mark.paper_experiment("fig10")
@pytest.mark.parametrize("dataset,k", list(_pairs()))
def test_fig10_point(benchmark, dataset, k):
    base = run_method(dataset, "cublas", k)

    def run_sweet():
        return run_method(dataset, "sweet", k)

    sweet = benchmark.pedantic(run_sweet, rounds=1, iterations=1)
    speedup = base.sim_time_s / sweet.sim_time_s
    _speedups[(dataset, k)] = speedup
    benchmark.extra_info.update({
        "speedup": round(speedup, 2),
        "filter": sweet.decisions.get("filter"),
    })

    # The adaptive scheme's filter choice (Fig. 8): partial iff k/d>8.
    expected = "partial" if k / SPECS[dataset].dim > 8 else "full"
    assert sweet.decisions["filter"] == expected
    if len(_speedups) == len(list(_pairs())):
        _emit_table()


def _emit_table():
    rows = []
    for dataset in DATASETS:
        row = [dataset]
        for k in K_VALUES:
            row.append(_speedups.get((dataset, k)))
        for k, paper_value in zip(K_VALUES,
                                  paper.FIG10_K_SWEEPS[dataset]):
            row.append(paper_value)
        rows.append(row)
    headers = (["dataset"] + ["k=%d" % k for k in K_VALUES]
               + ["paper k=%d" % k for k in K_VALUES])
    text = format_table(
        "Figure 10 - Sweet KNN speedup over the baseline vs k",
        headers, rows,
        notes=["arcene has no k=512 column (only 100 points), as in "
               "the paper.",
               "k=512 at stand-in scale means k/|T| = 7-26% (vs <1% in "
               "the paper), a fundamentally",
               "harder regime: the partial filter's absolute speedup "
               "collapses there, while its",
               "*relative* advantage over the full filter at k=512 "
               "reproduces - see Table V."])
    charts = [series_chart(
        "Fig. 10 (shape) - %s: speedup vs k" % dataset,
        ["k=%d" % k for k in K_VALUES],
        [_speedups.get((dataset, k)) for k in K_VALUES])
        for dataset in DATASETS]
    emit("fig10_k_sensitivity", text + "\n" + "\n".join(charts))

    # Shape: speedups decline from k=1 to k=20 on every dataset (the
    # left half of the paper's Fig. 10 curve).  The k=512 recovery is a
    # *relative* property of the partial filter asserted in Table V:
    # at stand-in scale k=512 is 7-26% of |T| and absolute speedups
    # collapse (see the emitted note).
    for dataset in DATASETS:
        k1 = _speedups.get((dataset, 1))
        k20 = _speedups.get((dataset, 20))
        if k1 is not None and k20 is not None and k1 > 0.5:
            assert k1 >= 0.95 * k20
