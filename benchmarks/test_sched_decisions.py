"""Calibrated scheduler vs fixed engine choices — decision quality.

Not a paper figure: the paper's Fig. 8 scheme picks its configuration
from hand-built thresholds, while :mod:`repro.sched` (PR 10) predicts
per-engine cost from a model calibrated on the recorded benchmark
trajectory.  This bench closes the acceptance loop on the two regimes
the repo's shapes cover:

* **kegg** — the clustered, low-d Fig. 9 medium shape (4096 x 29),
  where the TI host engines win and the filter-strength choice between
  them matters;
* **arcene** — the high-d shape (100 x 10000), where triangle
  inequality pruning collapses and the KD-tree baseline wins.

Per shape it measures every fixed engine choice, asks the calibrated
scheduler for its pick, and records the decision record (predicted
cost, rejected alternatives, predicted-vs-actual error).  The
assertions pin the acceptance criteria: the scheduler's pick is never
worse than 1.2x the best fixed choice, it beats the engine the Fig. 8
threshold rule would select on at least one shape, and the scheduled
run's neighbours and funnel counters are bit-identical to running the
chosen engine directly (the scheduler changes the choosing, never the
computing).

The ``runs`` rows land in ``BENCH_sched_decisions.json`` in the same
``dataset/method/k/workers`` convention the trajectory store labels
by, so every bench run feeds the next calibration.
"""

import numpy as np
import pytest

from repro import sched
from repro.bench.harness import EXPERIMENT_SEED, run_method
from repro.bench.reporting import emit, emit_json, format_table
from repro.core.adaptive import filter_strength_for
from repro.core.api import knn_join
from repro.datasets import DATASETS, load
from repro.obs.funnel import funnel_from_stats

K = 20

#: Fixed engine choices measured per shape.  The simulated-GPU engines
#: (sweet, ti-gpu, cublas) cost minutes of host wall clock per join on
#: these shapes and are excluded; brute force is measured only where
#: it finishes in seconds (arcene's 100 queries, not kegg's 4096).
FIXED_CHOICES = {
    "kegg": ("ti-flat", "sweet-flat", "ti-cpu", "kdtree"),
    "arcene": ("ti-flat", "sweet-flat", "ti-cpu", "kdtree", "brute"),
}

#: Acceptance: the scheduler's pick may cost at most this multiple of
#: the best fixed choice's query time.
MAX_RATIO_VS_BEST = 1.2


def _fig8_engine(k, dim):
    """The engine the Fig. 8 threshold rule implies on the host tier.

    The rule picks the level-2 filter strength; among the host flat
    engines that is exactly the ti-flat (full) / sweet-flat (partial)
    split, so the fixed-threshold policy reduces to an engine choice.
    """
    return "ti-flat" if filter_strength_for(k, dim) == "full" else \
        "sweet-flat"


@pytest.mark.paper_experiment("sched_decisions")
def test_sched_decisions():
    model = sched.calibrate()

    rows = []
    runs = []
    decisions = []
    beats_fig8 = []
    for dataset, engines in FIXED_CHOICES.items():
        spec = DATASETS[dataset]
        clusterability = sched.dataset_clusterability(dataset)
        decision = sched.decide(
            spec.n, spec.n, K, spec.dim, method="auto",
            clusterability=clusterability, model=model)
        assert decision.source == "model"
        assert decision.engine in engines, (
            "scheduler picked %r, not among the measured fixed choices"
            % decision.engine)

        timed = {}
        for engine in engines:
            record = run_method(dataset, engine, K)
            timed[engine] = record
            payload = record.payload()
            payload.pop("stages", None)  # host engines: always empty
            runs.append(payload)

        best_engine = min(engines,
                          key=lambda name: timed[name].query_time_s)
        best_s = timed[best_engine].query_time_s
        chosen = timed[decision.engine]
        actual_s = chosen.query_time_s
        fig8_engine = _fig8_engine(K, spec.dim)
        fig8_s = timed[fig8_engine].query_time_s
        beats_fig8.append(actual_s < fig8_s)

        error_ratio = actual_s / decision.predicted_s
        decisions.append({
            "dataset": dataset, "k": K,
            "decision": decision.to_dict(),
            "chosen": decision.engine,
            "predicted_s": round(decision.predicted_s, 6),
            "actual_s": round(actual_s, 6),
            "error_ratio": round(error_ratio, 4),
            "log_error": round(abs(np.log(error_ratio)), 4),
            "best_fixed": best_engine,
            "best_fixed_s": round(best_s, 6),
            "ratio_vs_best": round(actual_s / best_s, 4),
            "fig8_engine": fig8_engine,
            "fig8_s": round(fig8_s, 6),
        })
        for engine in engines:
            rows.append([
                dataset, engine,
                timed[engine].query_time_s * 1e3,
                "<-- scheduler" if engine == decision.engine else
                ("fig8 rule" if engine == fig8_engine else ""),
                "best fixed" if engine == best_engine else ""])

        # The hard contract: the scheduled run computes exactly what a
        # direct run of the resolved engine computes.
        points, _spec = load(dataset)
        direct = knn_join(points, points, K, method=decision.engine,
                          seed=EXPERIMENT_SEED)
        with sched.use_model(model):
            scheduled = knn_join(points, points, K, method="auto",
                                 seed=EXPERIMENT_SEED)
        assert scheduled.method == direct.method
        assert np.array_equal(scheduled.indices, direct.indices)
        assert np.array_equal(scheduled.distances, direct.distances)
        assert funnel_from_stats(scheduled.stats) \
            == funnel_from_stats(direct.stats)

        assert actual_s <= MAX_RATIO_VS_BEST * best_s, (
            "%s: scheduler picked %s (%.3fs), more than %.1fx the best "
            "fixed choice %s (%.3fs)"
            % (dataset, decision.engine, actual_s, MAX_RATIO_VS_BEST,
               best_engine, best_s))

    assert any(beats_fig8), (
        "the calibrated scheduler beat the Fig. 8 rule on no shape: %s"
        % ([d["dataset"] for d in decisions],))

    emit("sched_decisions", format_table(
        "Calibrated scheduler vs fixed choices (k=%d, model v%s)"
        % (K, model.version),
        ["dataset", "engine", "query ms", "decision", "measured"],
        rows,
        notes=["scheduled runs verified bit-identical to direct runs",
               "fig8 rule: the filter-strength threshold mapped onto "
               "the host flat engines"]))
    emit_json("sched_decisions", {
        "k": K, "model_version": model.version,
        "runs": runs, "decisions": decisions})
