"""Fingerprint memo — repeat identity lookups must be O(1), not O(n d).

Not a paper figure: this measures the serving-path fix from PR 6.  The
index store keys prepared state by a content digest of the target set;
before the memo, every request re-hashed the full array (O(n*d) per
lookup).  With the identity-keyed memo a repeat lookup on the same
array object returns the cached digest without touching the data.

Recorded: the fresh-hash wall clock for a large target set, the
amortised per-lookup cost over many repeat lookups, and the ratio.
The assertion is gated on the fresh hash being measurable at all.
"""

import time

import numpy as np
import pytest

from repro.bench.reporting import emit, emit_json, format_table
from repro.index import clear_memo, fingerprint_points

N = 200_000
DIM = 32
REPEATS = 1000

#: Repeat lookups must amortise to a small constant; 20x is far below
#: the ~REPEATS x n*d saving the memo actually delivers, so the gate
#: holds on any host where the fresh hash is measurable.
MIN_SPEEDUP = 20.0
MIN_MEASURABLE_HASH_S = 0.001


@pytest.mark.paper_experiment("fingerprint_cache")
def test_fingerprint_cache():
    rng = np.random.default_rng(3)
    targets = rng.normal(size=(N, DIM))

    clear_memo()
    start = time.perf_counter()
    digest = fingerprint_points(targets)
    fresh_s = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(REPEATS):
        assert fingerprint_points(targets) == digest
    per_lookup_s = (time.perf_counter() - start) / REPEATS

    speedup = fresh_s / max(per_lookup_s, 1e-12)
    emit("fingerprint_cache", format_table(
        "Fingerprint memo — %d x %d float64 (%.1f MiB)"
        % (N, DIM, targets.nbytes / 2**20),
        ["path", "per lookup"],
        [["fresh hash", "%.3f ms" % (fresh_s * 1e3)],
         ["memoised repeat", "%.3f us" % (per_lookup_s * 1e6)]],
        notes=["memo speedup: %.0fx over %d repeat lookups"
               % (speedup, REPEATS)]))
    emit_json("fingerprint_cache", {
        "n": N, "dim": DIM, "repeats": REPEATS,
        "fresh_hash_s": round(fresh_s, 6),
        "memo_lookup_s": round(per_lookup_s, 9),
        "speedup": round(speedup, 1)})

    if fresh_s >= MIN_MEASURABLE_HASH_S:
        assert speedup >= MIN_SPEEDUP, (
            "expected memoised lookups >= %.0fx faster than hashing, "
            "got %.1fx" % (MIN_SPEEDUP, speedup))
