"""Figure 9 — overall speedups over the CUBLAS-style baseline.

Reproduces: basic KNN-TI and Sweet KNN simulated-time speedups over
the baseline on all nine dataset stand-ins, k=20, query set = target
set.  Expected shape (paper): Sweet wins everywhere (avg 11.5x, up to
44x on 3DNet); basic KNN-TI wins modestly on the clustered sets and
*loses* on arcene/dor/blog.
"""

import pytest

from repro.bench import paper, run_method
from repro.bench.figures import grouped_bar_chart
from repro.bench.reporting import emit, emit_json, format_table

DATASETS = paper.DATASET_ORDER
K = 20

_rows = {}
_records = {}


@pytest.mark.paper_experiment("fig9")
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig9_dataset(benchmark, dataset):
    """One Fig. 9 bar group: baseline, KNN-TI and Sweet on a dataset."""
    base = run_method(dataset, "cublas", K)
    basic = run_method(dataset, "basic", K)

    def run_sweet():
        return run_method(dataset, "sweet", K)

    sweet = benchmark.pedantic(run_sweet, rounds=1, iterations=1)

    spd_basic = base.sim_time_s / basic.sim_time_s
    spd_sweet = base.sim_time_s / sweet.sim_time_s
    paper_basic, paper_sweet = paper.FIG9_SPEEDUPS[dataset]
    _records[dataset] = {"cublas": base, "basic": basic, "sweet": sweet}
    _rows[dataset] = (dataset, spd_basic, spd_sweet,
                      paper_basic, paper_sweet,
                      base.sim_time_s * 1e3, basic.sim_time_s * 1e3,
                      sweet.sim_time_s * 1e3)
    benchmark.extra_info.update({
        "speedup_basic": round(spd_basic, 2),
        "speedup_sweet": round(spd_sweet, 2),
        "paper_basic": paper_basic,
        "paper_sweet": paper_sweet,
    })

    # Shape assertions (see EXPERIMENTS.md for the full discussion):
    # Sweet always improves on the basic TI implementation, and beats
    # the baseline on every clustered dataset, with the largest wins on
    # the memory-partitioned spatial sets.
    assert sweet.sim_time_s <= basic.sim_time_s * 1.05
    if dataset in ("3dnet", "skin"):
        assert spd_sweet > 5.0
        assert spd_basic > 3.0
    if dataset in ("kegg", "keggd", "ipums", "kdd"):
        assert spd_sweet > 2.0
    if len(_rows) == len(DATASETS):
        _emit_table()


def _emit_table():
    rows = [_rows[d] for d in DATASETS if d in _rows]
    text = format_table(
        "Figure 9 - overall speedups over the CUBLAS-style baseline "
        "(k=20, Q=T)",
        ["dataset", "KNN-TI(x)", "Sweet(x)", "paper TI(x)",
         "paper Sweet(x)", "base ms", "TI ms", "Sweet ms"],
        rows,
        notes=[
            "Simulated K20c time; dataset stand-ins are scaled down "
            "(DESIGN.md), which compresses",
            "absolute speedup factors: TI's advantage grows with |T| "
            "while computed distances",
            "per query cannot drop below k.  Orderings and win/loss "
            "pattern match the paper.",
        ])
    chart = grouped_bar_chart(
        "Figure 9 (shape) - speedup over baseline",
        [r[0] for r in rows],
        {"KNN-TI": [r[1] for r in rows],
         "Sweet": [r[2] for r in rows]})
    emit("fig9_overall", text + "\n" + chart)
    emit_json("fig9_overall", {
        "experiment": "fig9_overall", "k": K,
        "runs": [_records[d][m].payload()
                 for d in DATASETS if d in _records
                 for m in ("cublas", "basic", "sweet")],
    })
    # Ordering shape: the spatial, memory-partitioned datasets are the
    # biggest Sweet wins, as in the paper.
    by_name = {r[0]: r for r in rows}
    assert by_name["3dnet"][2] > by_name["kegg"][2]
