"""Extension: TI pruning for the three predicate-join shapes.

Not a paper figure — the paper builds its triangle-inequality funnel
for top-k only; this experiment shows the factored predicate core
carries the same pruning to ε-range self-join, ε-range join, and
reverse-KNN on clusterable data.  For each shape we run the TI engine
and its brute reference on the same Gaussian-mixture set, check the
pair sets match exactly, and record the level-2 distance computations
both sides paid.

Recorded in ``BENCH_join_shapes.json``: per shape the pair count, the
TI and dense level-2 distance counts, and the saved fraction.  The
gate: TI must beat dense on every shape.
"""

import numpy as np
import pytest

from repro.bench.reporting import emit, emit_json, format_table
from repro.baselines.brute_joins import brute_range_join, brute_reverse_knn
from repro.core.joins import (range_join, reverse_knn_join,
                              self_range_join)
from repro.datasets.synthetic import gaussian_mixture

N = 1500
DIM = 12
K = 10
EXPERIMENT_SEED = 1


def _median_kth_eps(points, k=K):
    """ε at the median k-th NN distance: every query keeps roughly k
    neighbours, the densest regime where pruning still matters."""
    diff = points[:, None, :] - points[None, :, :]
    full = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    np.fill_diagonal(full, np.inf)
    return float(np.median(np.partition(full, k - 1, axis=1)[:, k - 1]))


@pytest.mark.paper_experiment("join_shapes")
def test_join_shapes():
    rng = np.random.default_rng(EXPERIMENT_SEED)
    points = gaussian_mixture(N, DIM, rng)
    # Queries live in the same mixture: jittered resamples of the
    # target set, so the asymmetric shapes have non-trivial answers.
    queries = (points[rng.permutation(N)[:N // 3]]
               + rng.normal(scale=0.1, size=(N // 3, DIM)))
    eps = _median_kth_eps(points)

    shapes = []

    ti = self_range_join(points, eps, np.random.default_rng(2))
    dense = brute_range_join(points, points, eps, skip_self=True)
    assert ti.matches(dense)
    shapes.append(("self-join-eps", ti, dense))

    ti = range_join(queries, points, eps, np.random.default_rng(2))
    dense = brute_range_join(queries, points, eps)
    assert ti.matches(dense)
    shapes.append(("range-join", ti, dense))

    ti = reverse_knn_join(queries, points, K, np.random.default_rng(2))
    dense = brute_reverse_knn(queries, points, K)
    assert ti.matches(dense)
    shapes.append(("rknn", ti, dense))

    rows, payload = [], {"n": N, "dim": DIM, "k": K, "eps": eps,
                         "shapes": {}}
    for name, ti, dense in shapes:
        ti_l2 = ti.stats.level2_distance_computations
        dense_l2 = dense.stats.level2_distance_computations
        # The gate: the factored predicate core must prune on
        # clusterable data, for every join shape.
        assert ti_l2 < dense_l2, name
        saved = 1.0 - ti_l2 / dense_l2
        rows.append((name, ti.n_pairs, ti_l2, dense_l2, 100.0 * saved))
        payload["shapes"][name] = {
            "pairs": int(ti.n_pairs),
            "ti_level2_distances": int(ti_l2),
            "dense_level2_distances": int(dense_l2),
            "saved_fraction": saved,
        }

    emit_json("join_shapes", payload)
    emit("join_shapes", format_table(
        "Extension - TI pruning across predicate-join shapes "
        "(gaussian mixture, n=%d, dim=%d)" % (N, DIM),
        ["shape", "pairs", "TI level-2", "dense level-2", "saved %"],
        rows,
        notes=["eps = median %d-th NN distance = %.4f" % (K, eps),
               "Every shape's pair set checked exact vs brute force."]))
