"""Figure 12 — sensitivity to threads per query point.

Reproduces: Sweet KNN speedup on the small-|Q| datasets (arcene, dor)
when the number of threads working on each query is forced across
{2..256}, versus the adaptive scheme's own choice (~66 for arcene,
~4 for dor on the K20c).

Expected shape (paper): performance rises with threads per query while
parallelism is scarce, peaks around the adaptive choice, then falls as
merge overhead grows and per-thread filtering weakens.
"""

import pytest

from repro.bench import paper, run_method
from repro.bench.figures import series_chart
from repro.bench.reporting import emit, format_table

DATASETS = ["arcene", "dor"]
TPQ_VALUES = paper.FIG12_TPQ_PEAK["tpq_values"]
K = 20

_speedups = {}
_adaptive = {}


@pytest.mark.paper_experiment("fig12")
@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("tpq", TPQ_VALUES)
def test_fig12_point(benchmark, dataset, tpq):
    base = run_method(dataset, "cublas", K)

    def run_sweet():
        return run_method(dataset, "sweet", K, threads_per_query=tpq)

    sweet = benchmark.pedantic(run_sweet, rounds=1, iterations=1)
    speedup = base.sim_time_s / sweet.sim_time_s
    _speedups[(dataset, tpq)] = speedup
    benchmark.extra_info["speedup"] = round(speedup, 3)


@pytest.mark.paper_experiment("fig12")
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig12_adaptive_choice(benchmark, dataset):
    """Record what the adaptive scheme itself picks (the paper's
    66-for-arcene / 4-for-dor calculation)."""
    def run_adaptive():
        return run_method(dataset, "sweet", K)

    sweet = benchmark.pedantic(run_adaptive, rounds=1, iterations=1)
    base = run_method(dataset, "cublas", K)
    _adaptive[dataset] = (sweet.decisions["threads_per_query"],
                          base.sim_time_s / sweet.sim_time_s)
    expected = paper.FIG12_TPQ_PEAK["%s_adaptive_choice" % dataset]
    chosen = sweet.decisions["threads_per_query"]
    # The r*max_cur/|Q| rule lands near the paper's worked examples.
    assert 0.4 * expected <= chosen <= 2.5 * expected
    if (len(_adaptive) == len(DATASETS)
            and len(_speedups) == len(DATASETS) * len(TPQ_VALUES)):
        _emit_table()


def _emit_table():
    rows = []
    for dataset in DATASETS:
        row = [dataset] + [_speedups.get((dataset, t))
                           for t in TPQ_VALUES]
        chosen, spd = _adaptive.get(dataset, (None, None))
        row.extend([chosen, spd,
                    paper.FIG12_TPQ_PEAK["%s_adaptive_choice" % dataset]])
        rows.append(row)
    text = format_table(
        "Figure 12 - Sweet KNN speedup vs threads per query (k=20)",
        (["dataset"] + ["tpq=%d" % t for t in TPQ_VALUES]
         + ["adaptive tpq", "adaptive spd(x)", "paper choice"]),
        rows)
    charts = [series_chart(
        "Fig. 12 (shape) - %s: speedup vs threads per query "
        "(adaptive: %s)" % (dataset, _adaptive.get(dataset, ("?",))[0]),
        ["tpq=%d" % t for t in TPQ_VALUES],
        [_speedups.get((dataset, t)) for t in TPQ_VALUES])
        for dataset in DATASETS]
    emit("fig12_parallelism", text + "\n" + "\n".join(charts))

    # Shape: the best forced setting sits in the interior of the sweep
    # near the adaptive choice, and the extremes are worse than the
    # peak (the paper's rise-peak-fall curve).
    for dataset in DATASETS:
        series = {t: _speedups[(dataset, t)] for t in TPQ_VALUES
                  if (dataset, t) in _speedups}
        if len(series) == len(TPQ_VALUES):
            best_tpq = max(series, key=series.get)
            assert series[best_tpq] >= series[TPQ_VALUES[-1]]
