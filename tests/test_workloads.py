"""KNN workloads: majority-vote classification and novelty scoring."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.workloads import (knn_classify, majority_vote, novelty_scores)


@pytest.fixture(scope="module")
def labelled_data():
    rng = np.random.default_rng(17)
    centers = rng.normal(scale=5.0, size=(3, 4))
    labels = rng.integers(0, 3, size=200)
    points = centers[labels] + rng.normal(scale=0.4, size=(200, 4))
    return points, labels


class TestMajorityVote:
    def test_plain_majority(self):
        votes = majority_vote([[1, 1, 2], [2, 2, 2], [0, 3, 3]])
        np.testing.assert_array_equal(votes, [1, 2, 3])

    def test_ties_break_toward_smallest_label(self):
        np.testing.assert_array_equal(majority_vote([[2, 1]]), [1])
        np.testing.assert_array_equal(majority_vote([[5, 3, 3, 5]]), [3])

    def test_vote_is_order_independent(self, rng):
        block = rng.integers(0, 4, size=(30, 7))
        shuffled = block.copy()
        for row in shuffled:
            rng.shuffle(row)
        np.testing.assert_array_equal(majority_vote(block),
                                      majority_vote(shuffled))

    def test_string_labels_supported(self):
        votes = majority_vote(np.array([["cat", "dog", "cat"]]))
        assert votes[0] == "cat"

    def test_requires_matrix(self):
        with pytest.raises(ValidationError):
            majority_vote([1, 2, 3])


class TestKNNClassify:
    def test_matches_manual_vote(self, labelled_data):
        points, labels = labelled_data
        queries = points[:40]
        out = knn_classify(queries, points, labels, 5, method="ti-cpu",
                           seed=2)
        expected = majority_vote(labels[out.result.indices])
        np.testing.assert_array_equal(out.labels, expected)

    def test_well_separated_blobs_classify_correctly(self, labelled_data):
        points, labels = labelled_data
        train, test = points[:150], points[150:]
        out = knn_classify(test, train, labels[:150], 7, method="ti-cpu",
                           seed=2)
        assert out.accuracy(labels[150:]) >= 0.95

    def test_accuracy_validates_shape(self, labelled_data):
        points, labels = labelled_data
        out = knn_classify(points[:10], points, labels, 3, method="brute")
        with pytest.raises(ValidationError):
            out.accuracy(labels[:5])

    def test_labels_must_align_with_targets(self, labelled_data):
        points, labels = labelled_data
        with pytest.raises(ValidationError):
            knn_classify(points[:10], points, labels[:-1], 3,
                         method="brute")

    def test_rejects_range_engines(self, labelled_data):
        points, labels = labelled_data
        with pytest.raises(ValidationError, match="variable-cardinality"):
            knn_classify(points[:10], points, labels, 3,
                         method="self-join-eps")


class TestNoveltyScores:
    def test_scores_are_mean_neighbour_distances(self, labelled_data):
        points, _ = labelled_data
        out = novelty_scores(points[:30], points, 4, method="ti-cpu",
                             seed=2)
        np.testing.assert_array_equal(
            out.scores, out.result.distances.mean(axis=1))

    def test_outliers_score_above_inliers(self, labelled_data):
        points, _ = labelled_data
        span = np.abs(points).max()
        outliers = np.full((5, points.shape[1]), span * 10.0)
        out = novelty_scores(np.vstack([points[:20], outliers]), points,
                             4, method="brute")
        assert out.scores[20:].min() > out.scores[:20].max()

    def test_rejects_range_engines(self, labelled_data):
        points, _ = labelled_data
        with pytest.raises(ValidationError, match="variable-cardinality"):
            novelty_scores(points[:10], points, 3, method="rknn")
