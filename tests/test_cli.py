"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.method == "sweet"
        assert args.k == 20

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--method", "magic"])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "mnist"])

    def test_compare_methods_default(self):
        args = build_parser().parse_args(["compare"])
        assert args.methods == ["cublas", "ti-gpu", "sweet"]

    def test_compare_methods_custom_list(self):
        args = build_parser().parse_args(
            ["compare", "--methods", "brute,ti-cpu,sweet"])
        assert args.methods == ["brute", "ti-cpu", "sweet"]

    def test_compare_methods_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--methods",
                                       "sweet,magic"])


class TestCommands:
    def test_datasets_lists_all_nine(self):
        code, text = _run(["datasets"])
        assert code == 0
        for name in ("3dnet", "kegg", "arcene", "blog"):
            assert name in text

    def test_run_synthetic(self):
        code, text = _run(["run", "--n", "300", "--dim", "8", "-k", "5"])
        assert code == 0
        assert "sweet-knn" in text
        assert "saved" in text

    def test_run_with_check(self):
        code, text = _run(["run", "--n", "200", "--dim", "6", "-k", "4",
                           "--check"])
        assert code == 0
        assert "exact vs brute force: True" in text

    def test_run_cpu_method(self):
        code, text = _run(["run", "--n", "200", "--dim", "6", "-k", "4",
                           "--method", "ti-cpu"])
        assert code == 0
        assert "ti-knn-cpu" in text

    def test_compare_table(self):
        code, text = _run(["compare", "--n", "400", "--dim", "8",
                           "-k", "5"])
        assert code == 0
        assert "cublas baseline" in text
        assert "Sweet KNN" in text
        assert "speedup" in text
        assert "WARNING" not in text

    def test_compare_custom_methods_and_baseline(self):
        code, text = _run(["compare", "--n", "300", "--dim", "6",
                           "-k", "4", "--methods", "brute,ti-cpu"])
        assert code == 0
        assert "brute" in text
        assert "ti-cpu" in text
        assert "cublas baseline" not in text
        assert "WARNING" not in text

    def test_serve_bench(self):
        code, text = _run(["serve-bench", "--n", "300", "--dim", "6",
                           "-k", "5", "--requests", "60", "--check"])
        assert code == 0
        assert "60 served / 0 rejected / 0 expired" in text
        assert "index-cache hit rate %" in text
        assert "latency p99 ms" in text
        assert "exact-routed answers equal direct knn_join: True" in text

    def test_adaptive_partial_regime(self):
        code, text = _run(["adaptive", "--n", "500", "--dim", "4",
                           "-k", "64"])
        assert code == 0
        assert "partial level-2 filtering" in text

    def test_adaptive_full_regime(self):
        code, text = _run(["adaptive", "--n", "500", "--dim", "32",
                           "-k", "8"])
        assert code == 0
        assert "full level-2 filtering" in text

    def test_plan_command(self):
        code, text = _run(["plan", "--n", "400", "--dim", "8", "-k", "6"])
        assert code == 0
        assert "execution plan" in text
        for key in ("method", "mq", "mt", "query_batches", "filter"):
            assert key in text

    def test_plan_host_engine(self):
        code, text = _run(["plan", "--n", "200", "--dim", "4", "-k", "3",
                           "--method", "brute"])
        assert code == 0
        assert "brute" in text

    def test_run_forced_batch_size(self):
        code, text = _run(["run", "--n", "250", "--dim", "6", "-k", "4",
                           "--query-batch-size", "60", "--check"])
        assert code == 0
        assert "exact vs brute force: True" in text
        assert "'query_batches': 5" in text


class TestTraceCommand:
    def test_traced_run_writes_valid_chrome_trace(self, tmp_path):
        import json

        trace_path = tmp_path / "trace.json"
        events_path = tmp_path / "events.jsonl"
        code, text = _run(["trace", "--trace-out", str(trace_path),
                           "--events-out", str(events_path),
                           "--check-funnel",
                           "run", "--n", "300", "--dim", "8", "-k", "5"])
        assert code == 0
        assert "filtering funnel" in text
        assert "funnel invariant holds" in text
        events = json.load(open(trace_path))["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] in ("X", "M", "i")
            assert "pid" in event and "tid" in event
        names = {event["name"] for event in events}
        assert "engine.execute" in names
        assert sum(1 for _ in open(events_path)) > 1

    def test_trace_without_command_errors(self, tmp_path):
        code, text = _run(["trace", "--trace-out",
                           str(tmp_path / "t.json")])
        assert code == 2
        assert "trace needs a command" in text

    def test_traced_serve_bench_includes_request_spans(self, tmp_path):
        import json

        trace_path = tmp_path / "serve.json"
        code, text = _run(["trace", "--trace-out", str(trace_path),
                           "serve-bench", "--n", "300", "--dim", "6",
                           "-k", "5", "--requests", "20"])
        assert code == 0
        names = {event["name"]
                 for event in json.load(open(trace_path))["traceEvents"]}
        assert {"serve.request", "serve.queue", "serve.batch"} <= names


class TestRangeMethodsCLI:
    def test_eps_is_parsed(self):
        args = build_parser().parse_args(
            ["run", "--method", "range-join", "--eps", "1.5"])
        assert args.eps == 1.5

    def test_missing_eps_exits_with_guidance(self):
        code, text = _run(["run", "--n", "200", "--dim", "6",
                           "--method", "range-join"])
        assert code == 2
        assert "needs --eps" in text

    def test_extraneous_eps_is_rejected(self):
        code, text = _run(["run", "--n", "200", "--dim", "6",
                           "--method", "sweet", "--eps", "1.0"])
        assert code == 2
        assert "--eps" in text

    def test_self_join_checked_against_brute(self):
        code, text = _run(["run", "--n", "250", "--dim", "6",
                           "--method", "self-join-eps", "--eps", "1.5",
                           "--check"])
        assert code == 0
        assert "accepted pairs:" in text
        assert "exact vs brute force: True" in text

    def test_rknn_checked_against_brute(self):
        code, text = _run(["run", "--n", "250", "--dim", "6",
                           "--method", "rknn", "-k", "4", "--check"])
        assert code == 0
        assert "exact vs brute force: True" in text

    def test_range_method_refuses_index_dir(self, tmp_path):
        code, text = _run(["run", "--method", "range-join", "--eps", "1.0",
                           "--index-dir", str(tmp_path / "missing")])
        assert code == 2
        assert "prepared index" in text or "--index-dir" in text

    def test_compare_range_against_brute_baseline(self):
        code, text = _run(["compare", "--n", "250", "--dim", "6",
                           "--methods", "range-join-brute,range-join",
                           "--eps", "1.5"])
        assert code == 0
        assert "range-join" in text
        assert "WARNING" not in text

    def test_plan_validates_eps(self):
        code, text = _run(["plan", "--n", "200", "--dim", "6",
                           "--method", "range-join"])
        assert code == 2
        assert "needs --eps" in text


class TestWorkloadCommands:
    def test_classify_reports_held_out_accuracy(self):
        code, text = _run(["classify", "--n", "400", "--dim", "6",
                           "-k", "5"])
        assert code == 0
        assert "held-out accuracy:" in text

    def test_classify_validates_train_frac(self):
        code, text = _run(["classify", "--n", "200", "--dim", "4",
                           "--train-frac", "1.5"])
        assert code == 2

    def test_novelty_separates_planted_outliers(self):
        code, text = _run(["novelty", "--n", "400", "--dim", "6",
                           "-k", "5"])
        assert code == 0
        assert "outliers above every inlier score:" in text


class TestGraphCLI:
    @pytest.fixture
    def index_dir(self, tmp_path):
        path = tmp_path / "idx"
        code, _ = _run(["index", "build", "--n", "400", "--dim", "8",
                        "--seed", "5", "--out", str(path)])
        assert code == 0
        return path

    @pytest.fixture
    def graph_dir(self, index_dir):
        code, text = _run(["graph", "build", "--index-dir",
                           str(index_dir), "-k", "5",
                           "--sample", "64", "--n-probe", "32"])
        assert code == 0
        assert "built graph" in text
        assert "recall@5 curve" in text
        return index_dir

    def test_build_and_inspect(self, graph_dir):
        code, text = _run(["graph", "inspect", str(graph_dir)])
        assert code == 0
        for needle in ("fingerprint", "graph_k", "iteration_updates",
                       "recall curve", "node_ids"):
            assert needle in text

    def test_inspect_without_artifact_guides(self, index_dir):
        code, text = _run(["graph", "inspect", str(index_dir)])
        assert code == 2
        assert "graph build --index-dir" in text

    def test_run_graph_engine(self, graph_dir):
        code, text = _run(["run", "--index-dir", str(graph_dir),
                           "--method", "graph-bfs", "--n", "100",
                           "--seed", "5", "-k", "5", "--check"])
        assert code == 0
        assert "graph walk" in text
        assert "approximate graph route: ef=" in text
        assert "measured recall@5 vs brute force:" in text

    def test_run_with_recall_target_uses_calibrated_ef(self, graph_dir):
        code, text = _run(["run", "--index-dir", str(graph_dir),
                           "--method", "graph-bfs", "--n", "60",
                           "-k", "5", "--recall-target", "0.9"])
        assert code == 0
        assert "recall target 0.90" in text

    def test_missing_index_dir_guides(self):
        code, text = _run(["run", "--n", "100", "--dim", "8",
                           "--method", "graph-bfs", "-k", "5"])
        assert code == 2
        assert "graph build" in text

    def test_missing_artifact_guides(self, index_dir):
        code, text = _run(["run", "--index-dir", str(index_dir),
                           "--method", "graph-bfs", "--n", "100",
                           "-k", "5"])
        assert code == 2
        assert "has no graph artifact" in text
        assert "graph build --index-dir" in text

    def test_recall_target_rejected_for_exact_methods(self):
        code, text = _run(["run", "--n", "100", "--dim", "8",
                           "--method", "sweet", "--recall-target",
                           "0.9"])
        assert code == 2
        assert "--recall-target only applies to" in text

    def test_recall_target_validated(self):
        code, text = _run(["run", "--n", "100", "--dim", "8",
                           "--method", "graph-bfs", "--recall-target",
                           "1.5"])
        assert code == 2
        assert "(0, 1]" in text

    def test_compare_prints_recall_note(self):
        code, text = _run(["compare", "--n", "300", "--dim", "8",
                           "-k", "5", "--recall-target", "0.9",
                           "--methods", "brute,graph-bfs"])
        assert code == 0
        assert "NOTE: graph-bfs is approximate" in text
        assert "measured recall@5" in text
        assert "WARNING" not in text

    def test_compare_requires_recall_target(self):
        code, text = _run(["compare", "--n", "300", "--dim", "8",
                           "-k", "5", "--methods", "brute,graph-bfs"])
        assert code == 2
        assert "needs --recall-target" in text

    def test_serve_bench_recall_mix(self, graph_dir):
        code, text = _run(["serve-bench", "--index-dir", str(graph_dir),
                           "--n", "400", "--dim", "8", "--seed", "5",
                           "--requests", "40", "-k", "5",
                           "--recall-target", "0.9", "--check"])
        assert code == 0
        assert "recall mix: every 2. request" in text
        assert "served approx route" in text
        assert "exact-routed answers equal direct knn_join: True" in text
        assert "approx-routed measured recall@5:" in text

    def test_serve_bench_recall_needs_artifact(self, index_dir):
        code, text = _run(["serve-bench", "--index-dir", str(index_dir),
                           "--n", "400", "--dim", "8",
                           "--recall-target", "0.9"])
        assert code == 2
        assert "has no graph artifact" in text

    def test_serve_bench_recall_needs_index_dir(self):
        code, text = _run(["serve-bench", "--n", "200", "--dim", "8",
                           "--recall-target", "0.9"])
        assert code == 2
        assert "--index-dir" in text


class TestExplainCommand:
    def test_explain_renders_audit_table(self):
        code, text = _run(["explain", "--n", "300", "--dim", "6",
                           "-k", "5"])
        assert code == 0
        assert "query audit" in text
        assert "funnel.candidates" in text
        assert "plan.workers" in text
        assert "span.engine.execute" in text

    def test_explain_json_writes_audit_record(self, tmp_path):
        import json

        path = tmp_path / "audit.jsonl"
        code, text = _run(["explain", "--n", "300", "--dim", "6",
                           "-k", "5", "--json", str(path)])
        assert code == 0
        (record,) = [json.loads(line)
                     for line in path.read_text().splitlines()]
        assert record["type"] == "query_audit"
        assert record["k"] == 5
        assert record["funnel"]["candidates"] > 0

    def test_explain_sharded_lists_shards(self):
        code, text = _run(["explain", "--n", "300", "--dim", "6",
                           "-k", "5", "--method", "ti-cpu",
                           "--workers", "2", "--pool", "thread"])
        assert code == 0
        assert "shard 0" in text


class TestBenchGateCommand:
    @pytest.fixture
    def results_dir(self, tmp_path):
        import json

        payload = {"dataset": "synthetic", "n": 500,
                   "query_time_s": 0.2, "speedup": 3.0}
        (tmp_path / "BENCH_demo.json").write_text(json.dumps(payload))
        return tmp_path

    def test_gate_without_trajectory_exits_2(self, results_dir):
        code, text = _run(["bench-gate", "--results-dir",
                           str(results_dir)])
        assert code == 2
        assert "--ingest" in text

    def test_ingest_then_repeat_gate_passes(self, results_dir):
        code, text = _run(["bench-gate", "--results-dir",
                           str(results_dir), "--ingest"])
        assert code == 0
        assert "ingested" in text
        assert (results_dir / "TRAJECTORY.jsonl").exists()
        code, text = _run(["bench-gate", "--results-dir",
                           str(results_dir)])
        assert code == 0
        assert "ok=2" in text

    def test_2x_slowdown_gates_nonzero(self, results_dir):
        import json

        _run(["bench-gate", "--results-dir", str(results_dir),
              "--ingest"])
        slow = {"dataset": "synthetic", "n": 500,
                "query_time_s": 0.4, "speedup": 3.0}
        candidate = results_dir / "BENCH_demo.json"
        candidate.write_text(json.dumps(slow))
        code, text = _run(["bench-gate", "--results-dir",
                           str(results_dir)])
        assert code == 1
        assert "regression" in text
        assert "query_time_s" in text
        assert "2.00x" in text

    def test_committed_trajectory_self_gates_clean(self):
        """The repo's own BENCH payloads pass against the committed
        trajectory (the CI bench-gate contract)."""
        code, text = _run(["bench-gate"])
        assert code == 0
        assert "no regressions" in text


class TestObsReportCommand:
    @pytest.fixture
    def events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        code, _ = _run(["trace", "--events-out", str(path),
                        "run", "--n", "300", "--dim", "6", "-k", "5"])
        assert code == 0
        return path

    def test_report_renders_spans_funnel_metrics(self, events):
        code, text = _run(["obs", "report", "--events", str(events)])
        assert code == 0
        assert "span timings" in text
        assert "filtering funnel" in text
        assert "engine.execute" in text

    def test_report_evaluates_slos_ok(self, events):
        code, text = _run(["obs", "report", "--events", str(events),
                           "--slo", "funnel_efficiency=0.1"])
        assert code == 0
        assert "funnel_efficiency >= 0.1" in text
        assert "OK" in text

    def test_report_slo_breach_exits_nonzero(self, events):
        code, text = _run(["obs", "report", "--events", str(events),
                           "--slo", "funnel_efficiency=0.9999"])
        assert code == 1
        assert "BREACH" in text

    def test_report_rejects_unknown_slo(self, events):
        code, text = _run(["obs", "report", "--events", str(events),
                           "--slo", "p9000=1"])
        assert code == 2
        assert "unknown SLO" in text

    def test_report_missing_file_exits_2(self, tmp_path):
        code, text = _run(["obs", "report", "--events",
                           str(tmp_path / "absent.jsonl")])
        assert code == 2


class TestServeBenchSlo:
    def test_slo_holds_exits_zero(self):
        code, text = _run(["serve-bench", "--n", "300", "--dim", "6",
                           "-k", "5", "--requests", "20",
                           "--slo", "p99_latency_s=30"])
        assert code == 0
        assert "SLO objective(s) hold" in text

    def test_slo_breach_exits_nonzero(self):
        code, text = _run(["serve-bench", "--n", "300", "--dim", "6",
                           "-k", "5", "--requests", "20",
                           "--slo", "p99_latency_s=1e-9"])
        assert code == 1
        assert "SLO BREACH" in text
        assert "p99_latency_s" in text

    def test_rejects_malformed_slo(self):
        code, text = _run(["serve-bench", "--n", "200", "--dim", "6",
                           "--slo", "latency"])
        assert code == 2
