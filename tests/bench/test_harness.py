"""Tests for the benchmark harness and reporting."""

import pytest

from repro.bench import (clear_cache, paper, run_method,
                         speedup_over_baseline)
from repro.bench.reporting import format_table


class TestHarness:
    def test_run_method_caches(self):
        clear_cache()
        first = run_method("keggd", "sweet", 4)
        second = run_method("keggd", "sweet", 4)
        assert first is second

    def test_distinct_options_not_conflated(self):
        clear_cache()
        default = run_method("keggd", "sweet", 4)
        remapped_off = run_method("keggd", "sweet", 4, remap=False)
        assert default is not remapped_off
        assert default.decisions["remap"] is True
        assert remapped_off.decisions["remap"] is False

    def test_record_fields(self):
        record = run_method("keggd", "sweet", 4)
        assert record.dataset == "keggd"
        assert record.sim_time_s > 0
        assert record.wall_time_s >= 0
        assert 0 <= record.saved_fraction <= 1
        assert 0 < record.warp_efficiency <= 1
        assert record.result.stats.k == 4

    def test_speedup_over_baseline(self):
        speedup = speedup_over_baseline("keggd", "sweet", 4)
        assert speedup > 0

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            run_method("keggd", "fft", 4)

    def test_methods_agree_on_dataset(self):
        sweet = run_method("keggd", "sweet", 4)
        base = run_method("keggd", "cublas", 4)
        assert sweet.result.matches(base.result)

    def test_wall_time_split(self):
        record = run_method("keggd", "sweet", 4)
        assert record.prepare_time_s > 0      # clusters the target set
        assert record.query_time_s > 0
        assert record.wall_time_s == pytest.approx(
            record.prepare_time_s + record.query_time_s)

    def test_no_prepare_phase_for_brute_baseline(self):
        record = run_method("keggd", "cublas", 4)
        assert record.prepare_time_s == 0.0
        assert record.wall_time_s == pytest.approx(record.query_time_s)


class TestPaperValues:
    def test_every_dataset_has_fig9_and_table4(self):
        for name in paper.DATASET_ORDER:
            assert name in paper.FIG9_SPEEDUPS
            assert name in paper.TABLE4_PROFILE

    def test_table5_covers_kd_ratio_datasets(self):
        # k=512: the k/d>8 datasets of Table V.
        assert set(paper.TABLE5_FILTER_STRENGTH) == {
            "3dnet", "kegg", "keggd", "ipums", "skin", "kdd"}

    def test_headline_numbers(self):
        assert paper.FIG9_SPEEDUPS["3dnet"][1] == 44.0
        assert paper.FIG10_K_SWEEPS["3dnet"][0] == 120.0  # the 120x claim
        assert paper.FIG10_K_SWEEPS["arcene"][-1] is None  # no k=512


class TestReporting:
    def test_format_alignment(self):
        text = format_table("T", ["a", "bb"], [["x", 1.0], ["yy", 22.5]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "22.50" in text

    def test_none_renders_dash(self):
        text = format_table("T", ["a"], [[None]])
        assert "-" in text.splitlines()[-1]

    def test_notes_appended(self):
        text = format_table("T", ["a"], [["x"]], notes=["footnote"])
        assert text.rstrip().endswith("footnote")

    def test_float_formats(self):
        text = format_table("T", ["v"], [[0.1234], [12.3], [1234.5]])
        assert "0.123" in text
        assert "12.30" in text
        assert "1234" in text
