"""Tests for the ASCII figure renderer."""

from repro.bench.figures import bar_chart, grouped_bar_chart, series_chart


class TestBarChart:
    def test_longest_bar_is_max(self):
        text = bar_chart("T", ["a", "bb"], [1.0, 4.0])
        lines = text.splitlines()
        assert lines[2].count("#") < lines[3].count("#")
        assert "4.00x" in lines[3]

    def test_none_renders_na(self):
        text = bar_chart("T", ["a"], [None])
        assert "(n/a)" in text

    def test_small_nonzero_gets_a_bar(self):
        text = bar_chart("T", ["a", "b"], [0.001, 100.0])
        assert "#" in text.splitlines()[2]

    def test_unit(self):
        assert "ms" in bar_chart("T", ["a"], [2.0], unit="ms")


class TestGroupedBarChart:
    def test_series_names_shown(self):
        text = grouped_bar_chart("T", ["d1"], {"TI": [1.0], "Sweet": [3.0]})
        assert "TI" in text and "Sweet" in text

    def test_alignment_across_groups(self):
        text = grouped_bar_chart("T", ["d1", "d2"],
                                 {"A": [1.0, 2.0], "B": [2.0, 4.0]})
        # The global maximum (4.0) owns the longest bar.
        bars = [line.count("#") for line in text.splitlines()]
        assert max(bars) == bars[-1] or max(bars) > 0


class TestSeriesChart:
    def test_peak_marked(self):
        text = series_chart("T", [1, 8, 20], [2.0, 5.0, 3.0])
        lines = text.splitlines()
        assert "<- peak" in lines[3]
        assert "<- peak" not in lines[2]

    def test_none_in_sweep(self):
        text = series_chart("T", [1, 512], [2.0, None])
        assert "(n/a)" in text

    def test_no_peak_marking(self):
        text = series_chart("T", [1, 2], [1.0, 2.0], mark_peak=False)
        assert "peak" not in text
