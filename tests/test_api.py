"""Tests for the public API (knn_join, SweetKNN, KNNResult)."""

import numpy as np
import pytest

from repro import METHODS, SweetKNN, knn_join
from repro.core.result import JoinStats, KNNResult
from repro.engine import get_engine
from repro.errors import ValidationError

#: The engines knn_join can answer a fixed-k query with; the range
#: predicates (result_kind="range") and the approximate graph walks
#: have their own suites (exactness cannot be asserted for the latter),
#: and engines whose optional dependency is missing (the numba kernel
#: tier on a no-numba install) are exercised by the availability tests.
FIXED_K_METHODS = [m for m in METHODS.available()
                   if get_engine(m).caps.result_kind == "knn"
                   and not get_engine(m).caps.approximate]


class TestKnnJoin:
    @pytest.mark.parametrize("method", FIXED_K_METHODS)
    def test_all_methods_agree(self, clustered_points, method):
        ref = knn_join(clustered_points, clustered_points, 6,
                       method="brute")
        res = knn_join(clustered_points, clustered_points, 6, method=method)
        assert res.matches(ref)

    def test_default_method_is_sweet(self, clustered_points):
        res = knn_join(clustered_points, clustered_points, 4)
        assert res.method == "sweet-knn"

    def test_unknown_method(self, clustered_points):
        with pytest.raises(ValidationError):
            knn_join(clustered_points, clustered_points, 4, method="magic")

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValidationError):
            knn_join(rng.normal(size=(10, 3)), rng.normal(size=(10, 4)), 2)

    def test_non_2d_input(self, rng):
        with pytest.raises(ValidationError):
            knn_join(rng.normal(size=10), rng.normal(size=(10, 2)), 2)

    def test_empty_input(self):
        with pytest.raises(ValidationError):
            knn_join(np.empty((0, 3)), np.empty((5, 3)), 1)

    def test_k_too_large(self, rng):
        points = rng.normal(size=(10, 2))
        with pytest.raises(ValidationError):
            knn_join(points, points, 11)

    def test_k_nonpositive(self, rng):
        points = rng.normal(size=(10, 2))
        with pytest.raises(ValidationError):
            knn_join(points, points, 0)

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_rejects_non_finite_queries(self, rng, bad):
        queries = rng.normal(size=(10, 3))
        targets = rng.normal(size=(10, 3))
        queries[4, 1] = bad
        with pytest.raises(ValidationError, match="queries contain"):
            knn_join(queries, targets, 2)

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_rejects_non_finite_targets(self, rng, bad):
        queries = rng.normal(size=(10, 3))
        targets = rng.normal(size=(10, 3))
        targets[0, 0] = bad
        with pytest.raises(ValidationError, match="targets contain"):
            knn_join(queries, targets, 2)

    def test_options_forwarded(self, clustered_points):
        res = knn_join(clustered_points, clustered_points, 4,
                       method="sweet", threads_per_query=4)
        assert res.stats.extra["threads_per_query"] == 4

    def test_gpu_methods_report_sim_time(self, clustered_points):
        for method in ("sweet", "ti-gpu", "cublas"):
            res = knn_join(clustered_points, clustered_points, 4,
                           method=method)
            assert res.sim_time_s > 0
        assert knn_join(clustered_points, clustered_points, 4,
                        method="brute").sim_time_s is None

    def test_seed_controls_landmarks(self, clustered_points):
        a = knn_join(clustered_points, clustered_points, 4, seed=1)
        b = knn_join(clustered_points, clustered_points, 4, seed=1)
        c = knn_join(clustered_points, clustered_points, 4, seed=2)
        assert a.sim_time_s == b.sim_time_s
        assert a.matches(c)  # result exact regardless of landmarks


class TestSweetKNNIndex:
    def test_query(self, clustered_points, rng):
        index = SweetKNN(clustered_points)
        queries = rng.normal(size=(20, clustered_points.shape[1]))
        ref = knn_join(queries, clustered_points, 5, method="brute")
        res = index.query(queries, 5)
        assert res.matches(ref)

    def test_query_one(self, clustered_points, rng):
        index = SweetKNN(clustered_points)
        point = rng.normal(size=clustered_points.shape[1])
        neighbours = index.query_one(point, 5)
        assert neighbours.distances.shape == (5,)
        assert neighbours.indices.shape == (5,)
        assert neighbours.k == 5
        batch = index.query(point[np.newaxis, :], 5)
        assert np.array_equal(neighbours.indices, batch.indices[0])
        assert np.array_equal(neighbours.distances, batch.distances[0])

    def test_query_one_rejects_batch_input(self, clustered_points, rng):
        index = SweetKNN(clustered_points)
        with pytest.raises(ValidationError):
            index.query_one(rng.normal(size=(2, clustered_points.shape[1])),
                            3)

    def test_self_join(self, clustered_points):
        index = SweetKNN(clustered_points)
        res = index.self_join(3)
        np.testing.assert_allclose(res.distances[:, 0], 0.0, atol=1e-12)

    def test_invalid_targets(self):
        with pytest.raises(ValidationError):
            SweetKNN(np.empty((0, 4)))

    def test_non_finite_targets(self, rng):
        targets = rng.normal(size=(20, 4))
        targets[3, 2] = np.nan
        with pytest.raises(ValidationError):
            SweetKNN(targets)


class TestKNNResult:
    def test_pack_pads_short_rows(self):
        rows = [(np.asarray([1.0]), np.asarray([3]))]
        distances, indices = KNNResult.pack(rows, 3)
        assert distances.shape == (1, 3)
        assert np.isinf(distances[0, 1:]).all()
        assert (indices[0, 1:] == -1).all()

    def test_matches_tolerance(self):
        stats = JoinStats()
        a = KNNResult(np.asarray([[1.0, 2.0]]), np.asarray([[0, 1]]), stats)
        b = KNNResult(np.asarray([[1.0, 2.0 + 5e-5]]),
                      np.asarray([[0, 9]]), stats)
        assert a.matches(b)          # indices may differ, distances close
        c = KNNResult(np.asarray([[1.0, 2.5]]), np.asarray([[0, 1]]), stats)
        assert not a.matches(c)

    def test_saved_fraction(self):
        stats = JoinStats(n_queries=10, n_targets=10,
                          level2_distance_computations=25)
        assert stats.saved_fraction == pytest.approx(0.75)

    def test_summary_keys(self):
        stats = JoinStats(n_queries=2, n_targets=3, k=1, dim=4)
        summary = stats.summary()
        assert summary["|Q|"] == 2
        assert "saved_fraction" in summary
