"""End-to-end property tests: exactness on arbitrary inputs.

The single most important invariant of the whole system: every TI
engine returns exactly the brute-force neighbours, whatever the input
geometry — duplicates, collinear points, degenerate clusters, constant
dimensions, extreme scales.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import knn_join

_points = hnp.arrays(
    np.float64,
    st.tuples(st.integers(10, 60), st.integers(1, 6)),
    elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False))


@given(points=_points, k=st.integers(1, 8),
       method=st.sampled_from(["sweet", "ti-gpu", "ti-cpu"]))
@settings(max_examples=60, deadline=None)
def test_ti_engines_exact_on_arbitrary_inputs(points, k, method):
    k = min(k, points.shape[0])
    oracle = knn_join(points, points, k, method="brute")
    result = knn_join(points, points, k, method=method, seed=0)
    np.testing.assert_allclose(result.distances, oracle.distances,
                               atol=1e-7)


@given(points=_points, k=st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_sweet_partial_filter_exact_on_arbitrary_inputs(points, k):
    k = min(k, points.shape[0])
    oracle = knn_join(points, points, k, method="brute")
    result = knn_join(points, points, k, method="sweet", seed=0,
                      force_filter="partial")
    np.testing.assert_allclose(result.distances, oracle.distances,
                               atol=1e-7)


@given(points=_points, k=st.integers(1, 6),
       tpq=st.sampled_from([2, 4, 6]))
@settings(max_examples=30, deadline=None)
def test_sweet_multithread_exact_on_arbitrary_inputs(points, k, tpq):
    k = min(k, points.shape[0])
    oracle = knn_join(points, points, k, method="brute")
    result = knn_join(points, points, k, method="sweet", seed=0,
                      threads_per_query=tpq)
    np.testing.assert_allclose(result.distances, oracle.distances,
                               atol=1e-7)


@given(queries=_points, k=st.integers(1, 5), seed=st.integers(0, 10))
@settings(max_examples=30, deadline=None)
def test_landmark_seed_never_changes_the_answer(queries, k, seed):
    """Exactness must be independent of landmark randomness."""
    k = min(k, queries.shape[0])
    a = knn_join(queries, queries, k, method="sweet", seed=0)
    b = knn_join(queries, queries, k, method="sweet", seed=seed)
    np.testing.assert_allclose(a.distances, b.distances, atol=1e-9)


@given(scale=st.floats(min_value=1e-6, max_value=1e6, allow_nan=False))
@settings(max_examples=25, deadline=None)
def test_scale_invariance_of_filtering(scale):
    """Rescaling the data rescales distances but not neighbours or
    the number of computed distances (TI bounds are homogeneous)."""
    rng = np.random.default_rng(0)
    base = rng.normal(size=(80, 4))
    a = knn_join(base, base, 5, method="sweet", seed=0)
    b = knn_join(base * scale, base * scale, 5, method="sweet", seed=0)
    np.testing.assert_array_equal(
        np.sort(a.indices, axis=1), np.sort(b.indices, axis=1))
    assert (a.stats.level2_distance_computations
            == b.stats.level2_distance_computations)
