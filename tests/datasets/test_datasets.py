"""Tests for the dataset stand-ins and generators."""

import numpy as np
import pytest

from repro.datasets import DATASETS, load, names
from repro.datasets import synthetic
from repro.errors import DatasetError


class TestRegistry:
    def test_nine_datasets_in_paper_order(self):
        assert names() == ["3dnet", "kegg", "keggd", "ipums", "skin",
                           "arcene", "kdd", "dor", "blog"]
        assert set(names()) == set(DATASETS)

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load("mnist")

    def test_load_is_case_insensitive(self):
        _, spec = load("KEGG")
        assert spec.name == "kegg"

    @pytest.mark.parametrize("name", names())
    def test_shapes_and_determinism(self, name):
        spec = DATASETS[name]
        points = spec.generate()
        assert points.shape == (spec.n, spec.dim)
        assert points.dtype == np.float64
        assert np.isfinite(points).all()
        again = spec.generate()
        np.testing.assert_array_equal(points, again)

    @pytest.mark.parametrize("name", names())
    def test_paper_dimensions_kept(self, name):
        """Dimensions match Table III verbatim, except the documented
        dorothea substitution."""
        spec = DATASETS[name]
        if name == "dor":
            assert spec.paper_dim == 100000 and spec.dim == 2000
        else:
            assert spec.dim == spec.paper_dim

    @pytest.mark.parametrize("name", names())
    def test_cardinality_scales(self, name):
        spec = DATASETS[name]
        assert spec.n <= spec.paper_n
        assert spec.scale >= 1.0
        if name in ("arcene", "dor"):
            assert spec.n == spec.paper_n  # small enough to keep

    def test_device_memory_partitions_match_paper_regime(self):
        """The baseline must overflow device memory on exactly the
        datasets the paper reports as partitioned."""
        from repro.baselines.cublas_knn import plan_partitions
        partitioned = set()
        for name in names():
            spec = DATASETS[name]
            parts = plan_partitions(spec.n, spec.n, spec.dim,
                                    spec.device())
            if len(parts) > 1:
                partitioned.add(name)
        assert {"3dnet", "skin", "ipums", "kdd"} <= partitioned
        assert "arcene" not in partitioned
        assert "dor" not in partitioned

    def test_device_concurrency_scales_with_n(self):
        big = DATASETS["kdd"].device()
        small = DATASETS["arcene"].device()
        assert big.concurrency_scale < small.concurrency_scale
        assert small.concurrency_scale == pytest.approx(1.0)

    def test_points_are_shuffled(self):
        """Consecutive rows must not be cluster-sorted (that would
        hand the basic implementation warp-uniform work for free)."""
        points, _ = load("kegg")
        consecutive = np.linalg.norm(np.diff(points[:200], axis=0), axis=1)
        spread = np.linalg.norm(points[:200] - points[200:400], axis=1)
        # Shuffled data: consecutive gaps look like random-pair gaps.
        assert consecutive.mean() > 0.3 * spread.mean()


class TestGenerators:
    def test_gaussian_mixture_intrinsic_dim(self, rng):
        points = synthetic.gaussian_mixture(500, 40, rng, intrinsic_dim=4)
        # Rank-revealing check: variance concentrates in ~4 directions.
        _, s, _ = np.linalg.svd(points - points.mean(axis=0),
                                full_matrices=False)
        energy = np.cumsum(s ** 2) / np.sum(s ** 2)
        assert energy[5] > 0.95

    def test_road_network_is_locally_linear(self, rng):
        points = synthetic.road_network_3d(600, rng, n_roads=6)
        assert points.shape == (600, 4)

    def test_color_clusters_in_range(self, rng):
        points = synthetic.color_clusters(500, rng)
        assert points.min() >= 0 and points.max() <= 255

    def test_high_dim_weakly_clustered_is_high_rank(self, rng):
        points = synthetic.high_dim_weakly_clustered(
            80, 500, rng, intrinsic_dim=64)
        _, s, _ = np.linalg.svd(points - points.mean(axis=0),
                                full_matrices=False)
        energy = np.cumsum(s ** 2) / np.sum(s ** 2)
        assert energy[5] < 0.5  # not low-rank

    def test_repeated_records_have_duplicated_patterns(self, rng):
        points = synthetic.repeated_records(400, 10, rng, n_patterns=20)
        # Nearest-neighbour distances are tiny inside a pattern.
        d = np.linalg.norm(points[:, None, :] - points[None, :, :], axis=2)
        np.fill_diagonal(d, np.inf)
        assert np.median(d.min(axis=1)) < 0.2

    def test_skewed_features_positive(self, rng):
        points = synthetic.skewed_features(300, 20, rng)
        assert (points > 0).all()

    def test_sparse_high_dim_groups(self, rng):
        points = synthetic.sparse_high_dim(200, 400, rng, n_groups=4)
        assert points.shape == (200, 400)
