"""Tests for the CUBLAS-style baseline and its memory partitioning."""

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_knn
from repro.baselines.cublas_knn import cublas_knn, plan_partitions
from repro.gpu.device import tesla_k20c


class TestPlanPartitions:
    def test_fits_in_one(self):
        dev = tesla_k20c()
        parts = plan_partitions(1000, 1000, 10, dev)
        assert parts == [(0, 1000)]

    def test_splits_when_matrix_too_big(self):
        dev = tesla_k20c(global_mem_bytes=1 << 20)  # 1 MB
        parts = plan_partitions(4000, 4000, 8, dev)
        assert len(parts) > 1
        # Partitions tile the query range exactly.
        assert parts[0][0] == 0
        assert parts[-1][1] == 4000
        for (a, b), (c, d) in zip(parts, parts[1:]):
            assert b == c

    def test_paper_3dnet_regime(self):
        """434874 points, d=4, 5 GB: the paper reports ~175 groups."""
        dev = tesla_k20c()
        parts = plan_partitions(434874, 434874, 4, dev)
        assert 100 <= len(parts) <= 250

    def test_degenerate_tiny_memory(self):
        dev = tesla_k20c(global_mem_bytes=64)
        parts = plan_partitions(10, 10, 2, dev)
        assert len(parts) == 10


class TestCublasKnn:
    def test_matches_brute_force(self, clustered_points):
        ref = brute_force_knn(clustered_points, clustered_points, 10)
        res = cublas_knn(clustered_points, clustered_points, 10)
        assert res.matches(ref)

    def test_partitioned_run_matches_unpartitioned(self, clustered_points):
        small = tesla_k20c(global_mem_bytes=256 * 1024)
        partitioned = cublas_knn(clustered_points, clustered_points, 6,
                                 device=small)
        whole = cublas_knn(clustered_points, clustered_points, 6)
        assert partitioned.stats.extra["partitions"] > 1
        assert whole.stats.extra["partitions"] == 1
        np.testing.assert_allclose(partitioned.distances, whole.distances)

    def test_partitioning_costs_time(self, clustered_points):
        """Per-group serialization + launch overhead: the partitioned
        run must be slower — the paper's explanation for the baseline's
        collapse on 3DNet/skin."""
        small = tesla_k20c(global_mem_bytes=256 * 1024)
        partitioned = cublas_knn(clustered_points, clustered_points, 6,
                                 device=small)
        whole = cublas_knn(clustered_points, clustered_points, 6)
        assert partitioned.sim_time_s > whole.sim_time_s

    def test_gemm_is_fully_regular(self, clustered_points):
        res = cublas_knn(clustered_points, clustered_points, 5)
        gemm = next(k for k in res.profile.kernels
                    if k.name == "gemm_distances")
        assert gemm.warp_efficiency == pytest.approx(1.0, abs=0.05)
        assert gemm.divergent_branches == 0

    def test_counts_all_pairs(self, clustered_points):
        res = cublas_knn(clustered_points, clustered_points, 5)
        n = len(clustered_points)
        assert res.profile.counter("distance_computations") == n * n
        assert res.stats.saved_fraction == 0.0

    def test_disjoint_sets(self, rng):
        queries = rng.normal(size=(40, 7))
        targets = rng.normal(size=(90, 7))
        ref = brute_force_knn(queries, targets, 4)
        res = cublas_knn(queries, targets, 4)
        assert res.matches(ref)

    def test_invalid_k(self, clustered_points):
        with pytest.raises(ValueError):
            cublas_knn(clustered_points, clustered_points, 0)


class TestSelectionModelFidelity:
    def test_vectorised_selection_equals_garcia_insertion(self, rng):
        """The baseline's vectorised result must equal what Garcia's
        actual insertion-sort kernel would select, row by row."""
        from repro.kselect import insertion_select
        queries = rng.normal(size=(12, 5))
        targets = rng.normal(size=(64, 5))
        res = cublas_knn(queries, targets, 7)
        for row in range(12):
            dists = np.linalg.norm(targets - queries[row], axis=1)
            ins_d, ins_i, _ = insertion_select(dists, 7)
            np.testing.assert_allclose(np.sort(res.distances[row]),
                                       ins_d, atol=1e-6)
