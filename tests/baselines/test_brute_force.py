"""Tests for the exact brute-force oracle."""

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_knn


class TestBruteForce:
    def test_known_answer(self):
        targets = np.asarray([[0.0], [1.0], [3.0], [10.0]])
        queries = np.asarray([[0.2]])
        res = brute_force_knn(queries, targets, 2)
        np.testing.assert_allclose(res.distances, [[0.2, 0.8]])
        np.testing.assert_array_equal(res.indices, [[0, 1]])

    def test_self_join_zero_diagonal(self, clustered_points):
        res = brute_force_knn(clustered_points, clustered_points, 1)
        np.testing.assert_allclose(res.distances[:, 0], 0.0, atol=1e-12)
        np.testing.assert_array_equal(res.indices[:, 0],
                                      np.arange(len(clustered_points)))

    def test_rows_ascending(self, clustered_points):
        res = brute_force_knn(clustered_points, clustered_points, 10)
        assert np.all(np.diff(res.distances, axis=1) >= -1e-15)

    def test_chunking_matches_unchunked(self, rng):
        """Results must be identical across the chunk boundary."""
        queries = rng.normal(size=(1100, 3))
        targets = rng.normal(size=(50, 3))
        res = brute_force_knn(queries, targets, 5)
        # Recompute a row far beyond the first chunk directly.
        q = 1050
        dists = np.linalg.norm(targets - queries[q], axis=1)
        np.testing.assert_allclose(res.distances[q], np.sort(dists)[:5])

    def test_high_dim_chunking(self, rng):
        """d large enough to shrink the adaptive chunk below n."""
        queries = rng.normal(size=(600, 1200))
        targets = rng.normal(size=(100, 1200))
        res = brute_force_knn(queries, targets, 3)
        q = 599
        dists = np.linalg.norm(targets - queries[q], axis=1)
        np.testing.assert_allclose(res.distances[q], np.sort(dists)[:3])

    def test_tie_break_by_index(self):
        targets = np.zeros((5, 2))
        res = brute_force_knn(np.zeros((1, 2)), targets, 3)
        np.testing.assert_array_equal(res.indices, [[0, 1, 2]])

    def test_invalid_k(self, clustered_points):
        with pytest.raises(ValueError):
            brute_force_knn(clustered_points, clustered_points, 0)
        with pytest.raises(ValueError):
            brute_force_knn(clustered_points, clustered_points,
                            len(clustered_points) + 1)

    def test_stats(self, clustered_points):
        res = brute_force_knn(clustered_points, clustered_points, 4)
        n = len(clustered_points)
        assert res.stats.level2_distance_computations == n * n
        assert res.stats.saved_fraction == 0.0
