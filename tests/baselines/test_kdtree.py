"""Tests for the KD-tree baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.baselines.brute_force import brute_force_knn
from repro.baselines.kdtree import KDTree, kdtree_knn


class TestKDTree:
    def test_query_matches_brute_force(self, clustered_points):
        tree = KDTree(clustered_points)
        ref = brute_force_knn(clustered_points, clustered_points, 7)
        for q in range(0, len(clustered_points), 23):
            dists, _ = tree.query(clustered_points[q], 7)
            np.testing.assert_allclose(dists, ref.distances[q], atol=1e-9)

    def test_prunes_on_low_dim(self, rng):
        points = rng.normal(size=(2000, 2))
        tree = KDTree(points)
        tree.distance_computations = 0
        tree.query(points[0], 5)
        assert tree.distance_computations < 1000

    def test_degrades_with_dimension(self, rng):
        """The classic KD-tree curse: pruning dies in high dimension —
        the reason the paper's TI approach exists."""
        def work(dim):
            points = rng.normal(size=(500, dim))
            tree = KDTree(points)
            tree.distance_computations = 0
            for q in range(10):
                tree.query(points[q], 5)
            return tree.distance_computations

        assert work(2) < work(50)

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            KDTree(np.empty((0, 3)))

    def test_join_matches_brute_force(self, uniform_points):
        ref = brute_force_knn(uniform_points, uniform_points, 6)
        res = kdtree_knn(uniform_points, uniform_points, 6)
        np.testing.assert_allclose(res.distances, ref.distances, atol=1e-9)

    def test_join_invalid_k(self, uniform_points):
        with pytest.raises(ValueError):
            kdtree_knn(uniform_points, uniform_points, 0)

    def test_stats_record_tree_and_work(self, uniform_points):
        res = kdtree_knn(uniform_points, uniform_points, 6)
        assert res.stats.extra["tree_nodes"] > 1
        assert res.stats.level2_distance_computations > 0

    @given(hnp.arrays(np.float64, st.tuples(st.integers(5, 60),
                                            st.integers(1, 5)),
                      elements=st.floats(-100, 100, allow_nan=False)),
           st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_property_exact(self, points, k):
        k = min(k, points.shape[0])
        ref = brute_force_knn(points, points, k)
        res = kdtree_knn(points, points, k)
        np.testing.assert_allclose(res.distances, ref.distances, atol=1e-8)
