"""Brute-force predicate-join oracles: checked against naive loops."""

import numpy as np
import pytest

from repro.baselines.brute_joins import brute_range_join, brute_reverse_knn


def _naive_range(queries, targets, eps, skip_self=False):
    rows = []
    for i, q in enumerate(queries):
        pairs = []
        for j, t in enumerate(targets):
            if skip_self and i == j:
                continue
            d = float(np.sqrt(np.sum((q - t) ** 2)))
            if d <= eps:
                pairs.append((d, j))
        pairs.sort()
        rows.append(pairs)
    return rows


class TestBruteRangeJoin:
    def test_matches_naive_loops(self, rng):
        queries = rng.normal(size=(25, 3))
        targets = rng.normal(size=(40, 3))
        eps = 1.2
        result = brute_range_join(queries, targets, eps)
        naive = _naive_range(queries, targets, eps)
        assert [len(r) for r in naive] == list(result.counts())
        for i, pairs in enumerate(naive):
            dists, idx = result.row(i)
            assert np.array_equal(idx, [j for _, j in pairs])
            # naive per-pair sums and the vectorized block differ in
            # the last ulp; membership (above) must still agree.
            np.testing.assert_allclose(dists, [d for d, _ in pairs],
                                       rtol=1e-12)

    def test_skip_self_drops_the_diagonal(self, rng):
        points = rng.normal(size=(30, 3))
        kept = brute_range_join(points, points, 0.5)
        dropped = brute_range_join(points, points, 0.5, skip_self=True)
        assert kept.n_pairs == dropped.n_pairs + len(points)
        assert all(i not in dropped.row(i).indices
                   for i in range(len(points)))

    def test_chunking_is_invisible(self, rng, monkeypatch):
        import repro.baselines.brute_joins as mod
        queries = rng.normal(size=(50, 3))
        targets = rng.normal(size=(60, 3))
        whole = brute_range_join(queries, targets, 1.0)
        monkeypatch.setattr(mod, "_CHUNK_ROWS", 7)
        chunked = brute_range_join(queries, targets, 1.0)
        assert whole.matches(chunked)

    def test_eps_validation(self, rng):
        points = rng.normal(size=(5, 2))
        with pytest.raises(ValueError):
            brute_range_join(points, points, -1.0)
        with pytest.raises(ValueError):
            brute_range_join(points, points, float("inf"))

    def test_stats_record_predicate_acceptances(self, rng):
        points = rng.normal(size=(20, 3))
        result = brute_range_join(points, points, 1.0)
        assert result.stats.predicate_accepted_pairs == result.n_pairs
        assert result.stats.level2_distance_computations == 400


class TestBruteReverseKNN:
    def test_matches_naive_definition(self, rng):
        queries = rng.normal(size=(20, 3))
        targets = rng.normal(size=(30, 3))
        k = 4
        result = brute_reverse_knn(queries, targets, k)
        # kdist(t): k-th smallest distance to the other targets.
        for t in range(len(targets)):
            dists = sorted(
                float(np.sqrt(np.sum((targets[t] - targets[j]) ** 2)))
                for j in range(len(targets)) if j != t)
            kdist_t = dists[k - 1]
            for i in range(len(queries)):
                d = float(np.sqrt(np.sum((queries[i] - targets[t]) ** 2)))
                assert (t in result.row(i).indices) == (d <= kdist_t)

    def test_k_validation(self, rng):
        points = rng.normal(size=(8, 2))
        with pytest.raises(ValueError):
            brute_reverse_knn(points, points, 8)
        with pytest.raises(ValueError):
            brute_reverse_knn(points, points, 0)
