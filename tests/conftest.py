"""Shared fixtures for the Sweet KNN reproduction test suite."""

import numpy as np
import pytest

from repro.gpu.device import tesla_k20c


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def device():
    return tesla_k20c()


@pytest.fixture
def small_device():
    """A tiny device that forces memory partitioning."""
    return tesla_k20c(global_mem_bytes=512 * 1024)


@pytest.fixture
def clustered_points(rng):
    """A clearly clusterable 2-blob point set (shuffled)."""
    a = rng.normal(size=(150, 8))
    b = rng.normal(size=(150, 8)) + 6.0
    points = np.concatenate([a, b])
    rng.shuffle(points)
    return points


@pytest.fixture
def uniform_points(rng):
    """A weakly clusterable uniform point set."""
    return rng.uniform(-1, 1, size=(200, 6))
