"""Tests for ``explain=True`` through the serving layer.

The acceptance property: an audited request's funnel counts are
bit-identical to the counters a direct :func:`repro.knn_join` of the
same queries reports — explain joins the coalescing key, so the
request is never mixed into another request's tile.
"""

import numpy as np
import pytest

from repro import knn_join
from repro.obs.audit import QueryAudit
from repro.obs.funnel import funnel_from_stats
from repro.serve import KNNServer


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(42)
    targets = rng.normal(size=(250, 6))
    queries = rng.normal(size=(40, 6))
    return targets, queries


@pytest.fixture
def server():
    with KNNServer(method="ti-cpu", max_wait_s=0.005, seed=0) as srv:
        yield srv


class TestServeExplain:
    def test_no_explain_no_audit(self, server, data):
        targets, queries = data
        response = server.query(queries[0], targets, k=5)
        assert response.audit is None

    def test_audit_funnel_matches_direct_join(self, server, data):
        targets, queries = data
        response = server.query(queries[:4], targets, k=5, explain=True)
        direct = knn_join(queries[:4], targets, 5, method="ti-cpu", seed=0)
        assert isinstance(response.audit, QueryAudit)
        assert response.audit.funnel == funnel_from_stats(direct.stats)
        assert np.array_equal(response.indices, direct.indices)

    def test_audit_carries_serving_context(self, server, data):
        targets, queries = data
        response = server.query(queries[0], targets, k=5, explain=True)
        audit = response.audit
        assert audit.request_id == response.request_id
        assert audit.route == "exact"
        assert audit.latency_s == pytest.approx(response.latency_s,
                                                abs=1e-5)
        assert audit.batch_requests == response.batch_requests
        assert audit.batch_rows == response.batch_rows
        assert audit.cache_hit == response.cache_hit
        assert audit.degraded is False
        assert audit.k == 5
        assert audit.n_targets == len(targets)

    def test_explain_requests_get_their_own_tile(self, server, data):
        """Explain joins the batch key: the audited request's funnel is
        its own, even with identical plain traffic in flight."""
        targets, queries = data
        plain = [server.submit(queries[i], targets, k=3)
                 for i in range(6)]
        audited = server.submit(queries[6], targets, k=3, explain=True)
        responses = [f.result(5.0) for f in plain] + [audited.result(5.0)]
        explained = responses[-1]
        assert explained.audit is not None
        assert explained.audit.batch_rows == 1
        direct = knn_join(queries[6:7], targets, 3, method="ti-cpu",
                          seed=0)
        assert explained.audit.funnel == funnel_from_stats(direct.stats)

    def test_audit_to_dict_round_trips_json(self, server, data):
        import json

        targets, queries = data
        response = server.query(queries[0], targets, k=5, explain=True)
        record = json.loads(json.dumps(response.audit.to_dict()))
        assert record["type"] == "query_audit"
        assert record["request_id"] == response.request_id
        assert record["funnel"] == dict(response.audit.funnel)
