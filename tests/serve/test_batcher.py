"""Tests for the micro-batch scheduler (engine-free, stub flushes)."""

import threading
import time

import pytest

from repro.errors import DeadlineExceeded, Overloaded, ServeError
from repro.serve import MicroBatcher, PendingRequest


class RecordingFlush:
    """Flush stub: records batches, answers every request with its key."""

    def __init__(self, delay_s=0.0):
        self.batches = []
        self.pressures = []
        self.delay_s = delay_s
        self._lock = threading.Lock()

    def __call__(self, requests, pressure):
        if self.delay_s:
            time.sleep(self.delay_s)
        with self._lock:
            self.batches.append(list(requests))
            self.pressures.append(pressure)
        for request in requests:
            request.future.set_result(request.payload)


def _request(key="a", payload=None, n_rows=1, max_batch=64,
             deadline_s=None):
    return PendingRequest(key=key, payload=payload, n_rows=n_rows,
                          max_batch=max_batch, deadline_s=deadline_s)


class TestCoalescing:
    def test_burst_coalesces_into_one_batch(self):
        flush = RecordingFlush()
        batcher = MicroBatcher(flush, max_wait_s=0.2)
        batcher.start()
        try:
            futures = [batcher.submit(_request(payload=i))
                       for i in range(5)]
            assert [f.result(timeout=5) for f in futures] == list(range(5))
        finally:
            batcher.stop()
        assert len(flush.batches) == 1
        assert [r.payload for r in flush.batches[0]] == list(range(5))

    def test_flush_on_size_beats_max_wait(self):
        flush = RecordingFlush()
        batcher = MicroBatcher(flush, max_wait_s=30.0)
        batcher.start()
        try:
            start = time.monotonic()
            futures = [batcher.submit(_request(payload=i, max_batch=2))
                       for i in range(4)]
            for future in futures:
                future.result(timeout=5)
            elapsed = time.monotonic() - start
        finally:
            batcher.stop()
        assert elapsed < 10.0          # did not wait out max_wait_s
        assert sorted(len(b) for b in flush.batches) == [2, 2]

    def test_distinct_keys_not_merged(self):
        flush = RecordingFlush()
        batcher = MicroBatcher(flush, max_wait_s=0.1)
        batcher.start()
        try:
            futures = [batcher.submit(_request(key=key, payload=key))
                       for key in ("a", "b", "a", "b")]
            for future in futures:
                future.result(timeout=5)
        finally:
            batcher.stop()
        for batch in flush.batches:
            assert len({r.key for r in batch}) == 1

    def test_row_counts_respect_max_batch(self):
        flush = RecordingFlush()
        batcher = MicroBatcher(flush, max_wait_s=0.1)
        batcher.start()
        try:
            futures = [batcher.submit(
                _request(payload=i, n_rows=3, max_batch=6))
                for i in range(3)]
            for future in futures:
                future.result(timeout=5)
        finally:
            batcher.stop()
        assert max(sum(r.n_rows for r in batch)
                   for batch in flush.batches) <= 6

    def test_oversized_head_request_still_flushes(self):
        flush = RecordingFlush()
        batcher = MicroBatcher(flush, max_wait_s=0.05)
        batcher.start()
        try:
            future = batcher.submit(
                _request(payload="big", n_rows=100, max_batch=8))
            assert future.result(timeout=5) == "big"
        finally:
            batcher.stop()


class TestAdmissionControl:
    def test_overloaded_when_queue_full(self):
        batcher = MicroBatcher(RecordingFlush(), max_wait_s=30.0,
                               max_queue_depth=3)
        batcher.start()
        try:
            for i in range(3):
                batcher.submit(_request(payload=i, max_batch=100))
            with pytest.raises(Overloaded) as info:
                batcher.submit(_request(payload=3, max_batch=100))
            assert info.value.depth == 3
            assert info.value.limit == 3
        finally:
            batcher.stop()

    def test_submit_requires_running(self):
        batcher = MicroBatcher(RecordingFlush())
        with pytest.raises(ServeError):
            batcher.submit(_request())

    def test_invalid_parameters(self):
        with pytest.raises(ServeError):
            MicroBatcher(RecordingFlush(), max_queue_depth=0)
        with pytest.raises(ServeError):
            MicroBatcher(RecordingFlush(), max_wait_s=-1.0)


class TestDeadlines:
    def test_expired_request_dropped_before_flush(self):
        flush = RecordingFlush()
        expired = []
        batcher = MicroBatcher(flush, max_wait_s=30.0,
                               on_expired=expired.append)
        batcher.start()
        try:
            future = batcher.submit(_request(payload=0, deadline_s=0.0))
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=5)
        finally:
            batcher.stop()
        assert flush.batches == []     # no engine work for expired work
        assert len(expired) == 1

    def test_live_requests_survive_expired_neighbours(self):
        flush = RecordingFlush()
        batcher = MicroBatcher(flush, max_wait_s=0.3)
        batcher.start()
        try:
            doomed = batcher.submit(_request(payload="doomed",
                                             deadline_s=0.0))
            alive = batcher.submit(_request(payload="alive"))
            assert alive.result(timeout=5) == "alive"
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=5)
        finally:
            batcher.stop()


class TestDrainAndFailure:
    def test_stop_drains_pending_requests(self):
        flush = RecordingFlush()
        batcher = MicroBatcher(flush, max_wait_s=30.0)
        batcher.start()
        futures = [batcher.submit(_request(payload=i, max_batch=100))
                   for i in range(4)]
        batcher.stop()                 # must flush, not drop
        assert [f.result(timeout=1) for f in futures] == list(range(4))

    def test_flush_exception_reaches_every_future(self):
        def exploding(requests, pressure):
            raise RuntimeError("engine fell over")

        batcher = MicroBatcher(exploding, max_wait_s=0.05)
        batcher.start()
        try:
            futures = [batcher.submit(_request(payload=i))
                       for i in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError):
                    future.result(timeout=5)
        finally:
            batcher.stop()

    def test_forgotten_request_gets_an_error(self):
        def forgetful(requests, pressure):
            requests[0].future.set_result("answered")

        batcher = MicroBatcher(forgetful, max_wait_s=0.1)
        batcher.start()
        try:
            first = batcher.submit(_request(payload=0))
            second = batcher.submit(_request(payload=1))
            assert first.result(timeout=5) == "answered"
            with pytest.raises(ServeError):
                second.result(timeout=5)
        finally:
            batcher.stop()

    def test_start_stop_idempotent(self):
        batcher = MicroBatcher(RecordingFlush())
        batcher.start()
        batcher.start()
        batcher.stop()
        batcher.stop()
        assert not batcher.running
