"""Warm-start serving: a server preloaded from a saved index directory
answers its very first request from the cache, with no build."""

import numpy as np
import pytest

from repro import knn_join
from repro.errors import ValidationError
from repro.index import Index
from repro.serve import KNNServer, ServeConfig


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(9)
    targets = rng.normal(size=(300, 7))
    queries = rng.normal(size=(50, 7))
    return targets, queries


@pytest.fixture
def index_dir(tmp_path, data):
    targets, _ = data
    path = tmp_path / "served-idx"
    # seed=0 / mt=None match the ServeConfig defaults, so the server's
    # lookup key lands on the preloaded entry.
    Index(targets, seed=0).save(path)
    return path


class TestWarmStart:
    def test_first_request_is_a_cache_hit(self, index_dir, data):
        targets, queries = data
        config = ServeConfig(method="ti-cpu", index_dir=str(index_dir),
                             max_wait_s=0.005)
        with KNNServer(config) as server:
            response = server.query(queries[:5], targets, k=4)
            stats = server.stats()
        assert stats.cache_misses == 0
        assert stats.cache_hits >= 1
        assert response.distances.shape == (5, 4)

    def test_served_answers_match_direct_join(self, index_dir, data):
        targets, queries = data
        config = ServeConfig(method="ti-cpu", index_dir=str(index_dir),
                             max_wait_s=0.005)
        with KNNServer(config) as server:
            response = server.query(queries, targets, k=6)
        direct = knn_join(queries, targets, 6, method="brute")
        np.testing.assert_array_equal(response.indices, direct.indices)
        np.testing.assert_allclose(response.distances, direct.distances,
                                   rtol=0, atol=1e-9)

    def test_unrelated_targets_still_build(self, index_dir, data):
        """Preloading is a cache seed, not a restriction: traffic over
        different targets misses and builds as usual."""
        _, queries = data
        other = np.random.default_rng(77).normal(size=(120, 7))
        config = ServeConfig(method="ti-cpu", index_dir=str(index_dir),
                             max_wait_s=0.005)
        with KNNServer(config) as server:
            response = server.query(queries[:3], other, k=3)
            stats = server.stats()
        assert stats.cache_misses == 1
        direct = knn_join(queries[:3], other, 3, method="brute")
        np.testing.assert_array_equal(response.indices, direct.indices)

    def test_bad_index_dir_fails_at_startup(self, tmp_path):
        config = ServeConfig(method="ti-cpu",
                             index_dir=str(tmp_path / "missing"))
        with pytest.raises(ValidationError):
            KNNServer(config)

    def test_two_worker_server_parity(self, index_dir, data):
        """The CI round-trip contract: fresh process + preloaded index
        + 2 serving workers == direct knn_join, exactly."""
        targets, queries = data
        config = ServeConfig(method="ti-cpu", index_dir=str(index_dir),
                             workers=2, max_wait_s=0.005)
        with KNNServer(config) as server:
            response = server.query(queries, targets, k=5)
            stats = server.stats()
        assert stats.cache_misses == 0
        direct = knn_join(queries, targets, 5, method="brute")
        np.testing.assert_array_equal(response.indices, direct.indices)
        np.testing.assert_allclose(response.distances, direct.distances,
                                   rtol=0, atol=1e-9)
