"""Serving with sharded execution: answers stay exactly serial."""

import numpy as np
import pytest

from repro import knn_join
from repro.serve import KNNServer


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(99)
    targets = rng.normal(size=(300, 6))
    queries = rng.normal(size=(120, 6))
    return targets, queries


class TestServerWorkers:
    def test_sharded_server_matches_direct_join(self, data):
        targets, queries = data
        with KNNServer(method="ti-cpu", workers=2, pool="thread",
                       max_batch_size=256, max_wait_s=0.005) as server:
            response = server.query(queries, targets, k=5)
        direct = knn_join(queries, targets, 5, method="ti-cpu")
        assert np.array_equal(response.indices, direct.indices)
        assert np.array_equal(response.distances, direct.distances)

    def test_worker_config_defaults_to_serial(self, data):
        targets, queries = data
        with KNNServer(method="ti-cpu", max_wait_s=0.005) as server:
            assert server.config.workers is None
            response = server.query(queries[:10], targets, k=4)
        direct = knn_join(queries[:10], targets, 4, method="ti-cpu")
        assert np.array_equal(response.indices, direct.indices)
        assert np.array_equal(response.distances, direct.distances)
