"""Tests for :class:`repro.serve.KNNServer`.

The load-bearing invariant: every served answer is exactly what a
direct :func:`repro.knn_join` call returns for the same queries — under
concurrency, under queue saturation, under deadline expiry, and under
degradation to the fallback engine.
"""

import threading

import numpy as np
import pytest

from repro import knn_join
from repro.errors import (DeadlineExceeded, Overloaded, ServeError,
                          ValidationError)
from repro.serve import KNNServer, ServeConfig


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(42)
    targets = rng.normal(size=(250, 6))
    queries = rng.normal(size=(80, 6))
    return targets, queries


@pytest.fixture
def server(data):
    targets, _ = data
    with KNNServer(method="ti-cpu", max_wait_s=0.005) as srv:
        yield srv


class TestBasics:
    def test_single_point_round_trip(self, server, data):
        targets, queries = data
        response = server.query(queries[0], targets, k=5)
        direct = knn_join(queries[:1], targets, 5, method="ti-cpu")
        assert response.distances.shape == (5,)
        assert np.array_equal(response.indices, direct.indices[0])
        assert np.array_equal(response.distances, direct.distances[0])

    def test_batch_request_round_trip(self, server, data):
        targets, queries = data
        response = server.query(queries[:7], targets, k=4)
        direct = knn_join(queries[:7], targets, 4, method="ti-cpu")
        assert response.distances.shape == (7, 4)
        assert np.array_equal(response.indices, direct.indices)
        assert np.array_equal(response.distances, direct.distances)

    def test_repeat_traffic_hits_index_cache(self, server, data):
        targets, queries = data
        for i in range(6):
            server.query(queries[i], targets.copy(), k=3)
        stats = server.stats()
        assert stats.cache_misses == 1
        assert stats.cache_hits >= 5

    def test_response_metadata(self, server, data):
        targets, queries = data
        response = server.query(queries[0], targets, k=3)
        assert response.engine == "ti-cpu"
        assert not response.degraded
        assert response.latency_s >= 0
        assert response.batch_rows >= 1

    def test_sweet_engine_serves_exact_answers(self, data):
        targets, queries = data
        with KNNServer(method="sweet", max_wait_s=0.002) as srv:
            response = srv.query(queries[:4], targets, k=5)
        direct = knn_join(queries[:4], targets, 5, method="sweet")
        assert np.array_equal(response.indices, direct.indices)
        assert np.array_equal(response.distances, direct.distances)


class TestValidation:
    def test_primary_engine_must_support_prepared_index(self):
        with pytest.raises(ValidationError):
            KNNServer(method="brute")

    def test_mt_option_rejected_per_request(self, server, data):
        targets, queries = data
        with pytest.raises(ValidationError):
            server.submit(queries[0], targets, 3, mt=5)

    def test_submit_requires_started_server(self, data):
        targets, queries = data
        srv = KNNServer(method="ti-cpu")
        with pytest.raises(ServeError):
            srv.submit(queries[0], targets, 3)

    def test_config_and_overrides_compose(self):
        config = ServeConfig(method="ti-cpu", max_batch_size=16)
        srv = KNNServer(config, max_queue_depth=7)
        assert srv.config.max_batch_size == 16
        assert srv.config.max_queue_depth == 7

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValidationError):
            KNNServer(method="ti-cpu", degrade_at=0.0)
        with pytest.raises(ValidationError):
            KNNServer(method="ti-cpu", max_batch_size=0)


class TestConcurrencyDeterminism:
    """Satellite: N threads hammering the server get bit-identical
    neighbour sets to direct ``knn_join`` calls, including under forced
    queue saturation and deadline expiry."""

    N_THREADS = 6
    PER_THREAD = 10

    def _hammer(self, server, targets, queries, k, outcomes, idx,
                deadline_s=None):
        served, failed = [], 0
        for i in range(self.PER_THREAD):
            row = (idx * self.PER_THREAD + i) % len(queries)
            try:
                response = server.query(queries[row], targets, k,
                                        deadline_s=deadline_s, timeout=30)
                served.append((row, response))
            except (Overloaded, DeadlineExceeded):
                failed += 1
        outcomes[idx] = (served, failed)

    def _assert_bit_identical(self, served, direct):
        for row, response in served:
            assert np.array_equal(response.indices, direct.indices[row])
            assert np.array_equal(response.distances,
                                  direct.distances[row])

    def test_threads_get_exact_answers(self, data):
        targets, queries = data
        direct = knn_join(queries, targets, 5, method="ti-cpu")
        outcomes = [None] * self.N_THREADS
        with KNNServer(method="ti-cpu", max_wait_s=0.003) as server:
            threads = [threading.Thread(
                target=self._hammer,
                args=(server, targets, queries, 5, outcomes, t))
                for t in range(self.N_THREADS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        total_served = 0
        for served, failed in outcomes:
            assert failed == 0
            total_served += len(served)
            self._assert_bit_identical(served, direct)
        assert total_served == self.N_THREADS * self.PER_THREAD

    def test_saturation_keeps_answers_exact_and_loses_nothing(self, data):
        targets, queries = data
        direct = knn_join(queries, targets, 4, method="ti-cpu")
        outcomes = [None] * self.N_THREADS
        server = KNNServer(method="ti-cpu", degraded_method="brute",
                           max_wait_s=0.02, max_queue_depth=4,
                           degrade_at=0.5)
        direct_brute = knn_join(queries, targets, 4, method="brute")
        with server:
            threads = [threading.Thread(
                target=self._hammer,
                args=(server, targets, queries, 4, outcomes, t))
                for t in range(self.N_THREADS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        stats = server.stats()
        total_served = sum(len(served) for served, _ in outcomes)
        total_failed = sum(failed for _, failed in outcomes)
        # No lost requests: every submission either served or rejected.
        assert total_served + total_failed == \
            self.N_THREADS * self.PER_THREAD
        assert stats.served == total_served
        assert stats.rejected + stats.expired == total_failed
        assert stats.queue_depth == 0
        for served, _ in outcomes:
            for row, response in served:
                if response.degraded:
                    assert response.engine == "brute"
                    assert np.array_equal(np.sort(response.indices),
                                          np.sort(direct_brute.indices[row]))
                    assert np.allclose(response.distances,
                                       direct_brute.distances[row],
                                       rtol=0, atol=0)
                else:
                    assert np.array_equal(response.indices,
                                          direct.indices[row])
                    assert np.array_equal(response.distances,
                                          direct.distances[row])

    def test_deadline_expiry_under_load(self, data):
        targets, queries = data
        direct = knn_join(queries, targets, 3, method="ti-cpu")
        outcomes = [None] * 4
        with KNNServer(method="ti-cpu", max_wait_s=0.05) as server:
            threads = [threading.Thread(
                target=self._hammer,
                args=(server, targets, queries, 3, outcomes, t),
                kwargs={"deadline_s": 0.0 if t % 2 else None})
                for t in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for t, (served, failed) in enumerate(outcomes):
            if t % 2:   # deadline 0: everything expires, nothing served
                assert failed == self.PER_THREAD
                assert served == []
            else:
                assert failed == 0
                self._assert_bit_identical(served, direct)
        assert server.stats().expired == 2 * self.PER_THREAD


class TestDegradation:
    def test_burst_degrades_and_stays_exact(self, data):
        targets, queries = data
        server = KNNServer(method="ti-cpu", degraded_method="brute",
                           max_wait_s=0.1, max_queue_depth=20,
                           degrade_at=0.5, max_batch_size=64)
        futures = []
        with server:
            for i in range(20):
                futures.append((i, server.submit(queries[i], targets, 4)))
            responses = [(i, f.result(timeout=30)) for i, f in futures]
        assert any(r.degraded for _, r in responses)
        assert server.stats().degraded > 0
        direct = knn_join(queries[:20], targets, 4, method="ti-cpu")
        for i, response in responses:
            assert np.array_equal(np.sort(response.indices),
                                  np.sort(direct.indices[i]))
            assert np.allclose(response.distances, direct.distances[i],
                               rtol=0, atol=1e-9)

    def test_degradation_disabled(self, data):
        targets, queries = data
        server = KNNServer(method="ti-cpu", degraded_method=None,
                           max_wait_s=0.05, max_queue_depth=10)
        with server:
            futures = [server.submit(queries[i], targets, 3)
                       for i in range(10)]
            responses = [f.result(timeout=30) for f in futures]
        assert not any(r.degraded for r in responses)


class TestLifecycle:
    def test_stop_drains_in_flight_requests(self, data):
        targets, queries = data
        server = KNNServer(method="ti-cpu", max_wait_s=10.0)
        server.start()
        futures = [server.submit(queries[i], targets, 3)
                   for i in range(5)]
        server.stop()                   # long max_wait: drain must flush
        direct = knn_join(queries[:5], targets, 3, method="ti-cpu")
        for i, future in enumerate(futures):
            response = future.result(timeout=1)
            assert np.array_equal(response.indices, direct.indices[i])

    def test_context_manager_restarts(self, data):
        targets, queries = data
        server = KNNServer(method="ti-cpu")
        with server:
            server.query(queries[0], targets, 3)
        assert not server.running
        with server:                    # restartable
            server.query(queries[1], targets, 3)
        assert server.stats().served == 2
