"""Tests for end-to-end request tracing through the serving layer."""

import numpy as np
import pytest

from repro.errors import DeadlineExceeded, Overloaded
from repro.obs.tracer import Tracer
from repro.serve import KNNServer

DIM = 8


@pytest.fixture(scope="module")
def targets():
    return np.random.default_rng(5).normal(size=(300, DIM))


@pytest.fixture
def tracer():
    return Tracer()


class TestRequestSpans:
    def test_request_spans_share_one_trace_id(self, targets, tracer):
        rng = np.random.default_rng(1)
        with KNNServer(method="sweet", tracer=tracer) as server:
            response = server.query(rng.normal(size=DIM), targets, 5)
        rid = response.request_id
        assert rid == "req-1"
        names = {span.name for span in tracer.finished_spans(trace_id=rid)}
        assert {"serve.request", "serve.queue", "serve.batch",
                "engine.execute", "serve.merge",
                "kernel:level2"} <= names

    def test_span_tree_queue_under_request_engine_under_batch(
            self, targets, tracer):
        rng = np.random.default_rng(2)
        with KNNServer(method="sweet", tracer=tracer) as server:
            server.query(rng.normal(size=DIM), targets, 5)
        (request,) = tracer.finished_spans("serve.request")
        (queue,) = tracer.finished_spans("serve.queue")
        (batch,) = tracer.finished_spans("serve.batch")
        (execute,) = tracer.finished_spans("engine.execute")
        assert queue.parent_id == request.span_id
        assert execute.parent_id == batch.span_id
        assert request.attributes["outcome"] == "served"
        assert request.attributes["latency_s"] >= 0

    def test_requests_get_distinct_trace_ids(self, targets, tracer):
        rng = np.random.default_rng(3)
        with KNNServer(method="sweet", tracer=tracer) as server:
            first = server.query(rng.normal(size=DIM), targets, 5)
            second = server.query(rng.normal(size=DIM), targets, 5)
        assert first.request_id != second.request_id
        for rid in (first.request_id, second.request_id):
            assert tracer.finished_spans("serve.request", trace_id=rid)

    def test_coalesced_batch_lists_all_request_ids(self, targets, tracer):
        rng = np.random.default_rng(4)
        queries = rng.normal(size=(6, DIM))
        with KNNServer(method="sweet", tracer=tracer,
                       max_wait_s=0.05) as server:
            futures = [server.submit(query, targets, 5)
                       for query in queries]
            responses = [future.result(timeout=10) for future in futures]
        rids = {response.request_id for response in responses}
        batch_ids = set()
        for span in tracer.finished_spans("serve.batch"):
            batch_ids.update(span.attributes["request_ids"])
        assert rids <= batch_ids

    def test_serve_metrics_land_in_tracer_registry(self, targets, tracer):
        rng = np.random.default_rng(6)
        with KNNServer(method="sweet", tracer=tracer) as server:
            server.query(rng.normal(size=DIM), targets, 5)
        assert tracer.registry.value("serve.served") == 1
        assert tracer.registry.histogram("serve.latency_s").count == 1
        assert tracer.registry.value("funnel.candidates") > 0


class TestFailureOutcomes:
    def test_expired_request_span_closed_with_outcome(self, targets,
                                                      tracer):
        rng = np.random.default_rng(7)
        with KNNServer(method="sweet", tracer=tracer,
                       max_wait_s=0.0, default_deadline_s=-1.0) as server:
            future = server.submit(rng.normal(size=DIM), targets, 5)
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=10)
        spans = tracer.finished_spans("serve.request")
        assert any(span.attributes.get("outcome") == "expired"
                   for span in spans)

    def test_rejected_request_span_closed_with_outcome(self, targets,
                                                       tracer):
        rng = np.random.default_rng(8)
        server = KNNServer(method="sweet", tracer=tracer,
                           max_queue_depth=1, max_wait_s=0.2)
        server.start()
        try:
            server.submit(rng.normal(size=DIM), targets, 5)
            with pytest.raises(Overloaded):
                for _ in range(5):
                    server.submit(rng.normal(size=DIM), targets, 5)
        finally:
            server.stop()
        rejected = [span for span in tracer.finished_spans("serve.request")
                    if span.attributes.get("outcome") == "rejected"]
        assert rejected
        assert tracer.registry.value("serve.rejected") >= 1


class TestUntracedServer:
    def test_server_without_tracer_still_reports_request_ids(self, targets):
        rng = np.random.default_rng(9)
        with KNNServer(method="sweet") as server:
            response = server.query(rng.normal(size=DIM), targets, 5)
        assert response.request_id == "req-1"
        assert server.stats().served == 1
