"""Served workload requests: classify / novelty through the batcher."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.serve import KNNServer
from repro.workloads import knn_classify, novelty_scores


@pytest.fixture(scope="module")
def labelled_data():
    rng = np.random.default_rng(23)
    centers = rng.normal(scale=5.0, size=(3, 5))
    labels = rng.integers(0, 3, size=220)
    targets = centers[labels] + rng.normal(scale=0.4, size=(220, 5))
    queries = centers[labels[:60]] + rng.normal(scale=0.4, size=(60, 5))
    return targets, labels, queries


@pytest.fixture
def server():
    with KNNServer(method="ti-cpu", max_wait_s=0.005) as srv:
        yield srv


class TestServedClassify:
    def test_matches_direct_workload(self, server, labelled_data):
        targets, labels, queries = labelled_data
        response = server.classify(queries[:12], targets, labels, k=5)
        direct = knn_classify(queries[:12], targets, labels, 5,
                              method="ti-cpu",
                              seed=server.config.seed)
        np.testing.assert_array_equal(response.labels, direct.labels)
        assert response.distances.shape == (12, 5)

    def test_single_point_returns_scalar_label(self, server, labelled_data):
        targets, labels, queries = labelled_data
        response = server.classify(queries[0], targets, labels, k=5)
        assert np.isscalar(response.labels) or response.labels.ndim == 0

    def test_labels_must_align(self, server, labelled_data):
        targets, labels, queries = labelled_data
        with pytest.raises(ValidationError):
            server.classify(queries[0], targets, labels[:-1], k=3)


class TestServedNovelty:
    def test_matches_direct_workload(self, server, labelled_data):
        targets, labels, queries = labelled_data
        response = server.novelty(queries[:9], targets, k=4)
        direct = novelty_scores(queries[:9], targets, 4, method="ti-cpu",
                                seed=server.config.seed)
        np.testing.assert_array_equal(response.scores, direct.scores)

    def test_single_point_returns_float(self, server, labelled_data):
        targets, _, queries = labelled_data
        response = server.novelty(queries[0], targets, k=4)
        assert isinstance(response.scores, float)


class TestRangeEnginesRefused:
    def test_range_method_rejected_at_construction(self):
        with pytest.raises(ValidationError, match="variable-cardinality"):
            KNNServer(method="range-join")

    def test_range_degraded_method_rejected(self):
        with pytest.raises(ValidationError, match="variable-cardinality"):
            KNNServer(method="ti-cpu", degraded_method="self-join-eps")
