"""Tests for serve-layer SLO monitoring and windowed stats.

Satellite invariant: windowed views over the serving metrics stay
deterministic under concurrent writers — given a fixed event multiset,
percentiles, per-route splits and SLO verdicts are pure functions of
the events, not of thread interleaving.
"""

import threading

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.obs.watch import MetricWindows, SloMonitor, SloSpec
from repro.serve import KNNServer
from repro.serve.stats import StatsCollector


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(42)
    targets = rng.normal(size=(250, 6))
    queries = rng.normal(size=(40, 6))
    return targets, queries


class TestServerSloConfig:
    def test_string_specs_are_parsed(self, data):
        targets, queries = data
        with KNNServer(method="ti-cpu",
                       slos=("p99_latency_s=5.0",
                             "error_rate=0.5")) as server:
            server.query(queries[0], targets, k=3)
            stats = server.stats()
        assert len(stats.slo) == 2
        assert {status.spec.name for status in stats.slo} \
            == {"p99_latency_s", "error_rate"}
        assert all(status.ok for status in stats.slo)

    def test_unknown_slo_rejected_at_construction(self):
        with pytest.raises(ValidationError, match="unknown SLO"):
            KNNServer(method="ti-cpu", slos=("p9000_latency=1",))

    def test_breach_surfaces_in_stats_and_registry(self, data):
        targets, queries = data
        with KNNServer(method="ti-cpu",
                       slos=("p99_latency_s=1e-9",)) as server:
            for i in range(4):
                server.query(queries[i], targets, k=3)
            stats = server.stats()
        (status,) = stats.slo
        assert not status.ok
        registry = server.stats_collector.registry
        assert registry.value("slo.breaches") >= 1
        assert registry.value("slo.breach.p99_latency_s") >= 1
        # One continuous breach episode -> one transition signal.
        assert registry.value("slo.breach_transitions") == 1

    def test_slo_rows_render_in_stats_table(self, data):
        targets, queries = data
        with KNNServer(method="ti-cpu",
                       slos=("p99_latency_s=5.0",)) as server:
            server.query(queries[0], targets, k=3)
            text = server.stats().table()
        assert "SLO p99_latency_s <= 5" in text
        assert "OK" in text

    def test_window_rows_render_in_stats_table(self, data):
        targets, queries = data
        with KNNServer(method="ti-cpu") as server:
            for i in range(3):
                server.query(queries[i], targets, k=3)
            stats = server.stats()
        assert stats.window["serve.latency_s"]["count"] == 3
        text = stats.table()
        assert "window req rate /s" in text
        assert "window latency p50/p99 ms" in text

    def test_no_slos_means_empty_status_and_no_monitor_cost(self, data):
        targets, queries = data
        with KNNServer(method="ti-cpu") as server:
            server.query(queries[0], targets, k=3)
            stats = server.stats()
        assert stats.slo == ()
        registry = server.stats_collector.registry
        assert registry.value("slo.breaches") == 0


class TestWindowedStatsUnderConcurrency:
    def _fixed_clock(self, t=1000.0):
        return lambda: t

    def test_windowed_percentiles_deterministic_across_interleavings(self):
        """Same event multiset, different thread schedules: identical
        windowed aggregates and SLO verdicts every time."""
        per_thread = [[(t + 1) * 0.001 + i * 1e-6 for i in range(40)]
                      for t in range(6)]
        everything = sorted(v for values in per_thread for v in values)
        expected_p99 = float(np.percentile(np.asarray(everything), 99))

        def run_once():
            collector = StatsCollector()
            windows = MetricWindows(collector.registry,
                                    clock=self._fixed_clock())
            monitor = SloMonitor([SloSpec("p99_latency_s", 1.0),
                                  SloSpec("rejection_rate", 0.5)],
                                 collector.registry, windows=windows)
            barrier = threading.Barrier(len(per_thread))

            def work(values, route):
                barrier.wait()
                for value in values:
                    collector.record_submitted()
                    collector.record_served(value, route=route)

            threads = [
                threading.Thread(
                    target=work,
                    args=(values, "exact" if t % 2 == 0 else "approx"))
                for t, values in enumerate(per_thread)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            statuses = monitor.evaluate()
            return windows, statuses

        results = [run_once() for _ in range(3)]
        for windows, statuses in results:
            assert windows.count("serve.latency_s") == len(everything)
            assert sorted(windows.window("serve.latency_s").samples()) \
                == everything
            assert windows.percentile("serve.latency_s", 99) \
                == pytest.approx(expected_p99)
            # Per-route split: half the threads served each route.
            assert windows.count("serve.latency_exact_s") == 120
            assert windows.count("serve.latency_approx_s") == 120
            latency, rejection = statuses
            assert latency.ok
            assert latency.value == pytest.approx(expected_p99)
            assert rejection.ok and rejection.value == 0.0
        # And identical across runs, not merely each-correct.
        first = results[0][1]
        for _, statuses in results[1:]:
            assert [s.value for s in statuses] \
                == [s.value for s in first]

    def test_counter_windows_match_lifetime_under_threads(self):
        collector = StatsCollector()
        windows = MetricWindows(collector.registry,
                                clock=self._fixed_clock())

        def work():
            for _ in range(200):
                collector.record_submitted()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert collector.registry.value("serve.submitted") == 1600
        assert windows.count("serve.submitted") == 1600
