"""Tests for the serving metrics collector and snapshot."""

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve import StatsCollector
from repro.serve.store import IndexStoreStats


def _store_stats(hits=8, misses=2, evictions=1, entries=1,
                 resident_bytes=4096, budget_bytes=0):
    return IndexStoreStats(hits=hits, misses=misses, evictions=evictions,
                           entries=entries, resident_bytes=resident_bytes,
                           budget_bytes=budget_bytes)


@pytest.fixture
def collector():
    collector = StatsCollector()
    for _ in range(10):
        collector.record_submitted()
    collector.record_batch(4, 4)
    collector.record_batch(2, 6)
    for latency in (0.001, 0.002, 0.003, 0.004, 0.010, 0.020):
        collector.record_served(latency)
    collector.record_served(0.5, degraded=True)
    collector.record_rejected()
    collector.record_expired()
    collector.record_error()
    return collector


class TestSnapshot:
    def test_counters(self, collector):
        stats = collector.snapshot(queue_depth=3, max_queue_depth=16,
                                   store_stats=_store_stats())
        assert stats.submitted == 10
        assert stats.served == 7
        assert stats.rejected == 1
        assert stats.expired == 1
        assert stats.errors == 1
        assert stats.degraded == 1
        assert stats.batches == 2
        assert stats.queue_depth == 3

    def test_cache_hit_rate(self, collector):
        stats = collector.snapshot(store_stats=_store_stats(hits=19,
                                                            misses=1))
        assert stats.cache_hit_rate == pytest.approx(0.95)
        empty = StatsCollector().snapshot()
        assert empty.cache_hit_rate == 0.0

    def test_batch_occupancy(self, collector):
        stats = collector.snapshot()
        assert stats.mean_batch_requests == pytest.approx(3.0)
        assert stats.mean_batch_rows == pytest.approx(5.0)

    def test_latency_percentiles_monotone(self, collector):
        stats = collector.snapshot()
        p50 = stats.latency_percentile(50)
        p90 = stats.latency_percentile(90)
        p99 = stats.latency_percentile(99)
        assert 0 < p50 <= p90 <= p99 <= 0.5
        assert stats.latency_percentile(100) == pytest.approx(0.5)

    def test_empty_aggregates_are_nan_and_never_raise(self):
        stats = StatsCollector().snapshot()
        for q in (0, 50, 99, 100):
            assert math.isnan(stats.latency_percentile(q))
        assert math.isnan(stats.mean_batch_rows)
        assert math.isnan(stats.mean_batch_requests)
        assert math.isnan(stats.max_latency_s)
        # The idle snapshot still renders and describes cleanly.
        assert "latency p50 ms" in stats.table()
        assert stats.describe()["served"] == 0

    def test_shared_registry_receives_serve_metrics(self):
        registry = MetricsRegistry()
        collector = StatsCollector(registry=registry)
        collector.record_submitted()
        collector.record_served(0.25)
        assert registry.value("serve.submitted") == 1
        assert registry.histogram("serve.latency_s").values() == (0.25,)


class TestRendering:
    def test_table_lists_headline_metrics(self, collector):
        text = collector.snapshot(queue_depth=2, max_queue_depth=8,
                                  store_stats=_store_stats()).table()
        for needle in ("requests served", "rejected (overload)",
                       "expired (deadline)", "batch occupancy",
                       "index-cache hit rate %", "latency p50 ms",
                       "latency p99 ms", "2/8"):
            assert needle in text

    def test_describe_keys(self, collector):
        info = collector.snapshot(store_stats=_store_stats()).describe()
        for key in ("served", "rejected", "expired", "cache_hit_rate",
                    "batch_occupancy_rows", "p50_ms", "p99_ms"):
            assert key in info

    def test_custom_title(self, collector):
        text = collector.snapshot().table("my serving run")
        assert text.splitlines()[0] == "my serving run"


class TestRoutes:
    """Per-route breakdown: exact vs the approximate graph tier."""

    @pytest.fixture
    def routed(self):
        collector = StatsCollector()
        for latency in (0.001, 0.002, 0.003):
            collector.record_served(latency, route="exact")
        for latency in (0.010, 0.020):
            collector.record_served(latency, route="approx")
        return collector

    def test_route_counters(self, routed):
        stats = routed.snapshot()
        assert stats.served == 5
        assert stats.route_exact == 3
        assert stats.route_approx == 2

    def test_per_route_percentiles(self, routed):
        stats = routed.snapshot()
        assert stats.latency_percentile(100, route="exact") \
            == pytest.approx(0.003)
        assert stats.latency_percentile(0, route="approx") \
            == pytest.approx(0.010)
        # The aggregate pools both routes.
        assert stats.latency_percentile(100) == pytest.approx(0.020)
        assert len(stats.latencies_exact_s) == 3
        assert len(stats.latencies_approx_s) == 2

    def test_default_route_is_exact(self):
        collector = StatsCollector()
        collector.record_served(0.004)
        stats = collector.snapshot()
        assert stats.route_exact == 1
        assert stats.route_approx == 0

    def test_invalid_route_rejected(self):
        with pytest.raises(ValueError):
            StatsCollector().record_served(0.001, route="magic")

    def test_idle_route_aggregates_are_nan(self):
        stats = StatsCollector().snapshot()
        assert math.isnan(stats.latency_percentile(50, route="exact"))
        assert math.isnan(stats.latency_percentile(50, route="approx"))

    def test_rendering_includes_routes(self, routed):
        stats = routed.snapshot()
        text = stats.table()
        assert "served exact route" in text
        assert "served approx route" in text
        assert "approx p50/p99 ms" in text
        info = stats.describe()
        for key in ("route_exact", "route_approx", "exact_p50_ms",
                    "approx_p99_ms"):
            assert key in info
