"""Tests for the byte-budgeted LRU index store."""

import numpy as np
import pytest

from repro.engine.prepared import PreparedIndex, fingerprint_points
from repro.errors import ValidationError
from repro.serve import IndexStore


@pytest.fixture
def points(rng):
    return rng.normal(size=(120, 6))


class TestFingerprint:
    def test_value_based(self, points):
        assert fingerprint_points(points) == \
            fingerprint_points(points.copy())

    def test_sensitive_to_content(self, points):
        changed = points.copy()
        changed[0, 0] += 1.0
        assert fingerprint_points(points) != fingerprint_points(changed)

    def test_sensitive_to_shape(self, rng):
        flat = rng.normal(size=(4, 6))
        assert fingerprint_points(flat) != \
            fingerprint_points(flat.reshape(6, 4))

    def test_non_contiguous_input(self, points):
        strided = points[::2]
        assert fingerprint_points(strided) == \
            fingerprint_points(np.ascontiguousarray(strided))


class TestIndexStore:
    def test_hit_on_equal_value(self, points):
        store = IndexStore()
        first, hit1 = store.get(points)
        second, hit2 = store.get(points.copy())
        assert (hit1, hit2) == (False, True)
        assert first is second
        assert first.build_count == 1

    def test_miss_on_different_seed_or_mt(self, points):
        store = IndexStore()
        store.get(points, seed=0)
        _, hit_seed = store.get(points, seed=1)
        _, hit_mt = store.get(points, seed=0, mt=4)
        assert not hit_seed and not hit_mt
        assert len(store) == 3

    def test_miss_on_different_content(self, points):
        store = IndexStore()
        store.get(points)
        changed = points.copy()
        changed[3, 1] -= 2.0
        _, hit = store.get(changed)
        assert not hit

    def test_lru_eviction_under_byte_budget(self, rng):
        sets = [rng.normal(size=(100, 4)) for _ in range(3)]
        one_size = PreparedIndex(sets[0], seed=0).nbytes
        store = IndexStore(budget_bytes=int(2.5 * one_size))
        store.get(sets[0])
        store.get(sets[1])
        store.get(sets[0])          # refresh: sets[1] is now the LRU
        store.get(sets[2])          # overflows: evicts sets[1]
        assert store.stats().evictions == 1
        _, hit0 = store.get(sets[0])
        _, hit1 = store.get(sets[1])
        assert hit0 and not hit1

    def test_oversized_index_still_cached(self, points):
        store = IndexStore(budget_bytes=16)   # smaller than any index
        store.get(points)
        _, hit = store.get(points)
        assert hit
        assert store.stats().evictions == 0

    def test_max_entries_cap(self, rng):
        store = IndexStore(max_entries=2)
        sets = [rng.normal(size=(40, 3)) for _ in range(3)]
        for s in sets:
            store.get(s)
        assert len(store) == 2
        _, hit_oldest = store.get(sets[0])
        assert not hit_oldest

    def test_resident_bytes_tracks_entries(self, rng):
        store = IndexStore()
        a, _ = store.get(rng.normal(size=(80, 5)))
        b, _ = store.get(rng.normal(size=(60, 5)))
        assert store.stats().resident_bytes == a.nbytes + b.nbytes
        store.clear()
        assert store.stats().resident_bytes == 0
        assert len(store) == 0

    def test_stats_hit_rate(self, points):
        store = IndexStore()
        store.get(points)
        for _ in range(9):
            store.get(points)
        stats = store.stats()
        assert stats.hits == 9 and stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.9)

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValidationError):
            IndexStore(budget_bytes=0)
        with pytest.raises(ValidationError):
            IndexStore(max_entries=-1)
