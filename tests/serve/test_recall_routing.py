"""Recall-targeted serving: per-request routing between the exact
engines and the approximate graph tier.

The contract under test: ``recall_target=None`` is bit-identical to
pre-graph serving; a target routes to the graph tier only when the
store's index carries a *fresh* graph artifact, and every response
reports which path served it.
"""

import numpy as np
import pytest

from repro import knn_join
from repro.errors import ValidationError
from repro.graph import GraphConfig
from repro.graph.recall import measured_recall
from repro.index import Index
from repro.serve import KNNServer, ServeConfig, run_open_loop


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(31)
    blobs = [rng.normal(size=(120, 6)) + offset
             for offset in (0.0, 7.0, -7.0)]
    targets = np.concatenate(blobs)
    rng.shuffle(targets)
    rows = rng.integers(0, len(targets), size=40)
    queries = targets[rows] + rng.normal(scale=0.05, size=(40, 6))
    return targets, queries


@pytest.fixture(scope="module")
def graph_index_dir(tmp_path_factory, data):
    """A saved index with a calibrated graph artifact (seed=0 matches
    the ServeConfig default, so the server preloads it)."""
    targets, _ = data
    path = tmp_path_factory.mktemp("routing") / "idx"
    index = Index(targets, seed=0)
    index.build_graph(GraphConfig(graph_k=12, sample=64), k=5,
                      n_probe=32)
    index.save(path)
    return path


def _server(index_dir=None, **overrides):
    kwargs = dict(method="ti-cpu", max_wait_s=0.005,
                  index_dir=str(index_dir) if index_dir else None)
    kwargs.update(overrides)
    return KNNServer(ServeConfig(**kwargs))


class TestExactDefault:
    def test_no_target_stays_bit_identical(self, graph_index_dir, data):
        """recall_target=None serves exactly the pre-graph answers even
        when a graph artifact is loaded and fresh."""
        targets, queries = data
        with _server(graph_index_dir) as server:
            response = server.query(queries, targets, k=6)
            stats = server.stats()
        direct = knn_join(queries, targets, 6, method="brute")
        np.testing.assert_array_equal(response.indices, direct.indices)
        np.testing.assert_allclose(response.distances, direct.distances,
                                   rtol=0, atol=1e-9)
        assert response.route == "exact"
        assert response.recall_target is None
        assert response.ef is None
        assert stats.route_exact >= 1
        assert stats.route_approx == 0


class TestApproxRoute:
    def test_target_routes_to_graph_tier(self, graph_index_dir, data):
        targets, queries = data
        with _server(graph_index_dir) as server:
            response = server.query(queries, targets, k=5,
                                    recall_target=0.9)
            stats = server.stats()
        assert response.route == "approx"
        assert response.recall_target == 0.9
        assert response.ef >= 5
        assert response.engine == "graph-bfs"
        assert not response.degraded
        assert stats.route_approx >= 1
        direct = knn_join(queries, targets, 5, method="brute")
        assert measured_recall(response.indices, direct.indices) >= 0.9

    def test_mixed_traffic_splits_by_request(self, graph_index_dir,
                                             data):
        targets, queries = data
        with _server(graph_index_dir) as server:
            report = run_open_loop(server, targets, queries, 5,
                                   recall_target=0.9, recall_every=2)
        assert report.served == len(queries)
        routes = {i: response.route for i, response in report.responses}
        # Deterministic mix: odd request indices carry the target.
        for i, route in routes.items():
            assert route == ("approx" if i % 2 == 1 else "exact")
        stats = report.stats
        assert stats.route_exact == len(queries) // 2
        assert stats.route_approx == len(queries) // 2
        assert len(stats.latencies_exact_s) == stats.route_exact
        assert len(stats.latencies_approx_s) == stats.route_approx

    def test_approx_batches_separate_from_exact(self, graph_index_dir,
                                                data):
        """The batch key includes the route, so one flush never mixes
        exact and approximate requests."""
        targets, queries = data
        with _server(graph_index_dir, max_wait_s=0.05) as server:
            futures = [server.submit(queries[i], targets, 5,
                                     recall_target=0.9 if i % 2 else None)
                       for i in range(8)]
            responses = [f.result() for f in futures]
        for i, response in enumerate(responses):
            assert response.route == ("approx" if i % 2 else "exact")


class TestFallbacks:
    def test_no_graph_routes_exact(self, tmp_path, data):
        targets, queries = data
        plain = tmp_path / "plain-idx"
        Index(targets, seed=0).save(plain)
        with _server(plain) as server:
            response = server.query(queries[:4], targets, k=5,
                                    recall_target=0.9)
        assert response.route == "exact"
        assert response.recall_target == 0.9
        assert response.ef is None
        direct = knn_join(queries[:4], targets, 5, method="brute")
        np.testing.assert_array_equal(response.indices, direct.indices)

    def test_stale_graph_routes_exact(self, tmp_path, data):
        targets, queries = data
        path = tmp_path / "stale-idx"
        index = Index(targets, seed=0)
        index.build_graph(GraphConfig(graph_k=8, sample=32,
                                      max_version_lag=0),
                          calibrate=False)
        index.remove([0])
        index.save(path)
        with _server(path) as server:
            response = server.query(queries[:4], targets, k=5,
                                    recall_target=0.9)
        assert response.route == "exact"
        assert response.ef is None

    def test_disabled_graph_method_routes_exact(self, graph_index_dir,
                                                data):
        targets, queries = data
        with _server(graph_index_dir, graph_method=None) as server:
            response = server.query(queries[:4], targets, k=5,
                                    recall_target=0.9)
        assert response.route == "exact"

    def test_invalid_target_rejected(self, graph_index_dir, data):
        targets, queries = data
        with _server(graph_index_dir) as server:
            for bad in (0.0, -1.0, 1.5):
                with pytest.raises(ValidationError):
                    server.submit(queries[0], targets, 5,
                                  recall_target=bad)

    def test_greedy_graph_method(self, graph_index_dir, data):
        targets, queries = data
        with _server(graph_index_dir,
                     graph_method="graph-greedy") as server:
            response = server.query(queries[:4], targets, k=5,
                                    recall_target=0.5)
        assert response.route == "approx"
        assert response.engine == "graph-greedy"
