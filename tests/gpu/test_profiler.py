"""Tests for profiler containers and remaining device/memory helpers."""

import numpy as np
import pytest

from repro.gpu.device import tesla_k20c
from repro.gpu.memory import GlobalMemory
from repro.gpu.profiler import KernelProfile, PipelineProfile


class TestKernelProfile:
    def test_counters(self):
        profile = KernelProfile(name="k")
        profile.count("distance_computations", 5)
        profile.count("distance_computations", 2)
        assert profile.get_count("distance_computations") == 7
        assert profile.get_count("missing") == 0

    def test_merge_from(self):
        a = KernelProfile(name="k", warp_steps=10, lane_steps=100,
                          flops=50.0, cycles=200.0)
        a.count("x", 1)
        b = KernelProfile(name="k", warp_steps=5, lane_steps=40,
                          flops=10.0, cycles=100.0)
        b.count("x", 2)
        a.merge_from(b)
        assert a.warp_steps == 15
        assert a.flops == 60.0
        assert a.get_count("x") == 3

    def test_warp_efficiency_empty(self):
        assert KernelProfile(name="k").warp_efficiency == 1.0

    def test_summary_contains_key_metrics(self):
        profile = KernelProfile(name="level2", warp_steps=4, lane_steps=64)
        summary = profile.summary()
        assert summary["kernel"] == "level2"
        assert summary["warp_efficiency"] == 0.5


class TestPipelineProfile:
    def _pipeline(self):
        pipe = PipelineProfile(name="p")
        a = KernelProfile(name="init", warp_steps=10, lane_steps=320,
                          sim_time_s=0.5, flops=10)
        b = KernelProfile(name="level2_filter", warp_steps=10,
                          lane_steps=160, sim_time_s=1.5, flops=30)
        b.count("distance_computations", 9)
        pipe.add(a)
        pipe.add(b)
        return pipe

    def test_total_time(self):
        assert self._pipeline().sim_time_s == 2.0

    def test_host_time_added(self):
        pipe = self._pipeline()
        pipe.host_time_s = 0.25
        assert pipe.sim_time_s == 2.25

    def test_counter_aggregation(self):
        assert self._pipeline().counter("distance_computations") == 9

    def test_overall_warp_efficiency(self):
        pipe = self._pipeline()
        assert pipe.warp_efficiency == pytest.approx(480 / (32 * 20))

    def test_filter_warp_efficiency_selects_kernel(self):
        pipe = self._pipeline()
        assert pipe.filter_warp_efficiency() == pytest.approx(
            160 / (32 * 10))

    def test_filter_efficiency_no_match_is_one(self):
        pipe = PipelineProfile(name="p")
        assert pipe.filter_warp_efficiency("level2") == 1.0

    def test_summary(self):
        summary = self._pipeline().summary()
        assert summary["pipeline"] == "p"
        assert len(summary["kernels"]) == 2


class TestIssueSlots:
    def test_k20c_issue_slots(self):
        # 13 SMs * 192 cores / 32 lanes = 78 warps in flight.
        assert tesla_k20c().issue_warp_slots == 78

    def test_scales_with_concurrency(self):
        dev = tesla_k20c().with_concurrency_scale(1 / 39)
        assert dev.issue_warp_slots == 2

    def test_never_below_one(self):
        dev = tesla_k20c().with_concurrency_scale(1e-9)
        assert dev.issue_warp_slots == 1


class TestColumnMajorAccess:
    def test_col_element_load(self):
        mem = GlobalMemory(tesla_k20c())
        data = np.arange(12, dtype=np.float32).reshape(3, 4)  # (d, n)
        arr = mem.place(data)
        gen = arr.col_element_load(i=1, dim=2)
        event = next(gen)
        assert event[0] == "gload"
        assert event[1] == arr.base_addr + (2 * 4 + 1) * 4
        with pytest.raises(StopIteration) as stop:
            next(gen)
        assert stop.value.value == 9.0
