"""Tests for launch configs, makespan scheduling and simulated time."""

import dataclasses

import pytest

from repro.gpu.costmodel import CostModel, default_cost_model
from repro.gpu.kernel import LaunchConfig, finalize_kernel, makespan
from repro.gpu.profiler import KernelProfile
from repro.gpu.device import tesla_k20c


class TestMakespan:
    def test_empty(self):
        assert makespan([], 4) == 0.0

    def test_single_slot_sums(self):
        assert makespan([5, 3, 2], 1) == 10.0

    def test_enough_slots_takes_max(self):
        assert makespan([5, 3, 2], 8) == 5.0

    def test_lpt_balances(self):
        # 6 unit warps on 3 slots -> 2 each.
        assert makespan([1] * 6, 3) == 2.0

    def test_lpt_on_mixed_loads(self):
        # LPT: [9] | [7, 2] | [5, 4] -> 9.
        assert makespan([9, 7, 5, 4, 2], 3) == 9.0

    def test_slots_clamped_to_one(self):
        assert makespan([4, 4], 0) == 8.0

    def test_more_work_never_faster(self):
        base = makespan([3, 3, 3, 3], 2)
        more = makespan([3, 3, 3, 3, 3], 2)
        assert more >= base


class TestLaunchConfig:
    def test_concurrent_warps_capped_by_issue_slots(self):
        """Residency (832 warps) exceeds the K20c's issue width (78
        warps), so throughput slots equal the issue slots."""
        dev = tesla_k20c()
        config = LaunchConfig(regs_per_thread=16)
        assert config.concurrent_warps(dev) == dev.issue_warp_slots == 78

    def test_register_pressure_absorbed_by_surplus_residency(self):
        """Halving occupancy does not halve throughput while residency
        stays above the issue width — the reason kNearests-in-registers
        wins despite its occupancy cost."""
        dev = tesla_k20c()
        light = LaunchConfig(regs_per_thread=32).concurrent_warps(dev)
        heavy = LaunchConfig(regs_per_thread=160).concurrent_warps(dev)
        assert heavy == light == dev.issue_warp_slots

    def test_residency_limits_when_below_issue_width(self):
        """On a device with surplus issue width, occupancy is the
        binding constraint again."""
        dev = tesla_k20c()
        wide = dataclasses.replace(dev, cores_per_sm=2048,
                                   max_blocks_per_sm=2)
        light = LaunchConfig(regs_per_thread=16,
                             block_size=256).concurrent_warps(wide)
        # Two 256-thread blocks per SM -> 16 warps per SM resident.
        assert light == 16 * 13

    def test_concurrency_scale_applies(self):
        dev = tesla_k20c().with_concurrency_scale(0.25)
        config = LaunchConfig(regs_per_thread=16)
        scaled = config.concurrent_warps(dev)
        assert scaled == dev.issue_warp_slots
        assert scaled == pytest.approx(78 / 4, abs=1)


class TestFinalizeKernel:
    def test_sim_time_includes_launch_overhead(self):
        dev = tesla_k20c()
        model = default_cost_model()
        profile = KernelProfile(name="empty")
        finalize_kernel(profile, dev, cost_model=model)
        assert profile.sim_time_s == pytest.approx(
            model.kernel_launch_cycles / dev.clock_hz)

    def test_sim_time_scales_with_work(self):
        dev = tesla_k20c()
        p1 = KernelProfile(name="a", warp_cycles=[1e6] * 10)
        p2 = KernelProfile(name="b", warp_cycles=[1e6] * 100000)
        finalize_kernel(p1, dev)
        finalize_kernel(p2, dev)
        assert p2.sim_time_s > p1.sim_time_s

    def test_latency_bound_kernel(self):
        """Fewer warps than slots: time is the longest warp."""
        dev = tesla_k20c()
        model = CostModel(kernel_launch_cycles=0.0)
        profile = KernelProfile(name="a", warp_cycles=[100.0, 700.0])
        finalize_kernel(profile, dev, cost_model=model)
        assert profile.sim_time_s == pytest.approx(700.0 / dev.clock_hz)
