"""Tests for the simulated device spec and occupancy model."""

import dataclasses

import pytest

from repro.gpu.device import DeviceSpec, tesla_k20c


class TestDeviceSpec:
    def test_k20c_defaults(self):
        dev = tesla_k20c()
        assert dev.num_sms == 13
        assert dev.warp_size == 32
        assert dev.max_threads_per_sm == 2048
        assert dev.shared_mem_per_sm == 48 * 1024

    def test_paper_thresholds(self):
        """Section IV-D2: th1 = 24 bytes, th2 = 1020 bytes on the K20c."""
        dev = tesla_k20c()
        assert dev.shared_mem_threshold_th1 == 24
        assert dev.register_threshold_th2 == 255 * 4

    def test_max_concurrent_threads(self):
        dev = tesla_k20c()
        assert dev.max_concurrent_threads == 13 * 2048

    def test_invalid_num_sms(self):
        with pytest.raises(ValueError):
            DeviceSpec(name="bad", num_sms=0)

    def test_invalid_warp_multiple(self):
        with pytest.raises(ValueError):
            DeviceSpec(name="bad", num_sms=1, max_threads_per_sm=100)

    def test_with_global_mem_is_copy(self):
        dev = tesla_k20c()
        shrunk = dev.with_global_mem(1024)
        assert shrunk.global_mem_bytes == 1024
        assert dev.global_mem_bytes != 1024
        assert shrunk.num_sms == dev.num_sms

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            tesla_k20c().scaled(0)

    def test_concurrency_scale(self):
        dev = tesla_k20c().with_concurrency_scale(0.5)
        full = tesla_k20c().concurrent_threads()
        assert dev.concurrent_threads() == full // 2

    def test_concurrency_scale_floors_at_warp(self):
        dev = tesla_k20c().with_concurrency_scale(1e-9)
        assert dev.concurrent_threads() == dev.warp_size

    def test_l2_hit_rate_bounds(self):
        dev = tesla_k20c()
        assert dev.l2_hit_rate(0) == 1.0
        assert dev.l2_hit_rate(dev.l2_bytes) == 1.0
        assert dev.l2_hit_rate(2 * dev.l2_bytes) == pytest.approx(0.5)

    def test_spec_is_frozen(self):
        dev = tesla_k20c()
        with pytest.raises(dataclasses.FrozenInstanceError):
            dev.num_sms = 1


class TestOccupancy:
    def test_thread_limited(self):
        dev = tesla_k20c()
        occ = dev.occupancy(regs_per_thread=16, block_size=256)
        assert occ.threads_per_sm == 2048
        assert occ.limiter == "threads"

    def test_register_limited(self):
        dev = tesla_k20c()
        occ = dev.occupancy(regs_per_thread=64, block_size=256)
        # 64K registers / 64 per thread = 1024 threads.
        assert occ.threads_per_sm == 1024
        assert occ.limiter == "registers"

    def test_shared_limited(self):
        dev = tesla_k20c()
        occ = dev.occupancy(regs_per_thread=16,
                            shared_bytes_per_thread=96, block_size=256)
        # 48KB / (96 * 256) = 2 blocks -> 512 threads.
        assert occ.threads_per_sm == 512
        assert occ.limiter == "shared"

    def test_block_granularity(self):
        dev = tesla_k20c()
        occ = dev.occupancy(regs_per_thread=40, block_size=256)
        # 64K/40 = 1638 -> floor to whole 256-blocks = 1536.
        assert occ.threads_per_sm == 1536

    def test_oversubscribed_single_block_still_runs(self):
        dev = tesla_k20c()
        occ = dev.occupancy(regs_per_thread=100000, block_size=256)
        assert occ.threads_per_sm >= 256

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            tesla_k20c().occupancy(block_size=0)
        with pytest.raises(ValueError):
            tesla_k20c().occupancy(block_size=4096)

    def test_warps_per_sm(self):
        dev = tesla_k20c()
        occ = dev.occupancy(regs_per_thread=16)
        assert occ.warps_per_sm(32) == occ.threads_per_sm // 32

    def test_register_placement_lowers_occupancy(self):
        """Large kNearests in registers must reduce residency —
        the occupancy cost of register placement (Section IV-C2)."""
        dev = tesla_k20c()
        light = dev.occupancy(regs_per_thread=32)
        heavy = dev.occupancy(regs_per_thread=32 + 128)
        assert heavy.threads_per_sm < light.threads_per_sm
