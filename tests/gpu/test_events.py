"""Tests for the event constructors of the reference lane API."""

from repro.gpu import events as ev


class TestEventConstructors:
    def test_flop(self):
        assert ev.flop(3) == (ev.FLOP, 3)
        assert ev.flop() == (ev.FLOP, 1)

    def test_gload_gstore(self):
        assert ev.gload(128, 4) == (ev.GLOAD, 128, 4)
        assert ev.gstore(0, 16) == (ev.GSTORE, 0, 16)

    def test_shared_reg(self):
        assert ev.shared(2) == (ev.SHARED, 2)
        assert ev.reg() == (ev.REG, 1)

    def test_atomic_default_space(self):
        assert ev.atomic() == (ev.ATOMIC, "global")
        assert ev.atomic("shared") == (ev.ATOMIC, "shared")

    def test_branch_coerces_bool(self):
        assert ev.branch(1) == (ev.BRANCH, True)
        assert ev.branch(0) == (ev.BRANCH, False)

    def test_count(self):
        assert ev.count("distance_computations", 7) == (
            ev.COUNT, "distance_computations", 7)

    def test_kind_constants_distinct(self):
        kinds = {ev.FLOP, ev.GLOAD, ev.GSTORE, ev.SHARED, ev.REG,
                 ev.ATOMIC, ev.BRANCH, ev.COUNT}
        assert len(kinds) == 8
