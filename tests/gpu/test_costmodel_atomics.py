"""Tests for the cost model and atomic-operation helpers."""

import pytest

from repro.gpu.atomics import AtomicCounter, AtomicScalar
from repro.gpu.costmodel import CostModel, default_cost_model


class TestCostModel:
    def test_default_is_frozen_dataclass(self):
        model = default_cost_model()
        with pytest.raises(Exception):
            model.flop_cycles = 9.0

    def test_step_cost_components(self):
        model = CostModel(issue_cycles=1, flop_cycles=2,
                          global_txn_cycles=10, l2_txn_cycles=3,
                          shared_cycles=4, atomic_cycles=5,
                          branch_cycles=6, divergence_penalty=2)
        cost = model.step_cost(flops=3, transactions=2, l2_transactions=1,
                               shared=1, atomics=1, branch=True)
        assert cost == 1 + 6 + 20 + 3 + 4 + 5 + 6

    def test_divergence_doubles(self):
        model = CostModel(divergence_penalty=2.0)
        straight = model.step_cost(flops=10, branch=True)
        diverged = model.step_cost(flops=10, branch=True, divergent=True)
        assert diverged == pytest.approx(2 * straight)

    def test_with_override(self):
        model = default_cost_model().with_(global_txn_cycles=99.0)
        assert model.global_txn_cycles == 99.0
        assert default_cost_model().global_txn_cycles != 99.0

    def test_l2_cheaper_than_dram(self):
        model = default_cost_model()
        assert model.l2_txn_cycles < model.global_txn_cycles

    def test_gemm_flops_cheaper_than_scalar(self):
        model = default_cost_model()
        assert model.gemm_flop_cycles < model.flop_cycles


class TestAtomics:
    def test_counter_fetch_add_returns_old(self):
        counter = AtomicCounter()
        assert counter.fetch_add(5) == 0
        assert counter.fetch_add(2) == 5
        assert counter.value == 7
        assert counter.operations == 2

    def test_scalar_fetch_min(self):
        cell = AtomicScalar(10.0)
        assert cell.fetch_min(3.0) == 10.0
        assert cell.value == 3.0
        assert cell.fetch_min(7.0) == 3.0
        assert cell.value == 3.0

    def test_scalar_fetch_max(self):
        cell = AtomicScalar(1.0)
        cell.fetch_max(4.0)
        cell.fetch_max(2.0)
        assert cell.value == 4.0
        assert cell.operations == 2
