"""Tests for SIMT segment reconvergence in the warp fold."""

import numpy as np
import pytest

from repro.gpu.lanelog import LaneLog, fold_warp_logs
from repro.gpu.profiler import KernelProfile

ENTER = 0
BODY = 3


def _lane(segment_lengths):
    """A lane whose scan visits clusters of the given body lengths."""
    log = LaneLog()
    for length in segment_lengths:
        log.step(code=ENTER)
        for _ in range(length):
            log.step(code=BODY)
    return log


class TestReconvergence:
    def test_identical_lanes_unchanged(self):
        with_reconv = KernelProfile(name="a")
        fold_warp_logs([_lane([3, 2]), _lane([3, 2])], with_reconv,
                       reconverge_code=ENTER)
        without = KernelProfile(name="b")
        fold_warp_logs([_lane([3, 2]), _lane([3, 2])], without)
        assert with_reconv.warp_steps == without.warp_steps
        assert with_reconv.warp_efficiency == without.warp_efficiency

    def test_mismatched_segments_serialize(self):
        """Lane A: clusters of 1 and 9 steps; lane B: 9 and 1.  Without
        reconvergence the timeline is max(12, 12) = 12 steps; with it
        the warp waits at each boundary: (1+max) + ... = 20 steps."""
        profile = KernelProfile(name="k")
        fold_warp_logs([_lane([1, 9]), _lane([9, 1])], profile,
                       reconverge_code=ENTER)
        assert profile.warp_steps == (1 + 9) + (1 + 9)
        assert profile.lane_steps == 24
        assert profile.warp_efficiency == pytest.approx(24 / (32 * 20))

        flat = KernelProfile(name="flat")
        fold_warp_logs([_lane([1, 9]), _lane([9, 1])], flat)
        assert flat.warp_steps == 12

    def test_different_segment_counts(self):
        """A lane with fewer clusters idles through the extra ones."""
        profile = KernelProfile(name="k")
        fold_warp_logs([_lane([2]), _lane([2, 4])], profile,
                       reconverge_code=ENTER)
        assert profile.warp_steps == (1 + 2) + (1 + 4)

    def test_reconvergence_never_reduces_steps(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            lanes = [_lane(rng.integers(0, 6, size=rng.integers(1, 5)))
                     for _ in range(rng.integers(2, 8))]
            flat = KernelProfile(name="flat")
            fold_warp_logs(lanes, flat)
            reconv = KernelProfile(name="reconv")
            lanes2 = [_lane_copy(lane) for lane in lanes]
            fold_warp_logs(lanes2, reconv, reconverge_code=ENTER)
            assert reconv.warp_steps >= flat.warp_steps
            assert reconv.lane_steps == flat.lane_steps

    def test_counters_preserved_under_alignment(self):
        """Reconvergence moves steps in time but must not change
        flop/transaction totals."""
        a = _lane([2, 5])
        for i in range(len(a)):
            a.flops[i] = 2.0
            a.txns[i] = 1.0
        b = _lane([5, 2])
        profile = KernelProfile(name="k")
        fold_warp_logs([a, b], profile, reconverge_code=ENTER)
        assert profile.flops == pytest.approx(2.0 * len(a.flops))
        assert profile.gl_transactions == pytest.approx(len(a.txns))


def _lane_copy(log):
    new = LaneLog()
    for i in range(len(log)):
        new.step(flops=log.flops[i], txns=log.txns[i], l2=log.l2[i],
                 heap_ops=log.heap_ops[i], atomics=log.atomics[i],
                 code=log.code[i])
    return new
