"""Tests for lane logs, warp folding and ragged accounting."""

import pytest

from repro.gpu.costmodel import CostModel
from repro.gpu.lanelog import (HEAP_IN_GLOBAL, HEAP_IN_REGISTERS,
                               HEAP_IN_SHARED, LaneLog, account_ragged,
                               fold_warp_logs)
from repro.gpu.profiler import KernelProfile


def _log(steps, flops=1.0, txns=0.0, l2=0.0, heap_ops=0.0, code=3):
    log = LaneLog()
    for _ in range(steps):
        log.step(flops=flops, txns=txns, l2=l2, heap_ops=heap_ops, code=code)
    return log


class TestFoldWarpLogs:
    def test_uniform_logs_full_efficiency(self):
        profile = KernelProfile(name="k")
        fold_warp_logs([_log(5) for _ in range(32)], profile)
        assert profile.warp_steps == 5
        assert profile.lane_steps == 160
        assert profile.warp_efficiency == 1.0
        assert profile.divergent_branches == 0

    def test_ragged_logs_reduce_efficiency(self):
        profile = KernelProfile(name="k")
        fold_warp_logs([_log(1), _log(9)], profile)
        assert profile.warp_steps == 9
        assert profile.lane_steps == 10
        assert profile.warp_efficiency == pytest.approx(10 / (32 * 9))

    def test_code_disagreement_is_divergence(self):
        profile = KernelProfile(name="k")
        a = LaneLog()
        a.step(code=3)
        b = LaneLog()
        b.step(code=2)
        fold_warp_logs([a, b], profile)
        assert profile.divergent_branches == 1

    def test_divergence_penalty_on_compute_only(self):
        model = CostModel(issue_cycles=10.0, branch_cycles=0.0,
                          global_txn_cycles=100.0, divergence_penalty=2.0)
        agree = KernelProfile(name="a")
        a1, a2 = LaneLog(), LaneLog()
        a1.step(txns=1, code=3)
        a2.step(txns=1, code=3)
        fold_warp_logs([a1, a2], agree, model)

        disagree = KernelProfile(name="d")
        d1, d2 = LaneLog(), LaneLog()
        d1.step(txns=1, code=3)
        d2.step(txns=1, code=2)
        fold_warp_logs([d1, d2], disagree, model)

        # Only the 10-cycle issue part doubles; memory (200) does not.
        assert agree.cycles == pytest.approx(10 + 200)
        assert disagree.cycles == pytest.approx(20 + 200)

    def test_flops_cost_is_max_lane(self):
        model = CostModel(issue_cycles=0.0, branch_cycles=0.0,
                          flop_cycles=1.0)
        profile = KernelProfile(name="k")
        a = _log(1, flops=100.0)
        b = _log(1, flops=1.0)
        fold_warp_logs([a, b], profile, model)
        assert profile.cycles == pytest.approx(100.0)
        assert profile.flops == pytest.approx(101.0)

    def test_l2_cheaper_than_dram(self):
        model = CostModel(issue_cycles=0.0, branch_cycles=0.0)
        dram = KernelProfile(name="dram")
        fold_warp_logs([_log(4, txns=1.0)], dram, model)
        cached = KernelProfile(name="l2")
        fold_warp_logs([_log(4, l2=1.0)], cached, model)
        assert cached.cycles < dram.cycles
        assert cached.l2_transactions == 4
        assert dram.gl_transactions == 4

    def test_heap_placement_costs_ordered(self):
        """registers <= shared <= global-coalesced <= global-layout1."""
        model = CostModel()

        def logs():
            return [_log(6, heap_ops=4.0) for _ in range(32)]

        cycles = {}
        for placement, coalesced in ((HEAP_IN_REGISTERS, True),
                                     (HEAP_IN_SHARED, True),
                                     (HEAP_IN_GLOBAL, True),
                                     (HEAP_IN_GLOBAL, False)):
            profile = KernelProfile(name="k")
            fold_warp_logs(logs(), profile, model, heap_placement=placement,
                           heap_coalesced=coalesced)
            cycles[(placement, coalesced)] = profile.cycles
        assert (cycles[(HEAP_IN_REGISTERS, True)]
                <= cycles[(HEAP_IN_SHARED, True)]
                <= cycles[(HEAP_IN_GLOBAL, True)]
                <= cycles[(HEAP_IN_GLOBAL, False)])

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            fold_warp_logs([_log(1)], KernelProfile(name="k"),
                           heap_placement="l3")

    def test_empty_logs_noop(self):
        profile = KernelProfile(name="k")
        assert fold_warp_logs([], profile) == 0.0
        assert fold_warp_logs([LaneLog()], profile) == 0.0
        assert profile.n_warps == 0

    def test_too_many_lanes_rejected(self):
        with pytest.raises(ValueError):
            fold_warp_logs([_log(1)] * 33, KernelProfile(name="k"))

    def test_warp_cycles_recorded(self):
        profile = KernelProfile(name="k")
        fold_warp_logs([_log(2)], profile)
        fold_warp_logs([_log(2)], profile)
        assert profile.n_warps == 2
        assert len(profile.warp_cycles) == 2
        assert sum(profile.warp_cycles) == pytest.approx(profile.cycles)


class TestAccountRagged:
    def test_counts(self):
        profile = KernelProfile(name="k")
        account_ragged(profile, [4, 2, 6], flops_per_step=3.0)
        assert profile.n_threads == 3
        assert profile.warp_steps == 6   # one warp, max trip 6
        assert profile.lane_steps == 12
        assert profile.flops == pytest.approx(36.0)

    def test_multiple_warps(self):
        profile = KernelProfile(name="k")
        account_ragged(profile, [2] * 64)
        assert profile.n_warps == 2
        assert profile.warp_steps == 4

    def test_empty_noop(self):
        profile = KernelProfile(name="k")
        account_ragged(profile, [])
        assert profile.n_warps == 0

    def test_atomics_counted_and_charged(self):
        model = CostModel()
        with_atomics = KernelProfile(name="a")
        account_ragged(with_atomics, [1] * 32, atomics_total=10,
                       cost_model=model)
        without = KernelProfile(name="b")
        account_ragged(without, [1] * 32, cost_model=model)
        assert with_atomics.atomics == 10
        assert with_atomics.cycles == pytest.approx(
            without.cycles + 10 * model.atomic_cycles)

    def test_txn_accounting(self):
        profile = KernelProfile(name="k")
        account_ragged(profile, [5] * 32, txns_per_warp_step=2.0,
                       l2_per_warp_step=3.0)
        assert profile.gl_transactions == pytest.approx(10.0)
        assert profile.l2_transactions == pytest.approx(15.0)
