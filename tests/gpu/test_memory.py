"""Tests for the simulated memory: allocator, arrays, coalescing."""

import numpy as np
import pytest

from repro.errors import OutOfDeviceMemory
from repro.gpu.memory import (GlobalMemory, RegisterArray, SharedArray,
                              coalesced_transactions)
from repro.gpu.device import tesla_k20c


class TestCoalescing:
    def test_single_access_one_transaction(self):
        assert coalesced_transactions([(0, 4)]) == 1

    def test_warp_of_consecutive_floats_coalesces(self):
        accesses = [(i * 4, 4) for i in range(32)]
        assert coalesced_transactions(accesses) == 1

    def test_strided_accesses_do_not_coalesce(self):
        accesses = [(i * 1024, 4) for i in range(32)]
        assert coalesced_transactions(accesses) == 32

    def test_access_spanning_segments(self):
        assert coalesced_transactions([(120, 16)]) == 2

    def test_duplicate_addresses_merge(self):
        accesses = [(64, 4)] * 32
        assert coalesced_transactions(accesses) == 1

    def test_empty(self):
        assert coalesced_transactions([]) == 0

    def test_zero_length_access_ignored(self):
        assert coalesced_transactions([(0, 0)]) == 0

    def test_two_groups(self):
        accesses = [(0, 4), (4, 4), (1000, 4)]
        assert coalesced_transactions(accesses) == 2


class TestGlobalMemory:
    def test_alloc_and_capacity(self):
        mem = GlobalMemory(tesla_k20c(global_mem_bytes=4096))
        arr = mem.alloc(256, dtype=np.float32)
        assert arr.nbytes == 1024
        assert mem.allocated_bytes == 1024

    def test_out_of_memory_raises(self):
        mem = GlobalMemory(tesla_k20c(global_mem_bytes=1024))
        with pytest.raises(OutOfDeviceMemory) as err:
            mem.alloc(1024, dtype=np.float32)
        assert err.value.requested == 4096
        assert err.value.capacity == 1024

    def test_free_returns_bytes(self):
        mem = GlobalMemory(tesla_k20c(global_mem_bytes=8192))
        arr = mem.alloc(1024, dtype=np.float32)
        mem.free(arr)
        assert mem.allocated_bytes == 0

    def test_double_free_is_idempotent(self):
        mem = GlobalMemory(tesla_k20c(global_mem_bytes=8192))
        arr = mem.alloc(16, dtype=np.float32)
        mem.free(arr)
        mem.free(arr)
        assert mem.allocated_bytes == 0

    def test_free_foreign_array_rejected(self):
        mem_a = GlobalMemory(tesla_k20c(global_mem_bytes=8192))
        mem_b = GlobalMemory(tesla_k20c(global_mem_bytes=8192))
        arr = mem_a.alloc(16)
        with pytest.raises(ValueError):
            mem_b.free(arr)

    def test_peak_tracking(self):
        mem = GlobalMemory(tesla_k20c(global_mem_bytes=8192))
        a = mem.alloc(512, dtype=np.float32)
        mem.free(a)
        mem.alloc(128, dtype=np.float32)
        assert mem.peak_bytes == 2048

    def test_addresses_are_aligned_and_disjoint(self):
        mem = GlobalMemory(tesla_k20c(global_mem_bytes=1 << 20))
        a = mem.alloc(100, dtype=np.float32)
        b = mem.alloc(100, dtype=np.float32)
        assert a.base_addr % 256 == 0
        assert b.base_addr >= a.base_addr + a.nbytes


class TestGlobalArray:
    def _array(self, shape, dtype=np.float32):
        mem = GlobalMemory(tesla_k20c())
        data = np.arange(np.prod(shape), dtype=dtype).reshape(shape)
        return mem.place(data)

    def test_load_yields_event_then_value(self):
        arr = self._array((8,))
        gen = arr.load(3)
        event = next(gen)
        assert event[0] == "gload"
        assert event[1] == arr.base_addr + 3 * 4
        with pytest.raises(StopIteration) as stop:
            next(gen)
        assert stop.value.value == 3.0

    def test_store_writes(self):
        arr = self._array((8,))
        gen = arr.store(2, 99.0)
        next(gen)
        with pytest.raises(StopIteration):
            next(gen)
        assert arr.data[2] == 99.0

    def test_vload_returns_slice(self):
        arr = self._array((16,))
        gen = arr.vload(4, 4)
        event = next(gen)
        assert event[2] == 16  # 4 floats
        with pytest.raises(StopIteration) as stop:
            next(gen)
        np.testing.assert_array_equal(stop.value.value, [4, 5, 6, 7])

    def test_row_load_event_count_matches_float4(self):
        arr = self._array((4, 10))
        gen = arr.row_load(1)
        events = []
        try:
            while True:
                events.append(next(gen))
        except StopIteration as stop:
            row = stop.value
        # 10 floats = 40 bytes -> 3 float4 chunks (16+16+8).
        assert len(events) == 3
        np.testing.assert_array_equal(row, np.arange(10, 20))

    def test_2d_addressing(self):
        arr = self._array((4, 5))
        assert arr.addr((2, 3)) == arr.base_addr + (2 * 5 + 3) * 4


class TestScratchArrays:
    def test_shared_array_size(self):
        arr = SharedArray(20)
        assert arr.nbytes_per_thread == 80
        assert np.all(np.isinf(arr.values))

    def test_register_array_size(self):
        arr = RegisterArray(5, fill=0.0)
        assert arr.nbytes_per_thread == 20
        assert np.all(arr.values == 0.0)

    def test_access_events(self):
        shared_event = next(SharedArray(4).access(3))
        assert shared_event == ("shared", 3)
        reg_event = next(RegisterArray(4).access(2))
        assert reg_event == ("reg", 2)
