"""Property-based cross-validation of the two warp executors.

The lane-level generator executor (:mod:`repro.gpu.warp`) and the
fold-based production path (:mod:`repro.gpu.lanelog`) implement the
same lock-step model independently; on workloads expressible in both
(per-step flops + a branch outcome) they must agree exactly on steps,
efficiency, flop totals, divergence counts and cycles.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import events as ev
from repro.gpu.costmodel import CostModel
from repro.gpu.lanelog import LaneLog, fold_warp_logs
from repro.gpu.profiler import KernelProfile
from repro.gpu.warp import run_warp_lanes

# Codes restricted to {2, 3} so the boolean branch outcome of the
# lane-level executor carries the same divergence information.
_lane_strategy = st.lists(
    st.tuples(st.floats(min_value=0, max_value=50, allow_nan=False),
              st.integers(min_value=2, max_value=3)),
    min_size=1, max_size=30)


def _model():
    # branch_cycles folded into every step by both executors; the
    # lane-level executor charges branch_cycles only on branch steps,
    # so every step here is a branch step.
    return CostModel(issue_cycles=1.0, flop_cycles=1.0, branch_cycles=2.0,
                     divergence_penalty=2.0)


@given(st.lists(_lane_strategy, min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_fold_matches_lane_executor(lanes):
    model = _model()

    # Lane-level: one (flop, branch) pair of events is *two* lock-step
    # instructions, so build single-event steps instead: a flop payload
    # attached to a branch is expressed as one branch event following a
    # flop event would double the step count. To keep both sides
    # identical, emit exactly one branch event per step and account
    # flops through the fold-only path separately below.
    def lane_gen(steps):
        def gen():
            for flops, code in steps:
                yield ev.flop(flops)
            return
        return gen()

    ref_flops = KernelProfile(name="ref")
    run_warp_lanes([lane_gen(lane) for lane in lanes], ref_flops, model)

    fold = KernelProfile(name="fold")
    logs = []
    for lane in lanes:
        log = LaneLog()
        for flops, code in lane:
            # Same code for every lane step -> no divergence, matching
            # the flop-only reference stream.
            log.step(flops=flops, code=0)
        logs.append(log)
    fold_warp_logs(logs, fold, model)

    assert fold.warp_steps == ref_flops.warp_steps
    assert fold.lane_steps == ref_flops.lane_steps
    assert fold.flops == pytest.approx(ref_flops.flops)
    assert fold.warp_efficiency == pytest.approx(ref_flops.warp_efficiency)


@given(st.lists(_lane_strategy, min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_fold_divergence_matches_branch_events(lanes):
    model = _model()

    def lane_gen(steps):
        def gen():
            for flops, code in steps:
                yield ev.branch(code == 3)
        return gen()

    ref = KernelProfile(name="ref")
    run_warp_lanes([lane_gen(lane) for lane in lanes], ref, model)

    fold = KernelProfile(name="fold")
    logs = []
    for lane in lanes:
        log = LaneLog()
        for flops, code in lane:
            log.step(flops=0.0, code=code)
        logs.append(log)
    fold_warp_logs(logs, fold, model)

    assert fold.warp_steps == ref.warp_steps
    assert fold.divergent_branches == ref.divergent_branches
    assert fold.cycles == pytest.approx(ref.cycles)


def test_fold_and_lane_agree_on_memory_free_scan():
    """A miniature level-2-like trace: mixed trip counts, shared
    outcomes; both executors give identical efficiency and cycles."""
    model = _model()
    trips = [1, 4, 4, 9]

    def lane_gen(n):
        def gen():
            for _ in range(n):
                yield ev.branch(True)
        return gen()

    ref = KernelProfile(name="ref")
    run_warp_lanes([lane_gen(n) for n in trips], ref, model)

    fold = KernelProfile(name="fold")
    logs = []
    for n in trips:
        log = LaneLog()
        for _ in range(n):
            log.step(code=2)
        logs.append(log)
    fold_warp_logs(logs, fold, model)

    assert fold.warp_steps == ref.warp_steps == 9
    assert fold.cycles == pytest.approx(ref.cycles)
    assert fold.warp_efficiency == pytest.approx(ref.warp_efficiency)
