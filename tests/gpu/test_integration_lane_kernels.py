"""Integration: generator kernels over simulated memory.

Exercises the lane-level executor together with the event-producing
GlobalArray accessors — a miniature but complete use of the reference
GPU programming model (the style Section III's kernels are written in).
"""

import numpy as np
import pytest

from repro.gpu import events as ev
from repro.gpu.device import tesla_k20c
from repro.gpu.kernel import LaunchConfig, finalize_kernel
from repro.gpu.memory import GlobalMemory
from repro.gpu.warp import run_lanes


@pytest.fixture
def memory():
    return GlobalMemory(tesla_k20c())


class TestVectorAddKernel:
    def test_coalesced_saxpy(self, memory):
        """Classic saxpy: coalesced loads/stores, full efficiency."""
        n = 64
        a = memory.place(np.arange(n, dtype=np.float32))
        b = memory.place(np.arange(n, dtype=np.float32) * 2)
        out = memory.alloc(n, dtype=np.float32)

        def kernel(tid):
            x = yield from a.load(tid)
            y = yield from b.load(tid)
            yield ev.flop(2)
            yield from out.store(tid, 2.0 * x + y)

        profile = run_lanes(kernel, n)
        np.testing.assert_allclose(out.data, np.arange(n) * 4)
        assert profile.warp_efficiency == 1.0
        # Per warp step of 32 4-byte accesses: exactly one transaction.
        assert profile.gl_transactions == 2 * 3  # 2 warps x (2 ld + 1 st)

    def test_strided_version_costs_more(self, memory):
        n = 32
        a = memory.place(np.zeros(n * 64, dtype=np.float32))

        def coalesced(tid):
            yield from a.load(tid)

        def strided(tid):
            yield from a.load(tid * 64)

        fast = run_lanes(coalesced, n, name="fast")
        slow = run_lanes(strided, n, name="slow")
        assert slow.gl_transactions > fast.gl_transactions
        assert slow.cycles > fast.cycles


class TestDistanceKernel:
    def test_row_major_distance(self, memory):
        """A per-lane Euclidean distance over row-major points."""
        points = memory.place(
            np.asarray([[0.0, 0.0], [3.0, 4.0], [6.0, 8.0]],
                       dtype=np.float32))
        query = np.zeros(2)
        results = {}

        def kernel(tid):
            row = yield from points.row_load(tid)
            yield ev.flop(3 * 2 + 1)
            yield ev.count("distance_computations")
            results[tid] = float(np.sqrt(((row - query) ** 2).sum()))

        profile = run_lanes(kernel, 3)
        assert results == {0: 0.0, 1: 5.0, 2: 10.0}
        assert profile.get_count("distance_computations") == 3

    def test_finalized_time_positive(self, memory):
        a = memory.place(np.zeros(8, dtype=np.float32))

        def kernel(tid):
            yield from a.load(tid)

        profile = run_lanes(kernel, 8)
        finalize_kernel(profile, tesla_k20c(), LaunchConfig())
        assert profile.sim_time_s > 0
