"""Tests for the lane-level reference executor and cross-validation
against the warp-vectorised executor."""

import numpy as np
import pytest

from repro.gpu import events as ev
from repro.gpu.costmodel import CostModel
from repro.gpu.executor import WarpExecutor, transactions_for
from repro.gpu.profiler import KernelProfile
from repro.gpu.warp import run_lanes, run_warp_lanes


def _model():
    return CostModel()


class TestLaneExecutor:
    def test_uniform_lanes_full_efficiency(self):
        def kernel(tid):
            for _ in range(10):
                yield ev.flop(2)

        profile = run_lanes(kernel, 32)
        assert profile.warp_steps == 10
        assert profile.lane_steps == 320
        assert profile.warp_efficiency == 1.0
        assert profile.flops == 640

    def test_ragged_lanes_lower_efficiency(self):
        def kernel(tid):
            for _ in range(1 if tid % 2 else 10):
                yield ev.flop(1)

        profile = run_lanes(kernel, 32)
        assert profile.warp_steps == 10
        assert profile.lane_steps == 16 * 1 + 16 * 10
        assert profile.warp_efficiency == pytest.approx(176 / 320)

    def test_divergent_branch_counted(self):
        def kernel(tid):
            yield ev.branch(tid % 2 == 0)

        profile = run_lanes(kernel, 32)
        assert profile.divergent_branches == 1
        assert profile.branches == 1

    def test_uniform_branch_not_divergent(self):
        def kernel(tid):
            yield ev.branch(True)

        profile = run_lanes(kernel, 32)
        assert profile.divergent_branches == 0

    def test_coalesced_loads_one_transaction(self):
        def kernel(tid):
            yield ev.gload(tid * 4, 4)

        profile = run_lanes(kernel, 32)
        assert profile.gl_transactions == 1
        assert profile.gl_requests == 32

    def test_scattered_loads_many_transactions(self):
        def kernel(tid):
            yield ev.gload(tid * 4096, 4)

        profile = run_lanes(kernel, 32)
        assert profile.gl_transactions == 32

    def test_count_events_are_free(self):
        def kernel(tid):
            yield ev.count("distance_computations", 2)
            yield ev.flop(1)

        profile = run_lanes(kernel, 4)
        assert profile.get_count("distance_computations") == 8
        # The count-only step consumed no cycles and no warp step.
        assert profile.warp_steps == 1

    def test_atomics_serialize_in_cost(self):
        def with_atomics(tid):
            yield ev.atomic()

        def without(tid):
            yield ev.flop(0)

        model = _model()
        p1 = run_lanes(with_atomics, 32, cost_model=model)
        p2 = run_lanes(without, 32, cost_model=model)
        assert p1.cycles >= p2.cycles + 31 * model.atomic_cycles

    def test_too_many_lanes_rejected(self):
        profile = KernelProfile(name="x")
        lanes = [iter(()) for _ in range(33)]
        with pytest.raises(ValueError):
            run_warp_lanes(lanes, profile)

    def test_unknown_event_rejected(self):
        def kernel(tid):
            yield ("bogus", 1)

        with pytest.raises(ValueError):
            run_lanes(kernel, 1)

    def test_shared_and_reg_events(self):
        def kernel(tid):
            yield ev.shared(3)
            yield ev.reg(2)

        profile = run_lanes(kernel, 2)
        assert profile.shared_accesses == 6
        assert profile.reg_accesses == 4


class TestCrossValidation:
    """The warp-vectorised executor must agree with the lane-level
    reference on identical workloads."""

    def test_flop_kernel_agrees(self):
        trips = [3, 7, 7, 1, 9, 9, 9, 2] * 4  # 32 lanes

        def kernel(tid):
            for _ in range(trips[tid]):
                yield ev.flop(4)

        ref = run_lanes(kernel, 32, cost_model=_model())

        vec = KernelProfile(name="vec")
        ex = WarpExecutor(vec, _model())
        remaining = np.asarray(trips)
        for _ in range(max(trips)):
            active = int((remaining > 0).sum())
            ex.step(active, flops_max=4.0)
            remaining -= 1
        ex.end_warp()

        assert vec.warp_steps == ref.warp_steps
        assert vec.lane_steps == ref.lane_steps
        assert vec.flops == ref.flops
        assert vec.warp_efficiency == pytest.approx(ref.warp_efficiency)
        assert vec.cycles == pytest.approx(ref.cycles)

    def test_memory_kernel_agrees(self):
        addrs = [tid * 256 for tid in range(32)]

        def kernel(tid):
            yield ev.gload(addrs[tid], 4)

        ref = run_lanes(kernel, 32, cost_model=_model())

        vec = KernelProfile(name="vec")
        ex = WarpExecutor(vec, _model())
        ex.step(32, gl_addrs=np.asarray(addrs), gl_nbytes=4)
        ex.end_warp()

        assert vec.gl_transactions == ref.gl_transactions
        assert vec.cycles == pytest.approx(ref.cycles)


class TestTransactionsFor:
    def test_matches_scalar_model(self):
        addrs = np.asarray([0, 4, 8, 1000])
        assert transactions_for(addrs, 4) == 2

    def test_spanning(self):
        assert transactions_for(np.asarray([120]), 16) == 2

    def test_empty(self):
        assert transactions_for(np.asarray([]), 4) == 0
