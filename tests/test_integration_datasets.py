"""Integration: all engines agree across dataset regimes.

Uses reduced-size instances of every stand-in *generator* (the full
stand-ins belong to the benchmarks) so the whole matrix of
(data regime) x (engine) stays fast while covering the regimes that
stress different code paths: road networks (dense low-d), low
intrinsic dimension mixtures, colour clusters, weakly-clusterable
high-d, repeated records, skewed features.
"""

import numpy as np
import pytest

from repro import knn_join
from repro.datasets import synthetic

K = 8


def _generators():
    return {
        "roads": lambda rng: synthetic.road_network_3d(500, rng, n_roads=8),
        "mixture": lambda rng: synthetic.gaussian_mixture(
            500, 24, rng, n_clusters=12, intrinsic_dim=5),
        "colors": lambda rng: synthetic.color_clusters(500, rng,
                                                       n_clusters=10),
        "highdim": lambda rng: synthetic.high_dim_weakly_clustered(
            90, 600, rng, intrinsic_dim=40),
        "repeated": lambda rng: synthetic.repeated_records(
            500, 20, rng, n_patterns=25),
        "skewed": lambda rng: synthetic.skewed_features(
            400, 48, rng, n_clusters=10),
        "sparse": lambda rng: synthetic.sparse_high_dim(
            300, 300, rng, n_groups=8, intrinsic_dim=12),
    }


@pytest.fixture(scope="module")
def regimes():
    rng = np.random.default_rng(99)
    data = {}
    for name, gen in _generators().items():
        points = gen(rng)
        data[name] = (points, knn_join(points, points, K, method="brute"))
    return data


@pytest.mark.parametrize("regime", sorted(_generators()))
@pytest.mark.parametrize("method", ["sweet", "ti-gpu", "ti-cpu", "cublas",
                                    "kdtree"])
def test_engine_agrees_with_oracle(regimes, regime, method):
    points, oracle = regimes[regime]
    result = knn_join(points, points, K, method=method, seed=0)
    assert result.matches(oracle), (regime, method)


@pytest.mark.parametrize("regime,min_saved", [
    ("roads", 0.7), ("mixture", 0.7), ("colors", 0.7), ("repeated", 0.8),
])
def test_clusterable_regimes_filter_well(regimes, regime, min_saved):
    points, _ = regimes[regime]
    result = knn_join(points, points, K, method="sweet", seed=0)
    assert result.stats.saved_fraction > min_saved


def test_highdim_regime_filters_poorly(regimes):
    """The arcene regime: loose TI bounds, little savings."""
    points, _ = regimes["highdim"]
    result = knn_join(points, points, K, method="ti-cpu", seed=0)
    assert result.stats.saved_fraction < 0.6


def test_sweet_never_slower_than_basic(regimes):
    """Sweet's whole point: it dominates the naive TI port."""
    for regime in ("roads", "mixture", "colors"):
        points, _ = regimes[regime]
        sweet = knn_join(points, points, K, method="sweet", seed=0)
        basic = knn_join(points, points, K, method="ti-gpu", seed=0)
        assert sweet.sim_time_s <= basic.sim_time_s * 1.1, regime
