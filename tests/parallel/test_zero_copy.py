"""Zero-copy fan-out: disk-backed indexes ship a PlanHandle, not arrays.

When a query runs against a saved :class:`repro.index.Index` on a
process pool, each ShardJob must carry only the index *path* and its
``(fingerprint, version)`` key — never the target points or member
lists — and the workers must reattach the shared read-only mmap and
still return bit-identical answers.
"""

import pickle

import numpy as np
import pytest

from repro import SweetKNN
from repro.index import Index
from repro.parallel import shutdown_pools


@pytest.fixture
def big_saved(tmp_path):
    """A target set large enough that shipping it would dominate the
    pickled payload, saved to disk."""
    rng = np.random.default_rng(11)
    centers = rng.normal(scale=6.0, size=(12, 10))
    targets = np.concatenate(
        [center + rng.normal(scale=0.5, size=(200, 10))
         for center in centers])
    path = tmp_path / "big"
    Index(targets, seed=2).save(path)
    return path, targets


class _CapturingPool:
    def __init__(self, inner, captured):
        self._inner = inner
        self._captured = captured
        self.kind = inner.kind

    def run(self, tasks):
        self._captured.extend(tasks)
        return self._inner.run(tasks)


def _capture_tasks(monkeypatch, captured):
    from repro.engine import executor
    from repro.parallel import get_pool as real_get_pool

    monkeypatch.setattr(
        executor, "get_pool",
        lambda workers, kind: _CapturingPool(real_get_pool(workers, kind),
                                             captured))


class TestPayload:
    def test_process_pool_ships_handle_not_arrays(self, big_saved, rng,
                                                  monkeypatch):
        path, targets = big_saved
        index = Index.load(path, mmap=True)
        knn = SweetKNN.from_index(index, method="ti-cpu")
        queries = rng.normal(size=(40, targets.shape[1]))

        captured = []
        _capture_tasks(monkeypatch, captured)
        result = knn.query(queries, 5, workers=2, pool="process")

        assert result.stats.extra["zero_copy"] is True
        assert captured, "no tasks reached the pool"
        for task in captured:
            job = task.job
            assert job.targets is None
            assert job.plan is None
            assert job.handle is not None
            assert job.handle.index_path == index.source_path
            assert job.handle.index_key == index.key
            # The wire payload is O(queries), not O(targets): the
            # 2400x10 target set (plus member lists of the same order)
            # never crosses the process boundary.
            payload = len(pickle.dumps(task))
            assert payload < targets.nbytes // 2, payload

    def test_thread_pool_keeps_in_process_plan(self, big_saved, rng,
                                               monkeypatch):
        """Threads share memory already; the mmap indirection is only
        for process pools."""
        path, targets = big_saved
        knn = SweetKNN.from_index(Index.load(path), method="ti-cpu")
        queries = rng.normal(size=(64, targets.shape[1]))

        captured = []
        _capture_tasks(monkeypatch, captured)
        result = knn.query(queries, 5, workers=2, pool="thread")

        assert result.stats.extra["zero_copy"] is False
        assert all(task.job.handle is None for task in captured)

    def test_in_memory_index_still_ships_arrays(self, clustered_points,
                                                rng, monkeypatch):
        """No disk image -> nothing for workers to reattach; the job
        must fall back to shipping the plan."""
        knn = SweetKNN.from_index(Index(clustered_points, seed=2),
                                  method="ti-cpu")
        queries = rng.normal(size=(64, clustered_points.shape[1]))

        captured = []
        _capture_tasks(monkeypatch, captured)
        result = knn.query(queries, 5, workers=2, pool="process")

        assert result.stats.extra["zero_copy"] is False
        assert all(task.job.handle is None for task in captured)


class TestParity:
    @pytest.mark.parametrize("method", ["ti-cpu", "sweet"])
    def test_mmap_served_results_bit_identical(self, big_saved, rng,
                                               method):
        path, targets = big_saved
        knn = SweetKNN.from_index(Index.load(path, mmap=True),
                                  method=method)
        queries = rng.normal(size=(64, targets.shape[1]))
        serial = knn.query(queries, 6)
        sharded = knn.query(queries, 6, workers=2, pool="process")
        assert sharded.stats.extra["zero_copy"] is True
        np.testing.assert_array_equal(sharded.indices, serial.indices)
        np.testing.assert_array_equal(sharded.distances, serial.distances)
        assert sharded.stats.level2_distance_computations == \
            serial.stats.level2_distance_computations
        assert sharded.stats.examined_points == serial.stats.examined_points

    def test_two_pools_share_one_disk_image(self, big_saved, rng):
        """Successive zero-copy queries keep answering correctly once
        the workers hold the mmap (the reuse path, not just cold
        attach)."""
        path, targets = big_saved
        knn = SweetKNN.from_index(Index.load(path, mmap=True),
                                  method="ti-cpu")
        for size in (20, 45):
            queries = rng.normal(size=(size, targets.shape[1]))
            serial = knn.query(queries, 4)
            sharded = knn.query(queries, 4, workers=2, pool="process")
            np.testing.assert_array_equal(sharded.indices, serial.indices)
            np.testing.assert_array_equal(sharded.distances,
                                          serial.distances)


def teardown_module(module):
    shutdown_pools()
