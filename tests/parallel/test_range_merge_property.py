"""Shard-merge determinism for variable-cardinality results.

The property: with exact duplicate points in the data — so duplicate
distances land in every row — the merged CSR result (indptr, indices,
distances) is *bit-identical* across {1, 2, 4} workers and every pool
kind, for every range-result engine.  Tie-breaking therefore cannot
depend on shard boundaries or arrival order: rows are
(distance, index)-lexsorted, and the lexsort key is total once equal
distances fall back to the index.

Plus direct unit tests of :func:`repro.core.result.merge_range_batches`
covering overlap dedup and coverage validation.
"""

import numpy as np
import pytest

from repro.core.result import (JoinStats, RangeResult, merge_range_batches,
                               merge_results)
from repro.engine import get_engine
from repro.engine.executor import execute


def _duplicated_points(seed=7, base=60, copies=3, dim=4):
    """A dataset where every point appears ``copies`` times, forcing
    duplicate distances (including zero-distance ties) in each row."""
    rng = np.random.default_rng(seed)
    base_points = rng.normal(size=(base, dim))
    points = np.vstack([base_points] * copies)
    # a little jitter on the *order* only: shuffle deterministically so
    # duplicates are not shard-contiguous
    perm = np.random.default_rng(seed + 1).permutation(len(points))
    return np.ascontiguousarray(points[perm])


def _run(method, points, workers, pool, **options):
    spec = get_engine(method)
    return execute(spec, points, points, options.pop("k", 0),
                   rng=np.random.default_rng(11), workers=workers,
                   pool=pool, query_batch_size=23, **options)


def _assert_bit_identical(sharded, serial):
    np.testing.assert_array_equal(sharded.indptr, serial.indptr)
    np.testing.assert_array_equal(sharded.indices, serial.indices)
    # bitwise, not allclose: tie-breaking must not perturb payloads
    assert np.array_equal(sharded.distances, serial.distances)
    assert (sharded.stats.predicate_accepted_pairs
            == serial.stats.predicate_accepted_pairs)


class TestShardMergeProperty:
    @pytest.fixture(scope="class")
    def points(self):
        return _duplicated_points()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("pool", ["process", "thread", "serial"])
    def test_range_join_tie_breaking(self, points, workers, pool):
        serial = _run("range-join", points, None, None, eps=1.5)
        sharded = _run("range-join", points, workers, pool, eps=1.5)
        _assert_bit_identical(sharded, serial)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("pool", ["process", "thread", "serial"])
    def test_self_join_tie_breaking(self, points, workers, pool):
        serial = _run("self-join-eps", points, None, None, eps=1.5)
        sharded = _run("self-join-eps", points, workers, pool, eps=1.5)
        _assert_bit_identical(sharded, serial)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("pool", ["process", "thread", "serial"])
    def test_rknn_tie_breaking(self, points, workers, pool):
        serial = _run("rknn", points, None, None, k=5)
        sharded = _run("rknn", points, workers, pool, k=5)
        _assert_bit_identical(sharded, serial)

    def test_duplicate_distances_actually_present(self, points):
        """Guard the fixture: without ties the property is vacuous."""
        result = _run("range-join", points, None, None, eps=1.5)
        ties = 0
        for i in range(result.n_queries):
            dists, _ = result.row(i)
            ties += int(np.sum(dists[1:] == dists[:-1]))
        assert ties > 0


def _range_result(rows):
    return RangeResult.from_rows(rows, stats=JoinStats(
        n_queries=len(rows), n_targets=0, dim=0), method="test")


class TestMergeRangeBatches:
    def test_overlapping_batches_dedup_pairs(self):
        a = _range_result([(np.array([0.5, 1.0]), np.array([3, 7]))])
        b = _range_result([(np.array([1.0, 2.0]), np.array([7, 9]))])
        merged = merge_range_batches([([0], a), ([0], b)], 1)
        dists, idx = merged.row(0)
        np.testing.assert_array_equal(idx, [3, 7, 9])
        np.testing.assert_array_equal(dists, [0.5, 1.0, 2.0])

    def test_rows_interleave_by_query_index(self):
        a = _range_result([(np.array([1.0]), np.array([1]))])
        b = _range_result([(np.array([2.0]), np.array([2]))])
        merged = merge_range_batches([([1], a), ([0], b)], 2)
        np.testing.assert_array_equal(merged.row(0).indices, [2])
        np.testing.assert_array_equal(merged.row(1).indices, [1])

    def test_uncovered_query_raises(self):
        a = _range_result([(np.array([1.0]), np.array([0]))])
        with pytest.raises(ValueError, match="covered by no batch"):
            merge_range_batches([([0], a)], 2)

    def test_empty_batch_list_raises(self):
        with pytest.raises(ValueError):
            merge_range_batches([], 3)

    def test_merge_results_dispatches_on_result_type(self):
        a = _range_result([(np.array([1.0]), np.array([0]))])
        merged = merge_results([([0], a)], 1, 0)
        assert isinstance(merged, RangeResult)
