"""Shard planning: joint shard/tile decisions and env resolution."""

import pytest

from repro.errors import ValidationError
from repro.parallel import (MIN_ROWS_PER_SHARD, ShardPlan, plan_shards,
                            resolve_pool_kind, resolve_workers)


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 1

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert resolve_workers(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers() == 5

    def test_zero_and_auto_mean_all_cores(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(0) >= 1
        assert resolve_workers("auto") == resolve_workers(0)

    def test_garbage_rejected(self):
        with pytest.raises(ValidationError):
            resolve_workers("many")
        with pytest.raises(ValidationError):
            resolve_workers(-2)


class TestResolvePoolKind:
    def test_default_is_process(self, monkeypatch):
        monkeypatch.delenv("REPRO_POOL", raising=False)
        assert resolve_pool_kind() == "process"

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL", "thread")
        assert resolve_pool_kind() == "thread"

    def test_argument_wins_and_validates(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL", "thread")
        assert resolve_pool_kind("serial") == "serial"
        with pytest.raises(ValidationError):
            resolve_pool_kind("fibers")


class TestPlanShards:
    def test_serial_when_one_worker(self):
        plan = plan_shards(1000, 1000, 1)
        assert plan == ShardPlan(workers=1, n_shards=1,
                                 rows_per_shard=1000, kind="process")
        assert not plan.sharded

    def test_even_split_across_workers(self):
        plan = plan_shards(400, 400, 4)
        assert plan.sharded
        assert plan.workers == 4
        assert plan.n_shards == 4
        assert plan.rows_per_shard == 100
        assert plan.ranges(400) == [(0, 100), (100, 200), (200, 300),
                                    (300, 400)]

    def test_device_budget_caps_tile_size(self):
        # Budget rows smaller than the even split: tiles stay within
        # the device budget and the shard count grows instead.
        plan = plan_shards(1000, 100, 2)
        assert plan.rows_per_shard == 100
        assert plan.n_shards == 10
        assert plan.workers == 2

    def test_tiny_inputs_collapse_to_serial(self):
        plan = plan_shards(20, 20, 4)
        assert not plan.sharded
        assert plan.workers == 1

    def test_min_rows_floor(self):
        plan = plan_shards(100, 100, 4)
        assert plan.rows_per_shard == MIN_ROWS_PER_SHARD
        assert plan.n_shards == 4

    def test_fixed_rows_honours_forced_tile(self):
        plan = plan_shards(300, 300, 4, fixed_rows=True)
        assert plan.rows_per_shard == 300
        assert plan.n_shards == 1
        plan = plan_shards(300, 70, 4, fixed_rows=True)
        assert plan.rows_per_shard == 70
        assert plan.n_shards == 5
        assert plan.workers == 4

    def test_describe(self):
        info = plan_shards(400, 400, 2, kind="thread").describe()
        assert info == {"workers": 2, "shards": 2, "rows_per_shard": 200,
                        "pool": "thread"}


class TestPlannerIntegration:
    def test_execution_plan_reports_sharding(self):
        from repro.engine.planner import plan_shape

        exec_plan = plan_shape(600, 600, 10, 8, method="ti-cpu", workers=3)
        info = exec_plan.describe()
        assert info["workers"] == 3
        assert info["shards"] == 3
        assert info["rows_per_shard"] == 200
        assert exec_plan.sharding.sharded

    def test_serial_plan_still_reports_workers(self):
        from repro.engine.planner import plan_shape

        info = plan_shape(600, 600, 10, 8, method="ti-cpu").describe()
        assert info["workers"] == 1
        assert info["shards"] == 1
        assert "rows_per_shard" not in info
