"""Sharded execution: the bit-for-bit correctness contract.

A sharded run must return *exactly* the serial run's neighbours,
distances and work counters — not approximately, not reordered — at
every worker count and for every pool kind.
"""

import numpy as np
import pytest

from repro import SweetKNN, knn_join
from repro.errors import ValidationError
from repro.obs import Tracer, use_tracer
from repro.obs.funnel import funnel_from_stats
from repro.parallel import shutdown_pools
from repro.parallel.worker import clear_prepared_cache, prepared_cache_info

#: Work counters that must sum exactly across shards (the same tuple
#: the batched-execution tests assert over).
COUNTERS = ("level2_distance_computations", "center_distance_computations",
            "init_distance_computations", "examined_points",
            "candidate_cluster_pairs", "heap_updates")


def _assert_identical(sharded, serial):
    np.testing.assert_array_equal(sharded.indices, serial.indices)
    np.testing.assert_array_equal(sharded.distances, serial.distances)
    for counter in COUNTERS:
        assert getattr(sharded.stats, counter) == \
            getattr(serial.stats, counter), counter
    assert funnel_from_stats(sharded.stats) == \
        funnel_from_stats(serial.stats)


class TestShardDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("kind", ["process", "thread"])
    def test_ti_cpu_bit_identical(self, clustered_points, workers, kind):
        serial = knn_join(clustered_points, clustered_points, 6,
                          method="ti-cpu", seed=3)
        sharded = knn_join(clustered_points, clustered_points, 6,
                           method="ti-cpu", seed=3, workers=workers,
                           pool=kind)
        _assert_identical(sharded, serial)
        if workers > 1:
            assert sharded.stats.extra["workers"] == workers
            assert sharded.stats.extra["shards"] >= workers
            assert sharded.stats.extra["pool"] == kind

    @pytest.mark.parametrize("kind", ["process", "thread"])
    def test_sweet_bit_identical(self, clustered_points, kind):
        serial = knn_join(clustered_points, clustered_points, 6,
                          method="sweet", seed=3)
        sharded = knn_join(clustered_points, clustered_points, 6,
                           method="sweet", seed=3, workers=2, pool=kind)
        _assert_identical(sharded, serial)
        assert sharded.sim_time_s > 0

    def test_uniform_data_bit_identical(self, uniform_points):
        serial = knn_join(uniform_points, uniform_points, 5,
                          method="ti-cpu", seed=7)
        sharded = knn_join(uniform_points, uniform_points, 5,
                           method="ti-cpu", seed=7, workers=2, pool="thread")
        _assert_identical(sharded, serial)

    def test_serial_pool_kind_matches_too(self, clustered_points):
        serial = knn_join(clustered_points, clustered_points, 6,
                          method="ti-cpu", seed=3)
        sharded = knn_join(clustered_points, clustered_points, 6,
                           method="ti-cpu", seed=3, workers=2, pool="serial")
        _assert_identical(sharded, serial)

    def test_forced_tile_size_still_shards(self, clustered_points):
        serial = knn_join(clustered_points, clustered_points, 6,
                          method="ti-cpu", seed=3, query_batch_size=40)
        sharded = knn_join(clustered_points, clustered_points, 6,
                           method="ti-cpu", seed=3, query_batch_size=40,
                           workers=2, pool="thread")
        _assert_identical(sharded, serial)
        assert sharded.stats.extra["shards"] == -(-len(clustered_points)
                                                  // 40)


class TestWorkerCache:
    def test_second_request_hits_prepared_cache(self, clustered_points):
        clear_prepared_cache()
        first = knn_join(clustered_points, clustered_points, 6,
                         method="ti-cpu", seed=3, workers=2, pool="thread")
        second = knn_join(clustered_points, clustered_points, 6,
                          method="ti-cpu", seed=3, workers=2, pool="thread")
        shards = second.stats.extra["shards"]
        # Every shard of the repeat request reuses the cached Step-1
        # state; the first request built it at most once per key.
        assert second.stats.extra["shard_cache_hits"] == shards
        assert first.stats.extra["shard_cache_hits"] >= shards - 1
        info = prepared_cache_info()
        assert info["entries"] >= 1

    def test_sweetknn_prebuilt_plan_is_adopted(self, clustered_points):
        clear_prepared_cache()
        index = SweetKNN(clustered_points, seed=3, method="ti-cpu")
        serial = index.query(clustered_points, k=6)
        sharded = index.query(clustered_points, k=6, workers=2,
                              pool="thread")
        _assert_identical(sharded, serial)
        assert sharded.stats.extra["shard_cache_hits"] >= 1


class TestObservability:
    def test_shard_spans_and_metrics(self, clustered_points):
        tracer = Tracer()
        with use_tracer(tracer):
            result = knn_join(clustered_points, clustered_points, 6,
                              method="ti-cpu", seed=3, workers=2,
                              pool="thread")

        shards = result.stats.extra["shards"]
        shard_spans = tracer.finished_spans("engine.shard")
        assert len(shard_spans) == shards
        for span in shard_spans:
            assert "worker" in span.attributes
            assert "cache_hit" in span.attributes
            assert span.attributes["stop"] > span.attributes["start"]
        assert len(tracer.finished_spans("engine.shard_fanout")) == 1
        assert len(tracer.finished_spans("engine.shard_merge")) == 1
        assert tracer.registry.value("parallel.workers") == 2
        assert tracer.registry.value("parallel.shards") == shards

    def test_funnel_counters_published_once(self, clustered_points):
        tracer = Tracer()
        with use_tracer(tracer):
            result = knn_join(clustered_points, clustered_points, 6,
                              method="ti-cpu", seed=3, workers=2,
                              pool="thread")
        assert tracer.registry.value("join.examined_points") == \
            result.stats.examined_points


class TestErrorHandling:
    def test_worker_error_propagates_and_pool_survives(self,
                                                       clustered_points):
        with pytest.raises((ValueError, ValidationError)):
            knn_join(clustered_points, clustered_points, 6,
                     method="ti-cpu", seed=3, workers=2, pool="thread",
                     filter_strength="bogus")
        after = knn_join(clustered_points, clustered_points, 6,
                         method="ti-cpu", seed=3, workers=2, pool="thread")
        serial = knn_join(clustered_points, clustered_points, 6,
                          method="ti-cpu", seed=3)
        _assert_identical(after, serial)

    def test_shutdown_pools_is_clean(self, clustered_points):
        knn_join(clustered_points, clustered_points, 6, method="ti-cpu",
                 seed=3, workers=2, pool="thread")
        shutdown_pools()
        # Pools are recreated on demand after a global shutdown.
        again = knn_join(clustered_points, clustered_points, 6,
                         method="ti-cpu", seed=3, workers=2, pool="thread")
        serial = knn_join(clustered_points, clustered_points, 6,
                          method="ti-cpu", seed=3)
        _assert_identical(again, serial)
