"""Worker pools: dispatch, error propagation, lifecycle."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.parallel import (ShardJob, ShardTask, WorkerPool, get_pool,
                            run_shard_task)


def _tasks_for(points, k, workers, engine="brute"):
    """Row-slice shard tasks over ``points`` dealt to ``workers``."""
    job = ShardJob(engine=engine, mode="slice", queries=points,
                   targets=points, k=k)
    n = len(points)
    rows = -(-n // workers)
    shards = [(i, start, min(start + rows, n))
              for i, start in enumerate(range(0, n, rows))]
    chunks = [[] for _ in range(workers)]
    for shard in shards:
        chunks[shard[0] % workers].append(shard)
    return [ShardTask(job=job, shards=tuple(chunk))
            for chunk in chunks if chunk]


class TestWorkerPool:
    @pytest.mark.parametrize("kind", ["serial", "thread", "process"])
    def test_outcomes_cover_all_tiles(self, uniform_points, kind):
        pool = WorkerPool(2, kind=kind)
        try:
            outcomes = pool.run(_tasks_for(uniform_points, 4, 2))
            covered = sorted((o.start, o.stop) for o in outcomes)
            assert covered[0][0] == 0
            assert covered[-1][1] == len(uniform_points)
            assert all(o.result.indices.shape == (o.stop - o.start, 4)
                       for o in outcomes)
        finally:
            pool.shutdown()

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValidationError):
            WorkerPool(2, kind="greenlet")

    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_error_propagates_and_pool_stays_usable(self, uniform_points,
                                                    kind):
        pool = WorkerPool(2, kind=kind)
        try:
            bad_job = ShardJob(engine="ti-cpu", mode="slice",
                               queries=uniform_points,
                               targets=uniform_points, k=4,
                               rng=np.random.default_rng(0),
                               options={"filter_strength": "bogus"})
            bad = [ShardTask(job=bad_job, shards=((0, 0, 50),)),
                   ShardTask(job=bad_job, shards=((1, 50, 100),))]
            with pytest.raises(ValueError):
                pool.run(bad)
            # The failed job did not poison the executor: a clean job
            # on the same pool still runs to completion.
            outcomes = pool.run(_tasks_for(uniform_points, 4, 2))
            assert sum(o.stop - o.start for o in outcomes) == \
                len(uniform_points)
        finally:
            pool.shutdown()

    def test_shutdown_is_idempotent(self, uniform_points):
        pool = WorkerPool(2, kind="thread")
        pool.run(_tasks_for(uniform_points, 3, 2))
        pool.shutdown()
        pool.shutdown()
        # A fresh executor is created transparently after shutdown.
        outcomes = pool.run(_tasks_for(uniform_points, 3, 2))
        assert sum(o.stop - o.start for o in outcomes) == len(uniform_points)
        pool.shutdown()


class TestSharedPools:
    def test_get_pool_is_shared_per_key(self):
        a = get_pool(2, "thread")
        b = get_pool(2, "thread")
        c = get_pool(3, "thread")
        assert a is b
        assert a is not c

    def test_run_shard_task_inline(self, uniform_points):
        (task,) = _tasks_for(uniform_points, 4, 1)
        outcomes = run_shard_task(task)
        assert [o.index for o in outcomes] == [s[0] for s in task.shards]
        assert all(o.wall_s >= 0 for o in outcomes)
