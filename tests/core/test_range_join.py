"""ε-range and self-join engines: exactness, symmetry, batching."""

import numpy as np
import pytest

from repro.baselines.brute_joins import brute_range_join
from repro.core.joins import range_join, self_range_join
from repro.core.ti_knn import prepare_clusters
from repro.engine import get_engine
from repro.engine.executor import execute
from repro.errors import ValidationError
from repro.obs.funnel import check_funnel, funnel_from_stats


def _midpoint_eps(points, quantile=0.05):
    """An ε at the midpoint between two consecutive distinct pairwise
    distances, so float-tolerance at the boundary cannot flake."""
    diff = points[:, None, :] - points[None, :, :]
    dists = np.unique(np.sqrt(np.einsum("ijk,ijk->ij", diff, diff)))
    i = max(1, int(quantile * dists.size))
    return float((dists[i] + dists[i + 1]) / 2.0)


class TestRangeJoinExactness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_on_random_data(self, seed):
        rng = np.random.default_rng(seed)
        queries = rng.normal(size=(120, 5))
        targets = rng.normal(size=(200, 5))
        eps = _midpoint_eps(np.vstack([queries, targets]), 0.02)
        result = range_join(queries, targets, eps,
                            np.random.default_rng(seed + 10))
        oracle = brute_range_join(queries, targets, eps)
        assert result.n_pairs > 0
        assert result.matches(oracle)

    def test_matches_brute_on_clustered_data(self, clustered_points, rng):
        eps = _midpoint_eps(clustered_points, 0.05)
        result = range_join(clustered_points, clustered_points, eps, rng)
        oracle = brute_range_join(clustered_points, clustered_points, eps)
        assert result.matches(oracle)

    def test_rows_sorted_by_distance_then_index(self, clustered_points, rng):
        eps = _midpoint_eps(clustered_points, 0.1)
        result = range_join(clustered_points, clustered_points, eps, rng)
        for i in range(result.n_queries):
            dists, idx = result.row(i)
            order = np.lexsort((idx, dists))
            assert np.array_equal(order, np.arange(len(idx)))

    def test_tiny_eps_keeps_only_self_pairs(self, clustered_points, rng):
        result = range_join(clustered_points, clustered_points, 1e-12, rng)
        assert np.array_equal(result.counts(),
                              np.ones(len(clustered_points), dtype=np.int64))
        assert np.array_equal(result.indices,
                              np.arange(len(clustered_points)))

    def test_funnel_invariant_holds(self, clustered_points, rng):
        eps = _midpoint_eps(clustered_points, 0.05)
        result = range_join(clustered_points, clustered_points, eps, rng)
        counts = funnel_from_stats(result.stats)
        assert check_funnel(counts) == []
        assert counts["predicate_survivors"] == result.n_pairs

    def test_ti_prunes_versus_brute(self, clustered_points, rng):
        eps = _midpoint_eps(clustered_points, 0.05)
        result = range_join(clustered_points, clustered_points, eps, rng)
        n = len(clustered_points)
        assert result.stats.level2_distance_computations < n * n


class TestSelfJoin:
    def test_matches_brute_without_diagonal(self, clustered_points, rng):
        eps = _midpoint_eps(clustered_points, 0.05)
        result = self_range_join(clustered_points, eps, rng)
        oracle = brute_range_join(clustered_points, clustered_points, eps,
                                  skip_self=True)
        assert result.matches(oracle)

    def test_result_is_symmetric(self, clustered_points, rng):
        eps = _midpoint_eps(clustered_points, 0.05)
        result = self_range_join(clustered_points, eps, rng)
        pairs = {}
        for i in range(result.n_queries):
            dists, idx = result.row(i)
            for d, t in zip(dists, idx):
                pairs[(i, int(t))] = d
        assert pairs  # non-trivial
        for (q, t), d in pairs.items():
            assert pairs[(t, q)] == d  # bit-identical mirror

    def test_halves_the_distance_computations(self, clustered_points, rng):
        eps = _midpoint_eps(clustered_points, 0.05)
        symmetric = self_range_join(clustered_points, eps,
                                    np.random.default_rng(3))
        plain = range_join(clustered_points, clustered_points, eps,
                           np.random.default_rng(3))
        assert (symmetric.stats.level2_distance_computations
                < 0.75 * plain.stats.level2_distance_computations)

    def test_engine_rejects_distinct_sets(self, clustered_points, rng):
        spec = get_engine("self-join-eps")
        with pytest.raises(ValueError, match="self-join"):
            execute(spec, clustered_points[:50], clustered_points[50:],
                    0, rng=rng, eps=1.0)

    def test_duplicate_points_keep_all_directed_pairs(self, rng):
        points = rng.normal(size=(40, 4))
        points = np.vstack([points, points[:10]])  # exact duplicates
        eps = _midpoint_eps(points, 0.05)
        result = self_range_join(points, eps, np.random.default_rng(1))
        oracle = brute_range_join(points, points, eps, skip_self=True)
        assert result.matches(oracle)


class TestBatchedExecution:
    def test_query_tiling_is_invisible(self, clustered_points):
        eps = _midpoint_eps(clustered_points, 0.05)
        spec = get_engine("range-join")
        whole = execute(spec, clustered_points, clustered_points, 0,
                        rng=np.random.default_rng(5), eps=eps)
        tiled = execute(spec, clustered_points, clustered_points, 0,
                        rng=np.random.default_rng(5), eps=eps,
                        query_batch_size=37)
        assert tiled.matches(whole)
        assert (tiled.stats.level2_distance_computations
                == whole.stats.level2_distance_computations)
        assert (tiled.stats.predicate_accepted_pairs
                == whole.stats.predicate_accepted_pairs)

    def test_self_join_rows_survive_tiling(self, clustered_points):
        eps = _midpoint_eps(clustered_points, 0.05)
        spec = get_engine("self-join-eps")
        whole = execute(spec, clustered_points, clustered_points, 0,
                        rng=np.random.default_rng(5), eps=eps)
        tiled = execute(spec, clustered_points, clustered_points, 0,
                        rng=np.random.default_rng(5), eps=eps,
                        query_batch_size=41)
        assert tiled.matches(whole)

    def test_prebuilt_plan_is_reused(self, clustered_points, rng):
        plan = prepare_clusters(clustered_points, clustered_points, rng)
        eps = _midpoint_eps(clustered_points, 0.05)
        result = range_join(clustered_points, clustered_points, eps,
                            None, plan=plan)
        oracle = brute_range_join(clustered_points, clustered_points, eps)
        assert result.matches(oracle)


class TestRequiredOptions:
    def test_missing_eps_fails_fast(self, clustered_points, rng):
        spec = get_engine("range-join")
        with pytest.raises(ValidationError, match="--eps"):
            execute(spec, clustered_points, clustered_points, 0, rng=rng)

    def test_error_names_the_method(self, clustered_points, rng):
        spec = get_engine("self-join-eps")
        with pytest.raises(ValidationError, match="self-join-eps"):
            execute(spec, clustered_points, clustered_points, 0, rng=rng)

    def test_range_engines_declare_range_results(self):
        for name in ("range-join", "self-join-eps", "rknn",
                     "range-join-brute", "rknn-brute"):
            assert get_engine(name).caps.result_kind == "range"
