"""Dedicated tests for the elastic-parallelism module."""

import pytest

from repro.core.parallelism import (CACHE_CONFLICT_FACTOR, ParallelPlan,
                                    decide_parallelism, subscan_specs)
from repro.gpu.device import tesla_k20c


class TestDecideParallelism:
    def test_cache_conflict_factor_is_papers(self):
        assert CACHE_CONFLICT_FACTOR == 0.25

    def test_budget_threshold(self):
        """Exactly at |Q| = r * max_cur the plan stays query-level."""
        dev = tesla_k20c()
        budget = int(CACHE_CONFLICT_FACTOR
                     * dev.concurrent_threads(regs_per_thread=16))
        at = decide_parallelism(budget, 10, dev, regs_per_thread=16)
        below = decide_parallelism(budget // 2, 10, dev,
                                   regs_per_thread=16)
        assert at.threads_per_query == 1
        assert below.threads_per_query >= 2

    def test_total_threads(self):
        dev = tesla_k20c()
        plan = decide_parallelism(50, 10, dev, threads_per_query=6)
        assert plan.total_threads == 300

    def test_inner_bounded_by_cluster_size(self):
        dev = tesla_k20c()
        plan = decide_parallelism(10, avg_cluster_size=3, device=dev,
                                  threads_per_query=12)
        assert plan.inner_factor <= 3
        assert plan.inner_factor * plan.outer_factor == 12

    def test_adaptive_rounds_budget_to_factor_product(self):
        """The unforced rule may round the budget up to inner*outer,
        as the paper's formula implies."""
        dev = tesla_k20c()
        plan = decide_parallelism(100, avg_cluster_size=7, device=dev,
                                  regs_per_thread=16)
        assert plan.threads_per_query == (plan.inner_factor
                                          * plan.outer_factor)
        assert plan.multi_threaded

    def test_single_thread_plan_flags(self):
        plan = ParallelPlan(1, 1, 1, 100)
        assert not plan.multi_threaded

    def test_tiny_cluster_size_floor(self):
        dev = tesla_k20c()
        plan = decide_parallelism(10, avg_cluster_size=0.2, device=dev,
                                  threads_per_query=8)
        assert plan.inner_factor == 1
        assert plan.outer_factor == 8


class TestSubscanSpecs:
    @pytest.mark.parametrize("inner,outer", [(1, 1), (2, 3), (4, 4),
                                             (1, 8), (8, 1)])
    def test_specs_partition_everything(self, inner, outer):
        plan = ParallelPlan(inner * outer, outer, inner, 0)
        specs = subscan_specs(plan)
        n_clusters, n_members = 9, 13
        covered = set()
        for spec in specs:
            for c in range(spec.cluster_offset, n_clusters,
                           spec.cluster_stride):
                for m in range(spec.member_offset, n_members,
                               spec.member_stride):
                    key = (c, m)
                    assert key not in covered, "double coverage"
                    covered.add(key)
        assert len(covered) == n_clusters * n_members

    def test_spec_strides_match_plan(self):
        plan = ParallelPlan(6, 3, 2, 0)
        specs = subscan_specs(plan)
        assert {s.member_stride for s in specs} == {2}
        assert {s.cluster_stride for s in specs} == {3}
        assert {(s.cluster_offset, s.member_offset)
                for s in specs} == {(c, m) for c in range(3)
                                    for m in range(2)}
