"""Tests for the logged level-2 scan (the GPU lane body)."""

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_knn
from repro.core.bounds import euclidean_many
from repro.core.filters import point_filter_full, point_filter_partial
from repro.core.layout import Layout
from repro.core.parallelism import SubscanSpec
from repro.core.scan import (CODE_BREAK, CODE_COMPUTE, CODE_COMPUTE_UPDATE,
                             CODE_ENTER, CODE_PROLOGUE, CODE_SKIP,
                             scan_query_logged)
from repro.core.ti_knn import prepare_clusters
from repro.kselect import merge_sorted_lists, select_k_from_pairs


@pytest.fixture
def plan(clustered_points):
    plan = prepare_clusters(clustered_points, clustered_points,
                            np.random.default_rng(0), mq=8, mt=8)
    plan.run_level1(6)
    return plan


def _scan(plan, points, q, k=6, **kwargs):
    qc = plan.query_clusters.assignment[q]
    return scan_query_logged(points[q], plan.target_clusters,
                             plan.candidates[qc], plan.ubs[qc], k,
                             Layout.ROW_MAJOR, **kwargs)


class TestScanAgainstReferenceFilter:
    def test_full_scan_matches_reference_filter(self, clustered_points, plan):
        """The GPU lane scan and the CPU reference filter must make
        identical decisions: same results, same counters."""
        ct = plan.target_clusters
        for q in range(0, len(clustered_points), 7):
            qc = plan.query_clusters.assignment[q]
            cand = plan.candidates[qc]
            heap, trace, _ = _scan(plan, clustered_points, q)
            row = np.full(ct.n_clusters, np.nan)
            if cand.size:
                row[cand] = euclidean_many(ct.centers[cand],
                                           clustered_points[q])
            ref_heap, ref_trace = point_filter_full(
                clustered_points[q], q, ct, cand, plan.ubs[qc], 6,
                center_dists_row=row)
            assert (trace.distance_computations
                    == ref_trace.distance_computations)
            assert trace.examined == ref_trace.examined
            np.testing.assert_allclose(heap.sorted_items()[0],
                                       ref_heap.sorted_items()[0])

    def test_partial_scan_matches_reference(self, clustered_points, plan):
        ct = plan.target_clusters
        for q in range(0, len(clustered_points), 13):
            qc = plan.query_clusters.assignment[q]
            cand = plan.candidates[qc]
            survivors, trace, _ = _scan(plan, clustered_points, q,
                                        strength="partial")
            row = np.full(ct.n_clusters, np.nan)
            if cand.size:
                row[cand] = euclidean_many(ct.centers[cand],
                                           clustered_points[q])
            dists, idx, ref_trace = point_filter_partial(
                clustered_points[q], q, ct, cand, plan.ubs[qc], 6,
                center_dists_row=row)
            assert (trace.distance_computations
                    == ref_trace.distance_computations)
            got, _ = select_k_from_pairs(survivors, 6)
            np.testing.assert_allclose(got, dists)


class TestLaneLogStructure:
    def test_prologue_then_enters(self, clustered_points, plan):
        _, _, log = _scan(plan, clustered_points, 0)
        codes = log.code
        assert codes[0] == CODE_PROLOGUE
        qc = plan.query_clusters.assignment[0]
        assert codes.count(CODE_ENTER) == len(plan.candidates[qc])

    def test_steps_match_trace(self, clustered_points, plan):
        _, trace, log = _scan(plan, clustered_points, 0)
        codes = log.code
        computes = (codes.count(CODE_COMPUTE)
                    + codes.count(CODE_COMPUTE_UPDATE))
        assert computes == trace.distance_computations
        assert codes.count(CODE_COMPUTE_UPDATE) == trace.heap_updates
        assert codes.count(CODE_BREAK) == trace.breaks
        member_steps = (computes + codes.count(CODE_BREAK)
                        + codes.count(CODE_SKIP))
        assert member_steps == trace.steps

    def test_row_major_compute_cheaper_than_column(self, clustered_points,
                                                   plan):
        _, _, row_log = _scan(plan, clustered_points, 3)
        qc = plan.query_clusters.assignment[3]
        _, _, col_log = scan_query_logged(
            clustered_points[3], plan.target_clusters, plan.candidates[qc],
            plan.ubs[qc], 6, Layout.COLUMN_MAJOR)
        # d=8: row-major point load = 1 transaction; column-major = 2
        # sector-equivalents.
        row_txn = sum(row_log.txns) + sum(row_log.l2)
        col_txn = sum(col_log.txns) + sum(col_log.l2)
        assert col_txn > row_txn

    def test_update_bound_off_weakens_filter(self, clustered_points, plan):
        _, on, _ = _scan(plan, clustered_points, 5)
        _, off, _ = _scan(plan, clustered_points, 5, update_bound=False)
        assert off.distance_computations >= on.distance_computations

    def test_point_hit_rate_moves_traffic_to_l2(self, clustered_points,
                                                plan):
        _, _, cold = _scan(plan, clustered_points, 2, point_hit_rate=0.0)
        _, _, hot = _scan(plan, clustered_points, 2, point_hit_rate=1.0)
        assert sum(hot.txns) < sum(cold.txns)
        assert sum(hot.l2) > sum(cold.l2)


class TestSubscans:
    def test_union_of_subscans_is_exact(self, clustered_points, plan):
        """Multi-thread-per-query: merging the sub-thread heaps must
        reproduce the exact k-NN — the paper's Section IV-B2 merge."""
        ref = brute_force_knn(clustered_points, clustered_points, 6)
        inner, outer = 2, 3
        for q in range(0, len(clustered_points), 11):
            lists = []
            for s in range(inner * outer):
                spec = SubscanSpec(cluster_offset=s // inner,
                                   cluster_stride=outer,
                                   member_offset=s % inner,
                                   member_stride=inner)
                heap, _, _ = _scan(plan, clustered_points, q, spec=spec)
                lists.append(heap.sorted_items())
            dists, _ = merge_sorted_lists(lists, 6)
            np.testing.assert_allclose(dists, ref.distances[q], atol=1e-9)

    def test_subscans_weaken_filtering(self, clustered_points, plan):
        """Splitting a query across threads weakens the bound (each
        local heap sees only its slice), so the sub-threads together
        compute at least as many distances as the single thread — the
        'much reduced strength of filtering' of Section V-C3."""
        total_solo = 0
        total_split = 0
        for q in range(0, len(clustered_points), 9):
            _, solo, _ = _scan(plan, clustered_points, q)
            total_solo += solo.distance_computations
            for s in range(4):
                spec = SubscanSpec(cluster_offset=s // 2, cluster_stride=2,
                                   member_offset=s % 2, member_stride=2)
                _, trace, _ = _scan(plan, clustered_points, q, spec=spec)
                total_split += trace.distance_computations
        assert total_split >= total_solo
