"""Reverse-KNN engine: exactness against brute force, determinism."""

import numpy as np
import pytest

from repro.baselines.brute_joins import brute_reverse_knn
from repro.core.joins import reverse_knn_join
from repro.engine import get_engine
from repro.engine.executor import execute
from repro.obs.funnel import check_funnel, funnel_from_stats


class TestReverseKNNExactness:
    @pytest.mark.parametrize("seed,k", [(0, 3), (1, 5), (2, 8)])
    def test_matches_brute_on_random_data(self, seed, k):
        rng = np.random.default_rng(seed)
        queries = rng.normal(size=(90, 4))
        targets = rng.normal(size=(150, 4))
        result = reverse_knn_join(queries, targets, k,
                                  np.random.default_rng(seed + 20))
        oracle = brute_reverse_knn(queries, targets, k)
        assert result.n_pairs > 0
        assert result.matches(oracle)

    def test_matches_brute_on_clustered_data(self, clustered_points, rng):
        result = reverse_knn_join(clustered_points, clustered_points, 6, rng)
        oracle = brute_reverse_knn(clustered_points, clustered_points, 6)
        assert result.matches(oracle)

    def test_self_rknn_has_at_least_one_pair_per_query(self,
                                                       clustered_points,
                                                       rng):
        """Every point is within its own kdist of itself (d=0)."""
        result = reverse_knn_join(clustered_points, clustered_points, 4, rng)
        assert result.counts().min() >= 1

    def test_funnel_invariant_with_prep_accounting(self, clustered_points,
                                                   rng):
        result = reverse_knn_join(clustered_points, clustered_points, 4, rng)
        counts = funnel_from_stats(result.stats)
        assert check_funnel(counts) == []
        assert result.stats.extra["rknn_prep_distances"] > 0

    def test_k_bounds_validated(self, rng):
        points = rng.normal(size=(12, 3))
        with pytest.raises(ValueError):
            reverse_knn_join(points, points, 12, np.random.default_rng(0))


class TestReverseKNNDeterminism:
    def test_kdist_independent_of_query_subset(self, clustered_points):
        """The thresholds derive from the plan, not from which queries a
        tile covers — the property sharded execution relies on."""
        spec = get_engine("rknn")
        whole = execute(spec, clustered_points, clustered_points, 5,
                        rng=np.random.default_rng(9))
        tiled = execute(spec, clustered_points, clustered_points, 5,
                        rng=np.random.default_rng(9), query_batch_size=29)
        assert tiled.matches(whole)
        assert (tiled.stats.level2_distance_computations
                == whole.stats.level2_distance_computations)

    def test_ti_prunes_versus_brute_on_clustered_data(self, clustered_points,
                                                      rng):
        result = reverse_knn_join(clustered_points, clustered_points, 5, rng)
        n = len(clustered_points)
        # The brute reference pays |Q|*|T| for the join alone (plus the
        # kdist preparation); the TI path must beat the join part.
        assert result.stats.level2_distance_computations < n * n
