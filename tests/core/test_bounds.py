"""Property tests for the triangle-inequality bounds (Eqs. 1-4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (distance_flops, euclidean, euclidean_many,
                               lb_one_landmark, lb_two_landmarks,
                               pairwise_distances, ub_one_landmark,
                               ub_two_landmarks)

_coords = st.lists(st.floats(min_value=-1e3, max_value=1e3,
                             allow_nan=False), min_size=2, max_size=6)


def _points(draw_list):
    return [np.asarray(p, dtype=np.float64) for p in draw_list]


class TestDistances:
    def test_euclidean_basic(self):
        assert euclidean([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_euclidean_zero(self):
        assert euclidean([1.5, -2.0], [1.5, -2.0]) == 0.0

    def test_euclidean_many_matches_scalar(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(20, 5))
        q = rng.normal(size=5)
        dists = euclidean_many(points, q)
        for i in range(20):
            assert dists[i] == pytest.approx(euclidean(points[i], q))

    def test_pairwise_shape_and_symmetry(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(7, 3))
        mat = pairwise_distances(a, a)
        assert mat.shape == (7, 7)
        np.testing.assert_allclose(mat, mat.T)
        np.testing.assert_allclose(np.diag(mat), 0.0, atol=1e-12)

    def test_distance_flops(self):
        assert distance_flops(4) == 13
        assert distance_flops(1) == 4


@given(q=_coords, t=_coords, lm=_coords)
@settings(max_examples=200, deadline=None)
def test_one_landmark_bounds_are_valid(q, t, lm):
    """LB(q,t) <= d(q,t) <= UB(q,t) for any landmark (Eqs. 1-2)."""
    size = min(len(q), len(t), len(lm))
    q, t, lm = (np.asarray(v[:size]) for v in (q, t, lm))
    d_qt = euclidean(q, t)
    d_ql = euclidean(q, lm)
    d_tl = euclidean(t, lm)
    eps = 1e-7 * (1 + d_qt + d_ql + d_tl)
    assert lb_one_landmark(d_ql, d_tl) <= d_qt + eps
    assert ub_one_landmark(d_ql, d_tl) >= d_qt - eps


@given(q=_coords, t=_coords, l1=_coords, l2=_coords)
@settings(max_examples=200, deadline=None)
def test_two_landmark_bounds_are_valid(q, t, l1, l2):
    """LB(q,t) <= d(q,t) <= UB(q,t) for any landmark pair (Eqs. 3-4)."""
    size = min(len(q), len(t), len(l1), len(l2))
    q, t, l1, l2 = (np.asarray(v[:size]) for v in (q, t, l1, l2))
    d_qt = euclidean(q, t)
    d_l1l2 = euclidean(l1, l2)
    d_ql1 = euclidean(q, l1)
    d_l2t = euclidean(l2, t)
    eps = 1e-7 * (1 + d_qt + d_l1l2 + d_ql1 + d_l2t)
    assert lb_two_landmarks(d_l1l2, d_ql1, d_l2t) <= d_qt + eps
    assert ub_two_landmarks(d_l1l2, d_ql1, d_l2t) >= d_qt - eps


@given(q=_coords, t=_coords, lm=_coords)
@settings(max_examples=100, deadline=None)
def test_bounds_bracket(q, t, lm):
    size = min(len(q), len(t), len(lm))
    q, t, lm = (np.asarray(v[:size]) for v in (q, t, lm))
    d_ql = euclidean(q, lm)
    d_tl = euclidean(t, lm)
    assert lb_one_landmark(d_ql, d_tl) <= ub_one_landmark(d_ql, d_tl) + 1e-9


def test_bounds_broadcast():
    d_ql = np.asarray([1.0, 2.0])
    d_tl = np.asarray([0.5, 5.0])
    np.testing.assert_allclose(lb_one_landmark(d_ql, d_tl), [0.5, 3.0])
    np.testing.assert_allclose(ub_one_landmark(d_ql, d_tl), [1.5, 7.0])
