"""Tests for pipeline internals: partition planning, kernel accounting."""

import numpy as np
import pytest

from repro.core.adaptive import basic_config, decide
from repro.core.gpu_pipeline import _plan_ti_partitions
from repro.core.sweet import sweet_knn
from repro.core.basic_gpu import basic_ti_knn
from repro.gpu.device import tesla_k20c


class TestTiPartitionPlanning:
    def _config(self, n_q, k, device):
        return basic_config(n_q, k, device)

    def test_no_partition_with_ample_memory(self, device):
        config = self._config(1000, 10, device)
        parts = _plan_ti_partitions(1000, 1000, 8, 10, config, device)
        assert parts == [(0, 1000)]

    def test_partitions_cover_queries(self):
        tiny = tesla_k20c(global_mem_bytes=96 * 1024)
        config = self._config(2000, 10, tiny)
        parts = _plan_ti_partitions(2000, 2000, 8, 10, config, tiny)
        assert parts[0][0] == 0
        assert parts[-1][1] == 2000
        for (a, b), (c, d) in zip(parts, parts[1:]):
            assert b == c

    def test_ti_partitions_far_fewer_than_baseline(self):
        """The TI working set is O(k) per query vs the baseline's
        O(|T|): TI partitions must be far coarser (Section V-B)."""
        from repro.baselines.cublas_knn import plan_partitions
        dev = tesla_k20c(global_mem_bytes=2 * 1024 * 1024)
        config = self._config(4000, 10, dev)
        ti = _plan_ti_partitions(4000, 4000, 8, 10, config, dev)
        baseline = plan_partitions(4000, 4000, 8, dev)
        assert len(ti) < len(baseline)

    def test_multi_thread_raises_footprint(self, device):
        tiny = tesla_k20c(global_mem_bytes=120 * 1024)
        one = decide(2000, 2000, 16, 8, 20, tiny, threads_per_query=1)
        many = decide(2000, 2000, 16, 8, 20, tiny, threads_per_query=8)
        parts_one = _plan_ti_partitions(2000, 2000, 8, 16, one, tiny)
        parts_many = _plan_ti_partitions(2000, 2000, 8, 16, many, tiny)
        assert len(parts_many) >= len(parts_one)


class TestKernelAccounting:
    def test_pipeline_kernel_inventory(self, clustered_points):
        res = sweet_knn(clustered_points, clustered_points, 6,
                        np.random.default_rng(0), threads_per_query=4)
        names = [k.name for k in res.profile.kernels]
        assert names == ["init_landmarks", "init_assign",
                         "init_sort_clusters", "level1_calub",
                         "level1_groupfilter", "level2_filter",
                         "merge_heaps"]

    def test_partial_filter_appends_select_kernel(self, clustered_points):
        res = sweet_knn(clustered_points, clustered_points, 6,
                        np.random.default_rng(0), force_filter="partial")
        assert res.profile.kernels[-1].name == "select_k_partial"

    def test_all_kernels_have_positive_time(self, clustered_points):
        res = sweet_knn(clustered_points, clustered_points, 6,
                        np.random.default_rng(0))
        for kernel in res.profile.kernels:
            assert kernel.sim_time_s > 0

    def test_pipeline_time_is_sum_of_kernels(self, clustered_points):
        res = sweet_knn(clustered_points, clustered_points, 6,
                        np.random.default_rng(0))
        total = sum(k.sim_time_s for k in res.profile.kernels)
        assert res.sim_time_s == pytest.approx(total)

    def test_level2_dominates_on_clustered_data(self, clustered_points):
        """For basic KNN-TI the level-2 filter is the hot kernel."""
        res = basic_ti_knn(clustered_points, clustered_points, 6,
                           np.random.default_rng(0))
        level2 = next(k for k in res.profile.kernels
                      if k.name == "level2_filter")
        assert level2.cycles >= max(
            k.cycles for k in res.profile.kernels if k is not level2) * 0.3

    def test_saved_computation_invariant(self, clustered_points):
        """computed + saved == |Q| * |T| (the Table IV identity)."""
        res = sweet_knn(clustered_points, clustered_points, 6,
                        np.random.default_rng(0))
        n = len(clustered_points)
        computed = res.stats.level2_distance_computations
        assert 0 < computed <= n * n
        assert res.stats.saved_fraction == pytest.approx(
            (n * n - computed) / (n * n))

    def test_multi_thread_weakens_filter_but_adds_parallelism(
            self, clustered_points):
        solo = sweet_knn(clustered_points, clustered_points, 6,
                         np.random.default_rng(0), threads_per_query=1)
        multi = sweet_knn(clustered_points, clustered_points, 6,
                          np.random.default_rng(0), threads_per_query=8)
        assert (multi.stats.level2_distance_computations
                >= solo.stats.level2_distance_computations)
        level2 = next(k for k in multi.profile.kernels
                      if k.name == "level2_filter")
        assert level2.n_threads == 8 * len(clustered_points)
