"""Tests for the Fig. 8 adaptive scheme and its sub-decisions."""

import pytest

from repro.core.adaptive import basic_config, decide
from repro.core.layout import Layout
from repro.core.parallelism import decide_parallelism, subscan_specs
from repro.core.placement import Placement, decide_placement
from repro.gpu.device import tesla_k20c


class TestFilterStrengthDecision:
    def test_small_k_over_d_uses_full(self, device):
        config = decide(10000, 10000, k=20, dim=29, avg_cluster_size=50,
                        device=device)
        assert config.filter_strength == "full"

    def test_large_k_over_d_uses_partial(self, device):
        """k=512, d=4: k/d = 128 > 8 -> partial (Table V datasets)."""
        config = decide(10000, 10000, k=512, dim=4, avg_cluster_size=50,
                        device=device)
        assert config.filter_strength == "partial"

    def test_threshold_boundary(self, device):
        at = decide(1000, 1000, k=8 * 29, dim=29, avg_cluster_size=10,
                    device=device)
        assert at.filter_strength == "full"  # ratio == 8 is not > 8
        above = decide(1000, 1000, k=8 * 29 + 29, dim=29,
                       avg_cluster_size=10, device=device)
        assert above.filter_strength == "partial"

    def test_force_filter(self, device):
        config = decide(1000, 1000, k=512, dim=4, avg_cluster_size=10,
                        device=device, force_filter="full")
        assert config.filter_strength == "full"

    def test_invalid_force(self, device):
        with pytest.raises(ValueError):
            decide(100, 100, 5, 4, 10, device, force_filter="medium")


class TestPlacementDecision:
    def test_tiny_k_in_shared(self, device):
        """k*4 <= th1 = 24 -> shared memory (k <= 6 on the K20c)."""
        assert decide_placement(6, device).placement is Placement.SHARED

    def test_moderate_k_in_registers(self, device):
        """th1 < k*4 <= th2 = 1020 -> registers (k <= 255)."""
        assert decide_placement(20, device).placement is Placement.REGISTERS
        assert decide_placement(255, device).placement is Placement.REGISTERS

    def test_large_k_in_global(self, device):
        assert decide_placement(512, device).placement is Placement.GLOBAL

    def test_paper_k20c_thresholds(self, device):
        """Section IV-D2's worked example: th1 = 24, th2 = 1020."""
        assert decide_placement(7, device).placement is Placement.REGISTERS
        assert decide_placement(256, device).placement is Placement.GLOBAL

    def test_register_placement_raises_pressure(self, device):
        light = decide_placement(6, device)
        heavy = decide_placement(100, device)
        assert heavy.regs_per_thread > light.regs_per_thread

    def test_shared_placement_reserves_bytes(self, device):
        decision = decide_placement(5, device)
        assert decision.shared_bytes_per_thread == 20

    def test_force(self, device):
        decision = decide_placement(20, device, force="shared")
        assert decision.placement is Placement.SHARED


class TestParallelismDecision:
    def test_large_q_query_level(self, device):
        plan = decide_parallelism(100000, 50, device)
        assert plan.threads_per_query == 1

    def test_paper_arcene_example(self):
        """|Q|=100 on the K20c with r=0.25: ~2048*13/(4*100) = 66.56
        threads per query (the paper quotes 66; we ceil to 67 before
        the factor split)."""
        device = tesla_k20c()
        plan = decide_parallelism(100, avg_cluster_size=100 / 30,
                                  device=device, regs_per_thread=16)
        assert plan.threads_per_query >= 66
        assert plan.multi_threaded

    def test_paper_dor_example(self):
        """|Q|=1950: 2048*13/(4*1950) = 3.4 -> 4 (paper rounds to 4)."""
        device = tesla_k20c()
        plan = decide_parallelism(1950, avg_cluster_size=1950 / 132,
                                  device=device, regs_per_thread=16)
        assert plan.threads_per_query == 4

    def test_forced_threads_per_query(self, device):
        plan = decide_parallelism(100, 10, device, threads_per_query=16)
        assert plan.threads_per_query == 16
        assert plan.inner_factor * plan.outer_factor == 16

    def test_split_factors(self, device):
        plan = decide_parallelism(10, avg_cluster_size=4, device=device,
                                  threads_per_query=8)
        assert plan.inner_factor == 4
        assert plan.outer_factor == 2

    def test_subscan_specs_cover_all_work(self, device):
        plan = decide_parallelism(10, avg_cluster_size=3, device=device,
                                  threads_per_query=6)
        specs = subscan_specs(plan)
        assert len(specs) == plan.threads_per_query
        # Every (cluster slot, member slot) pair is covered exactly once.
        covered = set()
        for spec in specs:
            for cluster in range(spec.cluster_offset, 12,
                                 spec.cluster_stride):
                for member in range(spec.member_offset, 9,
                                    spec.member_stride):
                    assert (cluster, member) not in covered
                    covered.add((cluster, member))
        assert len(covered) == 12 * 9

    def test_single_thread_spec(self, device):
        plan = decide_parallelism(100000, 10, device)
        specs = subscan_specs(plan)
        assert len(specs) == 1
        assert specs[0].cluster_stride == 1
        assert specs[0].member_stride == 1


class TestConfigs:
    def test_basic_config_freezes_section3_choices(self, device):
        config = basic_config(5000, 20, device)
        assert config.filter_strength == "full"
        assert config.layout is Layout.COLUMN_MAJOR
        assert config.placement.placement is Placement.GLOBAL
        assert not config.remap
        assert config.parallel.threads_per_query == 1

    def test_sweet_defaults(self, device):
        config = decide(5000, 5000, 20, 29, 50, device)
        assert config.layout is Layout.ROW_MAJOR
        assert config.remap
        assert config.knearests_coalesced

    def test_partial_filter_has_no_knearests(self, device):
        config = decide(5000, 5000, 512, 4, 50, device)
        assert config.placement.knearests_bytes == 0
        assert config.regs_per_thread == 32

    def test_describe(self, device):
        desc = decide(5000, 5000, 20, 29, 50, device).describe()
        assert desc["filter"] == "full"
        assert desc["layout"] == "row"
