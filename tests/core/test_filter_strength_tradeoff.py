"""Regression tests for the elastic-filter trade-off (Table V's core).

These pin the model behaviours today's paper-shape reproduction rests
on: at large k the full filter's global-memory ``kNearests``
maintenance (scattered sift walks) makes the weakened partial filter
the faster choice, exactly as Section IV-B1 argues.
"""

import numpy as np
import pytest

from repro import knn_join


@pytest.fixture(scope="module")
def large_k_problem():
    rng = np.random.default_rng(8)
    centers = rng.normal(scale=10.0, size=(24, 4))
    points = centers[rng.integers(24, size=2000)] + rng.normal(
        size=(2000, 4))
    rng.shuffle(points)
    return points


class TestFilterStrengthTradeoff:
    K = 256  # k*4 > th2 -> kNearests in global memory; k/d = 64 > 8

    def test_adaptive_picks_partial(self, large_k_problem):
        res = knn_join(large_k_problem, large_k_problem, self.K,
                       method="sweet", seed=0)
        assert res.stats.extra["filter"] == "partial"
        # The forced-full run keeps a kNearests too big for registers.
        full = knn_join(large_k_problem, large_k_problem, self.K,
                        method="sweet", seed=0, force_filter="full")
        assert full.stats.extra["placement"] == "global"

    def test_partial_beats_full_at_large_k(self, large_k_problem):
        partial = knn_join(large_k_problem, large_k_problem, self.K,
                           method="sweet", seed=0)
        full = knn_join(large_k_problem, large_k_problem, self.K,
                        method="sweet", seed=0, force_filter="full")
        assert partial.sim_time_s < full.sim_time_s
        # ... while computing more distances (weaker filtering).
        assert (partial.stats.level2_distance_computations
                >= full.stats.level2_distance_computations)

    def test_full_beats_partial_at_small_k(self, large_k_problem):
        """The other side of the elastic design: at modest k the full
        filter's savings dominate."""
        k = 8
        full = knn_join(large_k_problem, large_k_problem, k,
                        method="sweet", seed=0)
        partial = knn_join(large_k_problem, large_k_problem, k,
                           method="sweet", seed=0,
                           force_filter="partial")
        assert full.stats.extra["filter"] == "full"
        assert full.sim_time_s < partial.sim_time_s

    def test_both_exact(self, large_k_problem):
        oracle = knn_join(large_k_problem, large_k_problem, self.K,
                          method="brute")
        for force in (None, "full"):
            res = knn_join(large_k_problem, large_k_problem, self.K,
                           method="sweet", seed=0,
                           **({} if force is None
                              else {"force_filter": force}))
            np.testing.assert_allclose(res.distances, oracle.distances,
                                       atol=1e-9)
