"""Tests for the (1+epsilon)-approximate extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import knn_join


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(3)
    points = np.concatenate([rng.normal(size=(200, 6)) + c
                             for c in rng.uniform(-15, 15, size=(5, 6))])
    rng.shuffle(points)
    oracle = knn_join(points, points, 8, method="brute")
    return points, oracle


class TestApproximateMode:
    def test_epsilon_zero_is_exact(self, data):
        points, oracle = data
        res = knn_join(points, points, 8, method="sweet", seed=0,
                       epsilon=0.0)
        np.testing.assert_allclose(res.distances, oracle.distances,
                                   atol=1e-9)

    @pytest.mark.parametrize("eps", [0.05, 0.2, 0.5, 1.0])
    def test_kth_distance_guarantee(self, data, eps):
        """The contract: returned k-th distance <= (1+eps) * true."""
        points, oracle = data
        res = knn_join(points, points, 8, method="sweet", seed=0,
                       epsilon=eps)
        assert np.all(res.distances[:, -1]
                      <= (1 + eps) * oracle.distances[:, -1] + 1e-9)

    def test_monotone_work_reduction(self, data):
        points, _ = data
        computed = [
            knn_join(points, points, 8, method="sweet", seed=0,
                     epsilon=eps).stats.level2_distance_computations
            for eps in (0.0, 0.5, 2.0)]
        assert computed[0] >= computed[1] >= computed[2]

    def test_negative_epsilon_rejected(self, data):
        points, _ = data
        with pytest.raises(ValueError):
            knn_join(points, points, 4, method="sweet", epsilon=-0.1)

    def test_partial_filter_respects_guarantee(self, data):
        points, oracle = data
        res = knn_join(points, points, 8, method="sweet", seed=0,
                       epsilon=0.5, force_filter="partial")
        assert np.all(res.distances[:, -1]
                      <= 1.5 * oracle.distances[:, -1] + 1e-9)

    @given(eps=st.floats(min_value=0.0, max_value=3.0, allow_nan=False))
    @settings(max_examples=15, deadline=None)
    def test_property_guarantee_over_epsilon(self, data, eps):
        points, oracle = data
        res = knn_join(points, points, 8, method="sweet", seed=0,
                       epsilon=eps)
        assert np.all(res.distances[:, -1]
                      <= (1 + eps) * oracle.distances[:, -1] + 1e-9)

    def test_high_recall_at_small_epsilon(self, data):
        points, oracle = data
        res = knn_join(points, points, 8, method="sweet", seed=0,
                       epsilon=0.1)
        hits = np.asarray([
            len(set(res.indices[q]) & set(oracle.indices[q]))
            for q in range(len(points))])
        assert hits.mean() / 8 > 0.9
