"""End-to-end tests for the sequential TI-KNN reference (Fig. 4)."""

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_knn
from repro.core.ti_knn import prepare_clusters, ti_knn_join


class TestTiKnnJoin:
    @pytest.mark.parametrize("strength", ["full", "partial"])
    def test_matches_brute_force_self_join(self, clustered_points, strength):
        ref = brute_force_knn(clustered_points, clustered_points, 10)
        res = ti_knn_join(clustered_points, clustered_points, 10,
                          np.random.default_rng(0), filter_strength=strength)
        np.testing.assert_allclose(res.distances, ref.distances, atol=1e-9)

    def test_matches_brute_force_disjoint_sets(self, rng):
        queries = rng.normal(size=(80, 5))
        targets = rng.normal(size=(250, 5)) * 2
        ref = brute_force_knn(queries, targets, 7)
        res = ti_knn_join(queries, targets, 7, np.random.default_rng(1))
        np.testing.assert_allclose(res.distances, ref.distances, atol=1e-9)

    def test_uniform_data_still_exact(self, uniform_points):
        ref = brute_force_knn(uniform_points, uniform_points, 5)
        res = ti_knn_join(uniform_points, uniform_points, 5,
                          np.random.default_rng(2))
        np.testing.assert_allclose(res.distances, ref.distances, atol=1e-9)

    def test_k_equals_one(self, clustered_points):
        res = ti_knn_join(clustered_points, clustered_points, 1,
                          np.random.default_rng(0))
        # Self-join: the nearest neighbour of each point is itself.
        np.testing.assert_allclose(res.distances[:, 0], 0.0, atol=1e-12)

    def test_k_equals_n(self, rng):
        points = rng.normal(size=(30, 3))
        ref = brute_force_knn(points, points, 30)
        res = ti_knn_join(points, points, 30, np.random.default_rng(0))
        np.testing.assert_allclose(res.distances, ref.distances, atol=1e-9)

    def test_duplicates(self, rng):
        base = rng.normal(size=(10, 4))
        points = np.tile(base, (8, 1))
        ref = brute_force_knn(points, points, 9)
        res = ti_knn_join(points, points, 9, np.random.default_rng(0))
        np.testing.assert_allclose(res.distances, ref.distances, atol=1e-9)

    def test_invalid_k(self, clustered_points):
        with pytest.raises(ValueError):
            ti_knn_join(clustered_points, clustered_points, 0,
                        np.random.default_rng(0))
        with pytest.raises(ValueError):
            ti_knn_join(clustered_points, clustered_points, 10 ** 6,
                        np.random.default_rng(0))

    def test_invalid_strength(self, clustered_points):
        with pytest.raises(ValueError):
            ti_knn_join(clustered_points, clustered_points, 3,
                        np.random.default_rng(0), filter_strength="medium")

    def test_stats_populated(self, clustered_points):
        res = ti_knn_join(clustered_points, clustered_points, 5,
                          np.random.default_rng(0))
        stats = res.stats
        n = len(clustered_points)
        assert stats.n_queries == stats.n_targets == n
        assert 0 < stats.level2_distance_computations < n * n
        assert 0 < stats.saved_fraction < 1
        assert stats.mq == stats.mt > 0
        assert stats.candidate_cluster_pairs <= stats.mq * stats.mt

    def test_saved_fraction_high_on_clustered_data(self, clustered_points):
        res = ti_knn_join(clustered_points, clustered_points, 5,
                          np.random.default_rng(0))
        assert res.stats.saved_fraction > 0.5

    def test_landmark_count_override(self, clustered_points):
        res = ti_knn_join(clustered_points, clustered_points, 5,
                          np.random.default_rng(0), mq=4, mt=7)
        assert res.stats.mq == 4
        assert res.stats.mt == 7

    def test_plan_reuse_consistent(self, clustered_points):
        rng = np.random.default_rng(0)
        plan = prepare_clusters(clustered_points, clustered_points, rng)
        res_a = ti_knn_join(clustered_points, clustered_points, 5,
                            None, plan=plan)
        res_b = ti_knn_join(clustered_points, clustered_points, 5,
                            np.random.default_rng(0))
        np.testing.assert_allclose(res_a.distances, res_b.distances)


class TestPrepareClusters:
    def test_plan_shapes(self, clustered_points):
        plan = prepare_clusters(clustered_points, clustered_points,
                                np.random.default_rng(0))
        n = len(clustered_points)
        expected_m = int(round(3 * np.sqrt(n)))
        assert plan.mq == expected_m
        assert plan.mt == expected_m
        assert plan.center_dists.shape == (plan.mq, plan.mt)

    def test_memory_budget_caps_landmarks(self, clustered_points):
        plan = prepare_clusters(clustered_points, clustered_points,
                                np.random.default_rng(0),
                                memory_budget_bytes=10 * 10 * 4)
        assert plan.mq <= 10

    def test_target_side_sorted(self, clustered_points):
        plan = prepare_clusters(clustered_points, clustered_points,
                                np.random.default_rng(0))
        for dists in plan.target_clusters.member_dists:
            assert np.all(np.diff(dists) <= 1e-15)
