"""Tests for landmark count and selection (Section III-A)."""

import numpy as np
import pytest

from repro.core.landmarks import (determine_landmark_count,
                                  select_landmarks_maxmin,
                                  select_landmarks_random_spread)
from repro.core.bounds import pairwise_distances


class TestDetermineLandmarkCount:
    def test_paper_rule(self):
        """detLmNum sets 3 * sqrt(n)."""
        assert determine_landmark_count(10000) == 300
        assert determine_landmark_count(65554) == pytest.approx(
            3 * np.sqrt(65554), abs=1)

    def test_clamped_to_n(self):
        assert determine_landmark_count(4) == 4

    def test_memory_cap(self):
        """Insufficient memory caps the count (m^2 floats must fit)."""
        unlimited = determine_landmark_count(100000)
        capped = determine_landmark_count(100000,
                                          memory_budget_bytes=100 * 100 * 4)
        assert capped == 100
        assert capped < unlimited

    def test_at_least_one(self):
        assert determine_landmark_count(1) == 1
        assert determine_landmark_count(100, memory_budget_bytes=1) == 1

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            determine_landmark_count(0)


class TestRandomSpread:
    def test_returns_m_distinct_indices(self, rng, clustered_points):
        idx = select_landmarks_random_spread(clustered_points, 10, rng)
        assert idx.size == 10
        assert np.unique(idx).size == 10

    def test_m_equals_n_returns_all(self, rng):
        points = rng.normal(size=(5, 2))
        idx = select_landmarks_random_spread(points, 5, rng)
        np.testing.assert_array_equal(np.sort(idx), np.arange(5))

    def test_m_clamped(self, rng):
        points = rng.normal(size=(5, 2))
        idx = select_landmarks_random_spread(points, 50, rng)
        assert idx.size == 5

    def test_invalid_m(self, rng):
        with pytest.raises(ValueError):
            select_landmarks_random_spread(rng.normal(size=(5, 2)), 0, rng)

    def test_deterministic_given_rng(self, clustered_points):
        a = select_landmarks_random_spread(
            clustered_points, 8, np.random.default_rng(7))
        b = select_landmarks_random_spread(
            clustered_points, 8, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_spread_beats_single_trial_on_average(self, clustered_points):
        """10 trials pick a set at least as spread as 1 trial (same seed
        stream prefix makes trial 1 a candidate of the 10)."""
        def spread_of(idx):
            sub = clustered_points[idx]
            return pairwise_distances(sub, sub).sum() / 2

        many = select_landmarks_random_spread(
            clustered_points, 12, np.random.default_rng(3), trials=10)
        one = select_landmarks_random_spread(
            clustered_points, 12, np.random.default_rng(3), trials=1)
        assert spread_of(many) >= spread_of(one)


class TestMaxMin:
    def test_covers_far_cluster(self, rng):
        """Farthest-point traversal must pick points from both blobs."""
        a = rng.normal(size=(50, 3))
        b = rng.normal(size=(50, 3)) + 100.0
        points = np.concatenate([a, b])
        idx = select_landmarks_maxmin(points, 4, rng)
        assert (idx < 50).any() and (idx >= 50).any()

    def test_distinct(self, rng, clustered_points):
        idx = select_landmarks_maxmin(clustered_points, 20, rng)
        assert np.unique(idx).size == 20

    def test_invalid_m(self, rng):
        with pytest.raises(ValueError):
            select_landmarks_maxmin(rng.normal(size=(5, 2)), 0, rng)
