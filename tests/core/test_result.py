"""Tests for the result/stats containers and the errors module."""

import numpy as np

from repro.core.result import JoinStats, KNNResult
from repro.errors import (DatasetError, LaunchConfigError, OutOfDeviceMemory,
                          ReproError, ValidationError)


class TestJoinStats:
    def test_saved_fraction_empty(self):
        assert JoinStats().saved_fraction == 0.0

    def test_saved_fraction_bounds(self):
        stats = JoinStats(n_queries=4, n_targets=4,
                          level2_distance_computations=16)
        assert stats.saved_fraction == 0.0
        stats.level2_distance_computations = 0
        assert stats.saved_fraction == 1.0

    def test_total_pairs(self):
        assert JoinStats(n_queries=3, n_targets=7).total_pairs == 21

    def test_extra_merges_into_summary(self):
        stats = JoinStats(extra={"partitions": 4})
        assert stats.summary()["partitions"] == 4


class TestKNNResult:
    def _result(self, distances):
        distances = np.asarray(distances, dtype=np.float64)
        indices = np.zeros_like(distances, dtype=np.int64)
        return KNNResult(distances, indices, JoinStats())

    def test_k_property(self):
        assert self._result([[1.0, 2.0, 3.0]]).k == 3

    def test_sim_time_none_without_profile(self):
        assert self._result([[1.0]]).sim_time_s is None

    def test_pack_full_rows(self):
        rows = [(np.asarray([1.0, 2.0]), np.asarray([5, 6]))]
        distances, indices = KNNResult.pack(rows, 2)
        np.testing.assert_array_equal(distances, [[1.0, 2.0]])
        np.testing.assert_array_equal(indices, [[5, 6]])

    def test_matches_rejects_distant(self):
        a = self._result([[1.0, 2.0]])
        b = self._result([[1.0, 2.1]])
        assert not a.matches(b)


class TestErrors:
    def test_hierarchy(self):
        for err in (OutOfDeviceMemory(1, 0, 0), LaunchConfigError(),
                    DatasetError(), ValidationError()):
            assert isinstance(err, ReproError)

    def test_out_of_memory_message(self):
        err = OutOfDeviceMemory(2048, 1024, 4096)
        assert err.requested == 2048
        assert err.available == 1024
        assert err.capacity == 4096
        assert "2048" in str(err)
