"""Integration tests: the GPU pipelines against the exact oracle."""

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_knn
from repro.core.basic_gpu import basic_ti_knn
from repro.core.sweet import sweet_knn
from repro.core.ti_knn import ti_knn_join
from repro.gpu.device import tesla_k20c


class TestBasicGpuPipeline:
    def test_exact_on_clustered(self, clustered_points):
        ref = brute_force_knn(clustered_points, clustered_points, 8)
        res = basic_ti_knn(clustered_points, clustered_points, 8,
                           np.random.default_rng(0))
        np.testing.assert_allclose(res.distances, ref.distances, atol=1e-9)

    def test_counters_match_cpu_reference(self, clustered_points):
        """One thread per query, same candidate order, same bound
        policy: the GPU kernel must compute exactly the same number of
        distances as the sequential Fig. 4 algorithm."""
        cpu = ti_knn_join(clustered_points, clustered_points, 8,
                          np.random.default_rng(0))
        gpu = basic_ti_knn(clustered_points, clustered_points, 8,
                           np.random.default_rng(0))
        assert (gpu.stats.level2_distance_computations
                == cpu.stats.level2_distance_computations)
        assert gpu.stats.candidate_cluster_pairs \
            == cpu.stats.candidate_cluster_pairs

    def test_profile_structure(self, clustered_points):
        res = basic_ti_knn(clustered_points, clustered_points, 8,
                           np.random.default_rng(0))
        names = [k.name for k in res.profile.kernels]
        assert "level2_filter" in names
        assert any("init" in n for n in names)
        assert any("level1" in n for n in names)
        assert res.sim_time_s > 0

    def test_basic_config_recorded(self, clustered_points):
        res = basic_ti_knn(clustered_points, clustered_points, 8,
                           np.random.default_rng(0))
        assert res.stats.extra["layout"] == "col"
        assert res.stats.extra["placement"] == "global"
        assert res.stats.extra["remap"] is False
        assert res.stats.extra["threads_per_query"] == 1


class TestSweetPipeline:
    def test_exact_on_clustered(self, clustered_points):
        ref = brute_force_knn(clustered_points, clustered_points, 8)
        res = sweet_knn(clustered_points, clustered_points, 8,
                        np.random.default_rng(0))
        np.testing.assert_allclose(res.distances, ref.distances, atol=1e-9)

    def test_exact_on_uniform(self, uniform_points):
        ref = brute_force_knn(uniform_points, uniform_points, 5)
        res = sweet_knn(uniform_points, uniform_points, 5,
                        np.random.default_rng(0))
        np.testing.assert_allclose(res.distances, ref.distances, atol=1e-9)

    def test_exact_with_partial_filter(self, clustered_points):
        ref = brute_force_knn(clustered_points, clustered_points, 8)
        res = sweet_knn(clustered_points, clustered_points, 8,
                        np.random.default_rng(0), force_filter="partial")
        np.testing.assert_allclose(res.distances, ref.distances, atol=1e-9)
        assert res.stats.extra["filter"] == "partial"

    @pytest.mark.parametrize("tpq", [2, 4, 8])
    def test_exact_multi_thread_per_query(self, clustered_points, tpq):
        ref = brute_force_knn(clustered_points, clustered_points, 6)
        res = sweet_knn(clustered_points, clustered_points, 6,
                        np.random.default_rng(0), threads_per_query=tpq)
        np.testing.assert_allclose(res.distances, ref.distances, atol=1e-9)
        assert res.stats.extra["threads_per_query"] == tpq

    def test_exact_multi_thread_partial(self, clustered_points):
        ref = brute_force_knn(clustered_points, clustered_points, 6)
        res = sweet_knn(clustered_points, clustered_points, 6,
                        np.random.default_rng(0), threads_per_query=4,
                        force_filter="partial")
        np.testing.assert_allclose(res.distances, ref.distances, atol=1e-9)

    @pytest.mark.parametrize("placement", ["global", "shared", "registers"])
    def test_exact_under_forced_placement(self, clustered_points, placement):
        ref = brute_force_knn(clustered_points, clustered_points, 8)
        res = sweet_knn(clustered_points, clustered_points, 8,
                        np.random.default_rng(0), force_placement=placement)
        np.testing.assert_allclose(res.distances, ref.distances, atol=1e-9)
        assert res.stats.extra["placement"] == placement

    @pytest.mark.parametrize("layout", ["row", "col"])
    def test_exact_under_forced_layout(self, clustered_points, layout):
        ref = brute_force_knn(clustered_points, clustered_points, 8)
        res = sweet_knn(clustered_points, clustered_points, 8,
                        np.random.default_rng(0), force_layout=layout)
        np.testing.assert_allclose(res.distances, ref.distances, atol=1e-9)

    def test_exact_without_remap(self, clustered_points):
        ref = brute_force_knn(clustered_points, clustered_points, 8)
        res = sweet_knn(clustered_points, clustered_points, 8,
                        np.random.default_rng(0), remap=False)
        np.testing.assert_allclose(res.distances, ref.distances, atol=1e-9)

    def test_disjoint_query_target_sets(self, rng):
        queries = rng.normal(size=(60, 6))
        targets = rng.normal(size=(300, 6))
        ref = brute_force_knn(queries, targets, 9)
        res = sweet_knn(queries, targets, 9, np.random.default_rng(1))
        np.testing.assert_allclose(res.distances, ref.distances, atol=1e-9)

    def test_remap_improves_warp_efficiency(self, rng):
        """Thread-data remapping must raise level-2 warp efficiency on
        shuffled clustered data (Tables I/II of the paper)."""
        blobs = [rng.normal(size=(60, 6)) + c
                 for c in rng.uniform(-40, 40, size=(8, 6))]
        points = np.concatenate(blobs)
        rng.shuffle(points)
        on = sweet_knn(points, points, 6, np.random.default_rng(0),
                       remap=True)
        off = sweet_knn(points, points, 6, np.random.default_rng(0),
                        remap=False)
        assert (on.profile.filter_warp_efficiency()
                > off.profile.filter_warp_efficiency())

    def test_memory_pressure_forces_partitions(self, clustered_points):
        tiny = tesla_k20c(global_mem_bytes=64 * 1024)
        res = sweet_knn(clustered_points, clustered_points, 8,
                        np.random.default_rng(0), device=tiny)
        assert res.stats.extra["partitions"] > 1
        ref = brute_force_knn(clustered_points, clustered_points, 8)
        np.testing.assert_allclose(res.distances, ref.distances, atol=1e-9)

    def test_small_query_set_goes_multi_thread(self, rng):
        points = rng.normal(size=(64, 10))
        res = sweet_knn(points, points, 4, np.random.default_rng(0))
        assert res.stats.extra["threads_per_query"] > 1
        ref = brute_force_knn(points, points, 4)
        np.testing.assert_allclose(res.distances, ref.distances, atol=1e-9)

    def test_large_k_small_d_picks_partial(self, rng):
        points = rng.normal(size=(400, 3))
        res = sweet_knn(points, points, 64, np.random.default_rng(0))
        assert res.stats.extra["filter"] == "partial"

    def test_invalid_k(self, clustered_points):
        with pytest.raises(ValueError):
            sweet_knn(clustered_points, clustered_points, 0,
                      np.random.default_rng(0))
        with pytest.raises(ValueError):
            sweet_knn(clustered_points, clustered_points, 10 ** 7,
                      np.random.default_rng(0))

    def test_deterministic_given_seed(self, clustered_points):
        a = sweet_knn(clustered_points, clustered_points, 5,
                      np.random.default_rng(3))
        b = sweet_knn(clustered_points, clustered_points, 5,
                      np.random.default_rng(3))
        np.testing.assert_array_equal(a.distances, b.distances)
        assert a.sim_time_s == b.sim_time_s
