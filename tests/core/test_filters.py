"""Tests for the two-level TI filters — the exactness of the whole
system rests on these invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.baselines.brute_force import brute_force_knn
from repro.core.bounds import euclidean_many
from repro.core.clustering import center_distances, cluster_points
from repro.core.filters import (cluster_upper_bounds, level1_filter,
                                point_filter_full, point_filter_partial,
                                tail_bound_matrix)
from repro.core.landmarks import select_landmarks_random_spread


def _plan(points, k, mq=8, mt=8, seed=0):
    rng = np.random.default_rng(seed)
    cq = cluster_points(
        points, select_landmarks_random_spread(points, mq, rng))
    ct = cluster_points(
        points, select_landmarks_random_spread(points, mt, rng),
        sort_descending=True)
    cdist = center_distances(cq, ct)
    tails = tail_bound_matrix(ct, k)
    ubs = cluster_upper_bounds(cq, ct, cdist, k, tails=tails)
    candidates = level1_filter(cq, ct, cdist, ubs)
    return cq, ct, cdist, ubs, candidates


class TestTailBoundMatrix:
    def test_shape_and_padding(self, clustered_points):
        _, ct, _, _, _ = _plan(clustered_points, 5)
        tails = tail_bound_matrix(ct, 1000)
        assert tails.shape == (ct.n_clusters, 1000)
        assert np.isinf(tails).any()

    def test_rows_ascending(self, clustered_points):
        _, ct, _, _, _ = _plan(clustered_points, 5)
        tails = tail_bound_matrix(ct, 5)
        finite = np.where(np.isinf(tails), np.nan, tails)
        diffs = np.diff(finite, axis=1)
        assert np.all((diffs >= -1e-15) | np.isnan(diffs))

    def test_values_are_k_smallest_member_dists(self, clustered_points):
        _, ct, _, _, _ = _plan(clustered_points, 3)
        tails = tail_bound_matrix(ct, 3)
        for cid in range(ct.n_clusters):
            dists = np.sort(ct.member_dists[cid])[:3]
            np.testing.assert_allclose(tails[cid, :dists.size], dists)


class TestClusterUpperBounds:
    def test_ub_dominates_every_members_kth_distance(self, clustered_points):
        """The core soundness property of calUB: UB_i >= d_k(q, T) for
        every query q in cluster i."""
        k = 4
        cq, ct, cdist, ubs, _ = _plan(clustered_points, k)
        ref = brute_force_knn(clustered_points, clustered_points, k)
        kth = ref.distances[:, k - 1]
        for qc in range(cq.n_clusters):
            members = cq.members[qc]
            if members.size:
                assert ubs[qc] >= kth[members].max() - 1e-9

    def test_more_neighbours_looser_bound(self, clustered_points):
        cq, ct, cdist, _, _ = _plan(clustered_points, 2)
        ub2 = cluster_upper_bounds(cq, ct, cdist, 2)
        ub8 = cluster_upper_bounds(cq, ct, cdist, 8)
        assert np.all(ub8 >= ub2 - 1e-12)


class TestLevel1Filter:
    def test_never_drops_a_true_neighbour_cluster(self, clustered_points):
        """A dropped target cluster must contain no true k-NN of any
        query in the cluster — the level-1 exactness guarantee."""
        k = 5
        cq, ct, cdist, ubs, candidates = _plan(clustered_points, k)
        ref = brute_force_knn(clustered_points, clustered_points, k)
        for qc in range(cq.n_clusters):
            kept = set(candidates[qc].tolist())
            for q in cq.members[qc]:
                neighbour_clusters = set(
                    ct.assignment[ref.indices[q]].tolist())
                assert neighbour_clusters <= kept

    def test_candidates_sorted_by_center_distance(self, clustered_points):
        cq, ct, cdist, ubs, candidates = _plan(clustered_points, 5)
        for qc, cand in enumerate(candidates):
            dists = cdist[qc][cand]
            assert np.all(np.diff(dists) >= -1e-15)

    def test_empty_clusters_excluded(self, rng):
        # Duplicate points can empty a cluster; filter must skip those.
        points = np.tile(rng.normal(size=(4, 3)), (10, 1))
        cq, ct, cdist, ubs, candidates = _plan(points, 2, mq=6, mt=6)
        sizes = ct.cluster_sizes()
        for cand in candidates:
            assert np.all(sizes[cand] > 0)


class TestPointFilters:
    @pytest.mark.parametrize("filter_fn", [point_filter_full,
                                           point_filter_partial])
    def test_exactness_per_query(self, clustered_points, filter_fn):
        k = 6
        cq, ct, cdist, ubs, candidates = _plan(clustered_points, k)
        ref = brute_force_knn(clustered_points, clustered_points, k)
        for q in range(0, len(clustered_points), 13):
            qc = cq.assignment[q]
            row = np.full(ct.n_clusters, np.nan)
            cand = candidates[qc]
            row[cand] = euclidean_many(ct.centers[cand], clustered_points[q])
            out = filter_fn(clustered_points[q], q, ct, cand, ubs[qc], k,
                            center_dists_row=row)
            if filter_fn is point_filter_full:
                dists, _ = out[0].sorted_items()
            else:
                dists = out[0]
            np.testing.assert_allclose(dists, ref.distances[q], atol=1e-9)

    def test_partial_computes_at_least_full(self, clustered_points):
        """The weakened filter never computes fewer distances than the
        full filter (its bound never tightens)."""
        k = 6
        cq, ct, cdist, ubs, candidates = _plan(clustered_points, k)
        total_full = 0
        total_partial = 0
        for q in range(len(clustered_points)):
            qc = cq.assignment[q]
            cand = candidates[qc]
            row = np.full(ct.n_clusters, np.nan)
            row[cand] = euclidean_many(ct.centers[cand], clustered_points[q])
            _, trace_f = point_filter_full(
                clustered_points[q], q, ct, cand, ubs[qc], k,
                center_dists_row=row)
            _, _, trace_p = point_filter_partial(
                clustered_points[q], q, ct, cand, ubs[qc], k,
                center_dists_row=row)
            total_full += trace_f.distance_computations
            total_partial += trace_p.distance_computations
        assert total_partial >= total_full

    def test_filter_saves_work_on_clustered_data(self, clustered_points):
        k = 6
        cq, ct, cdist, ubs, candidates = _plan(clustered_points, k)
        computed = 0
        n = len(clustered_points)
        for q in range(n):
            qc = cq.assignment[q]
            heap, trace = point_filter_full(
                clustered_points[q], q, ct, candidates[qc], ubs[qc], k)
            computed += trace.distance_computations
        assert computed < 0.5 * n * n

    @given(hnp.arrays(np.float64, st.tuples(st.integers(12, 40),
                                            st.integers(2, 4)),
                      elements=st.floats(-50, 50, allow_nan=False)),
           st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_property_full_filter_exact(self, points, k):
        """Exactness on arbitrary point sets (duplicates, collinear,
        degenerate clusters...)."""
        cq, ct, cdist, ubs, candidates = _plan(points, k, mq=4, mt=4)
        ref = brute_force_knn(points, points, k)
        for q in range(points.shape[0]):
            qc = cq.assignment[q]
            heap, _ = point_filter_full(points[q], q, ct, candidates[qc],
                                        ubs[qc], k)
            dists, _ = heap.sorted_items()
            np.testing.assert_allclose(dists, ref.distances[q], atol=1e-8)
