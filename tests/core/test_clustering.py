"""Tests for landmark clustering (Step 1 of Fig. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.clustering import center_distances, cluster_points
from repro.core.landmarks import select_landmarks_random_spread


def _cluster(points, m, seed=0, sort_descending=False):
    rng = np.random.default_rng(seed)
    centers = select_landmarks_random_spread(points, m, rng)
    return cluster_points(points, centers, sort_descending=sort_descending)


class TestClusterPoints:
    def test_every_point_assigned_once(self, clustered_points):
        cs = _cluster(clustered_points, 12)
        assert cs.cluster_sizes().sum() == cs.n_points
        assert cs.check_invariants()

    def test_assignment_is_nearest_center(self, clustered_points):
        cs = _cluster(clustered_points, 12)
        for i in range(cs.n_points):
            dists = np.linalg.norm(cs.centers - clustered_points[i], axis=1)
            assert dists[cs.assignment[i]] == pytest.approx(dists.min())

    def test_dist_to_center_correct(self, clustered_points):
        cs = _cluster(clustered_points, 12)
        for i in range(0, cs.n_points, 17):
            expected = np.linalg.norm(
                clustered_points[i] - cs.centers[cs.assignment[i]])
            assert cs.dist_to_center[i] == pytest.approx(expected)

    def test_sorted_descending(self, clustered_points):
        cs = _cluster(clustered_points, 12, sort_descending=True)
        for dists in cs.member_dists:
            assert np.all(np.diff(dists) <= 1e-15)

    def test_radius_is_max_member_distance(self, clustered_points):
        cs = _cluster(clustered_points, 12)
        for cid in range(cs.n_clusters):
            if cs.member_dists[cid].size:
                assert cs.radius[cid] == pytest.approx(
                    cs.member_dists[cid].max())
            else:
                assert cs.radius[cid] == 0.0

    def test_landmark_in_own_cluster_at_zero(self, clustered_points):
        cs = _cluster(clustered_points, 12)
        for cid, point_idx in enumerate(cs.center_indices):
            assert cs.dist_to_center[point_idx] == pytest.approx(0.0)

    def test_init_distance_count(self, clustered_points):
        cs = _cluster(clustered_points, 12)
        assert cs.init_distance_computations == cs.n_points * 12

    def test_chunking_consistency(self, rng):
        """Chunked assignment must equal a one-shot computation even
        when n exceeds the chunk size (high-d shrinks the chunk)."""
        points = rng.normal(size=(300, 700))  # chunk ~ 2**26/(m*d)
        cs = _cluster(points, 30)
        assert cs.check_invariants()

    @given(hnp.arrays(np.float64, (30, 3),
                      elements=st.floats(-100, 100, allow_nan=False)),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_property_partition(self, points, m):
        cs = _cluster(points, m, sort_descending=True)
        all_members = np.sort(np.concatenate(cs.members))
        np.testing.assert_array_equal(all_members, np.arange(30))
        assert cs.check_invariants()


class TestCenterDistances:
    def test_matrix(self, clustered_points):
        cq = _cluster(clustered_points, 8, seed=1)
        ct = _cluster(clustered_points, 6, seed=2, sort_descending=True)
        mat = center_distances(cq, ct)
        assert mat.shape == (8, 6)
        assert mat[2, 3] == pytest.approx(
            np.linalg.norm(cq.centers[2] - ct.centers[3]))
