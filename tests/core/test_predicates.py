"""Predicate/accumulator protocol: the factored-out bound machinery."""

import numpy as np
import pytest

from repro.core.predicates import (CollectAccumulator,
                                   EpsilonRangeAccumulator,
                                   EpsilonRangePredicate,
                                   ReverseKNNAccumulator,
                                   ReverseKNNPredicate, TopKAccumulator,
                                   TopKPredicate, target_kth_distances)
from repro.core.ti_knn import prepare_clusters


class TestTopKAccumulator:
    def test_limit_descends_from_ub_once_full(self):
        acc = TopKAccumulator(2, ub=10.0)
        assert acc.limit() == 10.0
        acc.offer(3.0, 0)
        assert acc.limit() == 10.0  # heap not full yet
        acc.offer(5.0, 1)
        assert acc.limit() == 5.0
        acc.offer(1.0, 2)
        assert acc.limit() == 3.0

    def test_limit_never_exceeds_ub(self):
        acc = TopKAccumulator(1, ub=2.0)
        acc.offer(9.0, 0)
        assert acc.limit() == 2.0

    def test_update_bound_false_pins_theta(self):
        acc = TopKAccumulator(1, ub=10.0, update_bound=False)
        acc.offer(1.0, 0)
        assert acc.limit() == 10.0

    def test_slack_tightens_only_when_full(self):
        acc = TopKAccumulator(2, ub=10.0, slack=2.0)
        acc.offer(4.0, 0)
        assert acc.limit() == 10.0
        acc.offer(8.0, 1)
        assert acc.limit() == 8.0 / 2.0

    def test_counters_track_heap_updates(self):
        acc = TopKAccumulator(1, ub=np.inf)
        assert acc.offer(2.0, 0) and acc.offer(1.0, 1)
        assert not acc.offer(5.0, 2)
        assert acc.accepted == 2
        assert acc.updates == 2

    def test_tol_ref_is_the_level1_ub(self):
        assert TopKAccumulator(3, ub=7.5).tol_ref == 7.5


class TestCollectAccumulator:
    def test_fixed_bound_and_zero_updates(self):
        acc = CollectAccumulator(4.0)
        acc.offer(1.0, 0)
        acc.offer(9.0, 1)  # stored regardless: bound gates the scan only
        acc.bulk([2.0, 3.0], [2, 3])
        assert acc.limit() == 4.0
        assert acc.accepted == 4
        assert acc.updates == 0
        assert acc.pairs == [(1.0, 0), (9.0, 1), (2.0, 2), (3.0, 3)]


class TestEpsilonRangeAccumulator:
    def test_accepts_inclusive_boundary(self):
        acc = EpsilonRangeAccumulator(2.0)
        assert acc.offer(2.0, 0)
        assert not acc.offer(2.0000001, 1)
        assert acc.pairs == [(2.0, 0)]
        assert acc.accepted == 1

    def test_limit_is_eps(self):
        acc = EpsilonRangeAccumulator(1.5)
        assert acc.limit() == 1.5 == acc.tol_ref


class TestReverseKNNAccumulator:
    def test_per_cluster_bound_and_per_target_threshold(self):
        kdist = np.array([1.0, 3.0])
        acc = ReverseKNNAccumulator(kdist, cluster_bounds=np.array([3.0]))
        acc.enter_cluster(0)
        assert acc.limit() == 3.0
        assert not acc.offer(2.0, 0)   # 2.0 > kdist[0]
        assert acc.offer(2.0, 1)       # 2.0 <= kdist[1]


class TestPredicates:
    def test_cache_keys_distinguish_predicates(self):
        keys = {TopKPredicate(3).cache_key(),
                TopKPredicate(4).cache_key(),
                EpsilonRangePredicate(0.5).cache_key(),
                ReverseKNNPredicate(3).cache_key()}
        assert len(keys) == 4

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            EpsilonRangePredicate(-1.0)
        with pytest.raises(ValueError):
            EpsilonRangePredicate(float("nan"))

    def test_k_validation(self):
        with pytest.raises(ValueError):
            TopKPredicate(0)
        with pytest.raises(ValueError):
            ReverseKNNPredicate(0)

    def test_topk_level1_matches_plan_level1(self, clustered_points, rng):
        plan = prepare_clusters(clustered_points, clustered_points, rng)
        state = plan.level1_for(TopKPredicate(5))
        ubs, candidates = plan.level1(5)
        assert np.array_equal(state.bounds, ubs)
        assert all(np.array_equal(a, b)
                   for a, b in zip(state.candidates, candidates))

    def test_level1_for_caches_per_predicate(self, clustered_points, rng):
        plan = prepare_clusters(clustered_points, clustered_points, rng)
        first = plan.level1_for(EpsilonRangePredicate(1.0))
        again = plan.level1_for(EpsilonRangePredicate(1.0))
        other = plan.level1_for(EpsilonRangePredicate(2.0))
        assert first is again
        assert first is not other

    def test_eps_level1_keeps_only_reachable_clusters(self, clustered_points,
                                                      rng):
        """A tiny ε keeps strictly fewer cluster pairs than a huge one."""
        plan = prepare_clusters(clustered_points, clustered_points, rng)
        tiny = plan.level1_for(EpsilonRangePredicate(1e-6))
        huge = plan.level1_for(EpsilonRangePredicate(1e6))
        assert tiny.candidate_pairs() < huge.candidate_pairs()
        assert huge.candidate_pairs() == plan.mq * plan.mt


class TestTargetKthDistances:
    def test_matches_brute_force_kdist(self, clustered_points, rng):
        plan = prepare_clusters(clustered_points, clustered_points, rng)
        kdist, _ = target_kth_distances(plan.target_clusters, 4)
        diff = clustered_points[:, None, :] - clustered_points[None, :, :]
        full = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        np.fill_diagonal(full, np.inf)
        expected = np.partition(full, 3, axis=1)[:, 3]
        # einsum blocks and per-point scans sum in different orders, so
        # agreement is to the last couple of ulps, not bit-for-bit.
        np.testing.assert_allclose(kdist, expected, rtol=1e-12)

    def test_requires_k_below_target_count(self, rng):
        points = rng.normal(size=(10, 3))
        plan = prepare_clusters(points, points, rng)
        with pytest.raises(ValueError):
            target_kth_distances(plan.target_clusters, 10)
