"""Tests for thread-data remapping, layouts and placement helpers."""

import numpy as np
import pytest

from repro.core.clustering import cluster_points
from repro.core.landmarks import select_landmarks_random_spread
from repro.core.layout import (Layout, point_load_instructions,
                               point_load_transactions)
from repro.core.remapping import identity_map, remap_by_cluster


class TestRemapping:
    def _clusters(self, points, m=8, seed=0):
        rng = np.random.default_rng(seed)
        return cluster_points(
            points, select_landmarks_random_spread(points, m, rng))

    def test_identity(self):
        np.testing.assert_array_equal(identity_map(5), [0, 1, 2, 3, 4])

    def test_remap_is_permutation(self, clustered_points):
        cq = self._clusters(clustered_points)
        mapping, _ = remap_by_cluster(cq)
        np.testing.assert_array_equal(np.sort(mapping),
                                      np.arange(cq.n_points))

    def test_remap_groups_clusters_contiguously(self, clustered_points):
        cq = self._clusters(clustered_points)
        mapping, _ = remap_by_cluster(cq)
        labels = cq.assignment[mapping]
        # Each cluster id appears in exactly one contiguous run.
        changes = int((np.diff(labels) != 0).sum())
        non_empty = int((cq.cluster_sizes() > 0).sum())
        assert changes == non_empty - 1

    def test_remap_counts_atomics(self, clustered_points):
        cq = self._clusters(clustered_points)
        _, atomic_ops = remap_by_cluster(cq)
        assert atomic_ops == int((cq.cluster_sizes() > 0).sum())


class TestLayout:
    def test_row_major_transactions(self):
        # 29 dims * 4 B = 116 B -> one 128-byte transaction.
        assert point_load_transactions(29, Layout.ROW_MAJOR) == 1
        # 61 dims * 4 B = 244 B -> two transactions.
        assert point_load_transactions(61, Layout.ROW_MAJOR) == 2

    def test_column_major_sectored(self):
        # Each scattered 4-byte read is a 32-byte sector = 1/4 txn.
        assert point_load_transactions(4, Layout.COLUMN_MAJOR) == 1.0
        assert point_load_transactions(40, Layout.COLUMN_MAJOR) == 10.0

    def test_row_cheaper_beyond_8_dims(self):
        for dim in (9, 29, 61, 281, 2000):
            assert (point_load_transactions(dim, Layout.ROW_MAJOR)
                    < point_load_transactions(dim, Layout.COLUMN_MAJOR))

    def test_instruction_counts(self):
        assert point_load_instructions(8, Layout.ROW_MAJOR) == 2  # float4
        assert point_load_instructions(8, Layout.COLUMN_MAJOR) == 8

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            point_load_transactions(0, Layout.ROW_MAJOR)

    def test_layout_from_string(self):
        assert Layout("row") is Layout.ROW_MAJOR
        assert Layout("col") is Layout.COLUMN_MAJOR
        assert "row-major" in Layout.ROW_MAJOR.describe()
