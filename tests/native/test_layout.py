"""Tests for the flat (CSR) target layout and its per-object memo."""

import numpy as np
import pytest

from repro.core.ti_knn import prepare_clusters
from repro.native.layout import (FlatTargets, cached_layouts, clear_memo,
                                 flat_targets)


@pytest.fixture
def clustered(clustered_points, rng):
    plan = prepare_clusters(clustered_points, clustered_points, rng)
    return plan.target_clusters


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_memo()
    yield
    clear_memo()


class TestPacking:
    def test_offsets_are_a_csr_row_pointer(self, clustered):
        flat = flat_targets(clustered)
        sizes = [m.size for m in clustered.members]
        assert flat.offsets[0] == 0
        assert np.array_equal(flat.sizes(), sizes)
        assert flat.offsets[-1] == sum(sizes)
        assert flat.n_clusters == len(clustered.members)

    def test_members_keep_cluster_order(self, clustered):
        flat = flat_targets(clustered)
        for tc, (members, dists) in enumerate(
                zip(clustered.members, clustered.member_dists)):
            start, end = flat.offsets[tc], flat.offsets[tc + 1]
            assert np.array_equal(flat.member_idx[start:end], members)
            assert np.array_equal(flat.member_dists[start:end], dists)

    def test_member_dists_descend_within_clusters(self, clustered):
        # The early-break contract: target member lists are sorted by
        # decreasing distance to the centre, and packing preserves it.
        flat = flat_targets(clustered)
        for tc in range(flat.n_clusters):
            start, end = flat.offsets[tc], flat.offsets[tc + 1]
            segment = flat.member_dists[start:end]
            assert np.all(np.diff(segment) <= 0)

    def test_arrays_are_contiguous_canonical_dtypes(self, clustered):
        flat = flat_targets(clustered)
        for arr, dtype in ((flat.points, np.float64),
                           (flat.member_idx, np.int64),
                           (flat.member_dists, np.float64),
                           (flat.offsets, np.int64)):
            assert arr.dtype == dtype
            assert arr.flags["C_CONTIGUOUS"]

    def test_frozen(self, clustered):
        flat = flat_targets(clustered)
        with pytest.raises(AttributeError):
            flat.points = None
        assert isinstance(flat, FlatTargets)


class TestMemo:
    def test_repeat_calls_return_the_cached_layout(self, clustered):
        first = flat_targets(clustered)
        assert flat_targets(clustered) is first
        assert cached_layouts() == 1

    def test_distinct_sets_get_distinct_entries(self, clustered_points,
                                                rng):
        a = prepare_clusters(clustered_points, clustered_points,
                             rng).target_clusters
        b = prepare_clusters(clustered_points, clustered_points,
                             rng).target_clusters
        assert flat_targets(a) is not flat_targets(b)
        assert cached_layouts() == 2

    def test_entry_dies_with_the_clustered_set(self, clustered_points,
                                               rng):
        import gc

        plan = prepare_clusters(clustered_points, clustered_points, rng)
        flat_targets(plan.target_clusters)
        assert cached_layouts() == 1
        del plan
        gc.collect()
        assert cached_layouts() == 0

    def test_clear_memo(self, clustered):
        flat_targets(clustered)
        clear_memo()
        assert cached_layouts() == 0
