"""Fail-fast UX for the optional numba dependency.

These tests must pass on every install, so they *force* the
availability answer through monkeypatching instead of depending on
whether numba happens to be importable: ``_no_numba`` pins the probe
to False (exercising the fail-fast path even on numba hosts), and the
registry-level tests use a synthetic requirement with its own probe.
"""

import io

import pytest

import repro
from repro import knn_join
from repro.cli import main
from repro.engine import (EngineCaps, EngineSpec, available_engine_names,
                          engine_available, get_engine,
                          missing_requirements, register,
                          register_requirement_probe, unregister)
from repro.engine import registry as registry_module
from repro.errors import EngineUnavailableError, ValidationError
from repro.native import support


@pytest.fixture
def _no_numba(monkeypatch):
    """Pin 'is numba importable?' to False, wherever it is asked."""
    monkeypatch.setattr(support, "_availability", False)
    monkeypatch.setattr(registry_module, "_PROBE_CACHE", {})
    yield
    registry_module._PROBE_CACHE.clear()


@pytest.fixture
def _with_numba(monkeypatch):
    """Pin the registry's availability answer to True (probe level only:
    the engines themselves still refuse to run without the real numba,
    which is exactly what the executor-bypass test wants)."""
    monkeypatch.setattr(registry_module, "_PROBE_CACHE", {"numba": True})
    yield
    registry_module._PROBE_CACHE.clear()


def _cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestRegistryAvailability:
    def test_native_engines_declare_numba(self):
        for name in ("ti-native", "sweet-native"):
            assert get_engine(name).caps.requires == ("numba",)

    def test_flat_engines_require_nothing(self):
        for name in ("ti-flat", "sweet-flat"):
            assert get_engine(name).caps.requires == ()
            assert engine_available(name)

    def test_missing_requirements(self, _no_numba):
        assert missing_requirements(get_engine("ti-native")) == ("numba",)
        assert missing_requirements(get_engine("ti-flat")) == ()

    def test_available_names_exclude_unavailable(self, _no_numba):
        names = available_engine_names()
        assert "ti-flat" in names
        assert "sweet-flat" in names
        assert "ti-native" not in names
        assert "sweet-native" not in names

    def test_methods_view_surfaces_availability(self, _no_numba):
        assert "ti-native" in repro.METHODS
        assert "ti-native" not in repro.METHODS.available()
        availability = repro.METHODS.availability()
        assert availability["ti-native"] == ("numba",)
        assert availability["ti-flat"] == ()

    def test_probe_answer_flips_with_availability(self, _with_numba):
        assert engine_available("ti-native")
        assert "ti-native" in available_engine_names()

    def test_custom_requirement_probe(self):
        spec = register(EngineSpec(
            name="needs-unobtainium", run=lambda *a, **kw: None,
            caps=EngineCaps(requires=("unobtainium",))))
        try:
            register_requirement_probe("unobtainium", lambda: False)
            assert missing_requirements(spec) == ("unobtainium",)
            register_requirement_probe("unobtainium", lambda: True)
            assert missing_requirements(spec) == ()
        finally:
            unregister("needs-unobtainium")
            registry_module._REQUIREMENT_PROBES.pop("unobtainium", None)
            registry_module._PROBE_CACHE.pop("unobtainium", None)


class TestApiFailFast:
    @pytest.mark.parametrize("method", ["ti-native", "sweet-native"])
    def test_knn_join_raises_engine_unavailable(self, _no_numba,
                                                clustered_points, method):
        with pytest.raises(EngineUnavailableError) as err:
            knn_join(clustered_points, clustered_points, 4, method=method)
        assert err.value.engine == method
        assert err.value.missing == ("numba",)
        assert "numba" in str(err.value)
        # The remedy names the always-available fallback engine.
        assert method.replace("-native", "-flat") in str(err.value)

    def test_engine_unavailable_is_a_validation_error(self):
        assert issubclass(EngineUnavailableError, ValidationError)

    def test_flat_fallback_answers(self, _no_numba, clustered_points):
        result = knn_join(clustered_points, clustered_points, 4,
                          method="ti-flat")
        assert result.stats.extra["kernel_tier"] == "numpy-flat"


class TestCliFailFast:
    @pytest.mark.parametrize("argv", [
        ["run", "--method", "ti-native", "--n", "64", "--dim", "3",
         "-k", "3"],
        ["plan", "--method", "ti-native", "--n", "64", "--dim", "3",
         "-k", "3"],
        ["classify", "--method", "sweet-native", "--n", "80", "--dim",
         "3", "-k", "3"],
        ["explain", "--method", "ti-native", "--n", "64", "--dim", "3",
         "-k", "3"],
    ])
    def test_exits_2_with_install_hint(self, _no_numba, argv):
        code, output = _cli(argv)
        assert code == 2
        assert "requires numba" in output
        assert "pip install numba" in output
        # One line, not a traceback.
        assert output.count("\n") == 1

    def test_compare_skips_unavailable_non_baseline(self, _no_numba):
        code, output = _cli(["compare", "--methods", "ti-cpu,ti-native",
                             "--n", "64", "--dim", "3", "-k", "3"])
        assert code == 0
        assert "SKIPPED" in output
        assert "requires numba" in output
        assert "pip install numba" in output

    def test_compare_still_fails_on_unavailable_baseline(self, _no_numba):
        code, output = _cli(["compare", "--methods", "ti-native,ti-cpu",
                             "--n", "64", "--dim", "3", "-k", "3"])
        assert code == 2
        assert "requires numba" in output
        # One line, not a traceback.
        assert output.count("\n") == 1

    def test_flat_engine_still_runs(self, _no_numba):
        code, output = _cli(["run", "--method", "ti-flat", "--n", "64",
                             "--dim", "3", "-k", "3"])
        assert code == 0
        assert "numpy-flat" in output

    def test_plan_prints_requires_when_available(self, _with_numba):
        code, output = _cli(["plan", "--method", "ti-native", "--n", "64",
                             "--dim", "3", "-k", "3"])
        assert code == 0
        assert "requires" in output
        assert "numba (installed)" in output
