"""Flat numpy tier parity: bit-identical to the sequential reference.

The exactness contract of :mod:`repro.native` (always-run half): the
``ti-flat`` and ``sweet-flat`` engines must return the same neighbour
indices, the same distances to the last bit, and the same filtering
funnel counters as the sequential reference engine — per filter
strength, at every worker count, over every pool flavour.  The
``sweet-*`` engines implement the paper's partial (fixed-θ) filter, so
their reference is ``ti-cpu`` with ``filter_strength="partial"``.
"""

import numpy as np
import pytest

from repro import knn_join
from repro.obs.funnel import funnel_from_stats

#: (contender, reference options) per filter strength.
PAIRS = [("ti-flat", {}),
         ("sweet-flat", {"filter_strength": "partial"})]

COUNTERS = ("level2_distance_computations", "center_distance_computations",
            "examined_points", "candidate_cluster_pairs",
            "level1_survivor_pairs", "heap_updates",
            "predicate_accepted_pairs")


def _assert_identical(result, reference):
    assert np.array_equal(result.indices, reference.indices)
    assert np.array_equal(result.distances, reference.distances)
    for name in COUNTERS:
        assert getattr(result.stats, name) == \
            getattr(reference.stats, name), name
    assert funnel_from_stats(result.stats) == \
        funnel_from_stats(reference.stats)


class TestSerialParity:
    @pytest.mark.parametrize("method,ref_options", PAIRS)
    def test_bit_identical_to_reference(self, clustered_points, rng,
                                        method, ref_options):
        queries = rng.normal(size=(60, clustered_points.shape[1]))
        reference = knn_join(queries, clustered_points, 7, method="ti-cpu",
                             seed=5, **ref_options)
        result = knn_join(queries, clustered_points, 7, method=method,
                          seed=5)
        _assert_identical(result, reference)

    @pytest.mark.parametrize("method,ref_options", PAIRS)
    def test_self_join(self, clustered_points, method, ref_options):
        reference = knn_join(clustered_points, clustered_points, 5,
                             method="ti-cpu", seed=2, **ref_options)
        result = knn_join(clustered_points, clustered_points, 5,
                          method=method, seed=2)
        _assert_identical(result, reference)

    @pytest.mark.parametrize("method,ref_options", PAIRS)
    def test_uniform_points(self, uniform_points, method, ref_options):
        # Weak clusterability: the filter prunes little, the scan walks
        # almost everything — the opposite regime of the blob fixture.
        reference = knn_join(uniform_points, uniform_points, 9,
                             method="ti-cpu", seed=4, **ref_options)
        result = knn_join(uniform_points, uniform_points, 9,
                          method=method, seed=4)
        _assert_identical(result, reference)

    @pytest.mark.parametrize("method", [m for m, _ in PAIRS])
    def test_k_edge_cases(self, clustered_points, method):
        for k in (1, len(clustered_points)):
            reference = knn_join(
                clustered_points, clustered_points, k, method="ti-cpu",
                seed=1, **dict(PAIRS)[method])
            result = knn_join(clustered_points, clustered_points, k,
                              method=method, seed=1)
            assert np.array_equal(result.indices, reference.indices)
            assert np.array_equal(result.distances, reference.distances)

    @pytest.mark.parametrize("method", [m for m, _ in PAIRS])
    def test_reports_kernel_tier(self, clustered_points, method):
        result = knn_join(clustered_points, clustered_points, 4,
                          method=method)
        assert result.stats.extra["kernel_tier"] == "numpy-flat"


class TestShardedParity:
    @pytest.mark.parametrize("method,ref_options", PAIRS)
    @pytest.mark.parametrize("workers,pool", [
        (1, None), (2, "thread"), (2, "process"), (4, "thread"),
        (4, "process")])
    def test_pools_match_serial_reference(self, clustered_points, rng,
                                          method, ref_options, workers,
                                          pool):
        queries = rng.normal(size=(50, clustered_points.shape[1]))
        reference = knn_join(queries, clustered_points, 6, method="ti-cpu",
                             seed=3, **ref_options)
        kwargs = {} if workers == 1 else {"workers": workers, "pool": pool}
        result = knn_join(queries, clustered_points, 6, method=method,
                          seed=3, **kwargs)
        _assert_identical(result, reference)

    @pytest.mark.parametrize("method", [m for m, _ in PAIRS])
    def test_kernel_tier_survives_shard_merge(self, clustered_points,
                                              method):
        result = knn_join(clustered_points, clustered_points, 4,
                          method=method, workers=2, pool="thread")
        assert result.stats.extra["kernel_tier"] == "numpy-flat"
