"""Numba-gated tests for the compiled kernel tier.

The whole module skips when numba is not importable
(``pytest.importorskip``); CI's numba matrix leg runs it for real.
The contract under test is the same as the flat tier's: ``ti-native``
and ``sweet-native`` results and funnel counters are bit-identical to
the sequential reference, deterministic across repeat runs, and
compose with prepared/mmap'd indexes, sharded pools and the serving
path without special cases.
"""

import numpy as np
import pytest

numba = pytest.importorskip("numba")

from repro import SweetKNN, knn_join  # noqa: E402
from repro.index import Index  # noqa: E402
from repro.native.support import (native_compile_seconds,  # noqa: E402
                                  warm_up_kernels)
from repro.obs.funnel import funnel_from_stats  # noqa: E402

COUNTERS = ("level2_distance_computations", "center_distance_computations",
            "examined_points", "candidate_cluster_pairs",
            "level1_survivor_pairs", "heap_updates",
            "predicate_accepted_pairs")


def _assert_identical(result, reference):
    assert np.array_equal(result.indices, reference.indices)
    assert np.array_equal(result.distances, reference.distances)
    for name in COUNTERS:
        assert getattr(result.stats, name) == \
            getattr(reference.stats, name), name
    assert funnel_from_stats(result.stats) == \
        funnel_from_stats(reference.stats)


class TestWarmUp:
    def test_warm_up_records_compile_time(self):
        before = native_compile_seconds()
        warm_up_kernels(dim=3)
        first = native_compile_seconds()
        assert first >= before
        # Re-warming an already-compiled dim is free.
        assert warm_up_kernels(dim=3) == 0.0
        assert native_compile_seconds() == first


class TestNativeParity:
    @pytest.mark.parametrize("method,ref_options",
                             [("ti-native", {}),
                              ("sweet-native",
                               {"filter_strength": "partial"})])
    def test_bit_identical_to_reference(self, clustered_points, rng,
                                        method, ref_options):
        queries = rng.normal(size=(60, clustered_points.shape[1]))
        reference = knn_join(queries, clustered_points, 7, method="ti-cpu",
                             seed=5, **ref_options)
        result = knn_join(queries, clustered_points, 7, method=method,
                          seed=5)
        _assert_identical(result, reference)
        assert result.stats.extra["kernel_tier"] == "native"

    @pytest.mark.parametrize("method", ["ti-native", "sweet-native"])
    def test_matches_flat_tier(self, uniform_points, method):
        flat = knn_join(uniform_points, uniform_points, 9,
                        method=method.replace("-native", "-flat"), seed=4)
        native = knn_join(uniform_points, uniform_points, 9,
                          method=method, seed=4)
        assert np.array_equal(native.indices, flat.indices)
        assert np.array_equal(native.distances, flat.distances)

    @pytest.mark.parametrize("method", ["ti-native", "sweet-native"])
    def test_deterministic_across_runs(self, clustered_points, method):
        a = knn_join(clustered_points, clustered_points, 6, method=method,
                     seed=9)
        b = knn_join(clustered_points, clustered_points, 6, method=method,
                     seed=9)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.distances, b.distances)

    @pytest.mark.parametrize("method", ["ti-native", "sweet-native"])
    @pytest.mark.parametrize("workers,pool", [
        (2, "thread"), (2, "process"), (4, "thread")])
    def test_sharded_pools(self, clustered_points, rng, method, workers,
                           pool):
        queries = rng.normal(size=(50, clustered_points.shape[1]))
        serial = knn_join(queries, clustered_points, 6, method=method,
                          seed=3)
        sharded = knn_join(queries, clustered_points, 6, method=method,
                           seed=3, workers=workers, pool=pool)
        assert np.array_equal(serial.indices, sharded.indices)
        assert np.array_equal(serial.distances, sharded.distances)

    def test_compile_time_reported_separately(self, clustered_points):
        result = knn_join(clustered_points, clustered_points, 4,
                          method="ti-native")
        assert "native_compile_s" in result.stats.extra
        assert result.stats.extra["native_compile_s"] >= 0.0


class TestNativeRoundTrips:
    def test_mmap_index_round_trip(self, tmp_path, clustered_points, rng):
        path = str(tmp_path / "idx")
        Index(clustered_points, seed=3).save(path)
        queries = rng.normal(size=(40, clustered_points.shape[1]))
        fresh = SweetKNN.from_index(Index(clustered_points, seed=3),
                                    method="ti-native")
        loaded = SweetKNN.from_index(Index.load(path, mmap=True),
                                     method="ti-native")
        reference = SweetKNN.from_index(Index(clustered_points, seed=3),
                                        method="ti-cpu")
        _assert_identical(loaded.query(queries, 6),
                          reference.query(queries, 6))
        _assert_identical(fresh.query(queries, 6),
                          reference.query(queries, 6))

    def test_serve_path_round_trip(self, clustered_points, rng):
        from repro.serve import KNNServer

        queries = rng.normal(size=(20, clustered_points.shape[1]))
        reference = knn_join(queries, clustered_points, 5,
                             method="ti-cpu")
        with KNNServer(method="ti-native") as server:
            response = server.query(queries, clustered_points, 5)
        assert np.array_equal(response.indices, reference.indices)
        assert np.array_equal(response.distances, reference.distances)
