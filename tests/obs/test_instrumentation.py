"""Tests for the telemetry threaded through planner/engine/GPU/adaptive."""

import numpy as np
import pytest

from repro import knn_join, obs
from repro.core.adaptive import decide
from repro.engine.planner import plan_shape
from repro.gpu.device import tesla_k20c
from repro.obs.tracer import Tracer, use_tracer


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(11)
    return rng.normal(size=(250, 8))


class TestEngineSpans:
    def test_sweet_join_produces_nested_phase_spans(self, points):
        tracer = Tracer()
        with use_tracer(tracer):
            knn_join(points, points, 5, method="sweet", seed=1)
        names = {span.name for span in tracer.finished_spans()}
        assert {"engine.execute", "planner.plan", "prepare.clusters",
                "kernel:init", "kernel:level1", "kernel:level2",
                "kernel:merge"} <= names
        (execute,) = tracer.finished_spans("engine.execute")
        assert execute.parent_id is None
        for kernel in ("kernel:init", "kernel:level1", "kernel:level2",
                       "kernel:merge"):
            (span,) = tracer.finished_spans(kernel)
            assert span.trace_id == execute.trace_id

    def test_execute_span_annotated_with_outcome(self, points):
        tracer = Tracer()
        with use_tracer(tracer):
            knn_join(points, points, 5, method="sweet", seed=1)
        (span,) = tracer.finished_spans("engine.execute")
        assert span.attributes["engine"] == "sweet"
        assert 0.0 <= span.attributes["saved_fraction"] <= 1.0
        assert span.attributes["sim_time_s"] > 0

    def test_batched_execution_emits_batch_spans(self, points):
        tracer = Tracer()
        with use_tracer(tracer):
            knn_join(points, points, 5, method="sweet", seed=1,
                     query_batch_size=100)
        batches = tracer.finished_spans("engine.batch")
        assert len(batches) == 3
        (execute,) = tracer.finished_spans("engine.execute")
        assert all(b.trace_id == execute.trace_id for b in batches)

    def test_pipeline_profile_attached_as_artifact(self, points):
        tracer = Tracer()
        with use_tracer(tracer):
            knn_join(points, points, 5, method="sweet", seed=1)
        (profile,) = tracer.artifacts("pipeline_profile")
        assert profile.sim_time_s > 0
        assert tracer.registry.value("gpu.pipeline.runs") == 1
        eff = tracer.registry.histogram(
            "gpu.kernel.level2_filter.warp_efficiency")
        assert eff.count >= 1

    def test_kernel_spans_carry_sim_time(self, points):
        tracer = Tracer()
        with use_tracer(tracer):
            knn_join(points, points, 5, method="sweet", seed=1)
        (level2,) = tracer.finished_spans("kernel:level2")
        assert level2.attributes["sim_time_s"] > 0
        assert 0.0 < level2.attributes["warp_efficiency"] <= 1.0


class TestAdaptiveDecisions:
    def test_decide_records_which_branch_fired_and_why(self):
        tracer = Tracer()
        device = tesla_k20c()
        with use_tracer(tracer):
            decide(1000, 1000, 20, 16, 30.0, device)       # k/d <= 8
            decide(100, 100, 200, 10, 10.0, device)        # k/d > 8
        events = [instant for instant in tracer.instants()
                  if instant["name"] == "adaptive.filter_strength"]
        assert [event["choice"] for event in events] == ["full", "partial"]
        assert "<= 8" in events[0]["reason"]
        assert "> 8" in events[1]["reason"]
        assert tracer.registry.value("adaptive.filter.full") == 1
        assert tracer.registry.value("adaptive.filter.partial") == 1

    def test_forced_filter_reason_is_forced(self):
        tracer = Tracer()
        with use_tracer(tracer):
            decide(100, 100, 20, 16, 10.0, tesla_k20c(),
                   force_filter="partial")
        (event,) = [instant for instant in tracer.instants()
                    if instant["name"] == "adaptive.filter_strength"]
        assert event["reason"] == "forced"

    def test_placement_and_parallelism_events(self):
        tracer = Tracer()
        with use_tracer(tracer):
            decide(1000, 1000, 20, 16, 30.0, tesla_k20c())
        names = [instant["name"] for instant in tracer.instants()]
        assert "adaptive.placement" in names
        assert "adaptive.parallelism" in names


class TestPlannerSpan:
    def test_plan_shape_annotates_batching_decision(self):
        tracer = Tracer()
        with use_tracer(tracer):
            plan_shape(500, 500, 10, 8, method="sweet",
                       device=tesla_k20c())
        (span,) = tracer.finished_spans("planner.plan")
        assert span.attributes["method"] == "sweet"
        assert span.attributes["rows_per_batch"] >= 1
        assert span.attributes["query_batches"] >= 1


class TestUntracedDefault:
    def test_untraced_join_records_nothing_and_matches_traced(self, points):
        assert obs.current_tracer() is None
        untraced = knn_join(points, points, 5, method="sweet", seed=1)
        tracer = Tracer()
        with use_tracer(tracer):
            traced = knn_join(points, points, 5, method="sweet", seed=1)
        assert np.allclose(untraced.distances, traced.distances)
        assert np.array_equal(untraced.indices, traced.indices)
        assert untraced.stats.level2_distance_computations == \
            traced.stats.level2_distance_computations

    def test_stats_publish_writes_join_and_funnel_counters(self, points):
        from repro.obs.metrics import MetricsRegistry

        result = knn_join(points, points, 5, method="sweet", seed=1)
        registry = MetricsRegistry()
        result.stats.publish(registry)
        assert registry.value("join.runs") == 1
        assert registry.value("join.queries") == len(points)
        assert registry.value("funnel.candidates") == len(points) ** 2


class TestIdempotentPublish:
    """Publishing the same JoinStats twice must not double-count."""

    def test_double_publish_counts_once(self, points):
        from repro.obs.metrics import MetricsRegistry

        result = knn_join(points, points, 5, method="sweet", seed=1)
        registry = MetricsRegistry()
        result.stats.publish(registry)
        once = {name: registry.value(name) for name in registry.names()
                if not name.startswith("gpu.")}
        result.stats.publish(registry)
        again = {name: registry.value(name) for name in registry.names()
                 if not name.startswith("gpu.")}
        assert again == once
        assert registry.value("join.runs") == 1

    def test_distinct_registries_each_get_the_counters(self, points):
        from repro.obs.metrics import MetricsRegistry

        result = knn_join(points, points, 5, method="sweet", seed=1)
        first, second = MetricsRegistry(), MetricsRegistry()
        result.stats.publish(first)
        result.stats.publish(second)
        assert first.value("join.runs") == 1
        assert second.value("join.runs") == 1

    def test_force_republishes(self, points):
        from repro.obs.metrics import MetricsRegistry

        result = knn_join(points, points, 5, method="sweet", seed=1)
        registry = MetricsRegistry()
        result.stats.publish(registry)
        result.stats.publish(registry, force=True)
        assert registry.value("join.runs") == 2

    def test_explain_then_trace_does_not_double_publish(self, points):
        """An explain join under an ambient tracer publishes once."""
        tracer = Tracer()
        with use_tracer(tracer):
            result = knn_join(points, points, 5, method="sweet", seed=1,
                              explain=True)
        assert tracer.registry.value("join.runs") == 1
        assert tracer.registry.value("funnel.candidates") \
            == result.audit.funnel["candidates"]

    def test_published_stats_still_pickle(self, points):
        import pickle

        from repro.obs.metrics import MetricsRegistry

        result = knn_join(points, points, 5, method="sweet", seed=1)
        result.stats.publish(MetricsRegistry())
        clone = pickle.loads(pickle.dumps(result.stats))
        # The publish guard is process-local state: stripped on pickle,
        # so an unpickled stats object can publish afresh.
        registry = MetricsRegistry()
        clone.publish(registry)
        assert registry.value("join.runs") == 1
