"""Tests for the metrics registry: counters, gauges, histograms."""

import math
import threading

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("join.runs")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.counter("a").inc(4)
        assert registry.value("a") == 7

    def test_concurrent_increments_do_not_lose_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestGauge:
    def test_nan_until_set_then_last_value_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("pressure")
        assert math.isnan(gauge.value)
        gauge.set(0.25)
        gauge.set(0.75)
        assert gauge.value == 0.75


class TestHistogram:
    def test_empty_aggregates_are_nan_never_raise(self):
        histogram = MetricsRegistry().histogram("latency")
        assert math.isnan(histogram.mean)
        assert math.isnan(histogram.max)
        assert math.isnan(histogram.percentile(50))
        assert histogram.count == 0
        assert histogram.values() == ()

    def test_percentiles_from_samples(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 4.0
        assert histogram.mean == pytest.approx(2.5)
        assert histogram.max == 4.0

    def test_describe_keys(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(1.0)
        info = histogram.describe()
        assert set(info) == {"count", "mean", "p50", "p90", "p99", "max"}


class TestRegistry:
    def test_type_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="counter"):
            registry.histogram("x")

    def test_value_default_for_missing_metric(self):
        assert MetricsRegistry().value("nope", default=-1) == -1

    def test_snapshot_covers_all_metrics(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(3.0)
        snap = registry.snapshot()
        assert snap["c"] == 2
        assert snap["g"] == 1.5
        assert snap["h"]["count"] == 1


class TestHistogramReservoir:
    """The bounded-memory reservoir behind long-lived histograms."""

    def test_million_observations_bounded_memory_exact_aggregates(self):
        from repro.obs.metrics import Histogram

        histogram = Histogram("serve.latency_s", max_samples=512)
        rng = np.random.default_rng(7)
        values = rng.uniform(0.0, 1.0, size=1_000_000)
        for value in values:
            histogram.observe(value)
        # Memory stays bounded by the cap, never the stream length.
        assert histogram.reservoir_size == 512
        assert len(histogram.values()) == 512
        # Running aggregates are exact for the whole stream.
        assert histogram.count == 1_000_000
        assert histogram.total == pytest.approx(float(values.sum()),
                                                rel=1e-12)
        assert histogram.mean == pytest.approx(float(values.mean()),
                                               rel=1e-12)
        assert histogram.max == float(values.max())
        # Percentiles are sampled estimates within tolerance of truth.
        for q in (50, 90, 99):
            truth = float(np.percentile(values, q))
            assert histogram.percentile(q) == pytest.approx(truth, abs=0.05)

    def test_below_cap_reservoir_is_the_full_sample_set(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in range(100):
            histogram.observe(float(value))
        assert histogram.values() == tuple(float(v) for v in range(100))
        assert histogram.percentile(50) == pytest.approx(49.5)

    def test_reservoir_replacement_is_deterministic_per_name(self):
        from repro.obs.metrics import Histogram

        def build(name):
            histogram = Histogram(name, max_samples=32)
            for value in range(10_000):
                histogram.observe(float(value % 977))
            return histogram.values()

        assert build("latency") == build("latency")
        assert build("latency") != build("other")

    def test_default_cap_bounds_registry_histograms(self):
        from repro.obs.metrics import DEFAULT_RESERVOIR_SIZE

        histogram = MetricsRegistry().histogram("h")
        for value in range(DEFAULT_RESERVOIR_SIZE + 1000):
            histogram.observe(float(value))
        assert histogram.reservoir_size == DEFAULT_RESERVOIR_SIZE
        assert histogram.count == DEFAULT_RESERVOIR_SIZE + 1000

    def test_nan_observation_does_not_poison_max(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(1.0)
        histogram.observe(float("nan"))
        histogram.observe(2.0)
        assert histogram.max == 2.0
