"""Tests for the watch subsystem: rolling windows and SLO monitors."""

import math
import threading

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.watch import (KNOWN_SLOS, MetricWindows, RollingWindow,
                             SloMonitor, SloSpec, SnapshotReader,
                             evaluate_slos, slo_table)


class FakeClock:
    """Deterministic injectable time source."""

    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt
        return self.t


class TestRollingWindow:
    def test_empty_window_aggregates(self):
        window = RollingWindow(window_s=10, n_buckets=5, clock=FakeClock())
        assert window.count() == 0
        assert window.rate() == 0.0
        assert math.isnan(window.mean())
        assert math.isnan(window.percentile(99))
        assert math.isnan(window.max())
        assert window.samples() == ()

    def test_rejects_nonpositive_geometry(self):
        with pytest.raises(ValidationError):
            RollingWindow(window_s=0)
        with pytest.raises(ValidationError):
            RollingWindow(n_buckets=0)

    def test_count_rate_mean_within_window(self):
        clock = FakeClock()
        window = RollingWindow(window_s=10, n_buckets=5, clock=clock)
        for value in (1.0, 2.0, 3.0, 4.0):
            window.record(value)
        assert window.count() == 4
        assert window.rate() == pytest.approx(0.4)
        assert window.mean() == pytest.approx(2.5)
        assert window.percentile(50) == pytest.approx(2.5)
        assert window.max() == 4.0

    def test_old_observations_age_out(self):
        clock = FakeClock()
        window = RollingWindow(window_s=10, n_buckets=5, clock=clock)
        window.record(100.0)
        clock.advance(5.0)
        window.record(1.0)
        assert window.count() == 2
        # Move past the window for the first observation only.
        clock.advance(7.0)
        assert window.count() == 1
        assert window.max() == 1.0
        clock.advance(60.0)
        assert window.count() == 0

    def test_eviction_bounds_bucket_memory(self):
        clock = FakeClock()
        window = RollingWindow(window_s=10, n_buckets=5, clock=clock)
        for _ in range(100):
            window.record(1.0)
            clock.advance(2.0)          # one bucket per record
        assert len(window._buckets) <= window.n_buckets + 1

    def test_reservoir_caps_samples_but_counts_exactly(self):
        window = RollingWindow(window_s=10, n_buckets=5, clock=FakeClock(),
                               sample_cap=16)
        for i in range(1000):
            window.record(float(i))
        assert window.count() == 1000
        assert len(window.samples()) <= 5 * 16
        assert window.total() == pytest.approx(sum(range(1000)))

    def test_deterministic_given_clock_and_sequence(self):
        def build():
            clock = FakeClock()
            window = RollingWindow(window_s=10, n_buckets=5, clock=clock,
                                   sample_cap=8)
            for i in range(200):
                window.record(float(i % 17))
                if i % 10 == 9:
                    clock.advance(1.0)
            return window
        first, second = build(), build()
        assert first.samples() == second.samples()
        assert first.count() == second.count()
        assert first.describe() == second.describe()

    def test_counter_increments_skip_the_reservoir(self):
        window = RollingWindow(window_s=10, n_buckets=5, clock=FakeClock())
        window.record(1.0, n=7, sample=False)
        assert window.count() == 7
        assert window.samples() == ()
        assert window.total() == 7.0

    def test_describe_payload(self):
        window = RollingWindow(window_s=10, n_buckets=5, clock=FakeClock())
        for value in (0.001, 0.002, 0.010):
            window.record(value)
        summary = window.describe()
        assert summary["count"] == 3
        assert summary["rate_per_s"] == pytest.approx(0.3)
        assert summary["p50"] == pytest.approx(0.002)
        assert summary["max"] == pytest.approx(0.010)


class TestMetricWindows:
    def test_histogram_observations_are_windowed(self):
        registry = MetricsRegistry()
        windows = MetricWindows(registry, clock=FakeClock())
        for value in (0.001, 0.002, 0.003):
            registry.histogram("serve.latency_s").observe(value)
        assert windows.count("serve.latency_s") == 3
        assert windows.mean("serve.latency_s") == pytest.approx(0.002)

    def test_counter_increments_feed_count_not_samples(self):
        registry = MetricsRegistry()
        windows = MetricWindows(registry, clock=FakeClock())
        registry.counter("serve.submitted").inc(5)
        assert windows.count("serve.submitted") == 5
        assert windows.window("serve.submitted").samples() == ()

    def test_gauges_are_not_windowed(self):
        registry = MetricsRegistry()
        windows = MetricWindows(registry, clock=FakeClock())
        registry.gauge("serve.graph_version_lag").set(3)
        assert windows.window("serve.graph_version_lag") is None

    def test_prefix_filter(self):
        registry = MetricsRegistry()
        windows = MetricWindows(registry, prefixes=("serve.",),
                                clock=FakeClock())
        registry.histogram("join.time_s").observe(0.5)
        registry.histogram("serve.latency_s").observe(0.001)
        assert windows.names() == ["serve.latency_s"]

    def test_metrics_created_before_subscription_are_covered(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("serve.latency_s")
        windows = MetricWindows(registry, clock=FakeClock())
        histogram.observe(0.004)
        assert windows.count("serve.latency_s") == 1

    def test_snapshot_maps_names_to_summaries(self):
        registry = MetricsRegistry()
        windows = MetricWindows(registry, clock=FakeClock())
        registry.histogram("serve.latency_s").observe(0.002)
        snapshot = windows.snapshot()
        assert snapshot["serve.latency_s"]["count"] == 1


class TestSloSpec:
    def test_parse(self):
        spec = SloSpec.parse("p99_latency_s=0.25")
        assert spec.name == "p99_latency_s"
        assert spec.bound == 0.25
        assert spec.direction == "upper"

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValidationError):
            SloSpec.parse("p99_latency_s")
        with pytest.raises(ValidationError):
            SloSpec.parse("=0.5")
        with pytest.raises(ValidationError):
            SloSpec.parse("p99_latency_s=fast")

    def test_unknown_name_rejected_with_known_list(self):
        with pytest.raises(ValidationError, match="min_recall"):
            SloSpec(name="p42_latency", bound=1.0)

    def test_directions(self):
        assert SloSpec("min_recall", 0.9).direction == "lower"
        assert SloSpec("funnel_efficiency", 0.5).direction == "lower"
        assert SloSpec("error_rate", 0.01).direction == "upper"

    def test_describe_uses_direction_comparator(self):
        assert SloSpec("p99_latency_s", 0.25).describe() \
            == "p99_latency_s <= 0.25"
        assert SloSpec("min_recall", 0.9).describe() == "min_recall >= 0.9"


def _serving_registry(latencies=(0.001, 0.002, 0.004), submitted=10,
                      rejected=0, errors=0):
    registry = MetricsRegistry()
    registry.counter("serve.submitted").inc(submitted)
    registry.counter("serve.rejected").inc(rejected)
    registry.counter("serve.errors").inc(errors)
    for latency in latencies:
        registry.histogram("serve.latency_s").observe(latency)
    return registry


class TestEvaluateSlos:
    def test_live_ok_and_breach(self):
        registry = _serving_registry()
        windows = MetricWindows(registry, clock=FakeClock())
        monitor = SloMonitor([SloSpec("p99_latency_s", 1.0)], registry,
                             windows=windows)
        (status,) = monitor.evaluate()
        assert status.ok and not status.vacuous

        tight = SloMonitor([SloSpec("p99_latency_s", 1e-6)], registry,
                           windows=windows)
        (status,) = tight.evaluate()
        assert not status.ok
        assert status.value > 1e-6

    def test_vacuous_pass_without_samples(self):
        registry = _serving_registry(latencies=())
        monitor = SloMonitor([SloSpec("min_recall", 0.9)], registry)
        (status,) = monitor.evaluate()
        assert status.ok and status.vacuous
        assert math.isnan(status.value)
        assert "no samples" in status.describe()[2]

    def test_rate_slos_use_counter_ratios(self):
        registry = _serving_registry(submitted=10, rejected=3, errors=1)
        monitor = SloMonitor([SloSpec("rejection_rate", 0.25),
                              SloSpec("error_rate", 0.25)], registry)
        rejection, error = monitor.evaluate()
        assert rejection.value == pytest.approx(0.3)
        assert not rejection.ok
        assert error.value == pytest.approx(0.1)
        assert error.ok

    def test_funnel_efficiency_floor(self):
        registry = MetricsRegistry()
        registry.counter("funnel.candidates").inc(1000)
        registry.counter("funnel.level2_survivors").inc(100)
        monitor = SloMonitor([SloSpec("funnel_efficiency", 0.5)], registry)
        (status,) = monitor.evaluate()
        assert status.value == pytest.approx(0.9)
        assert status.ok

    def test_version_lag_gauge(self):
        registry = MetricsRegistry()
        registry.gauge("serve.graph_version_lag").set(4)
        monitor = SloMonitor([SloSpec("max_version_lag", 2)], registry)
        (status,) = monitor.evaluate()
        assert status.value == 4.0
        assert not status.ok

    def test_breach_counters_and_transitions(self):
        registry = _serving_registry()
        monitor = SloMonitor([SloSpec("p99_latency_s", 1e-6)], registry)
        monitor.evaluate()
        monitor.evaluate()
        assert registry.value("slo.breaches") == 2
        assert registry.value("slo.breach.p99_latency_s") == 2
        # Still one continuous breach episode: a single transition.
        assert registry.value("slo.breach_transitions") == 1
        assert monitor.last()[0].ok is False

    def test_windows_preferred_over_lifetime(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        windows = MetricWindows(registry, window_s=10, n_buckets=5,
                                clock=clock)
        registry.histogram("serve.latency_s").observe(10.0)  # ancient spike
        clock.advance(60.0)
        registry.histogram("serve.latency_s").observe(0.001)
        monitor = SloMonitor([SloSpec("p99_latency_s", 0.5)], registry,
                             windows=windows)
        (status,) = monitor.evaluate()
        # The spike aged out of the window, so the SLO holds.
        assert status.ok
        assert status.value == pytest.approx(0.001)

    def test_every_known_slo_evaluates(self):
        registry = _serving_registry()
        registry.gauge("serve.graph_version_lag").set(0)
        specs = [SloSpec(name, 1.0) for name in sorted(KNOWN_SLOS)]
        statuses = evaluate_slos(
            specs, SnapshotReader(registry.snapshot()))
        assert len(statuses) == len(KNOWN_SLOS)


class TestSnapshotReader:
    def test_reads_described_histograms_and_counters(self):
        registry = _serving_registry(latencies=(0.001, 0.002, 0.003),
                                     submitted=4, rejected=1)
        reader = SnapshotReader(registry.snapshot())
        assert reader.percentile("serve.latency_s", 50) \
            == pytest.approx(0.002)
        assert reader.counter("serve.submitted") == 4
        assert reader.counter("serve.rejected") == 1
        assert math.isnan(reader.percentile("serve.missing", 99))
        assert reader.counter("serve.missing") == 0

    def test_post_hoc_matches_live_evaluation(self):
        registry = _serving_registry(submitted=10, rejected=2)
        specs = (SloSpec("p99_latency_s", 1.0),
                 SloSpec("rejection_rate", 0.1))
        live = SloMonitor(specs, registry).evaluate()
        post = evaluate_slos(specs, SnapshotReader(registry.snapshot()))
        assert [s.ok for s in live] == [s.ok for s in post]
        for a, b in zip(live, post):
            assert a.value == pytest.approx(b.value)

    def test_slo_table_renders(self):
        registry = _serving_registry()
        statuses = evaluate_slos([SloSpec("p99_latency_s", 1.0)],
                                 SnapshotReader(registry.snapshot()))
        text = slo_table(statuses)
        assert "p99_latency_s <= 1" in text
        assert "OK" in text


class TestConcurrentWindowedStats:
    def test_windowed_aggregates_deterministic_under_threads(self):
        """Concurrent writers, fixed event multiset: every aggregate is
        exact and order-independent (below the reservoir cap the window
        holds the full sample set)."""
        clock = FakeClock(t=100.0)
        registry = MetricsRegistry()
        windows = MetricWindows(registry, window_s=60, n_buckets=12,
                                clock=clock)
        histogram = registry.histogram("serve.latency_s")
        counter = registry.counter("serve.submitted")
        per_thread = [[(t + 1) * 0.001 + i * 1e-6 for i in range(50)]
                      for t in range(8)]

        def work(values):
            for value in values:
                counter.inc()
                histogram.observe(value)

        threads = [threading.Thread(target=work, args=(values,))
                   for values in per_thread]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        everything = sorted(v for values in per_thread for v in values)
        assert windows.count("serve.submitted") == 400
        assert windows.count("serve.latency_s") == 400
        assert sorted(windows.window("serve.latency_s").samples()) \
            == everything
        assert windows.percentile("serve.latency_s", 99) == pytest.approx(
            float(np.percentile(np.asarray(everything), 99)))
        monitor = SloMonitor([SloSpec("p99_latency_s", 1.0)], registry,
                             windows=windows)
        (status,) = monitor.evaluate()
        assert status.ok
        assert status.value == pytest.approx(
            float(np.percentile(np.asarray(everything), 99)))
