"""Tests for the benchmark trajectory store and regression gate."""

import json

import pytest

from repro.obs.baseline import (GateReport, append_trajectory, bench_name,
                                fingerprint, gate, ingest_payload,
                                iter_metrics, load_trajectory)

PAYLOAD = {
    "dataset": "synthetic",
    "n": 2000,
    "dim": 16,
    "query_time_s": 0.40,
    "speedup": 4.0,
    "funnel": {"candidates": 4000000, "level2_survivors": 90000},
    "runs": [
        {"method": "ti-cpu", "k": 20, "workers": 2,
         "query_time_s": 0.25, "saved_fraction": 0.9},
        {"method": "sweet", "k": 20, "workers": 2,
         "query_time_s": 0.10, "saved_fraction": 0.95},
    ],
}


def _records(payload=PAYLOAD, commit="c0"):
    return ingest_payload("demo", payload, commit=commit, recorded=0.0)


class TestIterMetrics:
    def test_yields_directed_metrics_only(self):
        rows = list(iter_metrics("demo", PAYLOAD))
        metrics = {(config, metric) for config, metric, _, _ in rows}
        # Shape descriptors (n, dim) and funnel counters are not gated.
        assert ("", "n") not in metrics
        assert all("funnel" not in config for config, _ in metrics)
        assert ("", "query_time_s") in metrics
        assert ("", "speedup") in metrics

    def test_list_elements_labelled_by_identity_keys(self):
        rows = list(iter_metrics("demo", PAYLOAD))
        configs = {config for config, metric, _, _ in rows
                   if metric == "query_time_s" and config}
        assert "runs[method=ti-cpu,k=20,workers=2]" in configs
        assert "runs[method=sweet,k=20,workers=2]" in configs

    def test_labels_stable_under_list_reordering(self):
        reordered = dict(PAYLOAD)
        reordered["runs"] = list(reversed(PAYLOAD["runs"]))
        original = {(c, m): v for c, m, v, _ in iter_metrics("demo", PAYLOAD)}
        shuffled = {(c, m): v
                    for c, m, v, _ in iter_metrics("demo", reordered)}
        assert original == shuffled

    def test_directions(self):
        directions = {metric: direction
                      for _, metric, _, direction
                      in iter_metrics("demo", PAYLOAD)}
        assert directions["query_time_s"] == "lower"
        assert directions["speedup"] == "higher"
        assert directions["saved_fraction"] == "higher"

    def test_non_finite_and_bool_values_skipped(self):
        payload = {"query_time_s": float("nan"), "recall": True,
                   "speedup": 2.0}
        rows = list(iter_metrics("demo", payload))
        assert [(metric, value) for _, metric, value, _ in rows] \
            == [("speedup", 2.0)]


class TestTrajectoryStore:
    def test_fingerprint_stable_and_distinct(self):
        a = fingerprint("demo", "runs[method=sweet,k=20]")
        assert a == fingerprint("demo", "runs[method=sweet,k=20]")
        assert a != fingerprint("demo", "runs[method=ti-cpu,k=20]")
        assert len(a) == 12

    def test_bench_name_strips_prefix(self):
        assert bench_name("results/BENCH_parallel_scaling.json") \
            == "parallel_scaling"
        assert bench_name("custom.json") == "custom"

    def test_append_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "TRAJECTORY.jsonl"
        written = append_trajectory(path, _records())
        assert len(written) == len(_records())
        assert load_trajectory(path) == written
        # Every line is self-contained JSON.
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert {"bench", "config", "fingerprint", "metric", "value",
                    "direction", "commit", "recorded"} <= set(record)

    def test_reingesting_same_commit_is_noop(self, tmp_path):
        path = tmp_path / "TRAJECTORY.jsonl"
        append_trajectory(path, _records(commit="c0"))
        assert append_trajectory(path, _records(commit="c0")) == []
        assert len(load_trajectory(path)) == len(_records())

    def test_new_commit_appends(self, tmp_path):
        path = tmp_path / "TRAJECTORY.jsonl"
        append_trajectory(path, _records(commit="c0"))
        fresh = append_trajectory(path, _records(commit="c1"))
        assert len(fresh) == len(_records())
        assert len(load_trajectory(path)) == 2 * len(_records())

    def test_missing_file_loads_empty(self, tmp_path):
        assert load_trajectory(tmp_path / "absent.jsonl") == []


class TestGate:
    def test_repeat_of_stored_baseline_passes(self):
        history = _records(commit="c0")
        report = gate(_records(commit="c1"), history)
        assert report.ok
        assert {entry["status"] for entry in report.entries} == {"ok"}

    def test_2x_query_time_regression_trips(self):
        history = _records(commit="c0")
        slow = json.loads(json.dumps(PAYLOAD))
        slow["query_time_s"] *= 2.0
        for run in slow["runs"]:
            run["query_time_s"] *= 2.0
        report = gate(ingest_payload("demo", slow, commit="c1",
                                     recorded=0.0), history)
        assert not report.ok
        regressed = {(e["config"], e["metric"]) for e in report.regressions}
        assert ("", "query_time_s") in regressed
        assert len(report.regressions) == 3
        assert all(e["ratio"] == pytest.approx(2.0)
                   for e in report.regressions)

    def test_higher_better_drop_trips(self):
        history = _records(commit="c0")
        worse = json.loads(json.dumps(PAYLOAD))
        worse["speedup"] = 1.0           # from 4.0: a 4x speedup loss
        report = gate(ingest_payload("demo", worse, commit="c1",
                                     recorded=0.0), history)
        assert [e["metric"] for e in report.regressions] == ["speedup"]

    def test_noise_within_rel_tol_passes(self):
        history = _records(commit="c0")
        noisy = json.loads(json.dumps(PAYLOAD))
        noisy["query_time_s"] *= 1.3     # 30% < the 50% tolerance
        report = gate(ingest_payload("demo", noisy, commit="c1",
                                     recorded=0.0), history)
        assert report.ok

    def test_abs_floor_ignores_tiny_jitter(self):
        payload = {"query_time_s": 0.001}
        history = ingest_payload("demo", payload, commit="c0", recorded=0.0)
        jitter = ingest_payload("demo", {"query_time_s": 0.003},
                                commit="c1", recorded=0.0)
        # 3x relative, but only 2 ms absolute: under the 50 ms floor.
        assert gate(jitter, history, abs_floor=0.05).ok
        assert not gate(jitter, history, abs_floor=0.0005).ok

    def test_unseen_metric_is_new_not_regression(self):
        report = gate(_records(commit="c1"), history=[])
        assert report.ok
        assert {entry["status"] for entry in report.entries} == {"new"}

    def test_median_of_history_absorbs_one_outlier(self):
        history = []
        for commit, scale in (("c0", 1.0), ("c1", 1.0), ("c2", 10.0)):
            payload = json.loads(json.dumps(PAYLOAD))
            payload["query_time_s"] *= scale
            history += ingest_payload("demo", payload, commit=commit,
                                      recorded=0.0)
        report = gate(_records(commit="c3"), history)
        entry = next(e for e in report.entries
                     if e["metric"] == "query_time_s" and e["config"] == "")
        assert entry["baseline"] == pytest.approx(0.40)
        assert entry["status"] == "ok"

    def test_report_table_and_counts(self):
        history = _records(commit="c0")
        slow = json.loads(json.dumps(PAYLOAD))
        slow["query_time_s"] *= 2.0
        report = gate(ingest_payload("demo", slow, commit="c1",
                                     recorded=0.0), history)
        text = report.table()
        assert "query_time_s" in text
        assert "regression" in text
        assert "metrics gated" in text
        counts = report.counts()
        assert counts["regression"] == 1
        assert counts["ok"] == len(report.entries) - 1

    def test_empty_report_is_ok(self):
        assert GateReport().ok
        assert "all ok" in GateReport().table()
