"""Tests for the filtering funnel: counters, invariant, rendering."""

import numpy as np
import pytest

from repro import knn_join, obs
from repro.obs.funnel import (FUNNEL_STAGES, check_funnel, funnel_counts,
                              funnel_from_stats, funnel_table)
from repro.obs.tracer import Tracer, use_tracer


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(7)
    return rng.normal(size=(300, 8))


def _traced_join(points, method, **kw):
    tracer = Tracer()
    with use_tracer(tracer):
        result = knn_join(points, points, 5, method=method, seed=1, **kw)
    return tracer, result


class TestInvariant:
    @pytest.mark.parametrize("method", ["sweet", "ti-cpu", "ti-gpu"])
    def test_ti_engines_satisfy_funnel_invariant(self, points, method):
        tracer, _ = _traced_join(points, method)
        counts = funnel_counts(tracer.registry)
        assert counts["candidates"] == 300 * 300
        assert counts["level1_survivors"] <= counts["candidates"]
        assert counts["level2_survivors"] <= counts["level1_survivors"]
        assert counts["exact_distances"] >= counts["level2_survivors"]
        assert check_funnel(counts) == []

    def test_level1_actually_filters_on_clustered_data(self):
        rng = np.random.default_rng(3)
        centers = rng.normal(scale=50.0, size=(6, 8))
        clustered = np.vstack([
            center + rng.normal(scale=0.1, size=(80, 8))
            for center in centers])
        tracer, _ = _traced_join(clustered, "sweet")
        counts = funnel_counts(tracer.registry)
        assert counts["level1_survivors"] < counts["candidates"]

    def test_brute_force_reports_no_level1_filtering(self, points):
        tracer, _ = _traced_join(points, "brute")
        counts = funnel_counts(tracer.registry)
        assert counts["level1_survivors"] == counts["candidates"]
        assert counts["level2_survivors"] == counts["candidates"]
        assert check_funnel(counts) == []

    def test_check_funnel_flags_violations(self):
        bad = {"candidates": 10, "level1_survivors": 20,
               "level2_survivors": 30, "exact_distances": 1}
        violations = check_funnel(bad)
        assert len(violations) == 3
        assert any("exceed candidates" in v for v in violations)

    def test_batched_join_accumulates_same_funnel(self, points):
        whole_tracer, whole = _traced_join(points, "sweet")
        batched_tracer, batched = _traced_join(points, "sweet",
                                               query_batch_size=77)
        assert np.allclose(whole.distances, batched.distances)
        assert (funnel_counts(whole_tracer.registry)
                == funnel_counts(batched_tracer.registry))


class TestFromStats:
    def test_stages_and_order(self, points):
        result = knn_join(points, points, 5, method="sweet", seed=1)
        funnel = funnel_from_stats(result.stats)
        assert tuple(funnel) == FUNNEL_STAGES
        assert all(isinstance(v, int) for v in funnel.values())


class TestRendering:
    def test_table_lists_every_stage_with_percent(self, points):
        tracer, _ = _traced_join(points, "sweet")
        text = funnel_table(funnel_counts(tracer.registry))
        for stage in FUNNEL_STAGES:
            assert stage in text
        assert "% of candidates" in text
        assert "100" in text
