"""Tests for ``explain=True`` and the :class:`QueryAudit` record."""

import numpy as np
import pytest

from repro import knn_join
from repro.obs.audit import QueryAudit, span_timings
from repro.obs.funnel import FUNNEL_STAGES, funnel_from_stats


@pytest.fixture
def points(rng):
    return rng.normal(size=(120, 6))


class TestSpanTimings:
    def test_aggregates_by_name(self):
        class FakeSpan:
            def __init__(self, name, duration_s):
                self.name = name
                self.duration_s = duration_s

        timings = span_timings([FakeSpan("engine.execute", 0.5),
                                FakeSpan("kernel", 0.1),
                                FakeSpan("kernel", 0.2)])
        assert timings["engine.execute"] == {"count": 1, "total_s": 0.5}
        assert timings["kernel"]["count"] == 2
        assert timings["kernel"]["total_s"] == pytest.approx(0.3)


class TestQueryAuditRecord:
    def test_to_dict_is_json_ready(self):
        audit = QueryAudit(method="sweet-knn", k=5, n_queries=10,
                           n_targets=100, dim=6,
                           funnel={"candidates": 1000},
                           shards=({"shard": 0, "start": 0, "stop": 10},))
        record = audit.to_dict()
        assert record["type"] == "query_audit"
        assert record["shards"] == [{"shard": 0, "start": 0, "stop": 10}]
        import json
        json.dumps(record)      # round-trippable without custom encoders

    def test_replace_recontextualises(self):
        audit = QueryAudit(method="sweet-knn", k=5)
        served = audit.replace(request_id="req-1", route="approx",
                               latency_s=0.004)
        assert served.request_id == "req-1"
        assert served.route == "approx"
        assert audit.request_id is None     # original untouched

    def test_table_renders_funnel_and_plan(self):
        audit = QueryAudit(method="sweet-knn", k=5, n_queries=10,
                           n_targets=100, dim=6,
                           plan={"mq": 3, "workers": 2},
                           funnel={"candidates": 1000,
                                   "level2_survivors": 40})
        text = audit.table()
        assert "funnel.candidates" in text
        assert "plan.workers" in text
        assert "10x100 (6)" in text


class TestExplainJoin:
    def test_without_explain_no_audit(self, points):
        result = knn_join(points, points, 5, method="sweet", seed=1)
        assert result.audit is None

    def test_explain_attaches_audit(self, points):
        result = knn_join(points, points, 5, method="sweet", seed=1,
                          explain=True)
        audit = result.audit
        assert isinstance(audit, QueryAudit)
        assert audit.method == result.method
        assert audit.k == 5
        assert audit.n_queries == audit.n_targets == len(points)
        assert audit.dim == points.shape[1]
        assert audit.route == "exact"
        assert audit.timings          # engine span at minimum

    def test_explain_funnel_bit_identical_to_direct_counters(self, points):
        plain = knn_join(points, points, 5, method="sweet", seed=1)
        explained = knn_join(points, points, 5, method="sweet", seed=1,
                             explain=True)
        assert explained.audit.funnel == funnel_from_stats(plain.stats)
        # The decision record carries measured wall time, which differs
        # between two separate runs; everything else is exact.
        counters = dict(explained.audit.counters)
        expected = plain.stats.summary()
        for record in (counters.get("decision"), expected.get("decision")):
            if record:
                for measured in ("actual_s", "error_ratio", "log_error"):
                    record.pop(measured, None)
        assert counters == expected
        for stage in FUNNEL_STAGES:
            assert stage in explained.audit.funnel

    def test_explain_does_not_change_the_answer(self, points):
        plain = knn_join(points, points, 5, method="sweet", seed=1)
        explained = knn_join(points, points, 5, method="sweet", seed=1,
                             explain=True)
        assert np.array_equal(plain.indices, explained.indices)
        assert np.allclose(plain.distances, explained.distances)

    def test_cpu_method_explain(self, points):
        result = knn_join(points, points, 4, method="ti-cpu",
                          explain=True)
        assert result.audit.funnel == funnel_from_stats(result.stats)

    def test_sharded_explain_reports_per_shard_fanout(self, points):
        result = knn_join(points, points, 5, method="ti-cpu",
                          workers=2, pool="thread", query_batch_size=60,
                          explain=True)
        audit = result.audit
        assert len(audit.shards) == 2
        total_rows = sum(shard["stop"] - shard["start"]
                         for shard in audit.shards)
        assert total_rows == len(points)
        merged_level2 = sum(shard["funnel"]["level2_survivors"]
                            for shard in audit.shards)
        assert merged_level2 == audit.funnel["level2_survivors"]
        for shard in audit.shards:
            assert shard["wall_s"] >= 0.0

    def test_explain_audit_exports_jsonl(self, points, tmp_path):
        from repro.obs.export import write_jsonl

        result = knn_join(points, points, 5, method="sweet", seed=1,
                          explain=True)
        path = tmp_path / "audit.jsonl"
        write_jsonl(path, [result.audit.to_dict()])
        import json
        (record,) = [json.loads(line)
                     for line in path.read_text().splitlines()]
        assert record["type"] == "query_audit"
        assert record["funnel"] == {
            key: value for key, value in result.audit.funnel.items()}
