"""Tests for the trace exporters: JSONL and Chrome trace-event JSON."""

import json

import numpy as np
import pytest

from repro.gpu.profiler import KernelProfile, PipelineProfile
from repro.obs.export import (profile_trace_events, to_chrome_trace,
                              tracer_records, write_chrome_trace, write_jsonl)
from repro.obs.tracer import Tracer


@pytest.fixture
def tracer():
    ticks = iter(np.arange(0.0, 10.0, 0.125))
    tracer = Tracer(clock=lambda: next(ticks))
    with tracer.span("engine.execute", engine="sweet"):
        with tracer.span("kernel:level2", k=5) as span:
            span.event("partition", index=0)
    tracer.instant("adaptive.filter_strength", choice="full")
    tracer.registry.counter("funnel.candidates").inc(100)
    return tracer


def _profile():
    profile = PipelineProfile(name="sweet-knn")
    profile.add(KernelProfile(name="level2_filter", n_warps=4,
                              warp_steps=10, lane_steps=200,
                              sim_time_s=0.002,
                              warp_cycles=[100.0, 50.0, 25.0, 10.0]))
    profile.add(KernelProfile(name="merge", sim_time_s=0.001))
    return profile


class TestChromeTraceSchema:
    def test_events_have_required_fields(self, tracer):
        doc = to_chrome_trace(tracer)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] in ("X", "M", "i")
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert isinstance(event["name"], str)
            if event["ph"] == "X":
                assert event["ts"] >= 0
                assert event["dur"] >= 0

    def test_document_is_json_serialisable(self, tracer):
        text = json.dumps(to_chrome_trace(tracer))
        assert json.loads(text)["traceEvents"]

    def test_timestamps_rebased_to_zero(self, tracer):
        events = to_chrome_trace(tracer)["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        assert min(e["ts"] for e in xs) == 0

    def test_span_args_carry_ids_and_attributes(self, tracer):
        events = to_chrome_trace(tracer)["traceEvents"]
        (level2,) = [e for e in events if e["name"] == "kernel:level2"]
        assert level2["args"]["k"] == 5
        assert level2["args"]["span_id"]
        (outer,) = [e for e in events if e["name"] == "engine.execute"]
        assert level2["args"]["parent_id"] == outer["args"]["span_id"]

    def test_empty_tracer_yields_empty_events(self):
        assert to_chrome_trace(Tracer())["traceEvents"] == []


class TestSimulatedGpuTracks:
    def test_profile_becomes_own_process(self, tracer):
        tracer.add_artifact("pipeline_profile", _profile())
        events = to_chrome_trace(tracer)["traceEvents"]
        pids = {e["pid"] for e in events}
        assert pids == {1, 2}
        names = [e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert any("simulated GPU" in name for name in names)

    def test_kernel_stream_laid_end_to_end(self):
        events = profile_trace_events(_profile())
        stream = [e for e in events if e["ph"] == "X" and e["tid"] == 0]
        assert [e["name"] for e in stream] == ["level2_filter", "merge"]
        assert stream[1]["ts"] == pytest.approx(
            stream[0]["ts"] + stream[0]["dur"])

    def test_warps_land_on_sm_tracks_within_kernel_window(self):
        events = profile_trace_events(_profile(), sm_tracks=2)
        warps = [e for e in events if e.get("cat") == "sim-warp"]
        assert len(warps) == 4
        assert {e["tid"] for e in warps} <= {1, 2}
        window_end = max(e["ts"] + e["dur"] for e in warps)
        (kernel,) = [e for e in events if e["name"] == "level2_filter"]
        assert window_end <= kernel["ts"] + kernel["dur"] + 1e-6


class TestJsonl:
    def test_records_cover_spans_instants_metrics(self, tracer):
        records = tracer_records(tracer)
        types = [record["type"] for record in records]
        assert types.count("span") == 2
        assert types.count("instant") == 1
        assert types[-1] == "metrics"
        assert records[-1]["metrics"]["funnel.candidates"] == 100

    def test_write_jsonl_round_trips(self, tracer, tmp_path):
        path = write_jsonl(tmp_path / "events.jsonl",
                           tracer_records(tracer))
        lines = [json.loads(line) for line in open(path)]
        assert len(lines) == 4
        assert lines[0]["type"] == "span"

    def test_write_chrome_trace_loads_back(self, tracer, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", tracer)
        assert json.load(open(path))["traceEvents"]
