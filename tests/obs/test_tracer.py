"""Tests for span tracing: nesting, threads, and the no-op default."""

import threading

from repro import obs
from repro.obs.tracer import NULL_SPAN, Tracer, use_tracer


class TestNesting:
    def test_context_manager_spans_nest(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        spans = tracer.finished_spans()
        assert [span.name for span in spans] == ["inner", "outer"]
        assert all(span.duration_s >= 0 for span in spans)

    def test_sibling_spans_share_parent_not_each_other(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == parent.span_id
        assert b.parent_id == parent.span_id

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise RuntimeError("kernel exploded")
        except RuntimeError:
            pass
        (span,) = tracer.finished_spans("boom")
        assert "kernel exploded" in span.attributes["error"]

    def test_events_and_annotations_attach_to_span(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            span.event("milestone", step=3)
            span.annotate(rows=7)
        (span,) = tracer.finished_spans()
        assert span.attributes["rows"] == 7
        assert span.events[0]["name"] == "milestone"


class TestManualSpans:
    def test_start_finish_across_threads(self):
        """A span started on one thread may finish on another —
        the serving layer's request/queue spans do exactly this."""
        tracer = Tracer()
        span = tracer.start_span("serve.request", trace_id="req-9")

        def finisher():
            tracer.finish_span(span)

        thread = threading.Thread(target=finisher)
        thread.start()
        thread.join()
        (finished,) = tracer.finished_spans()
        assert finished.trace_id == "req-9"
        assert finished.finished

    def test_double_finish_records_once(self):
        tracer = Tracer()
        span = tracer.start_span("once")
        tracer.finish_span(span)
        tracer.finish_span(span)
        assert len(tracer.finished_spans()) == 1

    def test_explicit_parent_links_across_threads(self):
        tracer = Tracer()
        parent = tracer.start_span("request", trace_id="req-1")
        child = tracer.start_span("queue", parent=parent)
        assert child.parent_id == parent.span_id
        assert child.trace_id == "req-1"


class TestThreadSafety:
    def test_concurrent_threads_keep_independent_nesting(self):
        """Per-thread context vars: thread A's spans never become
        parents of thread B's (the MicroBatcher scheduler thread runs
        concurrently with caller threads)."""
        tracer = Tracer()
        errors = []

        def work(label):
            try:
                with use_tracer(tracer):
                    for i in range(50):
                        with obs.span("outer-" + label) as outer:
                            with obs.span("inner-" + label) as inner:
                                if inner.parent_id != outer.span_id:
                                    errors.append((label, i))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work, args=("t%d" % n,))
                   for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        spans = tracer.finished_spans()
        assert len(spans) == 4 * 50 * 2
        assert len({span.span_id for span in spans}) == len(spans)

    def test_threads_do_not_inherit_active_tracer(self):
        tracer = Tracer()
        seen = []
        with use_tracer(tracer):
            thread = threading.Thread(
                target=lambda: seen.append(obs.current_tracer()))
            thread.start()
            thread.join()
        assert seen == [None]


class TestNoOpDefault:
    def test_helpers_are_noops_without_active_tracer(self):
        assert obs.current_tracer() is None
        assert obs.span("anything", k=1) is NULL_SPAN
        obs.event("nothing", x=1)
        obs.annotate(y=2)
        obs.count("nope")
        with obs.span("still-null") as span:
            span.annotate(a=1).event("e")
        assert span is NULL_SPAN

    def test_use_tracer_scopes_activation(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert obs.current_tracer() is tracer
            with obs.span("traced"):
                obs.count("hits")
        assert obs.current_tracer() is None
        assert len(tracer.finished_spans("traced")) == 1
        assert tracer.registry.value("hits") == 1

    def test_null_span_is_shared_and_stateless(self):
        a = obs.span("a")
        b = obs.span("b")
        assert a is b is NULL_SPAN


class TestInstantsAndArtifacts:
    def test_event_outside_span_becomes_instant(self):
        tracer = Tracer()
        with use_tracer(tracer):
            obs.event("loose", value=5)
        (instant,) = tracer.instants()
        assert instant["name"] == "loose"
        assert instant["value"] == 5

    def test_artifacts_filter_by_kind(self):
        tracer = Tracer()
        tracer.add_artifact("pipeline_profile", "P")
        tracer.add_artifact("other", "O")
        assert tracer.artifacts("pipeline_profile") == ["P"]
        assert len(tracer.artifacts()) == 2

    def test_injected_clock_drives_durations(self):
        ticks = iter([10.0, 12.5])
        tracer = Tracer(clock=lambda: next(ticks))
        with tracer.span("timed"):
            pass
        (span,) = tracer.finished_spans()
        assert span.duration_s == 2.5
