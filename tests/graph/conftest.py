"""Shared fixtures for the approximate-graph-tier tests.

Module-expensive artifacts (the index and one calibrated graph build)
are session-scoped: every determinism test rebuilds its own graphs
explicitly, the read-only tests share these.
"""

import numpy as np
import pytest

from repro.graph import GraphConfig, build_graph
from repro.index import Index


@pytest.fixture(scope="session")
def graph_points():
    """Three well-separated blobs — the clustered serving workload."""
    rng = np.random.default_rng(7)
    blobs = [rng.normal(size=(180, 8)) + offset
             for offset in (0.0, 8.0, -8.0)]
    points = np.concatenate(blobs)
    rng.shuffle(points)
    return points


@pytest.fixture(scope="session")
def graph_index(graph_points):
    return Index(graph_points, seed=3)


@pytest.fixture(scope="session")
def graph_config():
    return GraphConfig(graph_k=12, sample=64)


@pytest.fixture(scope="session")
def graph(graph_index, graph_config):
    return build_graph(graph_index, graph_config, seed=11)
