"""Recall measurement and the ef calibration curve."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graph import RecallCurve, calibrate, measured_recall
from repro.graph.recall import probe_queries


class TestMeasuredRecall:
    def test_perfect_overlap(self):
        ids = np.asarray([[1, 2, 3], [4, 5, 6]])
        assert measured_recall(ids, ids) == 1.0

    def test_disjoint(self):
        assert measured_recall([[1, 2]], [[3, 4]]) == 0.0

    def test_order_is_ignored(self):
        assert measured_recall([[3, 2, 1]], [[1, 2, 3]]) == 1.0

    def test_padding_is_ignored(self):
        assert measured_recall([[1, -1, -1]], [[1, 2, -1]]) == 0.5

    def test_mismatched_rows_raise(self):
        with pytest.raises(ValidationError):
            measured_recall([[1]], [[1], [2]])


class TestRecallCurve:
    @pytest.fixture
    def curve(self):
        return RecallCurve(k=10, entries=[(16, 0.8), (32, 0.95),
                                          (64, 0.99)], n_probe=50)

    def test_ef_for_picks_smallest_sufficient(self, curve):
        assert curve.ef_for(0.9) == 32
        assert curve.ef_for(0.5) == 16
        assert curve.ef_for(0.99) == 64

    def test_ef_for_best_effort_when_unreachable(self, curve):
        assert curve.ef_for(0.999) == 64

    def test_ef_for_scales_with_k(self, curve):
        assert curve.ef_for(0.9, k=20) == 64
        assert curve.ef_for(0.9, k=10) == 32

    def test_ef_for_never_below_k(self, curve):
        assert curve.ef_for(0.5, k=40) >= 40

    def test_ef_for_validates_target(self, curve):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValidationError):
                curve.ef_for(bad)

    def test_recall_at(self, curve):
        assert curve.recall_at(40) == 0.95
        assert curve.recall_at(64) == 0.99
        assert curve.recall_at(8) == 0.8

    def test_round_trip(self, curve):
        again = RecallCurve.from_dict(curve.describe())
        assert again.entries == curve.entries
        assert again.k == curve.k
        assert again.n_probe == curve.n_probe

    def test_needs_entries(self):
        with pytest.raises(ValidationError):
            RecallCurve(k=5, entries=[])
        with pytest.raises(ValidationError):
            RecallCurve(k=5, entries=[(16, 1.2)])


class TestProbes:
    def test_probes_are_deterministic(self, graph_index):
        a = probe_queries(graph_index, 32, seed=11,
                          fingerprint=graph_index.fingerprint)
        b = probe_queries(graph_index, 32, seed=11,
                          fingerprint=graph_index.fingerprint)
        np.testing.assert_array_equal(a, b)

    def test_probes_are_held_out(self, graph_index, graph_points):
        probes = probe_queries(graph_index, 32, seed=11,
                               fingerprint=graph_index.fingerprint)
        # Perturbed copies, not stored rows: no probe equals a target.
        assert probes.shape == (32, graph_points.shape[1])
        for probe in probes:
            assert not np.any(np.all(graph_points == probe, axis=1))


class TestCalibration:
    def test_calibrate_attaches_a_usable_curve(self, graph, graph_index):
        curve = calibrate(graph, graph_index, k=5,
                          ef_grid=(8, 32, 128), n_probe=32)
        assert graph.calibration is curve
        assert curve.k == 5
        assert curve.n_probe == 32
        assert [ef for ef, _ in curve.entries] == [8, 32, 128]
        # Clustered 8-d data: the widest beam must be near-exact, and
        # widening must not lose more than measurement noise.
        assert curve.recall_at(128) >= 0.9
        assert (curve.entries[-1][1]
                >= curve.entries[0][1] - 0.05)
        assert graph.ef_for(curve.entries[-1][1], 5) <= 128

    def test_calibrate_is_deterministic(self, graph, graph_index):
        a = calibrate(graph, graph_index, k=5, ef_grid=(16, 64),
                      n_probe=24, attach=False)
        b = calibrate(graph, graph_index, k=5, ef_grid=(16, 64),
                      n_probe=24, attach=False)
        assert a.entries == b.entries

    def test_calibrate_does_not_disturb_index_rng(self, graph,
                                                  graph_index):
        """Calibration must use its own RNG stream — the index's
        planner stream stays untouched (serving determinism)."""
        state_before = graph_index._rng.bit_generator.state
        calibrate(graph, graph_index, k=5, ef_grid=(16,), n_probe=16,
                  attach=False)
        assert graph_index._rng.bit_generator.state == state_before
