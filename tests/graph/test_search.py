"""Graph-walk engines: recall floors, determinism across worker pools
and persistence round-trips, tombstone handling, registry contract."""

import numpy as np
import pytest

from repro import knn_join
from repro.engine import get_engine
from repro.errors import ValidationError
from repro.graph import KNNGraph, build_graph, graph_knn_search
from repro.graph.build import GraphConfig
from repro.index import Index


@pytest.fixture(scope="module")
def probes(graph_points):
    rng = np.random.default_rng(21)
    rows = rng.integers(0, len(graph_points), size=40)
    return graph_points[rows] + rng.normal(scale=0.05,
                                           size=(40, graph_points.shape[1]))


@pytest.fixture(scope="module")
def exact(probes, graph_points):
    return knn_join(probes, graph_points, 8, method="brute")


def _recall(approx, exact):
    hits = sum(len(set(map(int, a)) & set(map(int, e)))
               for a, e in zip(approx.indices, exact.indices))
    return hits / exact.indices.size


class TestRecall:
    def test_bfs_recall_floor(self, graph, probes, graph_points, exact):
        result = graph_knn_search(graph, probes, graph_points, 8, ef=96)
        assert _recall(result, exact) >= 0.9

    def test_wider_beam_does_not_hurt(self, graph, probes, graph_points,
                                      exact):
        narrow = graph_knn_search(graph, probes, graph_points, 8, ef=8)
        wide = graph_knn_search(graph, probes, graph_points, 8, ef=192)
        assert _recall(wide, exact) >= _recall(narrow, exact)

    def test_greedy_pins_ef_to_k(self, graph, probes, graph_points):
        greedy = knn_join(probes, graph_points, 8, method="graph-greedy",
                          graph=graph, ef=512)
        bfs = knn_join(probes, graph_points, 8, method="graph-bfs",
                       graph=graph, ef=8)
        np.testing.assert_array_equal(greedy.indices, bfs.indices)
        np.testing.assert_array_equal(greedy.distances, bfs.distances)


class TestDeterminism:
    @pytest.mark.parametrize("pool", ["serial", "thread", "process"])
    def test_pool_parity(self, graph, probes, graph_points, pool):
        serial = knn_join(probes, graph_points, 6, method="graph-bfs",
                          graph=graph, ef=48)
        sharded = knn_join(probes, graph_points, 6, method="graph-bfs",
                           graph=graph, ef=48, workers=2, pool=pool)
        np.testing.assert_array_equal(serial.indices, sharded.indices)
        np.testing.assert_array_equal(serial.distances, sharded.distances)
        assert (serial.stats.level2_distance_computations
                == sharded.stats.level2_distance_computations)

    def test_save_load_mmap_answers_bit_identically(self, tmp_path, graph,
                                                    probes, graph_points):
        fresh = graph_knn_search(graph, probes, graph_points, 7, ef=64)
        graph.save(tmp_path / "g")
        loaded = KNNGraph.load(tmp_path / "g", mmap=True)
        again = graph_knn_search(loaded, probes, graph_points, 7, ef=64)
        np.testing.assert_array_equal(fresh.indices, again.indices)
        np.testing.assert_array_equal(fresh.distances, again.distances)
        assert (fresh.stats.level2_distance_computations
                == again.stats.level2_distance_computations)

    def test_repeat_search_is_identical(self, graph, probes,
                                        graph_points):
        a = graph_knn_search(graph, probes, graph_points, 5, ef=32)
        b = graph_knn_search(graph, probes, graph_points, 5, ef=32)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.distances, b.distances)


class TestTombstones:
    def test_dead_rows_are_traversed_but_never_returned(self,
                                                        graph_points):
        index = Index(graph_points, seed=3)
        graph = build_graph(index, GraphConfig(graph_k=8, sample=32))
        dead_rows = [int(graph.node_ids[0]), int(graph.node_ids[50])]
        index.remove(dead_rows)
        result = graph_knn_search(graph, graph_points[:30],
                                  np.asarray(index.targets), 10,
                                  ef=64, dead_mask=index.tombstones)
        assert not np.isin(dead_rows, result.indices).any()


class TestContract:
    def test_registry_caps(self):
        for name in ("graph-bfs", "graph-greedy"):
            spec = get_engine(name)
            assert spec.caps.approximate
            assert spec.caps.result_kind == "knn"
            assert not spec.caps.supports_prepared_index
            assert "graph" in spec.required_options

    def test_missing_graph_option_fails_fast(self, graph_points):
        with pytest.raises(ValidationError, match="graph"):
            knn_join(graph_points[:10], graph_points, 5,
                     method="graph-bfs")

    def test_rejects_non_graph_option(self, graph_points):
        with pytest.raises(ValidationError):
            graph_knn_search("not a graph", graph_points[:2],
                             graph_points, 3)

    def test_rejects_dimension_mismatch(self, graph, graph_points):
        with pytest.raises(ValidationError):
            graph_knn_search(graph, graph_points[:2, :4],
                             graph_points[:, :4], 3)

    def test_rejects_foreign_target_set(self, graph, graph_points):
        with pytest.raises(ValidationError):
            graph_knn_search(graph, graph_points[:2],
                             graph_points[:100], 3)

    def test_stats_mark_result_approximate(self, graph, probes,
                                           graph_points):
        result = graph_knn_search(graph, probes, graph_points, 5, ef=32)
        assert result.stats.extra["approximate"] is True
        assert result.stats.extra["ef"] == 32
        # Funnel safety: admissions never exceed distance evaluations.
        assert (result.stats.predicate_accepted_pairs
                <= result.stats.level2_distance_computations)
        assert result.stats.level2_distance_computations > 0
        assert "graph walk" in result.method
