"""NN-descent builder: determinism, convergence, adjacency quality,
staleness policy and byte-identical persistence."""

import hashlib
import json
import os

import numpy as np
import pytest

from repro import knn_join
from repro.errors import ValidationError
from repro.graph import GraphConfig, KNNGraph, build_graph, calibrate
from repro.graph.storage import GRAPH_MANIFEST_NAME
from repro.index import Index


def _dir_digest(path):
    """One sha256 over every file of a graph directory, sorted by name."""
    digest = hashlib.sha256()
    for name in sorted(os.listdir(path)):
        digest.update(name.encode())
        with open(os.path.join(path, name), "rb") as handle:
            digest.update(handle.read())
    return digest.hexdigest()


def _assert_graphs_equal(a, b):
    np.testing.assert_array_equal(a.node_ids, b.node_ids)
    np.testing.assert_array_equal(a.neighbors, b.neighbors)
    np.testing.assert_array_equal(a.distances, b.distances)
    np.testing.assert_array_equal(a.entry_points, b.entry_points)
    assert a.iteration_updates == b.iteration_updates
    assert a.build_distance_computations == b.build_distance_computations


class TestDeterminism:
    def test_double_build_is_bit_identical(self, graph_index,
                                           graph_config, graph):
        again = build_graph(graph_index, graph_config, seed=11)
        _assert_graphs_equal(graph, again)

    def test_saved_directories_are_byte_identical(self, tmp_path,
                                                  graph_points):
        digests = []
        for run in ("a", "b"):
            index = Index(graph_points, seed=3)
            graph = index.build_graph(GraphConfig(graph_k=12, sample=64),
                                      seed=11, k=5, n_probe=32)
            path = tmp_path / run
            graph.save(path)
            digests.append(_dir_digest(path))
        assert digests[0] == digests[1]

    def test_seed_changes_the_graph(self, graph_index, graph_config,
                                    graph):
        other = build_graph(graph_index, graph_config, seed=12)
        assert not np.array_equal(other.neighbors, graph.neighbors)

    def test_default_seed_is_the_index_seed(self, graph_index,
                                            graph_config):
        graph = build_graph(graph_index, graph_config)
        assert graph.seed == graph_index.seed


class TestQuality:
    def test_adjacency_recall_floor(self, graph, graph_points):
        """Most stored edges are true nearest neighbours."""
        kg = graph.graph_k
        truth = knn_join(graph_points, graph_points, kg + 1,
                         method="brute").indices[:, 1:]
        hit = total = 0
        for row in range(graph.n_nodes):
            want = set(int(i) for i in truth[row])
            got = set(int(i) for i in graph.neighbors[row] if i >= 0)
            hit += len(want & got)
            total += len(want)
        assert hit / total >= 0.8

    def test_convergence(self, graph, graph_config):
        updates = graph.iteration_updates
        assert 0 < len(updates) <= graph_config.max_iters
        assert updates[-1] <= updates[0]
        threshold = max(1, int(graph_config.delta * graph.n_nodes
                               * graph.graph_k))
        assert (updates[-1] <= threshold
                or len(updates) == graph_config.max_iters)

    def test_neighbor_rows_are_sorted_and_self_free(self, graph):
        own = np.arange(graph.n_nodes)[:, None]
        valid = graph.neighbors >= 0
        assert not np.any((graph.neighbors == own) & valid)
        dists = np.where(valid, graph.distances, np.inf)
        assert np.all(np.diff(dists, axis=1) >= 0)

    def test_entry_points_are_valid_positions(self, graph):
        entries = graph.entry_points
        assert entries.size > 1
        assert np.all((entries >= 0) & (entries < graph.n_nodes))
        assert np.array_equal(entries, np.unique(entries))

    def test_tiny_set_clamps_graph_k(self):
        points = np.random.default_rng(0).normal(size=(5, 3))
        graph = build_graph(Index(points, seed=1),
                            GraphConfig(graph_k=16, sample=4))
        assert graph.graph_k == 4
        assert np.all(graph.neighbors >= 0)

    def test_rejects_degenerate_index(self):
        points = np.random.default_rng(0).normal(size=(3, 3))
        index = Index(points, seed=1)
        index.remove([0, 1])
        with pytest.raises(ValidationError):
            build_graph(index)


class TestTombstones:
    def test_dead_rows_are_not_nodes(self, graph_points):
        index = Index(graph_points, seed=3)
        index.remove([0, 17, 100])
        graph = build_graph(index, GraphConfig(graph_k=8, sample=32))
        assert not np.isin([0, 17, 100], graph.node_ids).any()
        assert graph.n_nodes == index.n_active


class TestStaleness:
    def test_fresh_after_build(self, graph, graph_index):
        assert graph.is_fresh_for(graph_index)

    def test_fresh_within_version_lag(self, graph_points):
        index = Index(graph_points, seed=3)
        graph = build_graph(index, GraphConfig(graph_k=8, sample=32,
                                               max_version_lag=2))
        index.remove([1])
        assert graph.is_fresh_for(index)
        index.remove([2])
        assert graph.is_fresh_for(index)
        index.remove([3])
        assert not graph.is_fresh_for(index)

    def test_other_lineage_is_never_fresh(self, graph, graph_points):
        other = Index(graph_points[:100], seed=3)
        assert not graph.is_fresh_for(other)
        assert not graph.is_fresh_for(None)


class TestPersistence:
    def test_round_trip_preserves_everything(self, tmp_path, graph,
                                             graph_index):
        calibrated = build_graph(graph_index,
                                 GraphConfig(graph_k=12, sample=64),
                                 seed=11)
        calibrate(calibrated, graph_index, k=5, n_probe=32)
        path = tmp_path / "g"
        calibrated.save(path)
        loaded = KNNGraph.load(path)
        _assert_graphs_equal(calibrated, loaded)
        assert loaded.seed == calibrated.seed
        assert loaded.fingerprint == calibrated.fingerprint
        assert loaded.built_version == calibrated.built_version
        assert loaded.config.describe() == calibrated.config.describe()
        assert (loaded.calibration.describe()
                == calibrated.calibration.describe())
        assert loaded.mmapped

    def test_manifest_has_no_wall_clock(self, tmp_path, graph):
        """The byte-determinism contract bans timestamps (the index
        manifest stamps created_unix_s; the graph one must not)."""
        graph.save(tmp_path / "g")
        with open(tmp_path / "g" / GRAPH_MANIFEST_NAME) as handle:
            manifest = json.load(handle)
        assert not any("unix" in key or "time" in key
                       for key in manifest)

    def test_load_rejects_tampered_arrays(self, tmp_path, graph):
        path = tmp_path / "g"
        graph.save(path)
        np.save(path / "neighbors.npy",
                np.asarray(graph.neighbors)[:, :2].copy())
        with pytest.raises(ValidationError):
            KNNGraph.load(path)
