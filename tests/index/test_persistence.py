"""Persistence: save -> load(mmap) must be bit-identical to fresh state,
and every malformed on-disk input must raise a typed ValidationError."""

import json
import os

import numpy as np
import pytest

from repro import SweetKNN, knn_join
from repro.errors import ValidationError
from repro.index import (Index, clear_index_cache, is_index_dir,
                         read_manifest)
from repro.obs.funnel import funnel_from_stats

COUNTERS = ("level2_distance_computations", "center_distance_computations",
            "init_distance_computations", "examined_points",
            "candidate_cluster_pairs", "heap_updates")


def _assert_identical(a, b):
    np.testing.assert_array_equal(a.indices, b.indices)
    np.testing.assert_array_equal(a.distances, b.distances)
    for counter in COUNTERS:
        assert getattr(a.stats, counter) == getattr(b.stats, counter), \
            counter
    assert funnel_from_stats(a.stats) == funnel_from_stats(b.stats)


@pytest.fixture
def saved_dir(tmp_path, clustered_points):
    path = tmp_path / "idx"
    Index(clustered_points, seed=3).save(path)
    return path


class TestRoundTrip:
    def test_loaded_index_equals_fresh(self, saved_dir, clustered_points):
        fresh = Index(clustered_points, seed=3)
        loaded = Index.load(saved_dir)
        assert loaded.key == fresh.key
        assert loaded.mt == fresh.mt
        np.testing.assert_array_equal(loaded.targets, fresh.targets)
        ct_fresh, ct_loaded = fresh.target_clusters, loaded.target_clusters
        np.testing.assert_array_equal(ct_loaded.center_indices,
                                      ct_fresh.center_indices)
        np.testing.assert_array_equal(ct_loaded.assignment,
                                      ct_fresh.assignment)
        np.testing.assert_array_equal(ct_loaded.radius, ct_fresh.radius)
        for m_l, m_f in zip(ct_loaded.members, ct_fresh.members):
            np.testing.assert_array_equal(m_l, m_f)
        assert ct_loaded.check_invariants()

    def test_mmap_load_is_read_only_views(self, saved_dir):
        loaded = Index.load(saved_dir, mmap=True)
        assert loaded.mmapped
        assert isinstance(loaded.targets, np.memmap)
        assert not loaded.targets.flags.writeable
        # Per-cluster member lists are slices of the mapped file.
        assert isinstance(loaded.target_clusters.members[0], np.memmap)

    def test_eager_load_works_too(self, saved_dir):
        loaded = Index.load(saved_dir, mmap=False)
        assert not loaded.mmapped
        assert not isinstance(loaded.targets, np.memmap)

    def test_is_index_dir(self, saved_dir, tmp_path):
        assert is_index_dir(saved_dir)
        assert not is_index_dir(tmp_path / "nope")

    @pytest.mark.parametrize("method", ["ti-cpu", "sweet"])
    @pytest.mark.parametrize("workers,pool", [
        (1, None), (4, "process"), (4, "thread")])
    def test_query_parity_across_engines_and_pools(
            self, saved_dir, clustered_points, rng, method, workers, pool):
        """The acceptance matrix: a loaded mmap index must answer every
        engine x worker x pool combination bit-identically (results,
        counters, funnel) to a freshly built index."""
        queries = rng.normal(size=(40, clustered_points.shape[1]))
        fresh = SweetKNN.from_index(Index(clustered_points, seed=3),
                                    method=method)
        loaded = SweetKNN.from_index(Index.load(saved_dir), method=method)
        kwargs = {} if workers == 1 else {"workers": workers, "pool": pool}
        _assert_identical(loaded.query(queries, 6, **kwargs),
                          fresh.query(queries, 6, **kwargs))

    def test_loaded_matches_serial_reference(self, saved_dir,
                                             clustered_points):
        """Served-from-disk answers equal a plain knn_join."""
        loaded = SweetKNN.from_index(Index.load(saved_dir), method="ti-cpu")
        result = loaded.query(clustered_points, 6)
        reference = knn_join(clustered_points, clustered_points, 6,
                             method="brute")
        assert result.matches(reference)

    def test_second_rng_draw_matches_after_reload(self, saved_dir,
                                                  clustered_points, rng):
        """The manifest's rng_state must cover later query batches, not
        just the first one."""
        fresh = Index(clustered_points, seed=3)
        loaded = Index.load(saved_dir)
        for size in (20, 35, 10):
            queries = rng.normal(size=(size, clustered_points.shape[1]))
            plan_f = fresh.join_plan(queries)
            plan_l = loaded.join_plan(queries)
            np.testing.assert_array_equal(
                plan_l.query_clusters.center_indices,
                plan_f.query_clusters.center_indices)
            np.testing.assert_array_equal(plan_l.center_dists,
                                          plan_f.center_dists)


class TestCorruption:
    def test_missing_dir(self, tmp_path):
        with pytest.raises(ValidationError, match="does not exist"):
            Index.load(tmp_path / "absent")

    def test_dir_without_manifest(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValidationError, match="not a saved index"):
            Index.load(empty)

    def test_corrupt_manifest_json(self, saved_dir):
        (saved_dir / "manifest.json").write_text("{not json")
        with pytest.raises(ValidationError, match="corrupt"):
            Index.load(saved_dir)

    def test_wrong_format_marker(self, saved_dir):
        (saved_dir / "manifest.json").write_text(
            json.dumps({"format": "something-else"}))
        with pytest.raises(ValidationError, match="not a repro index"):
            Index.load(saved_dir)

    def test_unsupported_format_version(self, saved_dir):
        manifest = read_manifest(saved_dir)
        manifest["format_version"] = 999
        (saved_dir / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValidationError, match="format version"):
            Index.load(saved_dir)

    def test_missing_required_key(self, saved_dir):
        manifest = read_manifest(saved_dir)
        del manifest["fingerprint"]
        (saved_dir / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValidationError, match="missing"):
            Index.load(saved_dir)

    def test_missing_array_file(self, saved_dir):
        os.remove(saved_dir / "members.npy")
        with pytest.raises(ValidationError, match="cannot load"):
            Index.load(saved_dir)

    def test_truncated_array_file(self, saved_dir, clustered_points):
        np.save(saved_dir / "targets.npy", clustered_points[:10])
        with pytest.raises(ValidationError, match="manifest"):
            Index.load(saved_dir)

    def test_mismatched_manifest_shape(self, saved_dir):
        manifest = read_manifest(saved_dir)
        manifest["arrays"]["targets"]["shape"][0] += 1
        (saved_dir / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValidationError, match="manifest"):
            Index.load(saved_dir)

    def test_stale_cache_key_mismatch(self, saved_dir, clustered_points,
                                      rng):
        """load_cached with an expectation from a different index state
        fails loudly instead of serving different data."""
        from repro.index import load_cached

        clear_index_cache()
        index = Index.load(saved_dir)
        with pytest.raises(ValidationError, match="expected"):
            load_cached(saved_dir, expect_key=(index.fingerprint,
                                              index.version + 7))
        clear_index_cache()
