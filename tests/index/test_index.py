"""The Index object: build semantics, identity, and the update policy."""

import numpy as np
import pytest

from repro import SweetKNN
from repro.errors import ValidationError
from repro.index import Index, UpdatePolicy, fingerprint_points


class TestBuild:
    def test_build_is_single_clustering(self, clustered_points):
        index = Index(clustered_points, seed=0)
        assert index.build_count == 1
        assert index.version == 1
        assert index.mt == index.target_clusters.n_clusters
        assert index.n_points == len(clustered_points)
        assert index.n_active == len(clustered_points)
        assert index.n_tombstones == 0

    def test_key_is_fingerprint_and_version(self, clustered_points):
        index = Index(clustered_points, seed=0)
        assert index.key == (fingerprint_points(clustered_points), 1)

    def test_same_content_same_fingerprint_distinct_rng(self,
                                                       clustered_points):
        a = Index(clustered_points, seed=0)
        b = Index(clustered_points.copy(), seed=1)
        assert a.fingerprint == b.fingerprint
        assert a.key == b.key  # seed is not part of the content identity

    def test_matches_legacy_prepared_index_build(self, clustered_points,
                                                 rng):
        from repro.engine.prepared import PreparedIndex

        assert PreparedIndex is Index
        index = PreparedIndex(clustered_points, seed=0)
        queries = rng.normal(size=(20, clustered_points.shape[1]))
        plan = index.join_plan(queries)
        assert plan.target_clusters is index.target_clusters

    def test_rejects_bad_inputs(self, clustered_points):
        with pytest.raises(ValidationError):
            Index(np.empty((0, 3)))
        with pytest.raises(ValidationError):
            Index(np.zeros(5))
        index = Index(clustered_points)
        with pytest.raises(ValidationError):
            index.join_plan(np.zeros((4, clustered_points.shape[1] + 1)))

    def test_describe_round_trips_the_essentials(self, clustered_points):
        index = Index(clustered_points, seed=5)
        info = index.describe()
        assert info["n"] == len(clustered_points)
        assert info["fingerprint"] == index.fingerprint
        assert info["version"] == 1
        assert info["mmapped"] is False
        assert info["policy"] == index.policy.describe()


class TestUpdatePolicy:
    def test_validates_bounds(self):
        with pytest.raises(ValidationError):
            UpdatePolicy(max_tombstone_fraction=0.0)
        with pytest.raises(ValidationError):
            UpdatePolicy(max_tombstone_fraction=1.5)
        with pytest.raises(ValidationError):
            UpdatePolicy(max_cluster_growth=1.0)

    def test_describe_from_dict_round_trip(self):
        policy = UpdatePolicy(max_tombstone_fraction=0.5,
                              max_cluster_growth=8.0)
        clone = UpdatePolicy.from_dict(policy.describe())
        assert clone.describe() == policy.describe()


class TestSweetKNNIntegration:
    def test_sweetknn_owns_an_index(self, clustered_points):
        knn = SweetKNN(clustered_points, seed=0)
        assert isinstance(knn.index, Index)
        assert knn.targets is knn.index.targets

    def test_from_index_reuses_prepared_state(self, clustered_points, rng):
        index = Index(clustered_points, seed=0)
        knn = SweetKNN.from_index(index, method="ti-cpu")
        queries = rng.normal(size=(15, clustered_points.shape[1]))
        result = knn.query(queries, 4)
        assert knn.index is index
        assert index.build_count == 1
        assert result.indices.shape == (15, 4)

    def test_from_index_rejects_non_index(self):
        with pytest.raises(ValidationError):
            SweetKNN.from_index(object())

    def test_from_index_matches_direct_sweetknn(self, clustered_points,
                                                rng):
        queries = rng.normal(size=(25, clustered_points.shape[1]))
        direct = SweetKNN(clustered_points, seed=4, method="ti-cpu")
        wrapped = SweetKNN.from_index(Index(clustered_points, seed=4),
                                      method="ti-cpu")
        a = direct.query(queries, 5)
        b = wrapped.query(queries, 5)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.distances, b.distances)
