"""Content fingerprints: normalization equivalence and the O(1) memo."""

import numpy as np
import pytest

from repro.core.validate import as_points, check_points
from repro.errors import ValidationError
from repro.index import fingerprint_points
from repro.index import fingerprint as fp_module


@pytest.fixture
def points(rng):
    return rng.normal(size=(60, 5))


class TestNormalization:
    """Satellite contract: float32, Fortran-ordered and list inputs give
    identical fingerprints (and therefore identical cache identity)."""

    def test_float32_input_matches_float64(self, points):
        assert fingerprint_points(points.astype(np.float32)) == \
            fingerprint_points(points.astype(np.float32).astype(np.float64))

    def test_fortran_order_matches_c_order(self, points):
        fortran = np.asfortranarray(points)
        assert not fortran.flags["C_CONTIGUOUS"]
        assert fingerprint_points(fortran) == fingerprint_points(points)

    def test_list_input_matches_array(self, points):
        assert fingerprint_points(points.tolist()) == \
            fingerprint_points(points)

    def test_strided_view_matches_copy(self, points):
        view = points[::2]
        assert fingerprint_points(view) == fingerprint_points(view.copy())

    def test_different_content_differs(self, points):
        other = points.copy()
        other[0, 0] += 1.0
        assert fingerprint_points(points) != fingerprint_points(other)

    def test_as_points_passthrough_keeps_identity(self, points):
        assert as_points(points) is points
        assert check_points(points) is points

    def test_as_points_rejects_non_2d(self):
        with pytest.raises(ValidationError):
            as_points(np.zeros(4))
        with pytest.raises(ValidationError):
            check_points(np.empty((0, 3)))
        with pytest.raises(ValidationError):
            check_points(np.array([[np.nan, 1.0]]), require_finite=True)


class TestMemo:
    def test_repeat_lookup_skips_hashing(self, points, monkeypatch):
        computes = []
        real = fp_module._compute

        def counting(canonical):
            computes.append(canonical.shape)
            return real(canonical)

        monkeypatch.setattr(fp_module, "_compute", counting)
        first = fingerprint_points(points)
        for _ in range(10):
            assert fingerprint_points(points) == first
        assert len(computes) == 1

    def test_memo_entry_dies_with_the_array(self, rng):
        import gc

        before = fp_module.cached_fingerprints()
        array = rng.normal(size=(30, 4))
        fingerprint_points(array)
        assert fp_module.cached_fingerprints() > before
        del array
        gc.collect()
        assert fp_module.cached_fingerprints() <= before

    def test_index_store_lookup_is_memoized(self, clustered_points,
                                            monkeypatch):
        """The serving hot path: repeated key_for() calls must not
        re-hash the target bytes (the bug this satellite fixes)."""
        from repro.serve.store import IndexStore

        store = IndexStore()
        store.get(clustered_points, seed=0)
        computes = []
        real = fp_module._compute

        def counting(canonical):
            computes.append(canonical.shape)
            return real(canonical)

        monkeypatch.setattr(fp_module, "_compute", counting)
        for _ in range(20):
            index, hit = store.get(clustered_points, seed=0)
            assert hit
        assert computes == []
