"""Incremental updates: exactness against full rebuilds, stable ids,
and the rebuild policy."""

import numpy as np
import pytest

from repro import SweetKNN, knn_join
from repro.errors import ValidationError
from repro.index import Index, UpdatePolicy


def _brute_reference(queries, index, k):
    """Brute-force answer over the index's live rows, in global ids."""
    active = index.active_ids()
    result = knn_join(queries, index.targets[active], k, method="brute")
    return result.distances, active[result.indices]


def _assert_exact(index, queries, k):
    """The index's engine answer equals brute force over its live set."""
    knn = SweetKNN.from_index(index, method="ti-cpu")
    result = knn.query(queries, k)
    ref_dists, ref_ids = _brute_reference(queries, index, k)
    np.testing.assert_allclose(result.distances, ref_dists,
                               rtol=0, atol=1e-9)
    for row in range(len(queries)):
        np.testing.assert_array_equal(np.sort(result.indices[row]),
                                      np.sort(ref_ids[row]))


class TestAdd:
    def test_add_assigns_fresh_stable_ids(self, clustered_points, rng):
        index = Index(clustered_points, seed=0)
        n = len(clustered_points)
        ids = index.add(rng.normal(size=(7, clustered_points.shape[1])))
        np.testing.assert_array_equal(ids, np.arange(n, n + 7))
        assert index.version == 2
        assert index.n_active == n + 7
        assert index.target_clusters.check_invariants()

    def test_add_keeps_members_sorted_descending(self, clustered_points,
                                                 rng):
        index = Index(clustered_points, seed=0)
        index.add(rng.normal(size=(25, clustered_points.shape[1])))
        for dists in index.target_clusters.member_dists:
            assert np.all(np.diff(dists) <= 1e-15)

    def test_added_points_are_queryable_exactly(self, clustered_points,
                                                rng):
        index = Index(clustered_points, seed=0)
        new = rng.normal(size=(10, clustered_points.shape[1]))
        index.add(new)
        _assert_exact(index, new, 5)

    def test_add_validates(self, clustered_points):
        index = Index(clustered_points, seed=0)
        with pytest.raises(ValidationError):
            index.add(np.zeros((3, clustered_points.shape[1] + 2)))
        with pytest.raises(ValidationError):
            index.add(np.full((1, clustered_points.shape[1]), np.nan))


class TestRemove:
    def test_remove_tombstones_rows(self, clustered_points):
        index = Index(clustered_points, seed=0)
        index.remove([3, 17, 90])
        assert index.n_tombstones == 3
        assert index.n_active == len(clustered_points) - 3
        for gone in (3, 17, 90):
            for members in index.target_clusters.members:
                assert gone not in members

    def test_removed_rows_never_returned(self, clustered_points):
        index = Index(clustered_points, seed=0)
        removed = [0, 5, 9, 42]
        index.remove(removed)
        result = SweetKNN.from_index(index, method="ti-cpu").query(
            clustered_points, 8)
        assert not np.isin(result.indices, removed).any()
        _assert_exact(index, clustered_points[:20], 6)

    def test_remove_validates(self, clustered_points):
        index = Index(clustered_points, seed=0)
        with pytest.raises(ValidationError):
            index.remove([len(clustered_points)])
        index.remove([1])
        with pytest.raises(ValidationError, match="already removed"):
            index.remove([1])
        with pytest.raises(ValidationError, match="every target"):
            index.remove(index.active_ids())


class TestRebuildPolicy:
    def test_tombstone_fraction_triggers_rebuild(self, clustered_points):
        index = Index(clustered_points, seed=0,
                      policy=UpdatePolicy(max_tombstone_fraction=0.2))
        index.remove(np.arange(100))
        assert index.build_count == 2  # policy escalated to a rebuild
        assert index.target_clusters.n_clusters > 0
        # Ids stay global even after the rebuild re-clusters live rows.
        for members in index.target_clusters.members:
            assert not np.isin(members, np.arange(100)).any()
        _assert_exact(index, clustered_points[:15], 4)

    def test_rebuild_is_deterministic(self, clustered_points):
        a = Index(clustered_points, seed=0)
        b = Index(clustered_points, seed=0)
        for index in (a, b):
            index.remove(np.arange(110))
        assert a.build_count == b.build_count == 2
        np.testing.assert_array_equal(
            a.target_clusters.center_indices,
            b.target_clusters.center_indices)

    def test_forced_rebuild_drains_staleness(self, clustered_points):
        index = Index(clustered_points, seed=0)
        index.remove([1, 2, 3])
        version = index.version
        index.rebuild()
        assert index.build_count == 2
        assert index.version == version + 1
        assert index._dead_since_rebuild == 0
        _assert_exact(index, clustered_points[:10], 3)

    def test_small_updates_do_not_rebuild(self, clustered_points, rng):
        index = Index(clustered_points, seed=0)
        index.add(rng.normal(size=(5, clustered_points.shape[1])))
        index.remove([2])
        assert index.build_count == 1


class TestPropertyRandomSequences:
    @pytest.mark.parametrize("trial", range(4))
    def test_update_sequence_equals_fresh_rebuild(self, clustered_points,
                                                  trial):
        """Property: after any random add/remove sequence, queries give
        exactly the answers of brute force over the mutated live set —
        i.e. incremental maintenance never drifts from a full rebuild's
        ground truth."""
        rng = np.random.default_rng(1000 + trial)
        dim = clustered_points.shape[1]
        index = Index(clustered_points, seed=trial)
        for _ in range(6):
            if rng.random() < 0.5:
                index.add(rng.normal(size=(int(rng.integers(1, 20)), dim)))
            else:
                active = index.active_ids()
                take = int(rng.integers(1, max(2, active.size // 10)))
                index.remove(rng.choice(active, size=take, replace=False))
        queries = rng.normal(size=(30, dim))
        _assert_exact(index, queries, 6)
        assert index.target_clusters.cluster_sizes().sum() == index.n_active

    def test_mutated_index_round_trips_through_disk(self, tmp_path,
                                                    clustered_points, rng):
        """Persistence composes with updates: save after mutations, load,
        and both the live set and the answers survive."""
        dim = clustered_points.shape[1]
        index = Index(clustered_points, seed=0)
        index.add(rng.normal(size=(12, dim)))
        index.remove([4, 8, 15, 16, 23, 42])
        index.save(tmp_path / "mutated")
        loaded = Index.load(tmp_path / "mutated")
        assert loaded.key == index.key
        assert loaded.n_tombstones == index.n_tombstones
        queries = rng.normal(size=(20, dim))
        knn_a = SweetKNN.from_index(index, method="ti-cpu")
        knn_b = SweetKNN.from_index(loaded, method="ti-cpu")
        a = knn_a.query(queries, 5)
        b = knn_b.query(queries, 5)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.distances, b.distances)

    def test_updating_a_loaded_index_materializes(self, tmp_path,
                                                  clustered_points, rng):
        index = Index(clustered_points, seed=0)
        index.save(tmp_path / "idx")
        loaded = Index.load(tmp_path / "idx", mmap=True)
        assert loaded.mmapped and loaded.source_path
        loaded.add(rng.normal(size=(3, clustered_points.shape[1])))
        assert not loaded.mmapped
        assert loaded.source_path is None  # diverged from the disk image
        _assert_exact(loaded, clustered_points[:10], 4)
