"""Smoke tests: the example applications must stay runnable.

Each example's ``main()`` is imported and executed with its workload
constants monkeypatched down so the suite stays fast; the examples'
own assertions (exactness versus the baseline) still run.
"""

import importlib.util
import os

_EXAMPLES = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")


def _load(name):
    path = os.path.join(_EXAMPLES, name + ".py")
    spec = importlib.util.spec_from_file_location("example_" + name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart(capsys):
    example = _load("quickstart")
    example.main()
    out = capsys.readouterr().out
    assert "sweet" in out
    assert "True" in out  # exactness checks


def test_image_retrieval(capsys, monkeypatch):
    example = _load("image_retrieval")
    monkeypatch.setattr(example, "CORPUS_SIZE", 600)
    monkeypatch.setattr(example, "QUERY_SIZE", 60)
    monkeypatch.setattr(example, "DESCRIPTOR_DIM", 16)
    example.main()
    out = capsys.readouterr().out
    assert "classification accuracy" in out


def test_spatial_join(capsys, monkeypatch):
    example = _load("spatial_join")
    monkeypatch.setattr(example, "PROBES", 800)
    monkeypatch.setattr(example, "STATIONS", 500)
    example.main()
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "memory partitions" in out


def test_adaptive_tour(capsys):
    example = _load("adaptive_tour")
    example.main()
    out = capsys.readouterr().out
    assert "partial filtering" in out
    assert "shared memory" in out


def test_approximate_search(capsys, monkeypatch):
    example = _load("approximate_search")
    monkeypatch.setattr(example, "N", 800)
    example.main()
    out = capsys.readouterr().out
    assert "epsilon" in out
    assert "guarantee" in out


def test_near_duplicates(capsys, monkeypatch):
    example = _load("near_duplicates")
    monkeypatch.setattr(example, "CATALOG", 600)
    example.main()
    out = capsys.readouterr().out
    assert "precision" in out
    assert "near-duplicates" in out
