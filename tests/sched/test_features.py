"""Feature extraction: the model basis and the clusterability proxy."""

import numpy as np

from repro.sched import (DEFAULT_CLUSTERABILITY, FEATURE_NAMES,
                         clusterability_from_clusters,
                         clusterability_from_plan,
                         estimate_clusterability, features_from_plan,
                         features_from_shape)


class TestBasis:
    def test_vector_matches_feature_names(self):
        features = features_from_shape(100, 200, 10, 16,
                                       clusterability=0.7)
        vector = features.vector()
        assert vector.shape == (len(FEATURE_NAMES),)
        assert vector[0] == 1.0
        assert vector[1] == np.log(100)
        assert vector[2] == np.log(200)
        assert vector[3] == np.log(10)
        assert vector[4] == np.log(16)
        assert vector[5] == 0.7

    def test_shape_only_uses_neutral_proxy(self):
        features = features_from_shape(100, 100, 10, 16)
        assert features.clusterability == DEFAULT_CLUSTERABILITY

    def test_describe_is_plain_data(self):
        described = features_from_shape(
            10, 20, 3, 4, clusterability=0.123456789).describe()
        assert described == {"|Q|": 10, "|T|": 20, "k": 3, "d": 4,
                             "clusterability": 0.123457}


class TestClusterabilityProxy:
    def test_deterministic_for_a_seed(self):
        rng = np.random.default_rng(7)
        points = rng.normal(size=(600, 8))
        assert estimate_clusterability(points, seed=3) \
            == estimate_clusterability(points, seed=3)

    def test_in_unit_interval(self):
        rng = np.random.default_rng(1)
        for points in (rng.normal(size=(300, 4)),
                       rng.normal(size=(50, 200))):
            proxy = estimate_clusterability(points)
            assert 0.0 < proxy <= 1.0

    def test_tight_clusters_score_higher_than_diffuse(self):
        rng = np.random.default_rng(5)
        centers = rng.normal(scale=50.0, size=(8, 6))
        tight = np.repeat(centers, 50, axis=0) \
            + rng.normal(scale=0.01, size=(400, 6))
        diffuse = rng.normal(scale=50.0, size=(400, 6))
        assert estimate_clusterability(tight) \
            > estimate_clusterability(diffuse)

    def test_tiny_input_falls_back_to_default(self):
        assert estimate_clusterability(np.zeros((2, 3))) \
            == DEFAULT_CLUSTERABILITY

    def test_plan_proxy_matches_cluster_proxy(self):
        from repro.core.ti_knn import prepare_clusters

        rng = np.random.default_rng(2)
        points = rng.normal(size=(400, 6))
        plan = prepare_clusters(points, points,
                                np.random.default_rng(0))
        proxy = clusterability_from_plan(plan)
        assert proxy == clusterability_from_clusters(
            plan.target_clusters, plan.center_dists)
        assert 0.0 < proxy <= 1.0

    def test_features_from_plan_carries_shape(self):
        from repro.core.ti_knn import prepare_clusters

        rng = np.random.default_rng(4)
        points = rng.normal(size=(150, 5))
        plan = prepare_clusters(points, points,
                                np.random.default_rng(0))
        features = features_from_plan(plan, k=9)
        assert features.n_queries == 150
        assert features.n_targets == 150
        assert features.k == 9
        assert features.dim == 5
