"""Calibration: trajectory replay determinism and the sample filter."""

import json

from repro.sched import calibrate, trajectory_samples
from repro.sched.calibrate import default_trajectory_path


def _record(config, metric="query_time_s", value=1.5, recorded=100.0):
    return {"metric": metric, "config": config, "value": value,
            "recorded": recorded}


class TestTrajectorySamples:
    def test_parses_the_runs_convention(self):
        records = [_record(
            "runs[dataset=kegg,method=ti-cpu,k=20,workers=1]",
            value=2.5, recorded=42.0)]
        samples, newest = trajectory_samples(records)
        assert len(samples) == 1
        assert samples[0].engine == "ti-cpu"
        assert samples[0].seconds == 2.5
        assert samples[0].features.n_queries == 4096  # kegg stand-in
        assert samples[0].features.dim == 29
        assert samples[0].features.k == 20
        assert newest == 42.0

    def test_skips_foreign_rows(self):
        records = [
            _record("runs[dataset=kegg,method=ti-cpu,k=20,workers=2]"),
            _record("runs[dataset=nope,method=ti-cpu,k=20,workers=1]"),
            _record("runs[dataset=kegg,method=nope,k=20,workers=1]"),
            _record("runs[dataset=kegg,method=ti-cpu,k=20,workers=1]",
                    metric="wall_time_s"),
            _record("runs[dataset=kegg,method=ti-cpu,k=20,workers=1]",
                    value=-1.0),
            _record("datasets[dataset=clustered,n=2000]",
                    metric="recall"),
        ]
        samples, _newest = trajectory_samples(records)
        assert samples == []


class TestCalibrateDeterminism:
    def test_no_data_degenerates_to_the_prior_table(self, tmp_path):
        model = calibrate(trajectory_path=tmp_path / "missing.jsonl")
        assert model.engines == {}
        assert model.created == 0.0
        # Version is still well-defined (and stable) for the empty fit.
        assert model.version == calibrate(
            trajectory_path=tmp_path / "missing.jsonl").version

    def test_same_trajectory_same_bytes(self, tmp_path):
        trajectory = tmp_path / "t.jsonl"
        rows = [_record(
            "runs[dataset=kegg,method=ti-flat,k=20,workers=1]",
            value=1.1, recorded=10.0)]
        trajectory.write_text(
            "\n".join(json.dumps(row) for row in rows) + "\n")
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        calibrate(trajectory_path=trajectory).save(first)
        calibrate(trajectory_path=trajectory).save(second)
        assert first.read_bytes() == second.read_bytes()

    def test_committed_trajectory_replays_identically(self, tmp_path):
        path = default_trajectory_path()
        if not path.exists():
            return  # fresh checkout without the committed history
        first = calibrate(trajectory_path=path)
        second = calibrate(trajectory_path=path)
        assert first.to_dict() == second.to_dict()
        assert first.version == second.version
        # ``created`` replays the newest recorded timestamp, not the
        # wall clock.
        assert first.created == second.created
