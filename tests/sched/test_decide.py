"""Decision determinism and the pinned-fallback parity contract.

The two properties the PR's refactor hangs on:

* **byte-identical decisions** — the same inputs and the same
  ``CostModel`` artifact resolve to the same ``Decision`` record, byte
  for byte, regardless of the worker-pool kind and regardless of
  whether the clusterability proxy came from a freshly built or an
  mmap-loaded index;
* **fallback parity** — with no calibration artifact the policy *is*
  the previous behaviour: the caller's engine, the Fig. 8 filter rule,
  ``resolve_workers`` worker resolution.
"""

import json

import numpy as np
import pytest

from repro import sched
from repro.core.adaptive import decide as adaptive_decide
from repro.core.adaptive import filter_strength_for
from repro.engine.registry import engine_names, get_engine
from repro.gpu.device import tesla_k20c
from repro.parallel.shard import resolve_workers

#: Tier-1 fixture shapes: (|Q|=|T|, k, d) — the kegg-like medium
#: shape, the arcene-like high-d shape, a small synthetic mixture and
#: a partial-filter shape (k/d > 8).
SHAPES = ((4096, 20, 29), (100, 20, 10000), (2000, 10, 16), (800, 40, 4))


def _decision_bytes(**kwargs):
    decision = sched.decide(**kwargs)
    return json.dumps(decision.to_dict(), sort_keys=True).encode()


def _model():
    prior = sched.fallback_weights((("ref_s", 2.0),))
    samples = [
        sched.Sample("ti-cpu",
                     sched.features_from_shape(4096, 4096, 20, 29),
                     seconds=2.5),
        sched.Sample("kdtree",
                     sched.features_from_shape(100, 100, 20, 10000),
                     seconds=0.25),
    ]
    engines = {}
    for sample in samples:
        engines[sample.engine] = sched.fit_engine_model(
            sample.engine, [sample],
            sched.fallback_weights(
                get_engine(sample.engine).caps.cost_hints))
    return sched.CostModel(engines=engines, source={}, created=1.0)


class TestByteIdentity:
    def test_identical_across_pool_kinds(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        model = _model()
        for n, k, dim in SHAPES:
            records = {
                pool: _decision_bytes(
                    n_queries=n, n_targets=n, k=k, dim=dim,
                    method="auto", model=model, pool=pool)
                for pool in ("process", "thread", "serial", None)}
            assert len(set(records.values())) == 1, (n, k, dim, records)

    def test_identical_for_repeated_calls(self):
        model = _model()
        first = _decision_bytes(n_queries=500, n_targets=500, k=5,
                                dim=12, method="auto", model=model)
        second = _decision_bytes(n_queries=500, n_targets=500, k=5,
                                 dim=12, method="auto", model=model)
        assert first == second

    def test_identical_through_artifact_round_trip(self, tmp_path):
        model = _model()
        path = tmp_path / "m.json"
        model.save(path)
        loaded = sched.CostModel.load(path)
        for n, k, dim in SHAPES:
            assert _decision_bytes(
                n_queries=n, n_targets=n, k=k, dim=dim, method="auto",
                model=model) == _decision_bytes(
                n_queries=n, n_targets=n, k=k, dim=dim, method="auto",
                model=loaded)

    def test_identical_for_mmap_loaded_index(self, tmp_path):
        from repro.index import Index

        rng = np.random.default_rng(11)
        points = rng.normal(size=(400, 6))
        built = Index(points, seed=3)
        built.save(tmp_path / "idx")
        loaded = Index.load(tmp_path / "idx")
        model = _model()
        records = []
        for index in (built, loaded):
            proxy = sched.clusterability_from_clusters(
                index.target_clusters)
            records.append(_decision_bytes(
                n_queries=64, n_targets=len(points), k=5, dim=6,
                method="auto", clusterability=proxy, model=model))
        assert records[0] == records[1]

    def test_record_never_carries_the_pool_kind(self):
        decision = sched.decide(200, 200, 5, 8, method="auto",
                                model=_model(), pool="thread")
        payload = json.dumps(decision.to_dict())
        assert "thread" not in payload


class TestFallbackParity:
    def test_engine_stays_pinned_for_every_registered_engine(self):
        for name in engine_names():
            decision = sched.decide(500, 500, 10, 16, method=name,
                                    model=False)
            assert decision.engine == name
            assert decision.source == "fallback"
            assert decision.engine_pinned

    def test_filter_strength_matches_the_fig8_rule(self):
        device = tesla_k20c()
        for n, k, dim in SHAPES:
            config = adaptive_decide(n, n, k, dim, 32.0, device)
            decision = sched.decide(n, n, k, dim, method="sweet",
                                    model=False)
            assert decision.filter_strength == config.filter_strength
            assert decision.filter_strength == filter_strength_for(k, dim)

    def test_workers_resolve_exactly_as_before(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        decision = sched.decide(5000, 5000, 10, 16, method="ti-cpu",
                                model=False)
        assert decision.workers == resolve_workers(None) == 1
        monkeypatch.setenv("REPRO_WORKERS", "3")
        decision = sched.decide(5000, 5000, 10, 16, method="ti-cpu",
                                model=False)
        assert decision.workers == resolve_workers(None) == 3

    def test_explicit_workers_always_win(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        decision = sched.decide(5000, 5000, 10, 16, method="ti-cpu",
                                model=_model(), workers=2)
        assert decision.workers == 2

    def test_auto_without_model_uses_the_prior_table(self):
        for n, k, dim in SHAPES:
            decision = sched.decide(n, n, k, dim, method="auto",
                                    model=False)
            features = sched.features_from_shape(n, n, k, dim)
            expected = sched.predict_costs(
                sched.default_candidates(), features)[0][0]
            assert decision.engine == expected
            assert not decision.engine_pinned


class TestExecutedRecords:
    def test_executed_decision_identical_across_pools(self):
        """The decision part of ``stats.extra`` (everything but the
        measured-time fields) is byte-identical across pool kinds."""
        from repro import knn_join

        rng = np.random.default_rng(9)
        points = rng.normal(size=(300, 8))
        records = {}
        for pool in ("serial", "thread", "process"):
            result = knn_join(points, points, 5, method="ti-cpu",
                              seed=0, workers=2, pool=pool)
            record = dict(result.stats.extra["decision"])
            for measured in ("actual_s", "error_ratio", "log_error"):
                record.pop(measured, None)
            records[pool] = json.dumps(record, sort_keys=True)
        assert len(set(records.values())) == 1, records


class TestModelActivation:
    def test_use_model_scopes_the_choice(self):
        model = _model()
        baseline = sched.decide(4096, 4096, 20, 29, method="auto")
        with sched.use_model(model):
            scoped = sched.decide(4096, 4096, 20, 29, method="auto")
        after = sched.decide(4096, 4096, 20, 29, method="auto")
        assert scoped.source == "model"
        assert scoped.model_version == model.version
        assert baseline.source == after.source == "fallback"

    def test_model_choice_is_argmin_of_predictions(self):
        model = _model()
        for n, k, dim in SHAPES:
            features = sched.features_from_shape(n, n, k, dim)
            expected = sched.predict_costs(
                sched.default_candidates(), features, model=model)[0]
            decision = sched.decide(n, n, k, dim, method="auto",
                                    model=model)
            assert decision.engine == expected[0]
            assert decision.predicted_s == pytest.approx(expected[1])

    def test_alternatives_are_sorted_cheapest_first(self):
        decision = sched.decide(1000, 1000, 10, 16, method="auto",
                                model=_model())
        costs = [cost for _name, cost in decision.alternatives]
        assert costs == sorted(costs)
