"""The cost model: priors, fitting determinism, artifact round-trip."""

import json

import numpy as np
import pytest

from repro.sched import (REFERENCE_FEATURES, CostModel, Sample,
                         fallback_weights, features_from_shape,
                         fit_engine_model)
from repro.sched.model import EngineModel


class TestFallbackWeights:
    def test_prior_predicts_ref_s_at_reference(self):
        weights = fallback_weights((("ref_s", 3.5), ("log_q", 1.0)))
        model = EngineModel(engine="x", weights=tuple(weights))
        assert model.predict_seconds(REFERENCE_FEATURES) \
            == pytest.approx(3.5, rel=1e-9)

    def test_default_hints_apply_without_engine_hints(self):
        model = EngineModel(engine="x",
                            weights=tuple(fallback_weights(())))
        assert model.predict_seconds(REFERENCE_FEATURES) \
            == pytest.approx(1.0, rel=1e-9)

    def test_unknown_hint_rejected(self):
        with pytest.raises(ValueError, match="unknown cost hint"):
            fallback_weights((("log_banana", 2.0),))


class TestFitting:
    def test_zero_samples_is_exactly_the_prior(self):
        prior = fallback_weights((("ref_s", 2.0),))
        fitted = fit_engine_model("x", [], prior)
        assert fitted.weights == tuple(prior)
        assert fitted.n_samples == 0

    def test_fit_is_deterministic(self):
        prior = fallback_weights(())
        samples = [Sample("x", features_from_shape(512 * (i + 1),
                                                   512 * (i + 1), 10, 16),
                          seconds=0.01 * (i + 1)) for i in range(4)]
        first = fit_engine_model("x", samples, prior)
        second = fit_engine_model("x", samples, prior)
        assert first.weights == second.weights

    def test_many_samples_recover_a_power_law(self):
        # Ground truth: cost = 1e-6 * |Q| * d (log_q = log_d = 1).
        prior = fallback_weights(())
        samples = []
        rng = np.random.default_rng(0)
        for _ in range(64):
            n = int(rng.integers(100, 50000))
            d = int(rng.integers(2, 500))
            samples.append(Sample(
                "x", features_from_shape(n, n, 10, d),
                seconds=1e-6 * n * d))
        fitted = fit_engine_model("x", samples, prior)
        probe = features_from_shape(3000, 3000, 10, 64)
        assert fitted.predict_seconds(probe) \
            == pytest.approx(1e-6 * 3000 * 64, rel=0.25)


class TestArtifact:
    def _model(self):
        prior = fallback_weights((("ref_s", 2.0),))
        samples = [Sample("ti-cpu", features_from_shape(1000, 1000, 10, 8),
                          seconds=0.5)]
        return CostModel(
            engines={"ti-cpu": fit_engine_model("ti-cpu", samples, prior)},
            source={"trajectory": "t.jsonl"}, created=123.0)

    def test_save_load_round_trip_is_byte_identical(self, tmp_path):
        model = self._model()
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        model.save(first)
        CostModel.load(first).save(second)
        assert first.read_bytes() == second.read_bytes()

    def test_version_is_a_content_hash(self):
        model = self._model()
        assert model.version == self._model().version
        different = CostModel(engines=model.engines,
                              source={"trajectory": "other.jsonl"},
                              created=123.0)
        assert different.version != model.version

    def test_round_trip_preserves_version(self, tmp_path):
        model = self._model()
        path = tmp_path / "m.json"
        model.save(path)
        assert CostModel.load(path).version == model.version

    def test_unseen_engine_falls_back_to_prior(self):
        model = self._model()
        features = features_from_shape(100, 100, 10, 8)
        prior = EngineModel(
            engine="y", weights=tuple(fallback_weights(())))
        assert model.predict("y", features) \
            == prior.predict_seconds(features)

    def test_wrong_format_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        payload = self._model().to_dict()
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format"):
            CostModel.load(path)

    def test_wrong_feature_basis_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        payload = self._model().to_dict()
        payload["feature_names"] = ["bias", "log_q"]
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="features"):
            CostModel.load(path)

    def test_corrupt_weights_cannot_overflow(self):
        model = EngineModel(engine="x", weights=(1e9,) + (0.0,) * 5)
        value = model.predict_seconds(features_from_shape(10, 10, 5, 4))
        assert np.isfinite(value)
