"""Unit and property tests for the kNearests bounded max-heap."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kselect import KNearestHeap


class TestKNearestHeap:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KNearestHeap(0)

    def test_push_below_capacity(self):
        heap = KNearestHeap(3)
        assert heap.push(5.0, 1)
        assert heap.push(2.0, 2)
        assert not heap.full
        assert heap.count == 2

    def test_root_is_kth_bound(self):
        heap = KNearestHeap(3)
        for dist, idx in [(5.0, 0), (2.0, 1), (9.0, 2)]:
            heap.push(dist, idx)
        assert heap.full
        assert heap.max_distance == 9.0

    def test_push_evicts_max(self):
        heap = KNearestHeap(3)
        for dist, idx in [(5.0, 0), (2.0, 1), (9.0, 2)]:
            heap.push(dist, idx)
        assert heap.push(1.0, 3)
        assert heap.max_distance == 5.0

    def test_push_rejects_not_better(self):
        heap = KNearestHeap(2)
        heap.push(1.0, 0)
        heap.push(2.0, 1)
        assert not heap.push(2.0, 2)  # ties are rejected (>= root)
        assert not heap.push(3.0, 3)

    def test_initial_bound(self):
        heap = KNearestHeap(2, bound=10.0)
        assert heap.max_distance == 10.0
        assert not heap.push(11.0, 0)
        assert heap.push(9.0, 1)

    def test_sorted_items_excludes_bound_slots(self):
        heap = KNearestHeap(5)
        heap.push(3.0, 7)
        heap.push(1.0, 8)
        dists, idx = heap.sorted_items()
        np.testing.assert_array_equal(dists, [1.0, 3.0])
        np.testing.assert_array_equal(idx, [8, 7])

    def test_len(self):
        heap = KNearestHeap(4)
        heap.push(1.0, 0)
        assert len(heap) == 1

    def test_repr(self):
        assert "k=2" in repr(KNearestHeap(2))

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200),
           st.integers(min_value=1, max_value=25))
    @settings(max_examples=120, deadline=None)
    def test_matches_sorted_prefix(self, values, k):
        """Property: the heap holds exactly the k smallest distances."""
        heap = KNearestHeap(k)
        for i, value in enumerate(values):
            heap.push(value, i)
        dists, _ = heap.sorted_items()
        expected = np.sort(np.asarray(values))[:k]
        # Ties at the boundary may be resolved either way, so compare
        # the distance multisets only.
        np.testing.assert_allclose(dists, expected[:len(dists)])
        assert heap.check_invariant()

    @given(st.lists(st.floats(min_value=0, max_value=100,
                              allow_nan=False), min_size=5, max_size=100))
    @settings(max_examples=80, deadline=None)
    def test_heap_invariant_maintained(self, values):
        heap = KNearestHeap(5)
        for i, value in enumerate(values):
            heap.push(value, i)
            assert heap.check_invariant()

    @given(st.lists(st.floats(min_value=0, max_value=100,
                              allow_nan=False), min_size=8, max_size=100),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=80, deadline=None)
    def test_root_never_below_kth_smallest(self, values, k):
        """theta = heap.max is always >= the true k-th smallest seen."""
        heap = KNearestHeap(k)
        seen = []
        for i, value in enumerate(values):
            heap.push(value, i)
            seen.append(value)
            if heap.full:
                kth = np.sort(seen)[k - 1]
                assert heap.max_distance >= kth - 1e-12
