"""Tests for the Garcia-style insertion selector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kselect import InsertionSelector, insertion_select


class TestInsertionSelector:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            InsertionSelector(0)

    def test_keeps_sorted(self):
        sel = InsertionSelector(3)
        for value in (5.0, 1.0, 3.0, 0.5, 4.0):
            sel.offer(value, int(value * 10))
        dists, idx = sel.sorted_items()
        np.testing.assert_allclose(dists, [0.5, 1.0, 3.0])
        assert np.all(np.diff(sel.dists) >= 0)

    def test_rejects_not_better(self):
        sel = InsertionSelector(2)
        sel.offer(1.0, 0)
        sel.offer(2.0, 1)
        assert not sel.offer(2.5, 2)
        assert sel.comparisons == 3

    def test_kth_bound(self):
        sel = InsertionSelector(2)
        assert np.isinf(sel.kth)
        sel.offer(3.0, 0)
        sel.offer(1.0, 1)
        assert sel.kth == 3.0

    def test_shift_counting(self):
        sel = InsertionSelector(3)
        sel.offer(3.0, 0)   # [3]
        sel.offer(2.0, 1)   # shift 1
        sel.offer(1.0, 2)   # shift 2
        assert sel.shifts == 3

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=150),
           st.integers(min_value=1, max_value=20))
    @settings(max_examples=100, deadline=None)
    def test_matches_sort(self, values, k):
        dists, _, sel = insertion_select(values, k)
        expected = np.sort(values)[:min(k, len(values))]
        np.testing.assert_allclose(dists, expected)
        assert sel.comparisons == len(values)

    @given(st.lists(st.floats(min_value=0, max_value=100,
                              allow_nan=False), min_size=5, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_heap(self, values):
        """Insertion (Garcia) and heap (Sweet) must select identically."""
        from repro.kselect import KNearestHeap
        heap = KNearestHeap(5)
        sel = InsertionSelector(5)
        for i, value in enumerate(values):
            heap.push(value, i)
            sel.offer(value, i)
        np.testing.assert_allclose(heap.sorted_items()[0],
                                   sel.sorted_items()[0])
