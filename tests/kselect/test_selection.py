"""Tests for k-selection primitives."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kselect import (merge_sorted_lists, select_k_from_pairs,
                           select_k_smallest)


class TestSelectKSmallest:
    def test_basic(self):
        dists, idx = select_k_smallest([5.0, 1.0, 3.0, 2.0], 2)
        np.testing.assert_array_equal(dists, [1.0, 2.0])
        np.testing.assert_array_equal(idx, [1, 3])

    def test_k_larger_than_input(self):
        dists, idx = select_k_smallest([2.0, 1.0], 5)
        np.testing.assert_array_equal(dists, [1.0, 2.0])

    def test_k_zero(self):
        dists, idx = select_k_smallest([1.0], 0)
        assert dists.size == 0 and idx.size == 0

    def test_tie_broken_by_index(self):
        dists, idx = select_k_smallest([1.0, 1.0, 1.0], 2)
        np.testing.assert_array_equal(idx, [0, 1])

    def test_custom_indices(self):
        dists, idx = select_k_smallest([3.0, 1.0], 1, indices=[10, 20])
        np.testing.assert_array_equal(idx, [20])

    @given(st.lists(st.floats(min_value=0, max_value=1e9,
                              allow_nan=False), min_size=1, max_size=100),
           st.integers(min_value=1, max_value=30))
    @settings(max_examples=100, deadline=None)
    def test_matches_numpy_sort(self, values, k):
        dists, _ = select_k_smallest(values, k)
        expected = np.sort(values)[:min(k, len(values))]
        np.testing.assert_allclose(dists, expected)


class TestMergeSortedLists:
    def test_merge_two(self):
        lists = [([1.0, 4.0], [0, 1]), ([2.0, 3.0], [2, 3])]
        dists, idx = merge_sorted_lists(lists, 3)
        np.testing.assert_array_equal(dists, [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(idx, [0, 2, 3])

    def test_merge_with_empty(self):
        lists = [([], []), ([1.0], [5])]
        dists, idx = merge_sorted_lists(lists, 2)
        np.testing.assert_array_equal(dists, [1.0])

    def test_all_empty(self):
        dists, idx = merge_sorted_lists([([], [])], 3)
        assert dists.size == 0

    @given(st.lists(st.lists(st.floats(min_value=0, max_value=100,
                                       allow_nan=False), max_size=20),
                    min_size=1, max_size=6),
           st.integers(min_value=1, max_value=15))
    @settings(max_examples=80, deadline=None)
    def test_equals_global_selection(self, groups, k):
        """Merging per-thread sorted heaps == one global k-selection —
        the correctness contract of Sweet KNN's merge step."""
        offset = 0
        lists = []
        all_values = []
        for group in groups:
            ordered = sorted(group)
            lists.append((ordered, list(range(offset, offset + len(group)))))
            all_values.extend(group)
            offset += len(group)
        dists, _ = merge_sorted_lists(lists, k)
        expected = np.sort(all_values)[:min(k, len(all_values))]
        np.testing.assert_allclose(dists, expected)


class TestSelectKFromPairs:
    def test_basic(self):
        pairs = [(3.0, 0), (1.0, 1), (2.0, 2)]
        dists, idx = select_k_from_pairs(pairs, 2)
        np.testing.assert_array_equal(dists, [1.0, 2.0])
        np.testing.assert_array_equal(idx, [1, 2])

    def test_empty(self):
        dists, idx = select_k_from_pairs([], 3)
        assert dists.size == 0

    def test_generator_input(self):
        dists, _ = select_k_from_pairs(((float(i), i) for i in range(10)), 3)
        np.testing.assert_array_equal(dists, [0.0, 1.0, 2.0])
