"""Tests for the prepared index and its reuse by SweetKNN."""

import numpy as np
import pytest

from repro import SweetKNN, knn_join
from repro.engine.prepared import PreparedIndex
from repro.errors import ValidationError
from repro.index import index as index_module


class TestPreparedIndex:
    def test_builds_target_side_once(self, clustered_points, rng):
        index = PreparedIndex(clustered_points, seed=0)
        assert index.build_count == 1
        first = index.target_clusters
        for _ in range(3):
            queries = rng.normal(size=(20, clustered_points.shape[1]))
            plan = index.join_plan(queries)
            assert plan.target_clusters is first

    def test_join_plan_results_exact(self, clustered_points, rng):
        index = PreparedIndex(clustered_points, seed=0)
        queries = rng.normal(size=(25, clustered_points.shape[1]))
        plan = index.join_plan(queries)
        assert plan.query_clusters.n_points == 25
        assert plan.center_dists.shape == (plan.mq, plan.mt)

    def test_level1_cached_per_k(self, clustered_points, rng):
        index = PreparedIndex(clustered_points, seed=0)
        queries = rng.normal(size=(20, clustered_points.shape[1]))
        plan = index.join_plan(queries)
        plan.run_level1(3)
        ubs3 = plan.ubs
        plan.run_level1(5)
        plan.run_level1(3)
        assert plan.ubs is ubs3  # second k=3 request hits the cache

    def test_rejects_bad_inputs(self, clustered_points):
        with pytest.raises(ValidationError):
            PreparedIndex(np.empty((0, 3)))
        index = PreparedIndex(clustered_points)
        with pytest.raises(ValidationError):
            index.join_plan(np.zeros((4, clustered_points.shape[1] + 1)))
        with pytest.raises(ValidationError):
            index.join_plan(np.empty((0, clustered_points.shape[1])))


class TestSweetKNNReuse:
    def test_landmark_selection_runs_once_for_targets(
            self, clustered_points, rng, monkeypatch):
        """Regression: query() used to re-cluster the target set."""
        calls = []
        real = index_module.select_landmarks_random_spread

        def counting(points, m, rng_):
            calls.append(points)
            return real(points, m, rng_)

        monkeypatch.setattr(index_module, "select_landmarks_random_spread",
                            counting)
        index = SweetKNN(clustered_points, seed=0)
        dim = clustered_points.shape[1]
        index.query(rng.normal(size=(15, dim)), 4)
        index.query(rng.normal(size=(25, dim)), 4)
        target_side = [p for p in calls if p is index.targets]
        assert len(target_side) == 1
        assert index.index.build_count == 1

    def test_repeated_query_array_reuses_join_plan(self, clustered_points,
                                                   rng):
        index = SweetKNN(clustered_points, seed=0)
        queries = rng.normal(size=(20, clustered_points.shape[1]))
        index.query(queries, 3)
        first = index._join_plans[-1][-1]
        index.query(queries, 5)  # same array object, different k
        assert index._join_plans[-1][-1] is first
        assert len(index._join_plans) == 1

    def test_execution_plans_cached_per_shape(self, clustered_points, rng):
        index = SweetKNN(clustered_points, seed=0)
        queries = rng.normal(size=(20, clustered_points.shape[1]))
        plan_a = index.plan(queries, 4)
        plan_b = index.plan(queries, 4)
        assert plan_a is plan_b
        assert index.plan(queries, 5) is not plan_a

    def test_query_results_stay_exact_across_calls(self, clustered_points,
                                                   rng):
        index = SweetKNN(clustered_points, seed=0)
        for size in (10, 30):
            queries = rng.normal(size=(size, clustered_points.shape[1]))
            ref = knn_join(queries, clustered_points, 5, method="brute")
            assert index.query(queries, 5).matches(ref)

    def test_rejects_mt_at_query_time(self, clustered_points):
        index = SweetKNN(clustered_points)
        with pytest.raises(ValidationError):
            index.query(clustered_points, 3, mt=12)

    def test_rejects_non_prepared_engine(self, clustered_points):
        with pytest.raises(ValidationError):
            SweetKNN(clustered_points, method="cublas")

    def test_cpu_engine_prepared_index(self, clustered_points, rng):
        index = SweetKNN(clustered_points, method="ti-cpu")
        queries = rng.normal(size=(12, clustered_points.shape[1]))
        ref = knn_join(queries, clustered_points, 4, method="brute")
        assert index.query(queries, 4).matches(ref)
        assert index.index.build_count == 1
