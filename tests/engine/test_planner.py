"""Tests for the query planner and the shared partition budgets."""

import numpy as np
import pytest

import repro
from repro.engine.planner import (ExecutionPlan, partition_ranges,
                                  plan_shape, ti_partition_rows)
from repro.gpu.device import tesla_k20c


class TestPlan:
    def test_public_plan_describe(self, clustered_points):
        plan = repro.plan(clustered_points, clustered_points, 10)
        assert isinstance(plan, ExecutionPlan)
        info = plan.describe()
        assert info["method"] == "sweet"
        assert info["|Q|"] == len(clustered_points)
        assert info["k"] == 10
        assert info["mq"] > 0 and info["mt"] > 0
        assert info["query_batches"] >= 1
        assert "filter" in info          # adaptive config is included
        assert "device" in info

    def test_host_engine_plan_has_no_config(self, clustered_points):
        plan = repro.plan(clustered_points, clustered_points, 5,
                          method="brute")
        assert plan.config is None
        assert plan.mq == 0 and plan.mt == 0
        assert not plan.batching.batched

    def test_adaptive_knobs_forwarded(self, clustered_points):
        plan = repro.plan(clustered_points, clustered_points, 5,
                          force_filter="partial")
        assert plan.config.filter_strength == "partial"

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            repro.plan(np.zeros(8), np.zeros((8, 2)), 2)

    def test_tiny_device_forces_query_batching(self):
        device = tesla_k20c(global_mem_bytes=32 * 1024)
        plan = plan_shape(300, 300, 5, 8, method="sweet", device=device)
        assert plan.batching.batched
        assert plan.batching.rows_per_batch < 300
        ranges = plan.batching.ranges(300)
        assert len(ranges) == plan.batching.n_batches

    def test_plan_matches_executed_decisions(self, clustered_points):
        plan = repro.plan(clustered_points, clustered_points, 6)
        result = repro.knn_join(clustered_points, clustered_points, 6)
        extra = result.stats.extra
        assert extra["filter"] == plan.config.filter_strength
        assert extra["threads_per_query"] == \
            plan.config.parallel.threads_per_query


class TestPartitionBudgets:
    def test_partition_ranges_cover_exactly(self):
        ranges = partition_ranges(10, 3)
        assert ranges == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert partition_ranges(5, 100) == [(0, 5)]

    def test_ti_rows_shrink_with_memory(self):
        big = tesla_k20c()
        small = tesla_k20c(global_mem_bytes=32 * 1024)
        assert ti_partition_rows(300, 300, 8, 5, big) == 300
        assert ti_partition_rows(300, 300, 8, 5, small) < 300

    def test_ti_rows_never_zero(self):
        device = tesla_k20c(global_mem_bytes=1)
        assert ti_partition_rows(4, 4, 2, 1, device) >= 1
