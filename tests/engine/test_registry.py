"""Tests for the engine registry and the live METHODS view."""

import pytest

import repro
from repro import knn_join
from repro.baselines.brute_force import brute_force_knn
from repro.engine import (EngineCaps, EngineSpec, engine_names, get_engine,
                          register, unregister)
from repro.errors import ValidationError

BUILTIN = ("sweet", "ti-gpu", "ti-cpu", "cublas", "brute", "kdtree",
           "range-join", "self-join-eps", "rknn", "range-join-brute",
           "rknn-brute", "graph-bfs", "graph-greedy",
           "ti-flat", "sweet-flat", "ti-native", "sweet-native")


def _toy_run(queries, targets, k, ctx, **options):
    return brute_force_knn(queries, targets, k)


@pytest.fixture
def toy_engine():
    spec = register(EngineSpec(name="toy", run=_toy_run,
                               description="brute force in disguise"))
    yield spec
    try:
        unregister("toy")
    except ValidationError:
        pass


class TestRegistry:
    def test_builtin_engines(self):
        assert engine_names() == BUILTIN

    def test_get_engine_roundtrip(self):
        spec = get_engine("sweet")
        assert spec.name == "sweet"
        assert spec.caps.needs_device
        assert spec.caps.supports_prepared_index

    def test_unknown_method_lists_registered_names(self):
        with pytest.raises(ValidationError) as err:
            get_engine("magic")
        message = str(err.value)
        assert "magic" in message
        for name in BUILTIN:
            assert name in message

    def test_register_rejects_non_spec(self):
        with pytest.raises(ValidationError):
            register(object())

    def test_register_duplicate_requires_replace(self, toy_engine):
        with pytest.raises(ValidationError):
            register(EngineSpec(name="toy", run=_toy_run))
        replaced = register(EngineSpec(name="toy", run=_toy_run),
                            replace=True)
        assert get_engine("toy") is replaced

    def test_unregister_unknown(self):
        with pytest.raises(ValidationError):
            unregister("magic")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            EngineSpec(name="", run=_toy_run)
        with pytest.raises(ValueError):
            EngineSpec(name="x", run="not callable")


class TestCustomEngine:
    def test_dispatchable_via_knn_join(self, toy_engine, clustered_points):
        ref = knn_join(clustered_points, clustered_points, 5, method="brute")
        res = knn_join(clustered_points, clustered_points, 5, method="toy")
        assert res.matches(ref)

    def test_caps_default_to_minimal(self, toy_engine):
        assert toy_engine.caps == EngineCaps()
        assert not toy_engine.caps.needs_device
        assert not toy_engine.caps.supports_prepared_index


class TestMethodsView:
    def test_matches_builtin_tuple(self):
        assert repro.METHODS == BUILTIN
        assert tuple(repro.METHODS) == BUILTIN
        assert len(repro.METHODS) == len(BUILTIN)
        assert repro.METHODS[0] == "sweet"

    def test_tracks_registration(self, toy_engine):
        assert "toy" in repro.METHODS
        unregister("toy")
        assert "toy" not in repro.METHODS
        assert repro.METHODS == BUILTIN

    def test_unhashable_live_view(self):
        with pytest.raises(TypeError):
            hash(repro.METHODS)
