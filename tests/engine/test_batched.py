"""Batched execution: equivalence with unbatched runs, result merging."""

import numpy as np
import pytest

from repro import knn_join
from repro.core.result import JoinStats, KNNResult, merge_batch_results
from repro.errors import ValidationError
from repro.gpu.device import tesla_k20c

#: Work counters that must sum exactly across query batches.
COUNTERS = ("level2_distance_computations", "center_distance_computations",
            "init_distance_computations", "examined_points",
            "candidate_cluster_pairs", "heap_updates")


class TestForcedBatchingEquivalence:
    @pytest.mark.parametrize("method", ["sweet", "ti-gpu", "ti-cpu"])
    @pytest.mark.parametrize("dataset", ["clustered", "uniform"])
    def test_identical_results_and_counters(self, clustered_points,
                                            uniform_points, method, dataset):
        points = clustered_points if dataset == "clustered" else uniform_points
        whole = knn_join(points, points, 6, method=method, seed=3)
        tiled = knn_join(points, points, 6, method=method, seed=3,
                         query_batch_size=70)

        np.testing.assert_array_equal(whole.indices, tiled.indices)
        np.testing.assert_array_equal(whole.distances, tiled.distances)
        for counter in COUNTERS:
            assert getattr(tiled.stats, counter) == \
                getattr(whole.stats, counter), counter
        assert tiled.stats.n_queries == len(points)
        expected_batches = -(-len(points) // 70)
        assert tiled.stats.extra["query_batches"] == expected_batches

    def test_batched_profile_still_accounts_time(self, clustered_points):
        tiled = knn_join(clustered_points, clustered_points, 5,
                         query_batch_size=100)
        assert tiled.sim_time_s > 0
        assert tiled.profile.filter_warp_efficiency() > 0

    def test_invalid_batch_size(self, clustered_points):
        with pytest.raises(ValidationError):
            knn_join(clustered_points, clustered_points, 4,
                     query_batch_size=0)

    def test_non_device_engines_ignore_auto_batching(self, clustered_points):
        res = knn_join(clustered_points, clustered_points, 4, method="brute")
        assert "query_batches" not in res.stats.extra


class TestAutomaticBatching:
    def test_tiny_device_batches_and_stays_exact(self, clustered_points):
        device = tesla_k20c(global_mem_bytes=32 * 1024)
        ref = knn_join(clustered_points, clustered_points, 5, method="brute")
        res = knn_join(clustered_points, clustered_points, 5,
                       method="sweet", device=device)
        assert res.stats.extra["query_batches"] > 1
        assert res.matches(ref)


class TestMergeBatchResults:
    def _result(self, distances, indices, n_queries=None):
        distances = np.asarray(distances, dtype=np.float64)
        stats = JoinStats(n_queries=len(distances), n_targets=10,
                          level2_distance_computations=7)
        return KNNResult(distances=distances,
                         indices=np.asarray(indices, dtype=np.int64),
                         stats=stats, method="unit")

    def test_disjoint_batches_concatenate(self):
        a = self._result([[1.0, 2.0]], [[0, 1]])
        b = self._result([[3.0, 4.0]], [[2, 3]])
        merged = merge_batch_results([([0], a), ([1], b)], 2, 2)
        np.testing.assert_array_equal(merged.indices, [[0, 1], [2, 3]])
        assert merged.stats.level2_distance_computations == 14
        assert merged.stats.extra["query_batches"] == 2
        assert merged.method == "unit"

    def test_overlapping_rows_keep_global_k_best(self):
        a = self._result([[1.0, 5.0], [2.0, 6.0]], [[0, 1], [2, 3]])
        b = self._result([[3.0, 4.0], [0.5, 9.0]], [[4, 5], [6, 7]])
        merged = merge_batch_results([([0, 1], a), ([1, 2], b)], 3, 2)
        np.testing.assert_array_equal(merged.distances[0], [1.0, 5.0])
        # Row 1 is covered by both tiles; the closest two overall win.
        np.testing.assert_array_equal(merged.distances[1], [2.0, 3.0])
        np.testing.assert_array_equal(merged.indices[1], [2, 4])
        np.testing.assert_array_equal(merged.distances[2], [0.5, 9.0])

    def test_uncovered_row_is_an_error(self):
        a = self._result([[1.0, 2.0]], [[0, 1]])
        with pytest.raises(ValueError):
            merge_batch_results([([0], a)], 2, 2)

    def test_empty_batch_list_is_an_error(self):
        with pytest.raises(ValueError):
            merge_batch_results([], 1, 1)
