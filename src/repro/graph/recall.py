"""Measured recall@k of the graph tier, and its ``ef`` calibration.

An approximate engine is only usable in serving if its error is
*measured*, not guessed.  This module establishes the recall contract
all future approximate work reuses:

* :func:`measured_recall` — mean per-query overlap between an
  approximate answer and the exact one (recall@k);
* :func:`calibrate` — run the graph walk at a grid of ``ef`` settings
  against the **exact TI engine** on a held-out probe set, producing a
  :class:`RecallCurve`;
* :class:`RecallCurve` — the stored (ef, recall) curve; serving maps a
  requested ``recall_target`` to the smallest calibrated ``ef`` whose
  measured recall reaches it (:meth:`RecallCurve.ef_for`).

The probe set is deterministic — drawn from the build key
``(seed, fingerprint)`` — and *held out* in the sense that probes are
perturbed copies of sampled target rows, not rows the graph stores, so
the measurement is not flattered by exact self-matches.  The curve is
persisted inside the graph manifest (plain floats, stable JSON), so
the byte-determinism contract of the artifact extends to it.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from .search import graph_knn_search

__all__ = ["RecallCurve", "measured_recall", "probe_queries", "calibrate"]

#: Default search-width grid for calibration.
DEFAULT_EF_GRID = (16, 32, 64, 128, 256)


class RecallCurve:
    """Measured (ef, recall@k) pairs of one graph build.

    Attributes
    ----------
    k:
        The k the curve was measured at.
    entries:
        Tuple of ``(ef, recall)`` pairs, ascending in ``ef``.
    n_probe:
        Probe-set size behind every measurement.
    """

    def __init__(self, k, entries, n_probe=0):
        self.k = int(k)
        self.entries = tuple(sorted((int(ef), float(recall))
                                    for ef, recall in entries))
        self.n_probe = int(n_probe)
        if not self.entries:
            raise ValidationError("a recall curve needs >= 1 entry")
        if any(not 0.0 <= r <= 1.0 for _, r in self.entries):
            raise ValidationError("recall values must be in [0, 1]")

    def ef_for(self, recall_target, k=None):
        """Smallest calibrated ``ef`` whose measured recall reaches
        ``recall_target``; the largest calibrated ``ef`` (best effort)
        when no setting reached it.

        When the request's ``k`` differs from the calibrated one the
        width scales proportionally — the beam must hold ``k`` results,
        so a larger k needs a proportionally larger frontier.
        """
        recall_target = float(recall_target)
        if not 0.0 < recall_target <= 1.0:
            raise ValidationError("recall_target must be in (0, 1]")
        ef = None
        for candidate, recall in self.entries:
            if recall >= recall_target:
                ef = candidate
                break
        if ef is None:
            ef = self.entries[-1][0]
        if k is not None and int(k) != self.k:
            ef = int(np.ceil(ef * int(k) / self.k))
        return max(int(ef), int(k) if k is not None else self.k)

    def recall_at(self, ef):
        """Measured recall of the closest calibrated ``ef`` <= ``ef``
        (the first entry when ``ef`` undershoots the grid)."""
        best = self.entries[0][1]
        for candidate, recall in self.entries:
            if candidate <= int(ef):
                best = recall
        return best

    def describe(self):
        return {"k": self.k, "n_probe": self.n_probe,
                "entries": [[ef, recall] for ef, recall in self.entries]}

    @classmethod
    def from_dict(cls, data):
        return cls(k=data["k"], entries=data["entries"],
                   n_probe=data.get("n_probe", 0))

    def __repr__(self):
        return "RecallCurve(k=%d, %s)" % (
            self.k, ", ".join("ef=%d:%.3f" % e for e in self.entries))


def measured_recall(approx_indices, exact_indices):
    """Mean per-row recall@k: |approx ∩ exact| / |exact| (ignoring -1
    padding on either side)."""
    approx_indices = np.atleast_2d(np.asarray(approx_indices))
    exact_indices = np.atleast_2d(np.asarray(exact_indices))
    if approx_indices.shape[0] != exact_indices.shape[0]:
        raise ValidationError("recall needs equal query counts")
    recalls = []
    for approx, exact in zip(approx_indices, exact_indices):
        truth = set(int(i) for i in exact if i >= 0)
        if not truth:
            continue
        got = set(int(i) for i in approx if i >= 0)
        recalls.append(len(truth & got) / len(truth))
    return float(np.mean(recalls)) if recalls else 0.0


def probe_queries(index, n_probe, seed, fingerprint):
    """A deterministic held-out probe set for recall measurement.

    Perturbed copies of sampled live rows: near the data manifold (so
    the measurement reflects real query difficulty) without being
    stored nodes (so exact self-matches cannot inflate recall).  Pure
    function of ``(seed, fingerprint, n_probe)``.
    """
    rng = np.random.default_rng(np.random.SeedSequence(
        [int(seed) & (2 ** 63 - 1), int(fingerprint[:16], 16), 0xCA11]))
    active = index.active_ids()
    n_probe = min(int(n_probe), active.size)
    base_rows = active[np.sort(rng.choice(active.size, size=n_probe,
                                          replace=False))]
    base = np.asarray(index.targets, dtype=np.float64)[base_rows]
    scale = np.std(base, axis=0)
    scale[scale == 0.0] = 1.0
    return base + 0.05 * scale * rng.standard_normal(base.shape)


def calibrate(graph, index, k=10, ef_grid=DEFAULT_EF_GRID, n_probe=64,
              attach=True):
    """Measure the graph's recall@k curve against the exact TI engine.

    Runs the Fig.-4 reference (:func:`repro.core.ti_knn.ti_knn_join`)
    on a deterministic probe set for ground truth, then the graph walk
    at every ``ef`` in the grid.  Returns the :class:`RecallCurve`
    (attached to ``graph.calibration`` unless ``attach=False`` — the
    curve is persisted with the graph and drives
    ``KNNServer(recall_target=...)`` routing).
    """
    from ..core.ti_knn import ti_knn_join

    k = int(k)
    if k < 1:
        raise ValidationError("k must be positive")
    probes = probe_queries(index, n_probe, graph.seed, graph.fingerprint)
    rng = np.random.default_rng(np.random.SeedSequence(
        [int(graph.seed) & (2 ** 63 - 1),
         int(graph.fingerprint[:16], 16), 0xE5AC]))
    plan = index.join_plan(probes, rng=rng)
    exact = ti_knn_join(probes, np.asarray(index.targets),
                        min(k, index.n_active), rng, plan=plan)

    dead = index.tombstones if index.n_tombstones else None
    entries = []
    for ef in sorted(set(max(int(ef), k) for ef in ef_grid)):
        approx = graph_knn_search(graph, probes,
                                  np.asarray(index.targets),
                                  min(k, index.n_active), ef=ef,
                                  dead_mask=dead)
        entries.append((ef, measured_recall(approx.indices,
                                            exact.indices)))
    curve = RecallCurve(k=k, entries=entries, n_probe=len(probes))
    if attach:
        graph.calibration = curve
    return curve
