"""On-disk persistence of an approximate k-NN graph.

A graph directory holds one JSON manifest plus one ``.npy`` file per
array::

    <dir>/
      graph.json          format version, shapes, build provenance
      node_ids.npy        (m,)  global target rows of the graph nodes
      neighbors.npy       (m, kg) neighbour *positions* into node_ids
      distances.npy       (m, kg) distances aligned with neighbors
      entry_points.npy    (e,)  search entry positions

Layout mirrors :mod:`repro.index.storage`: plain contiguous ``.npy``
files that ``np.load(mmap_mode="r")`` can map directly, manifest
written last via a temp file + rename, and every malformed-input path
raising a typed :class:`~repro.errors.ValidationError`.

One deliberate difference: the manifest carries **no wall-clock
values** (the index manifest stamps ``created_unix_s``).  The graph
build is deterministic given ``(seed, fingerprint)`` and the
acceptance contract is that two builds produce *byte-identical*
directories, so nothing non-reproducible may enter the serialization
(keys are also sorted for the same reason).
"""

from __future__ import annotations

import json
import os

import numpy as np

from ..errors import ValidationError

__all__ = ["GRAPH_FORMAT_VERSION", "GRAPH_MANIFEST_NAME", "write_graph",
           "read_graph", "read_graph_manifest", "is_graph_dir"]

#: On-disk graph format version; bumped on any incompatible change.
GRAPH_FORMAT_VERSION = 1

GRAPH_MANIFEST_NAME = "graph.json"

#: name -> (expected dtype, expected ndim)
_ARRAYS = {
    "node_ids": ("<i8", 1),
    "neighbors": ("<i8", 2),
    "distances": ("<f8", 2),
    "entry_points": ("<i8", 1),
}


def is_graph_dir(path):
    """Whether ``path`` looks like a saved graph (has a manifest)."""
    return os.path.isfile(os.path.join(path, GRAPH_MANIFEST_NAME))


def write_graph(graph, path):
    """Serialize ``graph`` into directory ``path`` (created if needed).

    Arrays first, manifest last and atomically — a directory with a
    readable manifest always describes fully written arrays.  The
    output is a pure function of the graph state: saving the same
    build twice yields byte-identical files.
    """
    path = os.fspath(path)
    os.makedirs(path, exist_ok=True)

    arrays = {
        "node_ids": np.ascontiguousarray(graph.node_ids, dtype=np.int64),
        "neighbors": np.ascontiguousarray(graph.neighbors, dtype=np.int64),
        "distances": np.ascontiguousarray(graph.distances,
                                          dtype=np.float64),
        "entry_points": np.ascontiguousarray(graph.entry_points,
                                             dtype=np.int64),
    }
    manifest = {
        "format": "repro-knn-graph",
        "format_version": GRAPH_FORMAT_VERSION,
        "seed": int(graph.seed),
        "fingerprint": graph.fingerprint,
        "built_version": int(graph.built_version),
        "dim": int(graph.dim),
        "n_targets_at_build": int(graph.n_targets_at_build),
        "n_nodes": int(graph.n_nodes),
        "graph_k": int(graph.graph_k),
        "bootstrap_rows": int(graph.bootstrap_rows),
        "build_distance_computations": int(
            graph.build_distance_computations),
        "iteration_updates": [int(u) for u in graph.iteration_updates],
        "config": graph.config.describe(),
        "calibration": (graph.calibration.describe()
                        if graph.calibration is not None else None),
        "arrays": {name: {"shape": list(array.shape),
                          "dtype": array.dtype.str}
                   for name, array in arrays.items()},
    }

    for name, array in arrays.items():
        np.save(os.path.join(path, name + ".npy"), array)
    tmp = os.path.join(path, GRAPH_MANIFEST_NAME + ".tmp")
    with open(tmp, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, os.path.join(path, GRAPH_MANIFEST_NAME))
    return manifest


def read_graph_manifest(path):
    """Load and validate the manifest of a graph directory."""
    path = os.fspath(path)
    manifest_path = os.path.join(path, GRAPH_MANIFEST_NAME)
    if not os.path.isdir(path):
        raise ValidationError("graph directory %r does not exist" % path)
    if not os.path.isfile(manifest_path):
        raise ValidationError(
            "%r is not a saved graph (no %s)" % (path, GRAPH_MANIFEST_NAME))
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ValidationError(
            "corrupt graph manifest %r: %s" % (manifest_path, exc)) from exc
    if not isinstance(manifest, dict) \
            or manifest.get("format") != "repro-knn-graph":
        raise ValidationError(
            "%r is not a repro graph manifest" % manifest_path)
    if manifest.get("format_version") != GRAPH_FORMAT_VERSION:
        raise ValidationError(
            "graph format version %r is not the supported %d"
            % (manifest.get("format_version"), GRAPH_FORMAT_VERSION))
    for key in ("seed", "fingerprint", "built_version", "dim",
                "n_nodes", "graph_k", "arrays"):
        if key not in manifest:
            raise ValidationError(
                "graph manifest %r is missing %r" % (manifest_path, key))
    return manifest


def read_graph(path, mmap=True):
    """Load ``(manifest, arrays)`` from a graph directory.

    With ``mmap=True`` the arrays are read-only page-cache views —
    worker processes searching the same graph share one physical copy,
    exactly like the index arrays.  Shapes and dtypes are validated
    against the manifest.
    """
    path = os.fspath(path)
    manifest = read_graph_manifest(path)
    declared = manifest["arrays"]
    arrays = {}
    for name, (dtype, ndim) in _ARRAYS.items():
        if name not in declared:
            raise ValidationError("graph manifest lists no %r array" % name)
        file_path = os.path.join(path, name + ".npy")
        try:
            array = np.load(file_path, mmap_mode="r" if mmap else None,
                            allow_pickle=False)
        except (OSError, ValueError) as exc:
            raise ValidationError(
                "cannot load graph array %r: %s" % (file_path, exc)) from exc
        spec = declared[name]
        if list(array.shape) != list(spec.get("shape", [])) \
                or array.dtype.str != spec.get("dtype"):
            raise ValidationError(
                "graph array %r does not match its manifest entry "
                "(file %s %s, manifest %s %s)"
                % (name, array.shape, array.dtype.str,
                   tuple(spec.get("shape", [])), spec.get("dtype")))
        if array.ndim != ndim or array.dtype.str != dtype:
            raise ValidationError(
                "graph array %r has unsupported layout %s %s"
                % (name, array.shape, array.dtype.str))
        arrays[name] = array

    m, kg = manifest["n_nodes"], manifest["graph_k"]
    if arrays["node_ids"].shape != (m,) \
            or arrays["neighbors"].shape != (m, kg) \
            or arrays["distances"].shape != (m, kg):
        raise ValidationError(
            "graph arrays do not match the manifest shape "
            "(m=%d, graph_k=%d)" % (m, kg))
    if arrays["entry_points"].size == 0 and m > 0:
        raise ValidationError("graph has no entry points")
    return manifest, arrays
