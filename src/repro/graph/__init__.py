"""Approximate k-NN graph tier: NN-descent build, graph-walk search,
measured-recall calibration.

The first subsystem in the repository whose *results* are approximate.
The exact TI engines stay the source of truth: the builder bootstraps
from them, the calibration measures against them, and the serving
layer routes to them whenever a request carries no ``recall_target``
or the graph is stale.  See docs/GRAPH.md.
"""

from .build import GraphConfig, KNNGraph, build_graph
from .recall import RecallCurve, calibrate, measured_recall, probe_queries
from .search import graph_knn_search
from .storage import is_graph_dir

__all__ = [
    "GraphConfig", "KNNGraph", "build_graph",
    "RecallCurve", "calibrate", "measured_recall", "probe_queries",
    "graph_knn_search", "is_graph_dir",
]
