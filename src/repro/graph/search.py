"""Best-first graph-walk query engines over a :class:`KNNGraph`.

The query engine is the standard beam search of the HNSW/NSG family:
start from the graph's deterministic entry points, repeatedly expand
the closest unexpanded candidate, and keep the best ``ef`` results
seen; the walk stops when the nearest remaining candidate cannot beat
the current ``ef``-th best.  ``ef`` is the recall/cost knob — the
serving layer resolves it from a requested ``recall_target`` through
the graph's measured calibration curve (:mod:`repro.graph.recall`).

Two engines register in the engine registry:

* ``graph-bfs`` — the full best-first walk with a caller-chosen ``ef``
  (default ``max(2k, 32, graph_k)``);
* ``graph-greedy`` — the cheap variant, ``ef = k``: pure greedy
  descent, lowest latency, lowest recall.

Both declare ``EngineCaps(approximate=True)`` — the first engines in
the repository whose results are *not* exact — and require the
``graph`` option (fail-fast in the executor, like ``eps`` for the
range joins).  Results are deterministic: every heap entry breaks ties
on the node position, so a fixed ``(graph, ef)`` answers bit-identically
across runs, worker pools and save/load round-trips.

Tombstones: the walk *traverses* dead nodes (their edges still carry
useful connectivity) but never *returns* them — pass the index's
tombstone mask as ``dead_mask``.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.result import JoinStats, KNNResult
from ..engine.base import EngineCaps, EngineSpec
from ..errors import ValidationError
from .build import KNNGraph

__all__ = ["graph_knn_search", "ENGINES"]


def _check_graph(graph, targets, k):
    if not isinstance(graph, KNNGraph):
        raise ValidationError(
            "the 'graph' option must be a repro.graph.KNNGraph "
            "(got %r)" % type(graph).__name__)
    targets = np.asarray(targets)
    if targets.ndim != 2 or targets.shape[1] != graph.dim:
        raise ValidationError(
            "dimension mismatch: graph built on d=%d, targets d=%s"
            % (graph.dim, targets.shape[1:] or "?"))
    if graph.n_nodes and int(graph.node_ids[-1]) >= targets.shape[0]:
        raise ValidationError(
            "graph references target row %d but only %d rows were passed "
            "— was the graph built from a different target set?"
            % (int(graph.node_ids[-1]), targets.shape[0]))
    if k <= 0:
        raise ValidationError("k must be positive")


def graph_knn_search(graph, queries, targets, k, ef=None, dead_mask=None):
    """Approximate k-NN of every query row via best-first graph walk.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.build.KNNGraph` over ``targets``.
    queries:
        (n, d) query points.
    targets:
        The target matrix the graph was built from (node ids index it).
    k:
        Neighbours per query.
    ef:
        Beam width (>= k); ``None`` uses the graph's default.  Larger
        ``ef`` → higher recall, more distance computations.
    dead_mask:
        Optional (|T|,) bool mask of tombstoned rows: traversed but
        never returned.

    Returns
    -------
    KNNResult
        ``indices`` are **global target rows**; rows are sorted by
        (distance, id) and padded with inf/-1 when fewer than ``k``
        live nodes are reachable.
    """
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim == 1:
        queries = queries[np.newaxis, :]
    k = int(k)
    _check_graph(graph, targets, k)
    if ef is None:
        ef = graph.default_ef(k)
    ef = max(int(ef), k)

    points = np.asarray(targets, dtype=np.float64)
    node_ids = np.asarray(graph.node_ids)
    neighbor_lists = np.asarray(graph.neighbors)
    node_points = points[node_ids]
    if dead_mask is not None:
        node_dead = np.asarray(dead_mask, dtype=bool)[node_ids]
    else:
        node_dead = None
    entries = np.asarray(graph.entry_points, dtype=np.int64)
    m = graph.n_nodes

    n_distances = 0
    n_admitted = 0
    rows = []
    for q in queries:
        visited = np.zeros(m, dtype=bool)
        visited[entries] = True
        diff = node_points[entries] - q
        dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        n_distances += int(entries.size)

        # candidates: min-heap on (dist, pos); results: max-heap via
        # negation, capped at ef.  Ties break on the node position, so
        # the walk order — hence the answer — is deterministic.
        candidates = [(float(d), int(p)) for d, p in zip(dists, entries)]
        heapq.heapify(candidates)
        results = []
        for d, p in sorted(zip(dists, entries)):
            if node_dead is None or not node_dead[p]:
                results.append((-float(d), int(p)))
                n_admitted += 1
        heapq.heapify(results)
        while len(results) > ef:
            heapq.heappop(results)

        while candidates:
            dist, pos = heapq.heappop(candidates)
            if len(results) >= ef and dist > -results[0][0]:
                break
            nbrs = neighbor_lists[pos]
            nbrs = nbrs[nbrs >= 0]
            nbrs = nbrs[~visited[nbrs]]
            if nbrs.size == 0:
                continue
            visited[nbrs] = True
            diff = node_points[nbrs] - q
            dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            n_distances += int(nbrs.size)
            worst = -results[0][0] if len(results) >= ef else np.inf
            for d, p in zip(dists, nbrs):
                d, p = float(d), int(p)
                if d >= worst and len(results) >= ef:
                    continue
                heapq.heappush(candidates, (d, p))
                if node_dead is None or not node_dead[p]:
                    heapq.heappush(results, (-d, p))
                    n_admitted += 1
                    if len(results) > ef:
                        heapq.heappop(results)
                    worst = (-results[0][0] if len(results) >= ef
                             else np.inf)

        found = sorted((-nd, node_ids[p]) for nd, p in results)[:k]
        rows.append((np.array([d for d, _ in found]),
                     np.array([i for _, i in found], dtype=np.int64)))

    distances, indices = KNNResult.pack(rows, k)
    stats = JoinStats(
        n_queries=len(queries), n_targets=points.shape[0], k=k,
        dim=points.shape[1],
        level2_distance_computations=n_distances,
        examined_points=n_distances,
        predicate_accepted_pairs=n_admitted,
        extra={"approximate": True, "ef": int(ef),
               "graph_nodes": m, "graph_k": graph.graph_k})
    return KNNResult(distances=distances, indices=indices, stats=stats,
                     method="graph walk (ef=%d)" % ef)


# ----------------------------------------------------------------------
# Engine registration (see repro.engine)
# ----------------------------------------------------------------------
def _run_bfs(queries, targets, k, ctx, graph=None, ef=None, dead_mask=None):
    return graph_knn_search(graph, queries, targets, k, ef=ef,
                            dead_mask=dead_mask)


def _run_greedy(queries, targets, k, ctx, graph=None, ef=None,
                dead_mask=None):
    # The cheap variant pins the beam to k regardless of the knob.
    return graph_knn_search(graph, queries, targets, k, ef=k,
                            dead_mask=dead_mask)


ENGINES = (
    EngineSpec(
        name="graph-bfs",
        run=_run_bfs,
        caps=EngineCaps(approximate=True, cost_hints=(
            # Per-query walk touches ~ef*k candidates: near-constant in
            # |T|, linear in d per distance, blind to clustering.
            ("ref_s", 0.08), ("log_q", 1.0), ("log_t", 0.15),
            ("log_k", 0.6), ("log_d", 1.0), ("clusterability", 0.0))),
        description="approximate best-first k-NN graph walk (ef knob)",
        required_options=("graph",),
    ),
    EngineSpec(
        name="graph-greedy",
        run=_run_greedy,
        caps=EngineCaps(approximate=True, cost_hints=(
            ("ref_s", 0.05), ("log_q", 1.0), ("log_t", 0.15),
            ("log_k", 0.6), ("log_d", 1.0), ("clusterability", 0.0))),
        description="approximate greedy k-NN graph walk (ef = k)",
        required_options=("graph",),
    ),
)
