"""NN-descent construction of an approximate k-NN graph.

Sweet KNN's exact triangle-inequality filter collapses on
high-intrinsic-dimension data (the arcene regime, Table IV of the
paper): the funnel stops pruning and every query degenerates to a
brute-force scan.  The approximate tier trades a measured amount of
recall for query cost that depends on the *graph degree*, not on
``|T|`` — the standard NN-descent/graph-walk combination of the
GPU k-NN-graph literature (see PAPERS.md).

The builder here is a deterministic, vectorized variant of NN-descent
(Dong et al.): every node keeps its current ``graph_k`` best
neighbours, and each iteration offers every node the classic local
join candidates —

* its **two-hop neighbourhood** (neighbours of neighbours), and
* a bounded sample of its **reverse edges** (nodes that list it),

plus a couple of uniformly random probes to escape local minima.
Candidates are scored in chunks (one fused ``einsum`` distance block
per chunk) and merged into the per-node lists with two ``lexsort``
passes — by (id, dist) to deduplicate, then by (dist, id) to rank — so
the whole iteration is branch-free NumPy and bit-reproducible.

Determinism contract (acceptance-tested): the build RNG derives from
``(seed, index.fingerprint)`` only, every selection step breaks ties
on the node id, and the persisted artifact contains no wall-clock
values — so two builds of the same index state produce byte-identical
graph directories.

The initial graph is **bootstrapped from the exact TI engine** on a
sampled subset of nodes (:func:`repro.core.ti_knn.ti_knn_join` against
the prepared index), seeding NN-descent with exact edges where the
exact engine is affordable; the remaining nodes start from random
edges.  Convergence is declared when an iteration changes at most
``delta * m * graph_k`` list entries; per-iteration update counts are
recorded through :mod:`repro.obs` (``graph.iteration`` events) and on
the returned :class:`KNNGraph`.
"""

from __future__ import annotations

import os

import numpy as np

from .. import obs
from ..errors import ValidationError
from . import storage

__all__ = ["GraphConfig", "KNNGraph", "build_graph"]

#: Elements per chunked candidate-distance block (bounds peak memory of
#: the (rows, candidates, dim) difference tensor to ~16 MB of float64).
_CHUNK_ELEMENTS = 1 << 21


class GraphConfig:
    """Build-time knobs of the approximate k-NN graph.

    Parameters
    ----------
    graph_k:
        Out-degree of every node (clamped to ``m - 1`` on tiny sets).
    sample:
        Nodes bootstrapped with exact TI neighbours (the rest start
        from random edges refined by NN-descent).
    max_iters:
        Upper bound on NN-descent iterations.
    delta:
        Convergence threshold: stop once an iteration updates at most
        ``delta * m * graph_k`` neighbour entries.
    reverse_sample:
        Reverse edges (nodes pointing *at* a node) offered per node
        and iteration; bounds the local-join cost on hub nodes.
    random_per_iter:
        Uniform random candidates per node and iteration.
    max_version_lag:
        Staleness policy: a graph built at index version ``v`` serves
        requests while ``index.version - v <= max_version_lag``;
        beyond that the serving layer routes back to the exact engine
        until the graph is rebuilt.
    """

    def __init__(self, graph_k=16, sample=256, max_iters=12, delta=0.002,
                 reverse_sample=8, random_per_iter=2, max_version_lag=8):
        self.graph_k = int(graph_k)
        self.sample = int(sample)
        self.max_iters = int(max_iters)
        self.delta = float(delta)
        self.reverse_sample = int(reverse_sample)
        self.random_per_iter = int(random_per_iter)
        self.max_version_lag = int(max_version_lag)
        if self.graph_k < 1:
            raise ValidationError("graph_k must be positive")
        if self.sample < 1:
            raise ValidationError("sample must be positive")
        if self.max_iters < 0:
            raise ValidationError("max_iters must be non-negative")
        if not 0.0 <= self.delta < 1.0:
            raise ValidationError("delta must be in [0, 1)")
        if self.reverse_sample < 0 or self.random_per_iter < 0:
            raise ValidationError(
                "reverse_sample and random_per_iter must be non-negative")
        if self.max_version_lag < 0:
            raise ValidationError("max_version_lag must be non-negative")

    def describe(self):
        return {"graph_k": self.graph_k, "sample": self.sample,
                "max_iters": self.max_iters, "delta": self.delta,
                "reverse_sample": self.reverse_sample,
                "random_per_iter": self.random_per_iter,
                "max_version_lag": self.max_version_lag}

    @classmethod
    def from_dict(cls, data):
        data = data or {}
        return cls(**{key: data[key] for key in
                      ("graph_k", "sample", "max_iters", "delta",
                       "reverse_sample", "random_per_iter",
                       "max_version_lag") if key in data})

    def __repr__(self):
        return "GraphConfig(%s)" % ", ".join(
            "%s=%g" % (k, v) for k, v in self.describe().items())


class KNNGraph:
    """An approximate k-NN graph over the live rows of an index.

    Attributes
    ----------
    node_ids:
        (m,) global target row of every node (ascending; the live rows
        at build time).
    neighbors:
        (m, graph_k) neighbour *positions* into ``node_ids``, per row
        sorted by (distance, id); -1 pads rows on degenerate sets.
    distances:
        (m, graph_k) distances aligned with ``neighbors`` (inf pads).
    entry_points:
        Search start positions: the node nearest the centroid plus a
        few farthest-point-sampled extras for coverage.
    seed, fingerprint, built_version:
        Build provenance — the determinism key ``(seed, fingerprint)``
        and the index version the graph was built at (staleness is
        judged against it, see :meth:`is_fresh_for`).
    calibration:
        Optional :class:`~repro.graph.recall.RecallCurve` mapping a
        requested recall target to an ``ef`` search width.
    """

    def __init__(self, node_ids, neighbors, distances, entry_points,
                 seed, fingerprint, built_version, dim,
                 n_targets_at_build, config, iteration_updates=(),
                 bootstrap_rows=0, build_distance_computations=0,
                 calibration=None):
        self.node_ids = node_ids
        self.neighbors = neighbors
        self.distances = distances
        self.entry_points = entry_points
        self.seed = int(seed)
        self.fingerprint = fingerprint
        self.built_version = int(built_version)
        self.dim = int(dim)
        self.n_targets_at_build = int(n_targets_at_build)
        self.config = config
        self.iteration_updates = tuple(int(u) for u in iteration_updates)
        self.bootstrap_rows = int(bootstrap_rows)
        self.build_distance_computations = int(build_distance_computations)
        self.calibration = calibration
        self.source_path = None
        self.mmapped = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_nodes(self):
        return int(self.node_ids.shape[0])

    @property
    def graph_k(self):
        return int(self.neighbors.shape[1])

    @property
    def n_iterations(self):
        return len(self.iteration_updates)

    @property
    def nbytes(self):
        return int(self.node_ids.nbytes + self.neighbors.nbytes
                   + self.distances.nbytes + self.entry_points.nbytes)

    def describe(self):
        """Manifest-style summary (the CLI ``graph inspect`` view)."""
        return {
            "nodes": self.n_nodes, "graph_k": self.graph_k,
            "dim": self.dim, "seed": self.seed,
            "fingerprint": self.fingerprint,
            "built_version": self.built_version,
            "n_targets_at_build": self.n_targets_at_build,
            "entry_points": int(self.entry_points.size),
            "bootstrap_rows": self.bootstrap_rows,
            "iterations": self.n_iterations,
            "iteration_updates": list(self.iteration_updates),
            "build_distance_computations":
                self.build_distance_computations,
            "nbytes": self.nbytes,
            "mmapped": bool(self.mmapped),
            "source_path": self.source_path,
            "config": self.config.describe(),
            "calibration": (self.calibration.describe()
                            if self.calibration is not None else None),
        }

    # ------------------------------------------------------------------
    # Serving contract
    # ------------------------------------------------------------------
    def is_fresh_for(self, index):
        """Whether this graph may serve approximate answers for
        ``index`` under the staleness policy.

        Fresh means the graph belongs to the index lineage (fingerprint
        match) and the index has seen at most
        ``config.max_version_lag`` updates since the build.  A stale
        graph is never an error — the serving layer simply routes the
        request to the exact engine.
        """
        if index is None or self.fingerprint != index.fingerprint:
            return False
        lag = int(index.version) - self.built_version
        return 0 <= lag <= self.config.max_version_lag

    def default_ef(self, k):
        """Uncalibrated fallback search width for ``k`` neighbours."""
        return max(2 * int(k), 32, self.graph_k)

    def ef_for(self, recall_target, k):
        """Search width expected to reach ``recall_target`` at ``k``.

        Uses the stored calibration curve when one exists; otherwise
        the :meth:`default_ef` heuristic.  Always at least ``k`` so the
        walk can return a full result row.
        """
        k = int(k)
        if self.calibration is not None:
            return max(k, self.calibration.ef_for(recall_target, k=k))
        return max(k, self.default_ef(k))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path):
        """Write the graph to directory ``path`` (byte-deterministic)."""
        with obs.span("graph.save", path=os.fspath(path),
                      nodes=self.n_nodes, graph_k=self.graph_k):
            storage.write_graph(self, path)
        self.source_path = os.path.abspath(os.fspath(path))
        return self.source_path

    @classmethod
    def load(cls, path, mmap=True):
        """Load a saved graph, zero-copy by default (like the index)."""
        from .recall import RecallCurve

        with obs.span("graph.load", path=os.fspath(path),
                      mmap=bool(mmap)) as sp:
            manifest, arrays = storage.read_graph(path, mmap=mmap)
            calibration = manifest.get("calibration")
            graph = cls(
                node_ids=arrays["node_ids"],
                neighbors=arrays["neighbors"],
                distances=arrays["distances"],
                entry_points=arrays["entry_points"],
                seed=manifest["seed"],
                fingerprint=manifest["fingerprint"],
                built_version=manifest["built_version"],
                dim=manifest["dim"],
                n_targets_at_build=manifest.get("n_targets_at_build", 0),
                config=GraphConfig.from_dict(manifest.get("config")),
                iteration_updates=manifest.get("iteration_updates", ()),
                bootstrap_rows=manifest.get("bootstrap_rows", 0),
                build_distance_computations=manifest.get(
                    "build_distance_computations", 0),
                calibration=(RecallCurve.from_dict(calibration)
                             if calibration else None))
            graph.source_path = os.path.abspath(os.fspath(path))
            graph.mmapped = bool(mmap)
            sp.annotate(nodes=graph.n_nodes, graph_k=graph.graph_k,
                        fingerprint=graph.fingerprint)
            return graph


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
def _build_rng(seed, fingerprint):
    """The deterministic build stream: a pure function of the key."""
    return np.random.default_rng(np.random.SeedSequence(
        [int(seed) & (2 ** 63 - 1), int(fingerprint[:16], 16)]))


def _chunk_rows(n_candidates, dim):
    return max(8, _CHUNK_ELEMENTS // max(1, n_candidates * dim))


def _merge_candidates(points, neighbors, distances, candidates):
    """Fold candidate positions into the per-node neighbour lists.

    ``candidates`` is (m, c) of node positions (-1 or self = ignored).
    Distances are computed chunk-wise with the direct
    ``sqrt(sum((a-b)^2))`` form (the same formula the exact engines
    use), then current and candidate entries are ranked per row by
    (distance, id) after an (id, dist) deduplication pass — both plain
    ``lexsort``s, so the merge is deterministic and branch-free.

    Returns ``(neighbors, distances, changed_entries, n_distances)``.
    """
    m, kg = neighbors.shape
    rows_per_chunk = _chunk_rows(candidates.shape[1], points.shape[1])
    cand_dists = np.empty(candidates.shape, dtype=np.float64)
    own = np.arange(m, dtype=np.int64)
    safe = np.maximum(candidates, 0)
    n_distances = 0
    for start in range(0, m, rows_per_chunk):
        stop = min(m, start + rows_per_chunk)
        block = candidates[start:stop]
        diff = points[safe[start:stop]] - points[start:stop, None, :]
        np.sqrt(np.einsum("ijk,ijk->ij", diff, diff),
                out=cand_dists[start:stop])
        invalid = (block < 0) | (block == own[start:stop, None])
        cand_dists[start:stop][invalid] = np.inf
        n_distances += int(block.size - invalid.sum())
    candidates = np.where(np.isinf(cand_dists), -1, candidates)

    ids = np.concatenate([neighbors, candidates], axis=1)
    dists = np.concatenate([distances, cand_dists], axis=1)

    # Pass 1 — deduplicate: rank by (id, dist); the first slot of every
    # id run is its best copy, later copies drop to (inf, -1).  Exact
    # by id equality, so two float copies of one pair (e.g. an exact
    # bootstrap distance vs a merge-recomputed one) cannot both survive.
    order = np.lexsort((dists, ids), axis=-1)
    rows = np.arange(m)[:, None]
    ids = ids[rows, order]
    dists = dists[rows, order]
    dup = np.zeros(ids.shape, dtype=bool)
    dup[:, 1:] = (ids[:, 1:] == ids[:, :-1]) & (ids[:, 1:] >= 0)
    ids[dup] = -1
    dists[dup] = np.inf
    # Padding (-1) must rank last: give it +inf before the rank pass.
    dists[ids < 0] = np.inf

    # Pass 2 — rank by (dist, id) and keep the best graph_k per row.
    order = np.lexsort((ids, dists), axis=-1)[:, :kg]
    new_neighbors = ids[rows, order]
    new_distances = dists[rows, order]
    new_neighbors[np.isinf(new_distances)] = -1
    changed = int((new_neighbors != neighbors).sum())
    return new_neighbors, new_distances, changed, n_distances


def _reverse_candidates(neighbors, reverse_sample):
    """A bounded, deterministic sample of each node's reverse edges.

    Edges are grouped by head node with ``lexsort`` (ties on the tail
    id), and the first ``reverse_sample`` tails of every group are
    taken — no RNG involved, so the sample is a pure function of the
    current graph.
    """
    m, kg = neighbors.shape
    if reverse_sample <= 0:
        return np.full((m, 0), -1, dtype=np.int64)
    tails = np.repeat(np.arange(m, dtype=np.int64), kg)
    heads = neighbors.reshape(-1)
    valid = heads >= 0
    tails, heads = tails[valid], heads[valid]
    order = np.lexsort((tails, heads))
    heads, tails = heads[order], tails[order]

    counts = np.bincount(heads, minlength=m)
    starts = np.zeros(m, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    take = np.minimum(counts, reverse_sample)
    edge = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(take, out=edge[1:])
    within = np.arange(edge[-1]) - np.repeat(edge[:-1], take)

    reverse = np.full((m, reverse_sample), -1, dtype=np.int64)
    reverse[np.repeat(np.arange(m), take), within] = \
        tails[np.repeat(starts, take) + within]
    return reverse


def _entry_points(index, node_ids, points):
    """Deterministic search entries: the live TI landmark rows.

    A k-NN graph of well-clustered data is *disconnected* — every
    node's nearest neighbours live in its own cluster, so no walk can
    cross clusters.  Instead of patching connectivity with long-range
    edges, the search starts from one representative per target
    cluster: the index's own landmark rows (Sweet KNN already chose
    them to cover the data).  Every component is then reachable, and
    the per-query entry cost is one vectorized distance block of
    ``mt ~ 3 sqrt(m)`` rows — negligible next to a brute scan of |T|.
    The centroid-nearest node joins as a tie-in for data whose
    landmarks were tombstoned.
    """
    centers = np.asarray(index.target_clusters.center_indices,
                         dtype=np.int64)
    live = centers[np.isin(centers, node_ids)]
    positions = np.searchsorted(node_ids, live)
    diff = points - points.mean(axis=0)
    centroid_near = int(np.argmin(
        np.sqrt(np.einsum("ij,ij->i", diff, diff))))
    return np.unique(np.concatenate(
        [positions, [centroid_near]])).astype(np.int64)


def _bootstrap_exact(index, points, node_ids, sample_positions, kg, rng):
    """Exact TI neighbours for the sampled nodes, as graph positions.

    Runs the Fig.-4 reference engine against the prepared index (the
    tombstone-aware member lists exclude dead rows), then maps the
    global row ids back to node positions.
    """
    from ..core.ti_knn import ti_knn_join

    m = len(node_ids)
    k_exact = min(kg + 1, m)
    sample_points = np.ascontiguousarray(points[sample_positions])
    plan = index.join_plan(sample_points, rng=rng)
    result = ti_knn_join(sample_points, np.asarray(index.targets), k_exact,
                         rng, plan=plan)
    positions = np.searchsorted(node_ids, result.indices)
    # Self edges out, best kg of the rest in (a duplicate-heavy set may
    # keep the self row out of its own top list, hence the explicit
    # mask rather than dropping column 0).
    neighbors = np.full((len(sample_positions), kg), -1, dtype=np.int64)
    distances = np.full((len(sample_positions), kg), np.inf)
    for row, pos in enumerate(sample_positions):
        keep = positions[row] != pos
        ids = positions[row][keep][:kg]
        neighbors[row, :len(ids)] = ids
        distances[row, :len(ids)] = result.distances[row][keep][:kg]
    return neighbors, distances, int(
        result.stats.level2_distance_computations)


def build_graph(index, config=None, seed=None):
    """Build the approximate k-NN graph of an index's live rows.

    Deterministic given ``(seed, index.fingerprint)``: the build RNG,
    the exact-bootstrap sample, the random candidate probes and every
    tie-break derive from that key alone, so two builds of the same
    index state are bit-identical (and persist byte-identically).

    Parameters
    ----------
    index:
        A :class:`repro.index.Index`; the graph covers its live rows.
    config:
        :class:`GraphConfig` knobs (default-constructed when omitted).
    seed:
        Build seed; defaults to the index's own seed.

    Returns
    -------
    KNNGraph
    """
    config = config or GraphConfig()
    if seed is None:
        seed = index.seed if isinstance(index.seed, int) else 0
    node_ids = np.ascontiguousarray(index.active_ids())
    m = int(node_ids.size)
    if m < 2:
        raise ValidationError(
            "graph build needs at least 2 live target points (have %d)" % m)
    points = np.ascontiguousarray(
        np.asarray(index.targets, dtype=np.float64)[node_ids])
    kg = min(config.graph_k, m - 1)
    rng = _build_rng(seed, index.fingerprint)

    with obs.span("graph.build", nodes=m, graph_k=kg,
                  fingerprint=index.fingerprint, seed=int(seed)) as sp:
        neighbors = np.full((m, kg), -1, dtype=np.int64)
        distances = np.full((m, kg), np.inf)
        total_distances = 0

        # Exact TI bootstrap on a deterministic sample of nodes.
        n_sample = min(config.sample, m)
        sample_positions = np.sort(rng.choice(m, size=n_sample,
                                              replace=False))
        exact_nbr, exact_dist, n_exact = _bootstrap_exact(
            index, points, node_ids, sample_positions, kg, rng)
        total_distances += n_exact

        # Random edges everywhere else (the classic NN-descent init);
        # one merge pass scores them and seeds the lists.
        random_init = rng.integers(0, m, size=(m, kg + 8), dtype=np.int64)
        neighbors, distances, _, n_dist = _merge_candidates(
            points, neighbors, distances, random_init)
        total_distances += n_dist
        neighbors[sample_positions] = exact_nbr
        distances[sample_positions] = exact_dist
        obs.event("graph.bootstrap", nodes=m, exact_rows=n_sample,
                  exact_distances=n_exact)

        # Local-join refinement until the update rate drops below delta.
        threshold = max(1, int(config.delta * m * kg))
        updates_log = []
        for iteration in range(config.max_iters):
            own = np.where(neighbors >= 0, neighbors,
                           np.arange(m, dtype=np.int64)[:, None])
            two_hop = own[own.reshape(-1)].reshape(m, kg * kg)
            blocks = [two_hop,
                      _reverse_candidates(neighbors, config.reverse_sample)]
            if config.random_per_iter:
                blocks.append(rng.integers(
                    0, m, size=(m, config.random_per_iter),
                    dtype=np.int64))
            candidates = np.concatenate(blocks, axis=1)
            neighbors, distances, changed, n_dist = _merge_candidates(
                points, neighbors, distances, candidates)
            total_distances += n_dist
            updates_log.append(changed)
            obs.event("graph.iteration", iteration=iteration,
                      updates=changed,
                      update_fraction=round(changed / (m * kg), 6))
            tracer = obs.current_tracer()
            if tracer is not None:
                tracer.registry.counter("graph.updates").inc(changed)
            if changed <= threshold:
                break

        graph = KNNGraph(
            node_ids=node_ids, neighbors=neighbors, distances=distances,
            entry_points=_entry_points(index, node_ids, points),
            seed=seed, fingerprint=index.fingerprint,
            built_version=index.version, dim=points.shape[1],
            n_targets_at_build=index.n_points, config=config,
            iteration_updates=updates_log, bootstrap_rows=n_sample,
            build_distance_computations=total_distances)
        sp.annotate(iterations=len(updates_log),
                    distance_computations=total_distances)
        tracer = obs.current_tracer()
        if tracer is not None:
            tracer.registry.gauge("graph.nodes").set(m)
            tracer.registry.gauge("graph.iterations").set(len(updates_log))
        return graph
