"""Building a :class:`CostModel` artifact from recorded runs.

Two sample sources feed the fit:

* **the benchmark trajectory** (``benchmarks/results/TRAJECTORY.jsonl``)
  — every committed ``query_time_s`` row whose config names a known
  dataset, engine and ``workers=1`` becomes a free calibration sample
  (the cost model predicts *serial* cost; the worker fan-out is modelled
  separately by :func:`repro.parallel.shard.recommend_workers`).
  Dataset shapes and the clusterability proxy are reconstructed
  deterministically from the dataset registry, so replaying the same
  trajectory always yields byte-identical artifacts.
* **probe joins** (``probes=True``) — small timed joins of every
  candidate engine on a kegg-like and an arcene-like shape, for engines
  the trajectory never measured.  Probes are skipped for engines whose
  *prior* already predicts more than :data:`PROBE_BUDGET_S` on the
  probe shape (this keeps calibration from burning minutes inside a
  simulated-GPU engine just to learn that it is slow).

With no trajectory and no probes the artifact degenerates to the
pinned prior table — exactly the fallback policy, now written down.
"""

from __future__ import annotations

import re
import time
from pathlib import Path

from .features import Features, estimate_clusterability
from .model import (CostModel, Sample, fallback_weights, fit_engine_model)

__all__ = ["DEFAULT_ARTIFACT", "PROBE_BUDGET_S", "PROBE_SHAPES",
           "trajectory_samples", "probe_samples", "calibrate",
           "dataset_clusterability", "default_trajectory_path",
           "default_artifact_path"]

#: Where ``python -m repro sched calibrate`` writes by default,
#: relative to the results directory holding the trajectory.
DEFAULT_ARTIFACT = "cost_model.json"

#: Probes predicted (by the engine's own prior) to exceed this budget
#: are skipped — calibration stays interactive-fast.
PROBE_BUDGET_S = 5.0

#: Probe joins: (dataset, rows, k).  One kegg-like clustered shape and
#: one arcene-like high-d shape — the two regimes the bench acceptance
#: criteria exercise.
PROBE_SHAPES = (("kegg", 1024, 20), ("arcene", 100, 10))

_CONFIG_PAIRS = re.compile(r"\[([^\]]*)\]")

_CLUSTERABILITY_CACHE = {}


def _results_dir():
    """``benchmarks/results``: the CLI's cwd-relative convention, with
    a fallback to the tree this package was imported from."""
    local = Path("benchmarks") / "results"
    if local.is_dir():
        return local
    return Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def default_trajectory_path():
    """The committed trajectory, resolved from the repo layout."""
    from ..obs.baseline import TRAJECTORY_NAME

    return _results_dir() / TRAJECTORY_NAME


def default_artifact_path():
    return _results_dir() / DEFAULT_ARTIFACT


def dataset_clusterability(name, sample=512, seed=0):
    """Deterministic clusterability proxy for a registry dataset."""
    key = (name, int(sample), int(seed))
    if key not in _CLUSTERABILITY_CACHE:
        from .. import datasets

        points, _spec = datasets.load(name)
        _CLUSTERABILITY_CACHE[key] = estimate_clusterability(
            points, seed=seed, sample=sample)
    return _CLUSTERABILITY_CACHE[key]


def _parse_config(config):
    """``runs[dataset=kegg,method=ti-cpu,k=20,workers=1]`` -> dict."""
    fields = {}
    for group in _CONFIG_PAIRS.findall(config or ""):
        for pair in group.split(","):
            if "=" in pair:
                key, value = pair.split("=", 1)
                fields[key.strip()] = value.strip()
    return fields


def trajectory_samples(records):
    """Extract :class:`Sample` rows from trajectory records.

    Keeps ``query_time_s`` rows whose config names a registry dataset,
    a registered engine and serial execution; everything else (graph
    sweeps over synthetic shapes, sharded runs, non-timing metrics) is
    skipped.  Returns ``(samples, newest_recorded_ts)``.
    """
    from ..datasets import DATASETS
    from ..engine.registry import engine_names

    known_engines = set(engine_names())
    samples = []
    newest = 0.0
    for record in records:
        if record.get("metric") != "query_time_s":
            continue
        fields = _parse_config(record.get("config", ""))
        dataset = fields.get("dataset")
        method = fields.get("method")
        if dataset not in DATASETS or method not in known_engines:
            continue
        if fields.get("workers", "1") != "1":
            continue
        try:
            k = int(fields.get("k", 0))
            seconds = float(record["value"])
        except (TypeError, ValueError):
            continue
        if k <= 0 or seconds <= 0.0:
            continue
        spec = DATASETS[dataset]
        features = Features(
            n_queries=spec.n, n_targets=spec.n, k=k, dim=spec.dim,
            clusterability=dataset_clusterability(dataset))
        samples.append(Sample(engine=method, features=features,
                              seconds=seconds, source="trajectory"))
        newest = max(newest, float(record.get("recorded", 0.0)))
    return samples, newest


def probe_samples(engines=None, shapes=PROBE_SHAPES,
                  budget_s=PROBE_BUDGET_S, seed=0):
    """Timed probe joins for engines the trajectory never measured."""
    from .. import datasets
    from ..core.api import knn_join
    from ..engine.registry import get_engine
    from .model import EngineModel
    from .scheduler import default_candidates

    if engines is None:
        engines = default_candidates()
    samples = []
    for dataset, rows, k in shapes:
        points, _spec = datasets.load(dataset)
        points = points[:int(rows)]
        features = Features(
            n_queries=points.shape[0], n_targets=points.shape[0],
            k=int(k), dim=points.shape[1],
            clusterability=estimate_clusterability(points, seed=seed))
        for engine in engines:
            prior = EngineModel(engine=engine, weights=tuple(
                fallback_weights(get_engine(engine).caps.cost_hints)))
            if prior.predict_seconds(features) > budget_s:
                continue
            start = time.perf_counter()
            knn_join(points, points, int(k), method=engine, seed=seed)
            seconds = time.perf_counter() - start
            samples.append(Sample(engine=engine, features=features,
                                  seconds=max(seconds, 1e-9),
                                  source="probe"))
    return samples


def calibrate(trajectory_path=None, probes=False, extra_samples=(),
              probe_shapes=PROBE_SHAPES, probe_budget_s=PROBE_BUDGET_S):
    """Build a :class:`CostModel` from every available sample source.

    Deterministic whenever ``probes`` is off: the same trajectory file
    always produces the same artifact bytes (``created`` is the newest
    trajectory timestamp, not the wall clock).
    """
    from ..engine.registry import get_engine
    from ..obs.baseline import load_trajectory

    if trajectory_path is None:
        trajectory_path = default_trajectory_path()
    samples, newest = trajectory_samples(load_trajectory(trajectory_path))
    if probes:
        samples = samples + probe_samples(shapes=probe_shapes,
                                          budget_s=probe_budget_s)
    samples = list(samples) + list(extra_samples)

    by_engine = {}
    for sample in samples:
        by_engine.setdefault(sample.engine, []).append(sample)

    engines = {}
    for name in sorted(by_engine):
        prior = fallback_weights(get_engine(name).caps.cost_hints)
        engines[name] = fit_engine_model(name, by_engine[name], prior)

    counts = {name: len(rows) for name, rows in sorted(by_engine.items())}
    source = {
        "trajectory": str(Path(trajectory_path).name),
        "n_trajectory": sum(1 for s in samples
                            if s.source == "trajectory"),
        "n_probe": sum(1 for s in samples if s.source == "probe"),
        "samples_per_engine": counts,
    }
    return CostModel(engines=engines, source=source,
                     created=round(float(newest), 3))
