"""Per-instance features the cost-model scheduler predicts from.

The Fig. 8 scheme reads only ``k / d`` and ``|Q|`` against fixed
thresholds.  The calibrated scheduler widens that view to the five
quantities that actually separate the engines' costs on the recorded
workloads:

* ``|Q|``, ``|T|``, ``k``, ``d`` — the join shape (log-scaled in the
  model basis, because every engine's cost is a power law in them);
* **clusterability** — a cheap proxy in ``(0, 1]`` for how much the
  triangle-inequality filter can prune: the mean landmark-cluster
  radius relative to the mean centre spread.  Tight, well-separated
  clusters (kegg-like) give values near 1; weakly clustered high-d
  data (arcene-like), where every cluster's radius rivals the
  centre-to-centre distances, sits near 0.5 and the TI engines lose
  their edge.

The proxy comes for free when a Step-1 plan or prepared index exists
(:func:`clusterability_from_plan` — the landmark radii are already
computed); :func:`estimate_clusterability` spends one tiny sampled
clustering when it does not.  Shape-only callers (the planner before
any data is touched) use :data:`DEFAULT_CLUSTERABILITY`.

The canonical model basis is ``[1, ln|Q|, ln|T|, ln k, ln d, c]``
(:meth:`Features.vector`); every weight vector in
:mod:`repro.sched.model` is aligned with :data:`FEATURE_NAMES`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FEATURE_NAMES", "DEFAULT_CLUSTERABILITY", "Features",
           "features_from_shape", "features_from_plan",
           "clusterability_from_plan", "clusterability_from_clusters",
           "estimate_clusterability"]

#: Order of the model basis; weight vectors align with this tuple.
FEATURE_NAMES = ("bias", "log_q", "log_t", "log_k", "log_d",
                 "clusterability")

#: Shape-only callers that cannot afford even a sampled clustering use
#: this neutral proxy (half way between arcene-like and kegg-like).
DEFAULT_CLUSTERABILITY = 0.5


@dataclass(frozen=True)
class Features:
    """One problem instance as the cost model sees it."""

    n_queries: int
    n_targets: int
    k: int
    dim: int
    clusterability: float = DEFAULT_CLUSTERABILITY

    def vector(self):
        """The model basis ``[1, ln|Q|, ln|T|, ln k, ln d, c]``."""
        return np.array([
            1.0,
            np.log(max(1, self.n_queries)),
            np.log(max(1, self.n_targets)),
            np.log(max(1, self.k)),
            np.log(max(1, self.dim)),
            float(self.clusterability),
        ], dtype=np.float64)

    def describe(self):
        """Flat dict for audits / decision records (stable rounding)."""
        return {
            "|Q|": int(self.n_queries), "|T|": int(self.n_targets),
            "k": int(self.k), "d": int(self.dim),
            "clusterability": round(float(self.clusterability), 6),
        }


def features_from_shape(n_queries, n_targets, k, dim,
                        clusterability=None):
    """Features from aggregate shape alone (planner-cheap)."""
    return Features(
        n_queries=int(n_queries), n_targets=int(n_targets), k=int(k),
        dim=int(dim),
        clusterability=(DEFAULT_CLUSTERABILITY if clusterability is None
                        else float(clusterability)))


def clusterability_from_clusters(cluster_set, center_dists=None):
    """The proxy from one clustered point set's landmark radii.

    ``mean radius / mean centre spread`` measures how much of the
    centre-to-centre scale each cluster occupies; the proxy is
    ``1 / (1 + ratio)`` so tight clusters approach 1 and radius-sized
    clusters approach 0.5.  Reads only arrays the Step-1 state already
    holds — no distance work.
    """
    radius = np.asarray(cluster_set.radius, dtype=np.float64)
    centers = np.asarray(cluster_set.centers, dtype=np.float64)
    if center_dists is not None:
        spread = float(np.mean(center_dists))
    elif centers.shape[0] > 1:
        diffs = centers[:, np.newaxis, :] - centers[np.newaxis, :, :]
        spread = float(np.mean(np.sqrt((diffs ** 2).sum(axis=2))))
    else:
        spread = 0.0
    if spread <= 0.0:
        return DEFAULT_CLUSTERABILITY
    ratio = float(np.mean(radius)) / spread
    return float(1.0 / (1.0 + ratio))


def clusterability_from_plan(join_plan):
    """The proxy from a prepared Step-1 plan (landmark radii are free)."""
    return clusterability_from_clusters(join_plan.target_clusters,
                                        join_plan.center_dists)


def estimate_clusterability(points, seed=0, sample=512):
    """Sampled proxy when no plan exists yet (probe joins, benches).

    Clusters ``min(n, sample)`` sampled rows around ``3 * sqrt(s)``
    landmarks — microseconds of work — and reads the radii.  Fully
    deterministic for a given ``seed``.
    """
    from ..core.clustering import cluster_points
    from ..core.landmarks import (determine_landmark_count,
                                  select_landmarks_random_spread)

    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n < 4:
        return DEFAULT_CLUSTERABILITY
    rng = np.random.default_rng(seed)
    if n > sample:
        rows = rng.choice(n, size=int(sample), replace=False)
        points = points[np.sort(rows)]
    m = determine_landmark_count(len(points))
    landmarks = select_landmarks_random_spread(points, m, rng)
    clusters = cluster_points(points, landmarks, sort_descending=False)
    return clusterability_from_clusters(clusters)


def features_from_plan(join_plan, k):
    """Features of a prepared join (exact shape + radii-derived proxy)."""
    return Features(
        n_queries=int(join_plan.query_clusters.n_points),
        n_targets=int(join_plan.target_clusters.n_points),
        k=int(k), dim=int(join_plan.target_clusters.dim),
        clusterability=clusterability_from_plan(join_plan))
