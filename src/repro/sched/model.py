"""The per-engine cost predictor behind the scheduler.

Each engine gets a log-space linear model: ``ln cost_s = w · x`` with
``x`` the canonical basis of :mod:`repro.sched.features`.  Cost is
host wall-clock ``query_time_s`` — the number the serving layer and
the benches optimise — so the simulated-GPU engines are predicted (and
correctly avoided) at their real Python cost, not their simulated
device time.

Fitting is deterministic ridge-toward-prior least squares
(:func:`fit_engine_model`): ``(XᵀX + λI) w = Xᵀy + λ w₀`` where
``w₀`` is the engine's **pinned prior** from its registry cost hints.
With zero samples the solution *is* the prior, with a handful it
corrects the prior's offset, with many shapes it recovers the full
power law — so behaviour is well-defined and reproducible at every
calibration-data size, which is the contract the decision-determinism
tests pin down.

Priors are spelled as :data:`EngineCaps.cost_hints <repro.engine.base
.EngineCaps>` pairs: a human-readable ``ref_s`` ("seconds on the
kegg-like reference join", :data:`REFERENCE_FEATURES`) plus the shape
exponents.  :func:`fallback_weights` converts them into a weight
vector; engines without hints inherit :data:`DEFAULT_HINTS`.

:class:`CostModel` is the versioned artifact: a JSON payload with
canonical key order and rounded weights, so the same calibration
inputs always produce byte-identical files and byte-identical
decisions (the ``version`` field is a content hash).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .features import FEATURE_NAMES, Features

__all__ = ["REFERENCE_FEATURES", "DEFAULT_HINTS", "COST_MODEL_FORMAT",
           "EngineModel", "CostModel", "fallback_weights",
           "fit_engine_model", "Sample"]

#: The kegg-like reference join the ``ref_s`` cost hints are quoted at.
REFERENCE_FEATURES = Features(n_queries=4096, n_targets=4096, k=20,
                              dim=29, clusterability=0.85)

#: Prior exponents for engines that declare no hints of their own: a
#: host engine with mild TI-style pruning, one second on the reference
#: join.  Deliberately pessimistic so unknown engines are only chosen
#: once calibration has actually measured them.
DEFAULT_HINTS = (("ref_s", 1.0), ("log_q", 1.0), ("log_t", 0.5),
                 ("log_k", 0.2), ("log_d", 0.5), ("clusterability", -1.0))

#: Artifact format version (bump on incompatible payload changes).
COST_MODEL_FORMAT = 1

#: Ridge strength toward the prior (in log-space units).
RIDGE_LAMBDA = 1.0


@dataclass(frozen=True)
class Sample:
    """One calibration observation: an engine ran a shape in some time."""

    engine: str
    features: Features
    seconds: float
    source: str = "trajectory"    # "trajectory" | "probe"


def fallback_weights(cost_hints=()):
    """Prior weight vector from an engine's registry cost hints.

    ``cost_hints`` pairs override :data:`DEFAULT_HINTS`; the ``ref_s``
    entry is converted into the bias weight that makes the model
    predict exactly ``ref_s`` seconds at :data:`REFERENCE_FEATURES`.
    """
    hints = dict(DEFAULT_HINTS)
    hints.update(dict(cost_hints))
    ref_s = float(hints.pop("ref_s"))
    unknown = set(hints) - set(FEATURE_NAMES)
    if unknown:
        raise ValueError("unknown cost hint(s) %s; hints are 'ref_s' "
                         "plus exponents over %s"
                         % (sorted(unknown), FEATURE_NAMES[1:]))
    weights = np.array([float(hints.get(name, 0.0))
                        for name in FEATURE_NAMES], dtype=np.float64)
    reference = REFERENCE_FEATURES.vector()
    # Solve for the bias: w · x_ref == ln(ref_s).
    weights[0] = np.log(max(ref_s, 1e-12)) - float(
        weights[1:] @ reference[1:])
    # Weights live at artifact precision everywhere, so an in-memory
    # model and its saved-and-loaded copy predict identical bytes.
    return np.round(weights, 9)


def fit_engine_model(engine, samples, prior_weights,
                     ridge=RIDGE_LAMBDA):
    """Fit one engine's weights from its samples (deterministic).

    Solves ``(XᵀX + λI) w = Xᵀy + λ w₀`` — exact prior at zero
    samples, full least squares in the many-shape limit.
    """
    prior = np.asarray(prior_weights, dtype=np.float64)
    rows = [s.features.vector() for s in samples]
    if not rows:
        return EngineModel(engine=engine, weights=tuple(prior),
                           n_samples=0, rms_residual=None)
    x = np.vstack(rows)
    y = np.log(np.maximum([s.seconds for s in samples], 1e-9))
    lhs = x.T @ x + ridge * np.eye(len(FEATURE_NAMES))
    rhs = x.T @ y + ridge * prior
    weights = np.round(np.linalg.solve(lhs, rhs), 9)
    residual = float(np.sqrt(np.mean((x @ weights - y) ** 2)))
    return EngineModel(engine=engine, weights=tuple(weights),
                       n_samples=len(samples),
                       rms_residual=round(residual, 6))


@dataclass(frozen=True)
class EngineModel:
    """One engine's fitted (or prior) log-space weight vector."""

    engine: str
    weights: tuple
    n_samples: int = 0
    rms_residual: float = None

    def predict_seconds(self, features):
        """Predicted host wall seconds for one instance."""
        value = float(np.asarray(self.weights) @ features.vector())
        # Clamp the exponent so corrupt artifacts cannot overflow.
        return float(np.exp(min(max(value, -46.0), 46.0)))

    def to_dict(self):
        return {
            "engine": self.engine,
            "weights": [round(float(w), 9) for w in self.weights],
            "n_samples": int(self.n_samples),
            "rms_residual": self.rms_residual,
        }

    @classmethod
    def from_dict(cls, payload):
        return cls(engine=str(payload["engine"]),
                   weights=tuple(float(w) for w in payload["weights"]),
                   n_samples=int(payload.get("n_samples", 0)),
                   rms_residual=payload.get("rms_residual"))


@dataclass(frozen=True)
class CostModel:
    """The versioned calibration artifact: engine name -> weights.

    ``version`` is a content hash of the canonical payload, so two
    calibrations from the same inputs share it, and a decision record
    carrying it names exactly the artifact that produced it.
    """

    engines: dict = field(default_factory=dict)
    source: dict = field(default_factory=dict)
    created: float = 0.0

    @property
    def version(self):
        digest = hashlib.sha1(
            json.dumps(self._payload_body(), sort_keys=True).encode())
        return digest.hexdigest()[:12]

    def engine_names(self):
        return tuple(sorted(self.engines))

    def has_engine(self, name):
        return name in self.engines

    def predict(self, engine, features, cost_hints=()):
        """Predicted seconds; falls back to the pinned prior for
        engines the artifact never saw."""
        model = self.engines.get(engine)
        if model is None:
            model = EngineModel(engine=engine,
                                weights=tuple(fallback_weights(cost_hints)))
        return model.predict_seconds(features)

    def _payload_body(self):
        return {
            "format_version": COST_MODEL_FORMAT,
            "feature_names": list(FEATURE_NAMES),
            "reference": REFERENCE_FEATURES.describe(),
            "engines": {name: self.engines[name].to_dict()
                        for name in sorted(self.engines)},
            "source": self.source,
            "created": self.created,
        }

    def to_dict(self):
        payload = self._payload_body()
        payload["version"] = self.version
        return payload

    def save(self, path):
        """Write the canonical JSON artifact (byte-stable)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, sort_keys=True, indent=1)
            handle.write("\n")
        return str(path)

    @classmethod
    def from_dict(cls, payload):
        if int(payload.get("format_version", 0)) != COST_MODEL_FORMAT:
            raise ValueError(
                "cost-model artifact format %r is not supported "
                "(expected %d); recalibrate with `python -m repro "
                "sched calibrate`"
                % (payload.get("format_version"), COST_MODEL_FORMAT))
        names = tuple(payload.get("feature_names", ()))
        if names != tuple(FEATURE_NAMES):
            raise ValueError(
                "cost-model artifact was calibrated over features %s "
                "but this build uses %s; recalibrate" %
                (list(names), list(FEATURE_NAMES)))
        engines = {name: EngineModel.from_dict(entry)
                   for name, entry in payload.get("engines", {}).items()}
        return cls(engines=engines,
                   source=dict(payload.get("source", {})),
                   created=float(payload.get("created", 0.0)))

    @classmethod
    def load(cls, path):
        with Path(path).open("r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
