"""The decision layer: one interface over every execution choice.

Every ad-hoc decision point — the Fig. 8 thresholds in
:mod:`repro.core.adaptive`, the planner's engine pass-through, the
shard planner's worker count, the serving layer's degradation and
recall routing — now consults :func:`decide` (or one of the serving
helpers below), which produces a :class:`Decision` record:

* **no calibration artifact** (the default): the *pinned fallback
  policy*.  The engine stays whatever the caller asked for, filter
  strength follows the paper's ``k/d`` rule
  (:func:`repro.core.adaptive.filter_strength_for`), workers/pool
  resolve exactly as before — byte-for-byte today's behaviour, now
  with the predicted costs of every alternative attached for audit.
* **a calibrated** :class:`~repro.sched.model.CostModel` **active**
  (:func:`set_model` / :func:`use_model` / the ``REPRO_SCHED_MODEL``
  environment variable): ``method="auto"`` picks the cheapest
  predicted engine among the exact fixed-k candidates, and the worker
  count may fan out when the predicted serial cost amortises the pool
  overhead (:func:`repro.parallel.shard.recommend_workers`).

The hard contract: the scheduler only *chooses*; given the same
resolved decision the execution layer computes bit-identical results
and funnel counters.  Decisions themselves are deterministic — the
same inputs and the same artifact yield byte-identical
:meth:`Decision.to_dict` payloads regardless of pool kind, process
boundaries or whether the index was mmap-loaded.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass

from .features import features_from_shape
from .model import CostModel, fallback_weights

__all__ = ["Decision", "decide", "predict_costs", "default_candidates",
           "choose_engine", "degradation_pays", "approx_route_pays",
           "current_model", "set_model", "use_model", "SCHED_MODEL_ENV"]

#: Environment variable naming a calibrated cost-model artifact to
#: activate process-wide (`python -m repro sched calibrate` writes one).
SCHED_MODEL_ENV = "REPRO_SCHED_MODEL"

_MODEL_STACK = []
_ENV_CACHE = {"path": None, "model": None}


def set_model(model):
    """Activate a :class:`CostModel` process-wide (``None`` clears)."""
    del _MODEL_STACK[:]
    if model is not None:
        _MODEL_STACK.append(model)


@contextmanager
def use_model(model):
    """Scoped model activation (tests, benches)."""
    _MODEL_STACK.append(model)
    try:
        yield model
    finally:
        _MODEL_STACK.pop()


def current_model():
    """The active model: explicit stack first, then the environment."""
    if _MODEL_STACK:
        return _MODEL_STACK[-1]
    path = os.environ.get(SCHED_MODEL_ENV, "").strip()
    if not path:
        return None
    if _ENV_CACHE["path"] != path:
        _ENV_CACHE["path"] = path
        _ENV_CACHE["model"] = CostModel.load(path)
    return _ENV_CACHE["model"]


@dataclass(frozen=True)
class Decision:
    """One resolved scheduling decision, with its audit trail.

    ``alternatives`` carries the predicted cost of every *rejected*
    candidate, sorted cheapest first, so an audit can answer "why not
    engine X" without re-running the scheduler.
    """

    engine: str
    filter_strength: str = None       # None: engine has no filter knob
    workers: int = 1
    n_shards: int = 1
    source: str = "fallback"          # "model" | "fallback"
    engine_pinned: bool = True        # caller named the engine
    predicted_s: float = None
    alternatives: tuple = ()          # ((engine, predicted_s), ...)
    features: tuple = ()              # sorted (name, value) pairs
    model_version: str = None
    reason: str = ""

    def to_dict(self):
        """Canonical JSON-ready payload (byte-stable under sort_keys)."""
        return {
            "engine": self.engine,
            "filter_strength": self.filter_strength,
            "workers": int(self.workers),
            "n_shards": int(self.n_shards),
            "source": self.source,
            "engine_pinned": bool(self.engine_pinned),
            "predicted_s": (None if self.predicted_s is None
                            else round(float(self.predicted_s), 9)),
            "alternatives": [[name, round(float(cost), 9)]
                             for name, cost in self.alternatives],
            "features": {name: value for name, value in self.features},
            "model_version": self.model_version,
            "reason": self.reason,
        }

    def describe(self):
        """Flat dict for ``ExecutionPlan.describe`` / CLI tables."""
        info = {
            "decision": self.source,
            "engine": self.engine,
        }
        if self.filter_strength is not None:
            info["filter_strength"] = self.filter_strength
        if self.predicted_s is not None:
            info["predicted_s"] = round(float(self.predicted_s), 6)
        if self.alternatives:
            best = self.alternatives[0]
            info["next_best"] = "%s (%.6gs)" % (best[0], best[1])
        if self.model_version is not None:
            info["cost_model"] = self.model_version
        return info


def default_candidates():
    """Exact fixed-k engines the scheduler may choose among for
    ``method="auto"``: available, no mandatory knobs, not approximate."""
    from ..engine.registry import (engine_names, get_engine,
                                   missing_requirements)

    names = []
    for name in engine_names():
        spec = get_engine(name)
        if spec.caps.result_kind != "knn" or spec.caps.approximate:
            continue
        if spec.required_options:
            continue
        if missing_requirements(spec):
            continue
        names.append(name)
    return tuple(names)


def _prior_predict(spec, features):
    from .model import EngineModel

    model = EngineModel(engine=spec.name,
                        weights=tuple(fallback_weights(
                            spec.caps.cost_hints)))
    return model.predict_seconds(features)


def predict_costs(candidates, features, model=None):
    """Predicted seconds per candidate engine name (sorted cheapest
    first, ties broken by name for determinism)."""
    from ..engine.registry import get_engine

    costs = []
    for name in candidates:
        spec = get_engine(name)
        if model is not None:
            cost = model.predict(name, features,
                                 cost_hints=spec.caps.cost_hints)
        else:
            cost = _prior_predict(spec, features)
        costs.append((name, float(cost)))
    costs.sort(key=lambda pair: (pair[1], pair[0]))
    return tuple(costs)


def _engine_filter_strength(name, k, dim):
    """The filter strength an engine resolves for this shape.

    The host flat/native tier encodes it in the engine name; the
    simulated TI engines run the Fig. 8 rule; the basic KNN-TI port
    and the sequential reference default to the full filter; dense
    engines have no filter knob.
    """
    from ..core.adaptive import filter_strength_for

    if name in ("ti-flat", "ti-native"):
        return "full"
    if name in ("sweet-flat", "sweet-native"):
        return "partial"
    if name == "sweet":
        return filter_strength_for(k, dim)
    if name in ("ti-gpu", "ti-cpu"):
        return "full"
    return None


def decide(n_queries, n_targets, k, dim, method=None, clusterability=None,
           model=None, workers=None, pool=None, candidates=None,
           budget_rows=None):
    """Resolve one scheduling decision.

    Parameters
    ----------
    method:
        A registered engine name to pin, or ``None``/``"auto"`` to let
        the scheduler choose among ``candidates``.
    clusterability:
        The radii-derived proxy when a Step-1 plan or index exists
        (:func:`repro.sched.features.clusterability_from_plan`);
        ``None`` uses the shape-only default.
    model:
        An explicit :class:`CostModel`; ``None`` consults
        :func:`current_model`.  Pass ``False`` to force the pinned
        fallback policy.
    workers, pool:
        The caller's (unresolved) knobs; explicit values and the
        ``REPRO_WORKERS`` environment are always honoured, exactly as
        before.  Only a calibrated model may fan out on its own, and
        only when the caller left both unset.
    budget_rows:
        The device-memory row budget, when known, so the recorded
        shard split matches the shard planner's.
    """
    from ..parallel.shard import (WORKERS_ENV, plan_shards,
                                  recommend_workers, resolve_pool_kind,
                                  resolve_workers)

    if model is None:
        model = current_model()
    elif model is False:
        model = None
    features = features_from_shape(n_queries, n_targets, k, dim,
                                   clusterability=clusterability)
    auto = method in (None, "auto")
    if candidates is None:
        candidates = default_candidates() if auto else (method,)
    costs = predict_costs(candidates, features, model=model)
    if auto:
        engine, predicted = costs[0]
    else:
        engine = method
        predicted = dict(costs).get(method)
    alternatives = tuple((name, cost) for name, cost in costs
                         if name != engine)

    workers_explicit = (workers is not None
                        or bool(os.environ.get(WORKERS_ENV, "").strip()))
    resolved_workers = resolve_workers(workers)
    reason_bits = []
    if model is not None:
        reason_bits.append("model %s" % model.version)
        if auto:
            reason_bits.append(
                "%s predicted %.4gs over %d alternative(s)"
                % (engine, predicted, len(alternatives)))
        else:
            reason_bits.append("engine pinned to %s" % engine)
        if not workers_explicit and predicted is not None:
            from ..engine.registry import get_engine
            if get_engine(engine).caps.supports_prepared_index:
                resolved_workers = recommend_workers(
                    predicted, n_queries=n_queries)
                if resolved_workers > 1:
                    reason_bits.append("fan out x%d" % resolved_workers)
    else:
        reason_bits.append("pinned fallback (no calibration artifact)")
        if auto:
            reason_bits.append("%s cheapest by prior table" % engine)

    rows = int(budget_rows) if budget_rows else int(n_queries)
    shard_plan = plan_shards(n_queries, rows, resolved_workers,
                             kind=resolve_pool_kind(pool))
    filter_strength = _engine_filter_strength(engine, k, dim)
    if filter_strength is not None:
        reason_bits.append("filter=%s" % filter_strength)

    return Decision(
        engine=engine,
        filter_strength=filter_strength,
        workers=shard_plan.workers,
        n_shards=shard_plan.n_shards,
        source="model" if model is not None else "fallback",
        engine_pinned=not auto,
        predicted_s=predicted,
        alternatives=alternatives,
        features=tuple(sorted(features.describe().items())),
        model_version=model.version if model is not None else None,
        reason="; ".join(reason_bits))


def choose_engine(n_queries, n_targets, k, dim, clusterability=None,
                  model=None, candidates=None):
    """The engine ``method="auto"`` resolves to (cheapest predicted)."""
    return decide(n_queries, n_targets, k, dim, method="auto",
                  clusterability=clusterability, model=model,
                  candidates=candidates).engine


def degradation_pays(primary, degraded, n_queries, n_targets, k, dim,
                     clusterability=None, model=None):
    """Should an overloaded batch fall back to the degraded engine?

    The fixed heuristic (no model) always degrades under pressure —
    exactly the previous behaviour.  With a calibrated model the swap
    happens only when the degraded engine is actually predicted
    cheaper for this shape; degrading a tiny join onto a slower dense
    engine raises, not lowers, the batch cost.
    """
    if model is None:
        model = current_model()
    elif model is False:
        model = None
    if model is None:
        return True
    features = features_from_shape(n_queries, n_targets, k, dim,
                                   clusterability=clusterability)
    costs = dict(predict_costs((primary, degraded), features,
                               model=model))
    return costs[degraded] < costs[primary]


def approx_route_pays(exact_engine, graph_engine, n_queries, n_targets,
                      k, dim, clusterability=None, model=None):
    """Should a ``recall_target`` request take the graph route?

    The fixed heuristic (no model) routes whenever a fresh graph
    exists — the previous behaviour.  With a calibrated model the
    request stays on the exact route when exact is predicted no more
    expensive: recall 1.0 at equal-or-lower predicted cost is strictly
    better than the approximate answer the caller opted into.
    """
    if model is None:
        model = current_model()
    elif model is False:
        model = None
    if model is None:
        return True
    features = features_from_shape(n_queries, n_targets, k, dim,
                                   clusterability=clusterability)
    costs = dict(predict_costs((exact_engine, graph_engine), features,
                               model=model))
    return costs[graph_engine] < costs[exact_engine]
