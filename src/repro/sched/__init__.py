"""``repro.sched`` — the calibrated cost-model scheduler.

One decision layer over every execution choice the repo used to make
with hand-built thresholds: engine selection (``method="auto"``),
Fig. 8 filter strength, worker fan-out, serve degradation and
``recall_target`` routing.

Three layers (see ``docs/SCHEDULER.md``):

* :mod:`repro.sched.features` / :mod:`repro.sched.model` — per-instance
  features (|Q|, |T|, k, d, clusterability proxy) and the deterministic
  per-engine log-space cost predictor;
* :mod:`repro.sched.calibrate` — replays the benchmark trajectory (plus
  optional probe joins) into a versioned JSON
  :class:`~repro.sched.model.CostModel` artifact;
* :mod:`repro.sched.scheduler` — :func:`decide` produces auditable
  :class:`~repro.sched.scheduler.Decision` records; without a
  calibration artifact it reproduces today's pinned behaviour exactly.
"""

from .features import (DEFAULT_CLUSTERABILITY, FEATURE_NAMES, Features,
                       clusterability_from_clusters,
                       clusterability_from_plan, estimate_clusterability,
                       features_from_plan, features_from_shape)
from .model import (COST_MODEL_FORMAT, DEFAULT_HINTS, REFERENCE_FEATURES,
                    CostModel, EngineModel, Sample, fallback_weights,
                    fit_engine_model)
from .calibrate import (DEFAULT_ARTIFACT, calibrate,
                        dataset_clusterability, default_artifact_path,
                        default_trajectory_path, probe_samples,
                        trajectory_samples)
from .scheduler import (SCHED_MODEL_ENV, Decision, approx_route_pays,
                        choose_engine, current_model, decide,
                        default_candidates, degradation_pays,
                        predict_costs, set_model, use_model)

__all__ = [
    "FEATURE_NAMES", "DEFAULT_CLUSTERABILITY", "Features",
    "features_from_shape", "features_from_plan",
    "clusterability_from_plan", "clusterability_from_clusters",
    "estimate_clusterability",
    "REFERENCE_FEATURES", "DEFAULT_HINTS", "COST_MODEL_FORMAT",
    "CostModel", "EngineModel", "Sample", "fallback_weights",
    "fit_engine_model",
    "DEFAULT_ARTIFACT", "calibrate", "trajectory_samples",
    "probe_samples", "default_trajectory_path", "default_artifact_path",
    "dataset_clusterability",
    "Decision", "decide", "choose_engine", "predict_costs",
    "default_candidates", "degradation_pays", "approx_route_pays",
    "current_model", "set_model", "use_model", "SCHED_MODEL_ENV",
]
