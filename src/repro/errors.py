"""Exception hierarchy for the Sweet KNN reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class OutOfDeviceMemory(ReproError):
    """Raised when a simulated device allocation exceeds global memory.

    The CUBLAS-style baseline catches this to trigger query-set
    partitioning, mirroring the behaviour described in Section V-A of
    the paper.
    """

    def __init__(self, requested, available, capacity):
        self.requested = int(requested)
        self.available = int(available)
        self.capacity = int(capacity)
        super().__init__(
            "device allocation of %d bytes exceeds the %d bytes available "
            "(capacity %d)" % (self.requested, self.available, self.capacity)
        )


class LaunchConfigError(ReproError):
    """Raised for an invalid simulated kernel launch configuration."""


class DatasetError(ReproError):
    """Raised when a dataset name or specification is invalid."""


class ValidationError(ReproError):
    """Raised when user-facing API inputs fail validation."""


class EngineUnavailableError(ValidationError):
    """Raised when a selected engine's optional dependency is missing.

    Engines declare optional runtime requirements via
    ``EngineCaps.requires`` (e.g. the ``*-native`` kernel tier requires
    ``numba``); the dispatcher checks them before running so the
    failure is a one-line remedy instead of an ImportError traceback.
    The CLI maps this error to exit code 2.
    """

    def __init__(self, engine, missing, hint=None):
        self.engine = str(engine)
        self.missing = tuple(missing)
        self.hint = hint
        message = "method '%s' requires %s, which is not installed" % (
            self.engine, ", ".join(self.missing))
        if hint:
            message += " — %s" % hint
        super().__init__(message)


class ServeError(ReproError):
    """Base class for errors raised by the :mod:`repro.serve` layer."""


class Overloaded(ServeError):
    """Raised when admission control rejects a request.

    The serving queue is bounded (:class:`repro.serve.ServeConfig.
    max_queue_depth`); once it is full, new requests are rejected
    immediately instead of growing an unbounded backlog.  Callers are
    expected to back off and retry.
    """

    def __init__(self, depth, limit):
        self.depth = int(depth)
        self.limit = int(limit)
        super().__init__(
            "server overloaded: queue depth %d at its limit %d"
            % (self.depth, self.limit))


class DeadlineExceeded(ServeError):
    """Raised when a request's deadline expired before execution.

    The micro-batch scheduler drops expired requests at flush time so
    no device work is spent on answers nobody is waiting for.
    """

    def __init__(self, waited_s, deadline_s):
        self.waited_s = float(waited_s)
        self.deadline_s = float(deadline_s)
        super().__init__(
            "request deadline of %.3f s exceeded after waiting %.3f s"
            % (self.deadline_s, self.waited_s))
