"""Exception hierarchy for the Sweet KNN reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class OutOfDeviceMemory(ReproError):
    """Raised when a simulated device allocation exceeds global memory.

    The CUBLAS-style baseline catches this to trigger query-set
    partitioning, mirroring the behaviour described in Section V-A of
    the paper.
    """

    def __init__(self, requested, available, capacity):
        self.requested = int(requested)
        self.available = int(available)
        self.capacity = int(capacity)
        super().__init__(
            "device allocation of %d bytes exceeds the %d bytes available "
            "(capacity %d)" % (self.requested, self.available, self.capacity)
        )


class LaunchConfigError(ReproError):
    """Raised for an invalid simulated kernel launch configuration."""


class DatasetError(ReproError):
    """Raised when a dataset name or specification is invalid."""


class ValidationError(ReproError):
    """Raised when user-facing API inputs fail validation."""
