"""Stand-ins for the paper's nine UCI datasets (Table III).

Each :class:`DatasetSpec` pairs a paper dataset with a synthetic
generator matched to its clusterability regime, a scaled-down
cardinality, and the matching device-memory scale.

Scaling rule: cardinalities shrink by a per-dataset factor (the
simulator executes every level-2 step in Python); the simulated
device's global memory shrinks by the *square* of that factor so the
baseline's distance matrix overflows memory on exactly the datasets
the paper reports as partitioned (3DNet, skin, ipums, kdd).
Dimensions are kept verbatim except *dorothea* (100 000 → 2 000, noted
in DESIGN.md) because a 100 k-dim float matrix is host-side waste with
no algorithmic effect beyond the per-distance cost, which 2 000
already dominates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from . import synthetic

__all__ = ["DatasetSpec", "DATASETS", "load", "names"]

_K20C_MEMORY = 5 * 1024 ** 3


@dataclass(frozen=True)
class DatasetSpec:
    """One Table-III dataset stand-in."""

    name: str
    full_name: str
    paper_n: int
    paper_dim: int
    n: int
    dim: int
    generator: object
    seed: int

    @property
    def scale(self):
        """Cardinality scale-down factor versus the paper."""
        return self.paper_n / self.n

    @property
    def device_memory_bytes(self):
        """Simulated global memory preserving the partitioning regime.

        Memory scales with the square of the cardinality scale because
        the baseline's dominant allocation is the |Q| x |T| distance
        matrix.  A floor keeps the fixed working set (point matrices)
        placeable.
        """
        scaled = _K20C_MEMORY / (self.scale ** 2)
        floor = 4 * (2 * self.n * self.dim * 4)
        return int(max(scaled, floor))

    def device(self):
        """The simulated K20c scaled to this stand-in.

        Global memory shrinks by the squared cardinality scale (the
        baseline's distance matrix) and the scheduler's concurrency by
        the plain scale, so both the partitioning regime and the
        parallelism-to-problem-size ratio match the paper's setup.
        """
        from ..gpu.device import tesla_k20c
        device = tesla_k20c(self.device_memory_bytes)
        device = device.with_concurrency_scale(1.0 / self.scale)
        return device.with_l2(device.l2_bytes / self.scale)

    def generate(self, rng=None):
        """Materialise the stand-in point set (deterministic by seed)."""
        rng = rng or np.random.default_rng(self.seed)
        points = self.generator(rng)
        if points.shape != (self.n, self.dim):
            raise DatasetError(
                "generator for %r produced %s, expected %s"
                % (self.name, points.shape, (self.n, self.dim)))
        return points


def _spec(name, full_name, paper_n, paper_dim, n, dim, seed, generator):
    return DatasetSpec(name=name, full_name=full_name, paper_n=paper_n,
                       paper_dim=paper_dim, n=n, dim=dim, seed=seed,
                       generator=generator)


DATASETS = {
    "3dnet": _spec(
        "3dnet", "3D spatial network", 434874, 4, 10872, 4, 101,
        lambda rng: synthetic.road_network_3d(10872, rng, dim=4, n_roads=64)),
    "kegg": _spec(
        "kegg", "KEGG Metabolic Reaction Network (Undirected)",
        65554, 29, 4096, 29, 102,
        lambda rng: synthetic.gaussian_mixture(
            4096, 29, rng, n_clusters=40, separation=12.0,
            intrinsic_dim=6)),
    "keggd": _spec(
        "keggd", "KEGG Metabolic Reaction Network (Directed)",
        53414, 24, 3338, 24, 103,
        lambda rng: synthetic.gaussian_mixture(
            3338, 24, rng, n_clusters=36, separation=12.0,
            intrinsic_dim=5)),
    "ipums": _spec(
        "ipums", "IPUMS Census Database", 256932, 61, 6021, 61, 104,
        lambda rng: synthetic.gaussian_mixture(
            6021, 61, rng, n_clusters=64, separation=9.0,
            intrinsic_dim=8)),
    "skin": _spec(
        "skin", "Skin Segmentation", 245057, 4, 7658, 4, 105,
        lambda rng: synthetic.color_clusters(7658, rng, dim=4)),
    "arcene": _spec(
        "arcene", "Arcene", 100, 10000, 100, 10000, 106,
        lambda rng: synthetic.high_dim_weakly_clustered(
            100, 10000, rng, intrinsic_dim=64)),
    "kdd": _spec(
        "kdd", "KDD Cup 1999 Data", 4000000, 42, 7812, 42, 107,
        lambda rng: synthetic.repeated_records(7812, 42, rng)),
    "dor": _spec(
        "dor", "Dorothea Data", 1950, 100000, 1950, 2000, 108,
        lambda rng: synthetic.sparse_high_dim(1950, 2000, rng)),
    "blog": _spec(
        "blog", "Blog Feedback", 60021, 281, 3751, 281, 109,
        lambda rng: synthetic.skewed_features(3751, 281, rng)),
}


def names():
    """The nine stand-in names in the paper's Table-III order."""
    return ["3dnet", "kegg", "keggd", "ipums", "skin", "arcene", "kdd",
            "dor", "blog"]


def load(name, rng=None):
    """Load a stand-in by name; returns ``(points, spec)``."""
    try:
        spec = DATASETS[name.lower()]
    except KeyError:
        raise DatasetError(
            "unknown dataset %r; available: %s" % (name, ", ".join(names())))
    return spec.generate(rng), spec
