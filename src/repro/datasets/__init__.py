"""Dataset stand-ins and synthetic generators (Table III of the paper)."""

from .uci import DATASETS, DatasetSpec, load, names
from . import synthetic

__all__ = ["DATASETS", "DatasetSpec", "load", "names", "synthetic"]
