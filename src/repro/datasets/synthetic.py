"""Synthetic point-set generators.

These generators produce the *stand-ins* for the paper's nine UCI
datasets (Table III).  What matters for reproducing the paper is not
the actual UCI values but the properties TI filtering responds to:

* **clusterability** — how much of the pairwise-distance mass the
  landmark bounds can prune (intrinsic dimensionality, cluster
  separation);
* **dimensionality** — the cost of one exact distance and the k/d
  adaptive threshold;
* **cardinality** — parallelism and memory pressure.

Every generator shuffles its output: real datasets are not stored in
cluster order, and an unshuffled set would hand the basic GPU
implementation warp-uniform work for free, hiding exactly the
divergence Sweet KNN's thread-data remapping repairs.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gaussian_mixture", "road_network_3d", "color_clusters",
    "high_dim_weakly_clustered", "sparse_high_dim", "repeated_records",
    "skewed_features",
]


def _shuffled(points, rng):
    points = np.ascontiguousarray(points, dtype=np.float64)
    rng.shuffle(points)
    return points


def gaussian_mixture(n, dim, rng, n_clusters=32, separation=10.0,
                     cluster_std=1.0, intrinsic_dim=None):
    """Clustered tabular data (the kegg/keggD/ipums/blog regime).

    ``intrinsic_dim`` embeds the clusters in a lower-dimensional
    subspace plus small ambient noise — real tabular UCI sets have low
    intrinsic dimension, which is why TI filtering prunes >99 % of
    their distance computations.
    """
    n = int(n)
    dim = int(dim)
    latent = int(intrinsic_dim) if intrinsic_dim else dim
    latent = min(latent, dim)

    centers = rng.normal(scale=separation, size=(n_clusters, latent))
    sizes = rng.multinomial(n, np.ones(n_clusters) / n_clusters)
    chunks = []
    for center, size in zip(centers, sizes):
        if size == 0:
            continue
        chunks.append(center + rng.normal(scale=cluster_std,
                                          size=(size, latent)))
    latent_points = np.concatenate(chunks)

    if latent == dim:
        points = latent_points
    else:
        basis = rng.normal(size=(latent, dim)) / np.sqrt(latent)
        points = latent_points @ basis
        points += rng.normal(scale=0.01 * cluster_std, size=(n, dim))
    return _shuffled(points, rng)


def road_network_3d(n, rng, n_roads=40, dim=4):
    """Points along 3-D road polylines (the *3DNet* regime).

    The UCI 3D spatial network dataset holds road-segment coordinates
    with altitude: locally one-dimensional structure in low ambient
    dimension — extremely clusterable.
    """
    n = int(n)
    per_road = np.maximum(1, rng.multinomial(n, np.ones(n_roads) / n_roads))
    chunks = []
    for count in per_road:
        start = rng.uniform(-220, 220, size=3)
        heading = rng.normal(size=3)
        heading /= np.linalg.norm(heading)
        # A road: a smooth random walk.
        steps = rng.normal(scale=0.4, size=(count, 3)) + heading
        path = start + np.cumsum(steps, axis=0)
        jitter = rng.normal(scale=0.05, size=(count, 3))
        road_points = path + jitter
        extra = np.full((count, dim - 3),
                        rng.uniform(0, 1)) + rng.normal(
                            scale=0.02, size=(count, dim - 3))
        chunks.append(np.hstack([road_points, extra]))
    points = np.concatenate(chunks)[:n]
    return _shuffled(points, rng)


def color_clusters(n, rng, dim=4, n_clusters=60):
    """Dense colour-space blobs (the *skin* segmentation regime).

    RGB-like values in a bounded cube, concentrated in a few dense
    regions (skin tones / background tones).
    """
    n = int(n)
    centers = rng.uniform(30, 225, size=(n_clusters, dim))
    weights = rng.dirichlet(np.ones(n_clusters) * 3.0)
    sizes = rng.multinomial(n, weights)
    chunks = []
    for center, size in zip(centers, sizes):
        if size == 0:
            continue
        std = rng.uniform(0.8, 2.5)
        chunks.append(center + rng.normal(scale=std, size=(size, dim)))
    points = np.clip(np.concatenate(chunks), 0, 255)
    return _shuffled(points, rng)


def high_dim_weakly_clustered(n, dim, rng, intrinsic_dim=64):
    """High-dimensional, weakly clusterable data (the *arcene* regime).

    Mass-spectrometry features: thousands of dimensions with a fairly
    high intrinsic dimension, so triangle-inequality bounds are loose
    and filtering saves little (the paper measures 26.9 % on arcene
    versus >99 % on the tabular sets).
    """
    n = int(n)
    dim = int(dim)
    latent = rng.normal(size=(n, intrinsic_dim))
    basis = rng.normal(size=(intrinsic_dim, dim)) / np.sqrt(intrinsic_dim)
    points = latent @ basis + rng.normal(scale=0.6, size=(n, dim))
    return _shuffled(points, rng)


def sparse_high_dim(n, dim, rng, n_groups=12, intrinsic_dim=24):
    """Sparse-ish, moderately clusterable high-dim data (*dor* regime).

    Dorothea is binary drug-screening data: very high dimension with
    group structure but enough within-group variation that TI filtering
    saves a large-but-not-overwhelming share (91.5 % in the paper).
    Modelled as well-separated groups with a moderate intrinsic
    dimension so the k-NN radius sits well inside the group radius.
    """
    n = int(n)
    dim = int(dim)
    centers = rng.normal(scale=10.0, size=(n_groups, intrinsic_dim))
    sizes = rng.multinomial(n, np.ones(n_groups) / n_groups)
    chunks = []
    for center, size in zip(centers, sizes):
        if size == 0:
            continue
        chunks.append(center + rng.normal(size=(size, intrinsic_dim)))
    latent = np.concatenate(chunks)
    basis = rng.normal(size=(intrinsic_dim, dim)) / np.sqrt(intrinsic_dim)
    points = latent @ basis
    points += rng.normal(scale=0.1, size=(n, dim))
    return _shuffled(points, rng)


def repeated_records(n, dim, rng, n_patterns=200, noise=0.02):
    """Heavily repeated traffic records (the *kdd* cup regime).

    Network-connection records repeat the same few patterns millions
    of times; nearly all distance computations collapse under TI.
    """
    n = int(n)
    patterns = rng.normal(scale=5.0, size=(n_patterns, dim))
    weights = rng.dirichlet(np.ones(n_patterns) * 8.0)
    assignment = rng.choice(n_patterns, size=n, p=weights)
    points = patterns[assignment] + rng.normal(scale=noise, size=(n, dim))
    return _shuffled(points, rng)


def skewed_features(n, dim, rng, n_clusters=36, intrinsic_dim=6,
                    skew_tau=6.0):
    """Skewed count-like features (the *blog* feedback regime).

    A low-intrinsic-dimension Gaussian mixture warped through an
    exponential, giving the heavy-tailed positive features of blog
    statistics while preserving the cluster structure TI exploits.
    """
    mixture = gaussian_mixture(n, dim, rng, n_clusters=n_clusters,
                               separation=12.0, intrinsic_dim=intrinsic_dim)
    points = np.exp(mixture / skew_tau)
    return _shuffled(points, rng)
