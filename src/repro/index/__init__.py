"""``repro.index`` — the single owner of prepared target state.

Sweet KNN splits a join into a query-independent preparation phase
(landmark selection, clustering, the descending member sort — Fig. 4
steps 1-2) and a query phase that filters against that state.  Before
this package, four layers each kept their own copy of "prepared":
the core ``JoinPlan``, the engine ``PreparedIndex``, the serving
index cache and the pool workers' plan cache.  They now all share one
object and one identity:

* :class:`Index` — build / :meth:`~Index.save` /
  :meth:`~Index.load` (mmap, zero-copy across processes) /
  :meth:`~Index.add` / :meth:`~Index.remove` /
  :meth:`~Index.join_plan`, with an explicit ``version`` and a cached
  content ``fingerprint``; ``(fingerprint, version)`` is the cache key
  everywhere.
* :class:`UpdatePolicy` — when incremental updates escalate to a full
  deterministic rebuild.
* :mod:`~repro.index.storage` — the on-disk format (manifest +
  ``.npy`` arrays, CSR-flattened member lists).
* :mod:`~repro.index.cache` — per-process shared-plan and
  loaded-index caches plus :class:`~repro.index.cache.PlanHandle`,
  the by-path plan reference that keeps process-pool payloads
  O(queries).
* :func:`fingerprint_points` — identity-memoized content hashes, so
  steady-state lookups are O(1), not O(n·d).

See ``docs/INDEX.md`` for the lifecycle walk-through and the CLI
(``python -m repro index build/inspect/update``).
"""

from __future__ import annotations

from .cache import (PlanHandle, clear_index_cache, clear_plan_cache,
                    index_cache_info, load_cached, plan_cache_info,
                    shared_plan)
from .fingerprint import (cached_fingerprints, clear_memo,
                          fingerprint_points, register_fingerprint)
from .index import Index, UpdatePolicy
from .storage import (FORMAT_VERSION, MANIFEST_NAME, is_index_dir,
                      read_index, read_manifest, write_index)

__all__ = [
    "Index", "UpdatePolicy",
    "PlanHandle", "shared_plan", "load_cached",
    "plan_cache_info", "clear_plan_cache",
    "index_cache_info", "clear_index_cache",
    "fingerprint_points", "register_fingerprint",
    "cached_fingerprints", "clear_memo",
    "FORMAT_VERSION", "MANIFEST_NAME", "is_index_dir",
    "read_index", "read_manifest", "write_index",
]
