"""The prepared target index — single owner of "cluster once" state.

Sweet KNN's premise (Sec. III-A) is that the expensive,
query-independent target-side state — landmark selection, clustering,
the descending member sort — is built **once** and queried many times.
:class:`Index` is that state as a first-class object with an explicit
lifecycle:

* **build** — cluster a target set (exactly the preparation the old
  ``repro.engine.prepared.PreparedIndex`` ran), stamping a content
  ``fingerprint`` (cached, never recomputed) and ``version`` 1;
* **persist** — :meth:`save` writes a manifest + raw ``.npy`` arrays,
  :meth:`load` maps them back read-only (``mmap``), so serving
  processes and pool workers share the pages zero-copy;
* **update** — :meth:`add` / :meth:`remove` reassign only the affected
  clusters, refresh radii and bump ``version``; an
  :class:`UpdatePolicy` triggers a full deterministic rebuild when
  tombstones or cluster growth degrade the filter;
* **query** — :meth:`join_plan` clusters a query batch against the
  prepared target side, yielding the
  :class:`~repro.core.ti_knn.JoinPlan` every TI engine executes.

Identity for caches is the ``(fingerprint, version)`` pair
(:attr:`key`): the serving :class:`~repro.serve.IndexStore` and the
per-worker plan cache both invalidate on it.
"""

from __future__ import annotations

import logging
import os

import numpy as np

from .. import obs
from ..core.bounds import pairwise_distances
from ..core.clustering import ClusteredSet, center_distances, cluster_points
from ..core.landmarks import (determine_landmark_count,
                              select_landmarks_random_spread)
from ..core.validate import as_points, check_points
from ..errors import ValidationError
from ..graph import storage as graph_storage
from . import storage
from .fingerprint import fingerprint_points, register_fingerprint

__all__ = ["Index", "UpdatePolicy"]

logger = logging.getLogger("repro.index")


def _largest_cluster(clusters):
    return max((len(m) for m in clusters.members), default=0)


class UpdatePolicy:
    """When incremental updates should escalate to a full rebuild.

    Incremental :meth:`Index.add` / :meth:`Index.remove` keep answers
    exact but slowly degrade the *filter*: tombstoned rows leave holes,
    and clusters that grow far beyond their build-time size weaken the
    triangle-inequality bounds.  The policy bounds that drift.

    Parameters
    ----------
    max_tombstone_fraction:
        Rebuild when removed rows (since the last rebuild) exceed this
        fraction of the live set.
    max_cluster_growth:
        Rebuild when any cluster holds more than this multiple of the
        build-time mean cluster size.
    """

    def __init__(self, max_tombstone_fraction=0.25, max_cluster_growth=4.0):
        self.max_tombstone_fraction = float(max_tombstone_fraction)
        self.max_cluster_growth = float(max_cluster_growth)
        if not 0.0 < self.max_tombstone_fraction <= 1.0:
            raise ValidationError(
                "max_tombstone_fraction must be in (0, 1]")
        if self.max_cluster_growth <= 1.0:
            raise ValidationError("max_cluster_growth must exceed 1")

    def describe(self):
        return {"max_tombstone_fraction": self.max_tombstone_fraction,
                "max_cluster_growth": self.max_cluster_growth}

    @classmethod
    def from_dict(cls, data):
        data = data or {}
        return cls(
            max_tombstone_fraction=data.get("max_tombstone_fraction", 0.25),
            max_cluster_growth=data.get("max_cluster_growth", 4.0))

    def __repr__(self):
        return ("UpdatePolicy(max_tombstone_fraction=%g, "
                "max_cluster_growth=%g)"
                % (self.max_tombstone_fraction, self.max_cluster_growth))


class Index:
    """Landmarks + clustered, sorted target set, built exactly once.

    Parameters
    ----------
    targets:
        (n, d) target point set.
    seed:
        Landmark-selection seed (ignored when ``rng`` is given).
    rng:
        Optional ``numpy.random.Generator`` shared with the caller, so
        an index owner like :class:`~repro.core.api.SweetKNN` keeps one
        deterministic stream across preparation and queries.
    mt:
        Optional target landmark-count override (defaults to
        ``detLmNum``'s ``3 * sqrt(|T|)``).
    memory_budget_bytes:
        Caps the landmark counts like the device memory budget does.
    policy:
        :class:`UpdatePolicy` governing incremental-update rebuilds.
    """

    def __init__(self, targets, seed=0, rng=None, mt=None,
                 memory_budget_bytes=None, policy=None):
        targets = check_points(targets, name="targets")
        self.seed = seed
        self.mt_requested = mt
        self.memory_budget_bytes = memory_budget_bytes
        self.policy = policy or UpdatePolicy()
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        with obs.span("index.build", n=int(targets.shape[0]),
                      dim=int(targets.shape[1])) as sp:
            self.targets = targets
            self.fingerprint = fingerprint_points(targets)
            if mt is None:
                mt = determine_landmark_count(len(targets),
                                              memory_budget_bytes)
            landmarks = select_landmarks_random_spread(targets, mt,
                                                       self._rng)
            self.target_clusters = cluster_points(targets, landmarks,
                                                  sort_descending=True)
            sp.annotate(mt=self.target_clusters.n_clusters,
                        fingerprint=self.fingerprint)
        #: Times the target side has been clustered from scratch; stays
        #: 1 until an update-policy rebuild (regression-tested).
        self.build_count = 1
        #: Monotonic state counter; every mutation bumps it, and every
        #: prepared-state cache keys on ``(fingerprint, version)``.
        self.version = 1
        self.source_path = None
        self.mmapped = False
        #: Optional approximate k-NN graph artifact (see repro.graph);
        #: built via :meth:`build_graph`, persisted with :meth:`save`,
        #: staleness-checked at use time against ``version``.
        self.graph = None
        self._tombstones = np.zeros(len(targets), dtype=bool)
        self._dead_since_rebuild = 0
        self._max_size_at_build = _largest_cluster(self.target_clusters)
        self._publish_gauges()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def mt(self):
        return self.target_clusters.n_clusters

    @property
    def dim(self):
        return self.targets.shape[1]

    @property
    def n_points(self):
        """Physical rows, including tombstoned ones."""
        return self.targets.shape[0]

    @property
    def n_active(self):
        """Live (queryable) target points."""
        return int(self.targets.shape[0] - self._tombstones.sum())

    @property
    def n_tombstones(self):
        return int(self._tombstones.sum())

    @property
    def tombstones(self):
        return self._tombstones

    @property
    def key(self):
        """The cache-invalidation identity: ``(fingerprint, version)``."""
        return (self.fingerprint, self.version)

    def active_ids(self):
        """Row ids of the live target points."""
        return np.flatnonzero(~self._tombstones)

    def rng_state(self):
        """JSON-serializable state of the landmark RNG (persisted so a
        loaded index clusters query batches bit-identically to the
        freshly built one)."""
        return self._rng.bit_generator.state

    @property
    def nbytes(self):
        """Approximate resident size of the prepared target state.

        Counts the target matrix once plus the cluster metadata (the
        centres, assignments, per-member distances and sorted member
        lists).  This is the currency of the serving layer's
        byte-budgeted index cache.
        """
        ct = self.target_clusters
        total = self.targets.nbytes
        total += ct.centers.nbytes + ct.center_indices.nbytes
        total += ct.assignment.nbytes + ct.dist_to_center.nbytes
        total += sum(m.nbytes for m in ct.members)
        total += sum(d.nbytes for d in ct.member_dists)
        if ct.radius is not None:
            total += ct.radius.nbytes
        return int(total)

    def describe(self):
        """Manifest-style summary (the CLI ``index inspect`` view)."""
        return {
            "n": int(self.n_points), "dim": int(self.dim),
            "mt": int(self.mt), "seed": self.seed,
            "fingerprint": self.fingerprint, "version": int(self.version),
            "build_count": int(self.build_count),
            "tombstones": self.n_tombstones,
            "active": self.n_active,
            "nbytes": self.nbytes,
            "mmapped": bool(self.mmapped),
            "source_path": self.source_path,
            "policy": self.policy.describe(),
            "graph": (self.graph.describe()
                      if self.graph is not None else None),
        }

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def join_plan(self, queries, mq=None, rng=None):
        """Cluster ``queries`` against the prepared target side.

        Only the query side is clustered here — the target clusters,
        their sorted member lists and radii are reused as built.

        Returns
        -------
        JoinPlan
        """
        from ..core.ti_knn import JoinPlan

        queries = as_points(queries, name="queries")
        if queries.shape[0] == 0:
            raise ValidationError("queries must be a non-empty 2-D array")
        if queries.shape[1] != self.dim:
            raise ValidationError(
                "dimension mismatch: queries d=%d, prepared index d=%d"
                % (queries.shape[1], self.dim))
        rng = rng if rng is not None else self._rng
        if mq is None:
            mq = determine_landmark_count(len(queries),
                                          self.memory_budget_bytes)
        q_landmarks = select_landmarks_random_spread(queries, mq, rng)
        query_clusters = cluster_points(queries, q_landmarks,
                                        sort_descending=False)
        cdist = center_distances(query_clusters, self.target_clusters)
        return JoinPlan(query_clusters=query_clusters,
                        target_clusters=self.target_clusters,
                        center_dists=cdist)

    # ------------------------------------------------------------------
    # Approximate graph tier
    # ------------------------------------------------------------------
    def build_graph(self, config=None, seed=None, calibrate=True, k=10,
                    ef_grid=None, n_probe=64):
        """Build (and by default calibrate) the approximate k-NN graph.

        The graph covers the live rows at the current ``version`` and
        is attached as :attr:`graph` — persisted by the next
        :meth:`save`, reloaded by :meth:`load`, and consulted by
        ``KNNServer`` requests carrying a ``recall_target``.  Build is
        deterministic given ``(seed, fingerprint)``.
        """
        from ..graph import build_graph as _build
        from ..graph import calibrate as _calibrate
        from ..graph.recall import DEFAULT_EF_GRID

        graph = _build(self, config=config, seed=seed)
        if calibrate:
            _calibrate(graph, self, k=k,
                       ef_grid=ef_grid or DEFAULT_EF_GRID,
                       n_probe=n_probe)
        self.graph = graph
        return graph

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path):
        """Write this index to directory ``path`` (see ``storage``).

        After a successful save the index is disk-backed:
        :attr:`source_path` points at the directory, so sharded
        execution can hand workers the path instead of pickled arrays.
        An attached :attr:`graph` is saved into ``<path>/graph``,
        versioned alongside the manifest.
        """
        with obs.span("index.save", path=os.fspath(path),
                      n=int(self.n_points), version=int(self.version)):
            storage.write_index(self, path)
        if self.graph is not None:
            self.graph.save(os.path.join(os.fspath(path), "graph"))
        self.source_path = os.path.abspath(os.fspath(path))
        return self.source_path

    @classmethod
    def load(cls, path, mmap=True):
        """Load a saved index, zero-copy by default.

        With ``mmap=True`` the arrays are read-only views backed by the
        page cache: every process loading the same directory shares one
        physical copy.  The restored index reproduces the freshly built
        one bit-for-bit — including the landmark RNG state, so query
        batches cluster identically.
        """
        with obs.span("index.load", path=os.fspath(path),
                      mmap=bool(mmap)) as sp:
            manifest, arrays = storage.read_index(path, mmap=mmap)
            sizes_edge = arrays["member_offsets"]
            members = []
            member_dists = []
            for cid in range(manifest["mt"]):
                start, stop = int(sizes_edge[cid]), int(sizes_edge[cid + 1])
                members.append(arrays["members"][start:stop])
                member_dists.append(arrays["member_dists"][start:stop])
            clusters = ClusteredSet(
                points=arrays["targets"],
                center_indices=arrays["center_indices"],
                centers=arrays["centers"],
                assignment=arrays["assignment"],
                dist_to_center=arrays["dist_to_center"],
                members=members,
                member_dists=member_dists,
                radius=arrays["radius"],
                init_distance_computations=int(
                    manifest.get("init_distance_computations", 0)),
            )

            index = cls.__new__(cls)
            index.seed = manifest.get("seed", 0)
            index.mt_requested = manifest.get("mt_requested")
            index.memory_budget_bytes = manifest.get("memory_budget_bytes")
            index.policy = UpdatePolicy.from_dict(manifest.get("policy"))
            index.targets = arrays["targets"]
            index.target_clusters = clusters
            index.fingerprint = manifest["fingerprint"]
            index.version = int(manifest["version"])
            index.build_count = int(manifest.get("build_count", 1))
            index.source_path = os.path.abspath(os.fspath(path))
            index.mmapped = bool(mmap)
            index._tombstones = np.asarray(arrays["tombstones"])
            index._dead_since_rebuild = int(
                manifest.get("tombstones_since_rebuild", 0))
            index._max_size_at_build = int(
                manifest.get("max_cluster_size_at_build",
                             _largest_cluster(clusters)))
            index._rng = np.random.default_rng()
            state = manifest.get("rng_state")
            if state is not None:
                try:
                    index._rng.bit_generator.state = state
                except (KeyError, TypeError, ValueError) as exc:
                    raise ValidationError(
                        "index manifest carries an unusable rng_state: %s"
                        % exc) from exc
            index.graph = None
            graph_dir = os.path.join(path, "graph")
            if graph_storage.is_graph_dir(graph_dir):
                from ..graph import KNNGraph
                graph = KNNGraph.load(graph_dir, mmap=mmap)
                if graph.fingerprint == index.fingerprint:
                    index.graph = graph
                else:
                    logger.warning(
                        "ignoring graph artifact %s: fingerprint %s does "
                        "not match index %s", graph_dir,
                        graph.fingerprint, index.fingerprint)
            register_fingerprint(index.targets, index.fingerprint)
            sp.annotate(n=int(index.n_points), mt=int(index.mt),
                        version=int(index.version),
                        fingerprint=index.fingerprint)
            index._publish_gauges()
            return index

    # ------------------------------------------------------------------
    # Incremental updates
    # ------------------------------------------------------------------
    def add(self, points):
        """Insert new target points; returns their assigned row ids.

        Each point joins its nearest existing cluster (members stay
        sorted by descending centre distance, radii refresh), so only
        the affected clusters change.  ``version`` bumps; when the
        update policy finds the clustering degraded, a full rebuild of
        the live set follows automatically.
        """
        points = check_points(points, name="points", require_finite=True)
        if points.shape[1] != self.dim:
            raise ValidationError(
                "dimension mismatch: points d=%d, index d=%d"
                % (points.shape[1], self.dim))
        with obs.span("index.update", op="add", rows=int(len(points))):
            self._materialize()
            ct = self.target_clusters
            block = pairwise_distances(points, ct.centers)
            assignment = np.argmin(block, axis=1)
            dists = block[np.arange(len(points)), assignment]
            base = self.targets.shape[0]
            new_ids = np.arange(base, base + len(points), dtype=np.int64)

            self.targets = np.ascontiguousarray(
                np.vstack([self.targets, points]))
            ct.points = self.targets
            ct.assignment = np.concatenate([ct.assignment, assignment])
            ct.dist_to_center = np.concatenate([ct.dist_to_center, dists])
            ct.init_distance_computations += len(points) * ct.n_clusters
            self._tombstones = np.concatenate(
                [self._tombstones, np.zeros(len(points), dtype=bool)])
            for cid in np.unique(assignment):
                in_cluster = assignment == cid
                merged_ids = np.concatenate(
                    [ct.members[cid], new_ids[in_cluster]])
                merged_dists = np.concatenate(
                    [ct.member_dists[cid], dists[in_cluster]])
                order = np.argsort(-merged_dists, kind="stable")
                ct.members[cid] = merged_ids[order]
                ct.member_dists[cid] = merged_dists[order]
                ct.radius[cid] = merged_dists[order[0]]
            self._bump()
            return new_ids

    def remove(self, row_ids):
        """Tombstone target rows; their ids are never returned again.

        Row ids are stable for the lifetime of the index (results keep
        meaning the same points after any update sequence); removed
        rows only leave the member lists and radii of their clusters.
        """
        row_ids = np.unique(np.asarray(row_ids, dtype=np.int64).ravel())
        if row_ids.size == 0:
            return
        if row_ids.min() < 0 or row_ids.max() >= self.n_points:
            raise ValidationError(
                "row ids out of range [0, %d)" % self.n_points)
        if self._tombstones[row_ids].any():
            raise ValidationError("some row ids are already removed")
        if self.n_active - row_ids.size <= 0:
            raise ValidationError("cannot remove every target point")
        with obs.span("index.update", op="remove", rows=int(row_ids.size)):
            self._materialize()
            ct = self.target_clusters
            self._tombstones[row_ids] = True
            self._dead_since_rebuild += int(row_ids.size)
            for cid in np.unique(ct.assignment[row_ids]):
                keep = ~self._tombstones[ct.members[cid]]
                ct.members[cid] = ct.members[cid][keep]
                ct.member_dists[cid] = ct.member_dists[cid][keep]
                ct.radius[cid] = (ct.member_dists[cid][0]
                                  if ct.member_dists[cid].size else 0.0)
            self._bump()

    def rebuild(self):
        """Force a full re-clustering of the live point set now."""
        self._materialize()
        self._rebuild()
        self.version += 1
        self._publish_gauges()
        return self

    def _bump(self):
        self.version += 1
        if self._needs_rebuild():
            self._rebuild()
        self._publish_gauges()

    def _needs_rebuild(self):
        active = self.n_active
        if active <= 0:
            return False
        dead = self._dead_since_rebuild
        if dead / (active + dead) > self.policy.max_tombstone_fraction:
            return True
        # Growth is judged against the *largest* cluster at build time,
        # not the mean: natural clusterings are skewed, and a mean
        # baseline would demand a rebuild the moment any point lands in
        # an already-big cluster.
        largest = _largest_cluster(self.target_clusters)
        return largest > self.policy.max_cluster_growth * max(
            1.0, self._max_size_at_build)

    def _rebuild(self):
        """Re-cluster the live rows; ids stay stable, tombstones drain.

        Deterministic: the rebuild RNG derives from ``(seed, version)``
        so two replicas applying the same update sequence arrive at
        bit-identical clusterings.
        """
        active = self.active_ids()
        with obs.span("index.rebuild", active=int(active.size),
                      version=int(self.version)):
            seed = self.seed if isinstance(self.seed, int) else 0
            rng = np.random.default_rng(
                np.random.SeedSequence([int(seed) & (2 ** 63 - 1),
                                        int(self.version)]))
            mt = self.mt_requested
            if mt is None:
                mt = determine_landmark_count(active.size,
                                              self.memory_budget_bytes)
            live = np.ascontiguousarray(self.targets[active])
            landmarks = select_landmarks_random_spread(live, mt, rng)
            clustered = cluster_points(live, landmarks, sort_descending=True)

            n = self.n_points
            assignment = np.full(n, -1, dtype=np.int64)
            assignment[active] = clustered.assignment
            dist_to_center = np.zeros(n, dtype=np.float64)
            dist_to_center[active] = clustered.dist_to_center
            previous_init = self.target_clusters.init_distance_computations
            self.target_clusters = ClusteredSet(
                points=self.targets,
                center_indices=active[clustered.center_indices],
                centers=clustered.centers,
                assignment=assignment,
                dist_to_center=dist_to_center,
                members=[active[m] for m in clustered.members],
                member_dists=clustered.member_dists,
                radius=clustered.radius,
                init_distance_computations=(
                    previous_init + clustered.init_distance_computations),
            )
            self._dead_since_rebuild = 0
            self._max_size_at_build = _largest_cluster(self.target_clusters)
            self.build_count += 1
            obs.event("index.rebuilt", build_count=self.build_count,
                      active=int(active.size))

    def _materialize(self):
        """Copy memory-mapped state into private writable arrays.

        Updating diverges from the on-disk image, so a materialized
        index also stops being disk-backed until the next
        :meth:`save`.
        """
        if self.mmapped:
            self.targets = np.array(self.targets)
            ct = self.target_clusters
            ct.points = self.targets
            ct.center_indices = np.array(ct.center_indices)
            ct.centers = np.array(ct.centers)
            ct.assignment = np.array(ct.assignment)
            ct.dist_to_center = np.array(ct.dist_to_center)
            ct.radius = np.array(ct.radius)
            ct.members = [np.array(m) for m in ct.members]
            ct.member_dists = [np.array(d) for d in ct.member_dists]
            self._tombstones = np.array(self._tombstones)
            self.mmapped = False
        self.source_path = None

    def _publish_gauges(self):
        tracer = obs.current_tracer()
        if tracer is not None:
            tracer.registry.gauge("index.version").set(int(self.version))
            tracer.registry.gauge("index.tombstones").set(
                self.n_tombstones)
