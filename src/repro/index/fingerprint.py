"""Content fingerprints of point sets, cached by array identity.

A fingerprint is the SHA-1 of a point set's canonical form (shape,
dtype, raw C-order float64 bytes); two arrays with equal values share
one regardless of object identity, dtype of origin (float32 inputs
normalize first) or memory order.  It is the identity every
prepared-state cache keys on: the serving layer's
:class:`~repro.serve.IndexStore`, the worker-side plan cache, and the
on-disk index manifest.

Hashing is O(n * d).  Uncached, that cost landed on the serving hot
path *per request* — ``IndexStore.key_for`` re-hashed the full target
array on every lookup.  The memo below makes repeat lookups O(1): the
digest is cached per array **object** (validated by a weak reference,
so a garbage-collected array can never alias a recycled ``id``) and
:meth:`repro.index.Index` registers its target array at build/load
time, so steady-state serving never re-reads the target bytes at all.

The memo treats fingerprinted arrays as immutable — the contract every
index structure here already imposes on its target set.  Mutating an
array in place after fingerprinting it yields a stale digest, exactly
as it would invalidate the clusters built from it; go through
:meth:`repro.index.Index.add` / :meth:`~repro.index.Index.remove`
instead.
"""

from __future__ import annotations

import hashlib
import threading
import weakref

import numpy as np

from ..core.validate import as_points

__all__ = ["fingerprint_points", "register_fingerprint",
           "cached_fingerprints", "clear_memo"]

_memo = {}            # id(array) -> (weakref to array, digest)
_memo_lock = threading.Lock()


def _compute(canonical):
    """SHA-1 of a canonical (C-contiguous float64) point array."""
    digest = hashlib.sha1()
    digest.update(repr((canonical.shape, canonical.dtype.str)).encode())
    digest.update(canonical.tobytes())
    return digest.hexdigest()


def fingerprint_points(points):
    """Content hash of a point set: shape, dtype and raw bytes.

    Repeat calls with the *same array object* return the memoized
    digest without touching the array's bytes (O(1)); equal-valued
    arrays always share the digest, whatever their object identity,
    input dtype or memory order.
    """
    if isinstance(points, np.ndarray):
        key = id(points)
        with _memo_lock:
            entry = _memo.get(key)
            if entry is not None and entry[0]() is points:
                return entry[1]
    canonical = as_points(points)
    digest = _compute(canonical)
    _remember(points, digest)
    if canonical is not points:
        _remember(canonical, digest)
    return digest


def _remember(array, digest):
    """Memoize ``digest`` for ``array`` (no-op for non-weakref-ables)."""
    if not isinstance(array, np.ndarray):
        return
    key = id(array)
    try:
        ref = weakref.ref(array,
                          lambda _ref, _key=key: _memo.pop(_key, None))
    except TypeError:
        return
    with _memo_lock:
        _memo[key] = (ref, digest)


def register_fingerprint(array, digest):
    """Pre-seed the memo (an index registering its loaded targets)."""
    _remember(array, digest)


def cached_fingerprints():
    """Number of live memo entries (tests, debugging)."""
    with _memo_lock:
        return len(_memo)


def clear_memo():
    """Drop every memoized fingerprint (tests)."""
    with _memo_lock:
        _memo.clear()
