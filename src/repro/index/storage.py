"""Versioned on-disk persistence of a prepared index.

An index directory holds one JSON manifest plus one ``.npy`` file per
array::

    <dir>/
      manifest.json        format version, shapes, knobs, fingerprint
      targets.npy          (n, d) float64 target matrix
      centers.npy          (mt, d) landmark coordinates
      center_indices.npy   (mt,)  landmark rows in ``targets``
      assignment.npy       (n,)   cluster of each row (-1 = tombstoned)
      dist_to_center.npy   (n,)   distance of each row to its centre
      radius.npy           (mt,)  per-cluster radius
      members.npy          flat descending-sorted member rows (CSR)
      member_offsets.npy   (mt+1,) cluster boundaries into the flat rows
      member_dists.npy     flat member distances, aligned with members
      tombstones.npy       (n,) bool live/dead mask

The per-cluster member lists are stored flattened (CSR-style) so every
array is a plain contiguous ``.npy`` that ``np.load(mmap_mode="r")``
can map directly; the per-cluster views reconstructed from the offsets
are slices of the mapped file, so N worker processes loading the same
directory share one copy of the index through the page cache instead
of holding N pickled duplicates.

The manifest is written last (via a temp file + rename), so a crash
mid-save leaves a directory without a manifest — which :func:`load`
rejects with a typed :class:`~repro.errors.ValidationError` — never a
manifest describing half-written arrays.  Every malformed-input path
(missing files, corrupt JSON, format-version or shape/dtype
mismatches) raises :class:`ValidationError` as well.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from ..errors import ValidationError

__all__ = ["FORMAT_VERSION", "MANIFEST_NAME", "write_index", "read_index",
           "read_manifest", "is_index_dir"]

#: On-disk format version; bumped on any incompatible layout change.
FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"

#: name -> (expected dtype, expected ndim)
_ARRAYS = {
    "targets": ("<f8", 2),
    "centers": ("<f8", 2),
    "center_indices": ("<i8", 1),
    "assignment": ("<i8", 1),
    "dist_to_center": ("<f8", 1),
    "radius": ("<f8", 1),
    "members": ("<i8", 1),
    "member_offsets": ("<i8", 1),
    "member_dists": ("<f8", 1),
    "tombstones": ("|b1", 1),
}


def is_index_dir(path):
    """Whether ``path`` looks like a saved index (has a manifest)."""
    return os.path.isfile(os.path.join(path, MANIFEST_NAME))


def write_index(index, path):
    """Serialize ``index`` into directory ``path`` (created if needed).

    Arrays are written first, the manifest last and atomically, so a
    directory with a readable manifest always has consistent arrays.
    """
    path = os.fspath(path)
    os.makedirs(path, exist_ok=True)
    ct = index.target_clusters

    sizes = np.asarray([len(m) for m in ct.members], dtype=np.int64)
    offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    members = (np.concatenate(ct.members) if sizes.sum()
               else np.empty(0, dtype=np.int64)).astype(np.int64)
    member_dists = (np.concatenate(ct.member_dists) if sizes.sum()
                    else np.empty(0, dtype=np.float64)).astype(np.float64)

    arrays = {
        "targets": np.ascontiguousarray(index.targets, dtype=np.float64),
        "centers": np.ascontiguousarray(ct.centers, dtype=np.float64),
        "center_indices": np.ascontiguousarray(ct.center_indices,
                                               dtype=np.int64),
        "assignment": np.ascontiguousarray(ct.assignment, dtype=np.int64),
        "dist_to_center": np.ascontiguousarray(ct.dist_to_center,
                                               dtype=np.float64),
        "radius": np.ascontiguousarray(ct.radius, dtype=np.float64),
        "members": members,
        "member_offsets": offsets,
        "member_dists": member_dists,
        "tombstones": np.ascontiguousarray(index.tombstones, dtype=bool),
    }
    manifest = {
        "format": "repro-index",
        "format_version": FORMAT_VERSION,
        "created_unix_s": time.time(),
        "fingerprint": index.fingerprint,
        "version": int(index.version),
        "build_count": int(index.build_count),
        "n": int(index.targets.shape[0]),
        "dim": int(index.targets.shape[1]),
        "mt": int(ct.n_clusters),
        "seed": index.seed,
        "mt_requested": index.mt_requested,
        "memory_budget_bytes": index.memory_budget_bytes,
        "init_distance_computations": int(ct.init_distance_computations),
        "n_tombstones": int(index.n_tombstones),
        "tombstones_since_rebuild": int(index._dead_since_rebuild),
        "max_cluster_size_at_build": int(index._max_size_at_build),
        "policy": index.policy.describe(),
        "rng_state": index.rng_state(),
        "arrays": {name: {"shape": list(array.shape),
                          "dtype": array.dtype.str}
                   for name, array in arrays.items()},
    }

    for name, array in arrays.items():
        np.save(os.path.join(path, name + ".npy"), array)
    tmp = os.path.join(path, MANIFEST_NAME + ".tmp")
    with open(tmp, "w") as handle:
        json.dump(manifest, handle, indent=2)
        handle.write("\n")
    os.replace(tmp, os.path.join(path, MANIFEST_NAME))
    return manifest


def read_manifest(path):
    """Load and validate the manifest of an index directory."""
    path = os.fspath(path)
    manifest_path = os.path.join(path, MANIFEST_NAME)
    if not os.path.isdir(path):
        raise ValidationError("index directory %r does not exist" % path)
    if not os.path.isfile(manifest_path):
        raise ValidationError(
            "%r is not a saved index (no %s)" % (path, MANIFEST_NAME))
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ValidationError(
            "corrupt index manifest %r: %s" % (manifest_path, exc)) from exc
    if not isinstance(manifest, dict) \
            or manifest.get("format") != "repro-index":
        raise ValidationError(
            "%r is not a repro index manifest" % manifest_path)
    if manifest.get("format_version") != FORMAT_VERSION:
        raise ValidationError(
            "index format version %r is not the supported %d"
            % (manifest.get("format_version"), FORMAT_VERSION))
    for key in ("fingerprint", "version", "n", "dim", "mt", "arrays"):
        if key not in manifest:
            raise ValidationError(
                "index manifest %r is missing %r" % (manifest_path, key))
    return manifest


def read_index(path, mmap=True):
    """Load ``(manifest, arrays)`` from an index directory.

    With ``mmap=True`` every array is opened with
    ``np.load(..., mmap_mode="r")`` — read-only views backed by the
    page cache, shared zero-copy across processes.  Shapes and dtypes
    are validated against the manifest; any mismatch (truncated file,
    edited manifest) raises :class:`ValidationError`.
    """
    path = os.fspath(path)
    manifest = read_manifest(path)
    declared = manifest["arrays"]
    arrays = {}
    for name, (dtype, ndim) in _ARRAYS.items():
        if name not in declared:
            raise ValidationError(
                "index manifest lists no %r array" % name)
        file_path = os.path.join(path, name + ".npy")
        try:
            array = np.load(file_path, mmap_mode="r" if mmap else None,
                            allow_pickle=False)
        except (OSError, ValueError) as exc:
            raise ValidationError(
                "cannot load index array %r: %s" % (file_path, exc)) from exc
        spec = declared[name]
        if list(array.shape) != list(spec.get("shape", [])) \
                or array.dtype.str != spec.get("dtype"):
            raise ValidationError(
                "index array %r does not match its manifest entry "
                "(file %s %s, manifest %s %s)"
                % (name, array.shape, array.dtype.str,
                   tuple(spec.get("shape", [])), spec.get("dtype")))
        if array.ndim != ndim or array.dtype.str != dtype:
            raise ValidationError(
                "index array %r has unsupported layout %s %s"
                % (name, array.shape, array.dtype.str))
        arrays[name] = array

    n, dim, mt = manifest["n"], manifest["dim"], manifest["mt"]
    if arrays["targets"].shape != (n, dim) \
            or arrays["centers"].shape != (mt, dim) \
            or arrays["member_offsets"].shape != (mt + 1,) \
            or arrays["assignment"].shape != (n,) \
            or arrays["tombstones"].shape != (n,):
        raise ValidationError(
            "index arrays do not match the manifest shape "
            "(n=%d, dim=%d, mt=%d)" % (n, dim, mt))
    if arrays["members"].shape != arrays["member_dists"].shape:
        raise ValidationError("members and member_dists are misaligned")
    return manifest, arrays
