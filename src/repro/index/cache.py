"""Process-level prepared-state caches and the zero-copy plan handle.

Two caches, both keyed by content identity:

* :func:`shared_plan` — the per-process LRU of shared
  :class:`~repro.core.ti_knn.JoinPlan`s that pool workers resolve
  Step-1 state through.  Concurrent builders of one key serialise on a
  per-key lock, so each worker process builds (or adopts) a given plan
  exactly once; late arrivals count as cache hits.  This machinery
  used to live inside :mod:`repro.parallel.worker`; it is owned here
  so every prepared-state cache lives in ``repro.index``.
* :func:`load_cached` — the per-process LRU of disk-loaded
  :class:`~repro.index.Index` objects, memory-mapped read-only.  All
  shards, requests and threads of one process that reference the same
  index directory share a single mapping (and all *processes* share
  the physical pages through the OS page cache).

:class:`PlanHandle` ties them together: it is what ships to a process
pool instead of the target arrays.  A handle carries the index
*directory path* plus its ``(fingerprint, version)`` identity and the
already-clustered query side; the worker resolves the target side via
:func:`load_cached` and assembles the same
:class:`~repro.core.ti_knn.JoinPlan` the parent holds — bit-identical,
but with a pickled payload that is O(queries), not O(targets).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..errors import ValidationError

__all__ = ["PlanHandle", "shared_plan", "load_cached",
           "plan_cache_info", "clear_plan_cache",
           "index_cache_info", "clear_index_cache"]

#: Distinct prepared states kept per process; each entry holds a full
#: JoinPlan (clusters + centre-distance matrix), so the cache is small.
PLAN_CACHE_ENTRIES = 8

#: Distinct disk-loaded indexes kept mapped per process.  Entries are
#: mmap-backed, so the resident cost is page-cache pressure, not heap.
INDEX_CACHE_ENTRIES = 4

_plans = OrderedDict()       # plan key -> JoinPlan
_plans_lock = threading.Lock()
_build_locks = {}            # plan key -> per-key build lock

_indexes = OrderedDict()     # abspath -> Index (mmap-loaded)
_indexes_lock = threading.Lock()


def shared_plan(key, builder):
    """The JoinPlan for ``key``, from the cache or built exactly once.

    Returns ``(plan, cache_hit)``.  ``builder`` runs at most once per
    key per process; concurrent callers of the same key block on a
    per-key lock and then count as hits.
    """
    with _plans_lock:
        plan = _plans.get(key)
        if plan is not None:
            _plans.move_to_end(key)
            return plan, True
        lock = _build_locks.setdefault(key, threading.Lock())
    with lock:
        with _plans_lock:
            plan = _plans.get(key)
            if plan is not None:
                _plans.move_to_end(key)
                return plan, True
        plan = builder()
        with _plans_lock:
            _plans[key] = plan
            while len(_plans) > PLAN_CACHE_ENTRIES:
                _plans.popitem(last=False)
            _build_locks.pop(key, None)
        return plan, False


def load_cached(path, expect_key=None, mmap=True):
    """A process-shared, mmap-backed Index for directory ``path``.

    ``expect_key`` is the ``(fingerprint, version)`` the caller built
    against; a cached *or* freshly loaded index that does not match it
    raises :class:`ValidationError` (the directory was overwritten by a
    different or newer index since the handle was made) rather than
    silently serving different data.  A stale cached entry whose
    on-disk directory has moved on is reloaded once before failing.
    """
    from .index import Index

    path = os.path.abspath(os.fspath(path))
    with _indexes_lock:
        index = _indexes.get(path)
        if index is not None:
            _indexes.move_to_end(path)
    if index is not None and (expect_key is None or index.key == expect_key):
        return index

    loaded = Index.load(path, mmap=mmap)
    if expect_key is not None and loaded.key != expect_key:
        raise ValidationError(
            "index at %r is (fingerprint=%s..., version=%d) but the "
            "execution expected (fingerprint=%s..., version=%d); the "
            "directory changed since the plan was made"
            % (path, loaded.fingerprint[:12], loaded.version,
               expect_key[0][:12], expect_key[1]))
    with _indexes_lock:
        _indexes[path] = loaded
        while len(_indexes) > INDEX_CACHE_ENTRIES:
            _indexes.popitem(last=False)
    return loaded


@dataclass(frozen=True)
class PlanHandle:
    """A JoinPlan by reference: query side by value, target side by path.

    Shipping a prepared plan to a process pool used to mean pickling
    the full target matrix and cluster metadata into every worker.  A
    handle instead carries the saved index's directory path and its
    ``(fingerprint, version)`` identity next to the (small) query-side
    clusters; :meth:`resolve` reattaches the target side through
    :func:`load_cached`, so the pickled payload no longer scales with
    the target set and all workers share one mapped copy.
    """

    index_path: str
    index_key: tuple          # (fingerprint, version)
    query_clusters: object    # ClusteredSet of the query batch
    center_dists: object      # |CQ| x |CT| centre-distance matrix

    def resolve(self):
        """Load (or reuse) the target side and assemble the JoinPlan."""
        from ..core.ti_knn import JoinPlan

        index = load_cached(self.index_path, expect_key=self.index_key)
        return JoinPlan(query_clusters=self.query_clusters,
                        target_clusters=index.target_clusters,
                        center_dists=self.center_dists)


def plan_cache_info():
    """Snapshot of this process's shared-plan cache (tests, debug)."""
    with _plans_lock:
        return {"entries": len(_plans), "keys": list(_plans)}


def clear_plan_cache():
    """Drop every cached shared plan in this process."""
    with _plans_lock:
        _plans.clear()
        _build_locks.clear()


def index_cache_info():
    """Snapshot of this process's loaded-index cache (tests, debug)."""
    with _indexes_lock:
        return {"entries": len(_indexes), "paths": list(_indexes)}


def clear_index_cache():
    """Drop every process-cached loaded index."""
    with _indexes_lock:
        _indexes.clear()
