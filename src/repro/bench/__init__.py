"""Benchmark harness: run records, paper values, table reporting."""

from . import paper
from .harness import (EXPERIMENT_SEED, RunRecord, clear_cache, run_method,
                      speedup_over_baseline)
from .reporting import emit, format_table

__all__ = ["paper", "EXPERIMENT_SEED", "RunRecord", "clear_cache",
           "run_method", "speedup_over_baseline", "emit", "format_table"]
