"""Plain-text tables for bench output, paper value beside measured."""

from __future__ import annotations

import json
import os

__all__ = ["format_table", "emit", "emit_json"]

#: Directory the benchmark suite writes its tables into.
RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))),
    "benchmarks", "results")


def format_table(title, headers, rows, notes=()):
    """Render an aligned plain-text table.

    Parameters
    ----------
    title:
        Table caption (e.g. ``"Figure 9 — overall speedups"``).
    headers:
        Column names.
    rows:
        Sequence of row sequences; cells are str()-ed.
    notes:
        Footnote lines appended under the table.
    """
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(parts):
        return "  ".join(part.ljust(width)
                         for part, width in zip(parts, widths)).rstrip()

    out = [title, "=" * len(title), line(headers),
           line(["-" * w for w in widths])]
    out.extend(line(row) for row in cells)
    for note in notes:
        out.append("  " + note)
    return "\n".join(out) + "\n"


def _fmt(cell):
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return "%.0f" % cell
        if abs(cell) >= 1:
            return "%.2f" % cell
        return "%.3f" % cell
    if cell is None:
        return "-"
    return str(cell)


def emit(name, text):
    """Print a table and persist it under ``benchmarks/results/``."""
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name + ".txt")
    with open(path, "w") as handle:
        handle.write(text)
    return path


def emit_json(name, payload):
    """Persist a machine-readable benchmark payload.

    Writes ``benchmarks/results/BENCH_<name>.json`` — the structured
    companion of :func:`emit`'s plain-text table, carrying per-run
    stage breakdowns and funnel counters (see
    :meth:`repro.bench.harness.RunRecord.payload`).
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_%s.json" % name)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=str)
        handle.write("\n")
    return path
