"""Experiment harness: run, cache and tabulate paper experiments.

Every benchmark regenerates one of the paper's tables or figures.
Several experiments share runs (Fig. 9 and Table IV profile the same
k=20 joins), so runs are memoised per process by their full
configuration.

The central entry point is :func:`run_method`, which executes one
(dataset, method, k, options) combination on the dataset's scaled
device and returns a :class:`RunRecord` of everything the experiments
report: simulated time, saved computations, level-2 warp efficiency
and the adaptive decisions taken.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.ti_knn import prepare_clusters
from ..datasets import load
from ..engine.executor import execute
from ..engine.planner import plan_shape
from ..engine.registry import get_engine
from ..errors import ValidationError

__all__ = ["RunRecord", "run_method", "speedup_over_baseline",
           "clear_cache"]

_CACHE = {}
_DATA_CACHE = {}

#: Landmark-selection seed shared by all experiment runs.
EXPERIMENT_SEED = 1

#: Historical bench spellings -> registered engine names.
_ALIASES = {"basic": "ti-gpu"}


@dataclass
class RunRecord:
    """Everything one experiment run reports.

    ``wall_time_s`` is split into the two phases the serving layer
    amortises differently: ``prepare_time_s`` (the query-independent
    Step-1 target state — landmark selection, clustering, the member
    sort) and ``query_time_s`` (everything per-query).  Host wall
    clock, not simulated device time; ``prepare_time_s`` is 0 for
    engines without a prepared index.
    """

    dataset: str
    method: str
    k: int
    sim_time_s: float
    wall_time_s: float
    saved_fraction: float
    warp_efficiency: float
    prepare_time_s: float = 0.0
    query_time_s: float = 0.0
    #: Which level-2 scan implementation answered: ``"native"``
    #: (numba-compiled), ``"numpy-flat"`` (vectorized fallback) or
    #: ``"reference"`` (the sequential/simulated engines).
    kernel_tier: str = "reference"
    #: One-time numba JIT compile seconds, reported separately so
    #: ``query_time_s`` stays a steady-state number (0.0 outside the
    #: native tier's first compile).
    native_compile_s: float = 0.0
    workers: int = 1
    shards: int = 1
    shard_wall_s: list = field(default_factory=list)
    decisions: dict = field(default_factory=dict)
    plan: dict = field(default_factory=dict)
    stages: list = field(default_factory=list)
    funnel: dict = field(default_factory=dict)
    result: object = None

    def payload(self):
        """JSON-ready dict of the record (for ``BENCH_*.json`` files).

        Carries the per-stage breakdown (one kernel summary per
        simulated launch) and the filtering-funnel counters alongside
        the headline numbers, so benchmark trajectories record *where*
        simulated time and distance work went, not just totals.
        ``workers``/``shards``/``shard_wall_s`` capture the sharded
        execution shape (1/1/[] for serial runs), so BENCH files
        record the scaling trajectory.
        """
        return {
            "dataset": self.dataset,
            "method": self.method,
            "k": self.k,
            "sim_time_s": self.sim_time_s,
            "wall_time_s": self.wall_time_s,
            "prepare_time_s": self.prepare_time_s,
            "query_time_s": self.query_time_s,
            "saved_fraction": self.saved_fraction,
            "warp_efficiency": self.warp_efficiency,
            "kernel_tier": self.kernel_tier,
            "native_compile_s": self.native_compile_s,
            "workers": self.workers,
            "shards": self.shards,
            "shard_wall_s": list(self.shard_wall_s),
            "decisions": dict(self.decisions),
            "plan": dict(self.plan),
            "stages": list(self.stages),
            "funnel": dict(self.funnel),
        }


def _dataset(name):
    if name not in _DATA_CACHE:
        points, spec = load(name)
        _DATA_CACHE[name] = (points, spec)
    return _DATA_CACHE[name]


def run_method(dataset, method, k, **options):
    """Run one method on one stand-in; memoised per configuration.

    Parameters
    ----------
    dataset:
        Stand-in name from :func:`repro.datasets.names`.
    method:
        A registered GPU engine name (``"cublas"``, ``"ti-gpu"``,
        ``"sweet"``; the historical ``"basic"`` spelling still works).
    k:
        Neighbours per query (self-join, like the paper).
    options:
        Extra engine options (``force_filter``, ``threads_per_query``,
        ``mq``/``mt``, ``remap``, ``force_layout``, ...), plus the
        execution keywords ``workers``/``pool`` (sharded execution;
        part of the memo key like any other option).

    Returns
    -------
    RunRecord
    """
    key = (dataset, method, k, tuple(sorted(options.items())))
    if key in _CACHE:
        return _CACHE[key]

    points, spec = _dataset(dataset)
    device = spec.device()
    rng = np.random.default_rng(EXPERIMENT_SEED)

    engine_name = _ALIASES.get(method, method)
    try:
        engine = get_engine(engine_name)
    except ValidationError:
        raise ValueError("unknown bench method: %r" % (method,)) from None
    exec_plan = plan_shape(
        len(points), len(points), k, points.shape[1], method=engine_name,
        device=device, mq=options.get("mq"), mt=options.get("mt"),
        **{name: value for name, value in options.items()
           if name not in ("mq", "mt")})

    # Time the query-independent Step-1 preparation separately from the
    # per-query work, so index-reuse wins (what the serving layer's
    # cache amortises away) are visible in run records.  Pre-building
    # the plan consumes the rng in the same order the engine would, so
    # the result is identical to an engine-internal preparation.
    prepare_s = 0.0
    run_options = dict(options)
    if engine.caps.supports_prepared_index:
        prepare_start = time.perf_counter()
        run_options["plan"] = prepare_clusters(
            points, points, rng, mq=options.get("mq"),
            mt=options.get("mt"),
            memory_budget_bytes=device.global_mem_bytes)
        prepare_s = time.perf_counter() - prepare_start

    start = time.perf_counter()
    result = execute(engine, points, points, k, rng=rng, device=device,
                     **run_options)
    query_s = time.perf_counter() - start

    from ..obs.funnel import funnel_from_stats

    # Host engines (ti-cpu, brute, kdtree) have no simulated-GPU
    # profile; their records report wall clock only.
    profile = result.profile
    extra = result.stats.extra
    # The native tier's one-time JIT compile lands inside the first
    # query call; carve it out so query_time_s is steady-state.
    compile_s = float(extra.get("native_compile_s", 0.0))
    record = RunRecord(
        dataset=dataset, method=method, k=k,
        sim_time_s=profile.sim_time_s if profile is not None else None,
        wall_time_s=prepare_s + query_s,
        prepare_time_s=prepare_s,
        query_time_s=max(query_s - compile_s, 0.0),
        kernel_tier=str(extra.get("kernel_tier", "reference")),
        native_compile_s=compile_s,
        saved_fraction=result.stats.saved_fraction,
        warp_efficiency=(profile.filter_warp_efficiency()
                         if profile is not None else None),
        workers=int(extra.get("workers", 1)),
        shards=int(extra.get("shards", 1)),
        shard_wall_s=list(extra.get("shard_wall_s", [])),
        decisions=dict(extra),
        plan=exec_plan.describe(),
        stages=([kernel.summary() for kernel in profile.kernels]
                if profile is not None else []),
        funnel=funnel_from_stats(result.stats),
        result=result,
    )
    _CACHE[key] = record
    return record


def speedup_over_baseline(dataset, method, k, **options):
    """Simulated-time speedup of ``method`` over the CUBLAS baseline."""
    baseline = run_method(dataset, "cublas", k)
    contender = run_method(dataset, method, k, **options)
    return baseline.sim_time_s / contender.sim_time_s


def clear_cache():
    """Drop memoised runs (tests use this for isolation)."""
    _CACHE.clear()
