"""The paper's reported numbers, for side-by-side bench output.

Values transcribed from the evaluation section (Section V) of
"Sweet KNN" (ICDE 2017).  Speedups are over the CUBLAS-style baseline
with k=20 and query set = target set unless noted.  Figure values are
read off the published charts, so they carry chart-reading precision.
"""

from __future__ import annotations

__all__ = [
    "FIG9_SPEEDUPS", "TABLE4_PROFILE", "FIG10_K_SWEEPS",
    "TABLE5_FILTER_STRENGTH", "FIG11_LANDMARK_PEAK", "FIG12_TPQ_PEAK",
    "DATASET_ORDER",
]

DATASET_ORDER = ["3dnet", "kegg", "keggd", "ipums", "skin", "arcene",
                 "kdd", "dor", "blog"]

#: Fig. 9 — overall speedups over the baseline (basic KNN-TI, Sweet).
FIG9_SPEEDUPS = {
    "3dnet": (22.0, 44.0),
    "kegg": (1.7, 5.7),
    "keggd": (2.1, 4.6),
    "ipums": (1.2, 5.2),
    "skin": (15.0, 24.0),
    "arcene": (0.9, 9.2),
    "kdd": (1.2, 4.2),
    "dor": (0.9, 5.6),
    "blog": (0.85, 2.3),
}

#: Table IV — (saved computations, warp efficiency) for KNN-TI / Sweet.
TABLE4_PROFILE = {
    "3dnet": {"basic": (0.997, 0.163), "sweet": (0.997, 0.294)},
    "kegg": {"basic": (0.995, 0.087), "sweet": (0.995, 0.424)},
    "keggd": {"basic": (0.995, 0.101), "sweet": (0.995, 0.355)},
    "ipums": {"basic": (0.994, 0.118), "sweet": (0.994, 0.333)},
    "skin": {"basic": (0.997, 0.196), "sweet": (0.997, 0.412)},
    "arcene": {"basic": (0.269, 0.595), "sweet": (0.0182, 0.898)},
    "kdd": {"basic": (0.996, 0.071), "sweet": (0.996, 0.574)},
    "dor": {"basic": (0.915, 0.209), "sweet": (0.701, 0.786)},
    "blog": {"basic": (0.995, 0.212), "sweet": (0.995, 0.353)},
}

#: Fig. 10 — Sweet KNN speedup per k (chart-read; notable callouts:
#: 120x at k=1 on 3dnet, 77x and 52x on the other annotated bars;
#: arcene has no k=512 point).
FIG10_K_SWEEPS = {
    "k_values": [1, 8, 20, 64, 512],
    "3dnet": [120.0, 60.0, 44.0, 23.5, 35.3],
    "kegg": [8.0, 6.5, 5.7, 1.3, 6.3],
    "keggd": [6.0, 5.0, 4.6, 2.7, 5.8],
    "ipums": [7.0, 6.0, 5.2, 10.9, 14.1],
    "skin": [40.0, 30.0, 24.0, 10.3, 23.2],
    "arcene": [10.0, 9.5, 9.2, 8.0, None],
    "kdd": [6.0, 5.0, 4.2, 5.9, 30.5],
    "dor": [6.5, 6.0, 5.6, 5.0, 4.0],
    "blog": [3.0, 2.5, 2.3, 2.0, 3.5],
}

#: Table V — k=512 on the k/d>8 datasets: saved computations and
#: speedup for the full vs the partial level-2 filter.
TABLE5_FILTER_STRENGTH = {
    "3dnet": {"full": (0.99, 23.5), "partial": (0.96, 35.3)},
    "kegg": {"full": (0.98, 1.3), "partial": (0.97, 6.3)},
    "keggd": {"full": (0.98, 2.7), "partial": (0.97, 5.8)},
    "ipums": {"full": (0.98, 10.9), "partial": (0.95, 14.1)},
    "skin": {"full": (0.99, 10.3), "partial": (0.96, 23.2)},
    "kdd": {"full": (0.99, 5.9), "partial": (0.98, 30.5)},
}

#: Fig. 11 — the landmark-count sweep peaks near the 3*sqrt(N) rule
#: (~745 for the ~60k-point datasets; scaled stand-ins peak near
#: 3*sqrt(n) correspondingly).
FIG11_LANDMARK_PEAK = {
    "counts": [100, 200, 400, 800, 1600, 3200],
    "paper_rule": "3*sqrt(N) ~= 745 for ~60k points",
    "kegg_speedups": [2.8, 3.6, 4.4, 4.7, 3.9, 2.9],
    "keggd_speedups": [2.5, 3.2, 3.9, 4.1, 3.4, 2.6],
    "blog_speedups": [1.5, 1.8, 2.1, 2.2, 1.9, 1.5],
}

#: Fig. 12 — threads-per-query sweeps peak near the adaptive choice
#: (~66 for arcene, ~4 for dor).
FIG12_TPQ_PEAK = {
    "tpq_values": [2, 4, 8, 16, 32, 64, 128, 256],
    "arcene_adaptive_choice": 66,
    "dor_adaptive_choice": 4,
    "arcene_speedups": [2.0, 3.5, 5.5, 7.5, 8.8, 9.3, 7.0, 4.5],
    "dor_speedups": [5.0, 5.6, 5.2, 4.5, 3.8, 3.0, 2.2, 1.5],
}
