"""ASCII figure rendering for the reproduced paper charts.

The benchmarks emit paper-style *tables*; the figures in the paper are
bar/line charts, so this module renders the same series as aligned
horizontal ASCII bars — enough to eyeball the paper's shapes (who
wins, where the peak sits) straight from ``benchmarks/results/``.
"""

from __future__ import annotations

__all__ = ["bar_chart", "grouped_bar_chart", "series_chart"]

_BAR = "#"
_WIDTH = 48


def _scaled(value, top, width):
    if top <= 0 or value is None or value <= 0:
        return 0
    return max(1, int(round(width * value / top)))


def bar_chart(title, labels, values, unit="x", width=_WIDTH):
    """One horizontal bar per label.

    >>> print(bar_chart("t", ["a", "b"], [1.0, 2.0]))  # doctest: +SKIP
    """
    top = max((v for v in values if v is not None), default=0)
    label_width = max(len(str(label)) for label in labels)
    lines = [title, "-" * len(title)]
    for label, value in zip(labels, values):
        if value is None:
            lines.append("%s  %s" % (str(label).ljust(label_width), "(n/a)"))
            continue
        bar = _BAR * _scaled(value, top, width)
        lines.append("%s  %s %.2f%s"
                     % (str(label).ljust(label_width), bar, value, unit))
    return "\n".join(lines) + "\n"


def grouped_bar_chart(title, labels, series, unit="x", width=_WIDTH):
    """Several named series per label (e.g. KNN-TI vs Sweet per
    dataset, like Fig. 9).

    Parameters
    ----------
    series:
        Mapping of series name to a list of values aligned with
        ``labels``.
    """
    top = max((v for values in series.values() for v in values
               if v is not None), default=0)
    label_width = max(len(str(label)) for label in labels)
    name_width = max(len(name) for name in series)
    lines = [title, "-" * len(title)]
    for i, label in enumerate(labels):
        for j, (name, values) in enumerate(series.items()):
            value = values[i]
            prefix = (str(label).ljust(label_width) if j == 0
                      else " " * label_width)
            if value is None:
                lines.append("%s %s  (n/a)"
                             % (prefix, name.ljust(name_width)))
                continue
            bar = _BAR * _scaled(value, top, width)
            lines.append("%s %s  %s %.2f%s"
                         % (prefix, name.ljust(name_width), bar, value,
                            unit))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def series_chart(title, x_labels, values, unit="x", width=_WIDTH,
                 mark_peak=True):
    """A parameter sweep (Figs. 10-12): one bar per x value, with the
    peak marked — the shape the paper's line charts convey."""
    top = max((v for v in values if v is not None), default=0)
    label_width = max(len(str(x)) for x in x_labels)
    peak = None
    if mark_peak and top > 0:
        peak = max(range(len(values)),
                   key=lambda i: -1 if values[i] is None else values[i])
    lines = [title, "-" * len(title)]
    for i, (x, value) in enumerate(zip(x_labels, values)):
        if value is None:
            lines.append("%s  (n/a)" % str(x).ljust(label_width))
            continue
        bar = _BAR * _scaled(value, top, width)
        marker = "  <- peak" if peak == i else ""
        lines.append("%s  %s %.2f%s%s"
                     % (str(x).ljust(label_width), bar, value, unit, marker))
    return "\n".join(lines) + "\n"
