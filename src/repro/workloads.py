"""KNN-powered application workloads.

The paper motivates KNN as a building block ("a widely used
classification method in machine learning and data mining"); this
module provides the two standard downstream consumers on top of
:func:`repro.knn_join`, deterministic end to end:

``knn_classify``
    Majority-vote k-nearest-neighbour classification.  Ties break
    toward the smallest label, so predictions are independent of the
    engine's (already deterministic) neighbour order.
``novelty_scores``
    Average-distance novelty/outlier scoring: a point's score is the
    mean distance to its k nearest targets — large scores mark points
    far from the reference distribution.

Both run any registered engine (``method=...``) and expose the
underlying :class:`~repro.core.result.KNNResult` for funnel/statistics
inspection.  The serving layer (:meth:`repro.serve.KNNServer.classify`
/ :meth:`~repro.serve.KNNServer.novelty`) reuses the same pure
post-processing helpers on served responses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .core.api import knn_join
from .engine.registry import get_engine
from .errors import ValidationError


def _check_fixed_k(method):
    if get_engine(method).caps.result_kind != "knn":
        raise ValidationError(
            "workloads need a fixed-k engine; %r returns "
            "variable-cardinality results" % method)

__all__ = ["ClassificationResult", "NoveltyResult", "majority_vote",
           "knn_classify", "novelty_scores"]


@dataclass(frozen=True)
class ClassificationResult:
    """Predicted labels plus the underlying join result."""

    labels: np.ndarray
    result: object

    def accuracy(self, true_labels):
        """Fraction of predictions matching ``true_labels``."""
        true_labels = np.asarray(true_labels)
        if true_labels.shape != self.labels.shape:
            raise ValidationError(
                "true_labels shape %s does not match predictions %s"
                % (true_labels.shape, self.labels.shape))
        return float(np.mean(self.labels == true_labels))


@dataclass(frozen=True)
class NoveltyResult:
    """Per-query novelty scores plus the underlying join result."""

    scores: np.ndarray
    result: object


def majority_vote(neighbor_labels):
    """Row-wise majority label of a (n, k) label matrix.

    Ties break toward the smallest label value (``np.unique`` orders
    the candidates ascending and ``argmax`` returns the first
    maximum), making the vote deterministic under any neighbour
    permutation.
    """
    neighbor_labels = np.asarray(neighbor_labels)
    if neighbor_labels.ndim != 2:
        raise ValidationError(
            "neighbor_labels must be a (n, k) matrix")
    classes, inverse = np.unique(neighbor_labels, return_inverse=True)
    inverse = inverse.reshape(neighbor_labels.shape)
    n = neighbor_labels.shape[0]
    counts = np.zeros((n, classes.size), dtype=np.int64)
    np.add.at(counts, (np.arange(n)[:, None], inverse), 1)
    return classes[np.argmax(counts, axis=1)]


def knn_classify(queries, targets, labels, k, method="sweet", **options):
    """Majority-vote KNN classification of ``queries``.

    Parameters
    ----------
    queries:
        (n, d) points to label.
    targets, labels:
        The labelled reference set: (m, d) points and their (m,) labels.
    k:
        Neighbours consulted per query.
    method, options:
        Forwarded to :func:`repro.knn_join` (engine name, seed,
        workers, ...).

    Returns
    -------
    ClassificationResult
        ``labels`` holds the (n,) predictions; ``result`` the
        underlying :class:`~repro.core.result.KNNResult`.
    """
    _check_fixed_k(method)
    labels = np.asarray(labels)
    targets = np.asarray(targets, dtype=np.float64)
    if labels.ndim != 1 or labels.shape[0] != targets.shape[0]:
        raise ValidationError(
            "labels must be a (|T|,) vector aligned with targets")
    result = knn_join(queries, targets, k, method=method, **options)
    predicted = majority_vote(labels[result.indices])
    return ClassificationResult(labels=predicted, result=result)


def novelty_scores(queries, targets, k, method="sweet", **options):
    """Average k-NN distance of each query to the reference set.

    Returns
    -------
    NoveltyResult
        ``scores`` holds the (n,) mean neighbour distances; ``result``
        the underlying :class:`~repro.core.result.KNNResult`.
    """
    _check_fixed_k(method)
    result = knn_join(queries, targets, k, method=method, **options)
    scores = result.distances.mean(axis=1)
    return NoveltyResult(scores=scores, result=result)
