"""Registration of the built-in engines.

Each engine self-describes with an ``ENGINE`` spec (or an ``ENGINES``
tuple) next to its implementation; this module only collects and
registers them, in the order the public method list has always
advertised: the six top-k engines first, then the predicate-join
engines (ε-range, self-join, reverse-KNN) and their brute-force
oracles, then the approximate graph-walk engines.  Loaded lazily by
the registry on first lookup.
"""

from __future__ import annotations

from ..baselines.brute_force import ENGINE as _BRUTE
from ..baselines.brute_joins import ENGINES as _BRUTE_JOINS
from ..baselines.cublas_knn import ENGINE as _CUBLAS
from ..baselines.kdtree import ENGINE as _KDTREE
from ..core.basic_gpu import ENGINE as _TI_GPU
from ..core.joins import ENGINES as _JOINS
from ..core.sweet import ENGINE as _SWEET
from ..core.ti_knn import ENGINE as _TI_CPU
from ..graph.search import ENGINES as _GRAPH
from ..native.engine import ENGINES as _NATIVE
from .registry import register

for _spec in (_SWEET, _TI_GPU, _TI_CPU, _CUBLAS, _BRUTE, _KDTREE,
              *_JOINS, *_BRUTE_JOINS, *_GRAPH, *_NATIVE):
    register(_spec, replace=True)
