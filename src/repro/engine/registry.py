"""Backend registry: name -> :class:`~repro.engine.base.EngineSpec`.

The six built-in engines self-describe in their home modules
(:mod:`repro.core.sweet`, :mod:`repro.core.basic_gpu`,
:mod:`repro.core.ti_knn`, :mod:`repro.baselines.*`) and are registered
lazily on first lookup, so importing the registry stays dependency-free.
Third-party engines join through :func:`register`::

    from repro.engine import EngineCaps, EngineSpec, register

    register(EngineSpec(name="annoy", run=my_run, caps=EngineCaps()))

``repro.METHODS`` is a live, tuple-like view of the registered names:
it always reflects the current registry contents, so the CLI method
list and the API docs never drift from the engines that actually exist.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import ValidationError
from .base import EngineSpec

__all__ = ["register", "unregister", "get_engine", "engine_names",
           "MethodsView", "METHODS", "register_requirement_probe",
           "requirement_available", "missing_requirements",
           "engine_available", "available_engine_names"]

_REGISTRY = {}
_BUILTIN_LOADED = False


# ----------------------------------------------------------------------
# Optional-dependency availability (EngineCaps.requires)
# ----------------------------------------------------------------------
def _probe_numba():
    from ..native.support import numba_available

    return numba_available()


#: requirement name -> zero-arg probe returning availability.  Unknown
#: requirement names fall back to an importability check, so
#: third-party engines can declare ``requires=("faiss",)`` without
#: registering a probe.
_REQUIREMENT_PROBES = {"numba": _probe_numba}
_PROBE_CACHE = {}


def register_requirement_probe(name, probe):
    """Register (or override) the availability probe for a requirement."""
    _REQUIREMENT_PROBES[str(name)] = probe
    _PROBE_CACHE.pop(str(name), None)


def requirement_available(name):
    """True when the named optional requirement is importable (cached)."""
    name = str(name)
    if name not in _PROBE_CACHE:
        probe = _REQUIREMENT_PROBES.get(name)
        if probe is None:
            import importlib.util
            _PROBE_CACHE[name] = importlib.util.find_spec(name) is not None
        else:
            _PROBE_CACHE[name] = bool(probe())
    return _PROBE_CACHE[name]


def missing_requirements(spec):
    """The subset of ``spec.caps.requires`` not importable right now."""
    return tuple(name for name in spec.caps.requires
                 if not requirement_available(name))


def engine_available(name):
    """True when the named engine's optional requirements are all met."""
    return not missing_requirements(get_engine(name))


def available_engine_names():
    """Registered engine names whose requirements are all met."""
    _ensure_builtin()
    return tuple(name for name, spec in _REGISTRY.items()
                 if not missing_requirements(spec))


def _ensure_builtin():
    """Load the built-in engine registrations exactly once."""
    global _BUILTIN_LOADED
    if not _BUILTIN_LOADED:
        _BUILTIN_LOADED = True
        from . import builtin  # noqa: F401  (registers the six engines)


def register(spec, replace=False):
    """Register an engine; ``replace=True`` overwrites an existing name."""
    if not isinstance(spec, EngineSpec):
        raise ValidationError(
            "expected an EngineSpec, got %r" % type(spec).__name__)
    _ensure_builtin()
    if spec.name in _REGISTRY and not replace:
        raise ValidationError(
            "engine %r is already registered (pass replace=True to "
            "override)" % spec.name)
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name):
    """Remove an engine from the registry (tests, plugin teardown)."""
    _ensure_builtin()
    if name not in _REGISTRY:
        raise ValidationError("engine %r is not registered" % (name,))
    del _REGISTRY[name]


def get_engine(name):
    """Look up an engine by name.

    Raises
    ------
    ValidationError
        For an unknown name; the message lists every registered engine.
    """
    _ensure_builtin()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            "unknown method %r; registered engines: %s"
            % (name, ", ".join(_REGISTRY))) from None


def engine_names():
    """Registered engine names, in registration order."""
    _ensure_builtin()
    return tuple(_REGISTRY)


class MethodsView(Sequence):
    """Live, tuple-like view over the registered engine names.

    Unlike a snapshot tuple, membership and iteration always reflect
    the registry's current contents, so ``repro.METHODS`` stays in sync
    with engines registered (or removed) after import.
    """

    def __len__(self):
        return len(engine_names())

    def __getitem__(self, index):
        return engine_names()[index]

    def __iter__(self):
        return iter(engine_names())

    def __contains__(self, name):
        return name in engine_names()

    def __repr__(self):
        return repr(engine_names())

    def __eq__(self, other):
        if isinstance(other, (tuple, list, MethodsView)):
            return tuple(self) == tuple(other)
        return NotImplemented

    __hash__ = None

    def available(self):
        """Names whose optional requirements are met right now.

        The fail-fast surface of ``EngineCaps.requires``: the
        ``*-native`` engines appear in the full list (they are
        registered) but drop out of ``available()`` when numba is not
        importable.
        """
        return available_engine_names()

    def availability(self):
        """Mapping of every registered name to its missing requirements
        (empty tuple = available), for UIs that show both."""
        _ensure_builtin()
        return {name: missing_requirements(spec)
                for name, spec in _REGISTRY.items()}


#: The public method list (`repro.METHODS`), derived from the registry.
METHODS = MethodsView()
