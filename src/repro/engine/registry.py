"""Backend registry: name -> :class:`~repro.engine.base.EngineSpec`.

The six built-in engines self-describe in their home modules
(:mod:`repro.core.sweet`, :mod:`repro.core.basic_gpu`,
:mod:`repro.core.ti_knn`, :mod:`repro.baselines.*`) and are registered
lazily on first lookup, so importing the registry stays dependency-free.
Third-party engines join through :func:`register`::

    from repro.engine import EngineCaps, EngineSpec, register

    register(EngineSpec(name="annoy", run=my_run, caps=EngineCaps()))

``repro.METHODS`` is a live, tuple-like view of the registered names:
it always reflects the current registry contents, so the CLI method
list and the API docs never drift from the engines that actually exist.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import ValidationError
from .base import EngineSpec

__all__ = ["register", "unregister", "get_engine", "engine_names",
           "MethodsView", "METHODS"]

_REGISTRY = {}
_BUILTIN_LOADED = False


def _ensure_builtin():
    """Load the built-in engine registrations exactly once."""
    global _BUILTIN_LOADED
    if not _BUILTIN_LOADED:
        _BUILTIN_LOADED = True
        from . import builtin  # noqa: F401  (registers the six engines)


def register(spec, replace=False):
    """Register an engine; ``replace=True`` overwrites an existing name."""
    if not isinstance(spec, EngineSpec):
        raise ValidationError(
            "expected an EngineSpec, got %r" % type(spec).__name__)
    _ensure_builtin()
    if spec.name in _REGISTRY and not replace:
        raise ValidationError(
            "engine %r is already registered (pass replace=True to "
            "override)" % spec.name)
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name):
    """Remove an engine from the registry (tests, plugin teardown)."""
    _ensure_builtin()
    if name not in _REGISTRY:
        raise ValidationError("engine %r is not registered" % (name,))
    del _REGISTRY[name]


def get_engine(name):
    """Look up an engine by name.

    Raises
    ------
    ValidationError
        For an unknown name; the message lists every registered engine.
    """
    _ensure_builtin()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            "unknown method %r; registered engines: %s"
            % (name, ", ".join(_REGISTRY))) from None


def engine_names():
    """Registered engine names, in registration order."""
    _ensure_builtin()
    return tuple(_REGISTRY)


class MethodsView(Sequence):
    """Live, tuple-like view over the registered engine names.

    Unlike a snapshot tuple, membership and iteration always reflect
    the registry's current contents, so ``repro.METHODS`` stays in sync
    with engines registered (or removed) after import.
    """

    def __len__(self):
        return len(engine_names())

    def __getitem__(self, index):
        return engine_names()[index]

    def __iter__(self):
        return iter(engine_names())

    def __contains__(self, name):
        return name in engine_names()

    def __repr__(self):
        return repr(engine_names())

    def __eq__(self, other):
        if isinstance(other, (tuple, list, MethodsView)):
            return tuple(self) == tuple(other)
        return NotImplemented

    __hash__ = None


#: The public method list (`repro.METHODS`), derived from the registry.
METHODS = MethodsView()
