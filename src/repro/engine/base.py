"""Execution-engine protocol: capability declarations and run context.

Every KNN method (the paper's Sweet KNN, the Section-III basic TI port,
the sequential reference and the three baselines) is exposed to the
dispatch layer as an :class:`EngineSpec` — a named ``run`` callable plus
an :class:`EngineCaps` record declaring what the engine needs and
supports.  The dispatcher (:mod:`repro.engine.executor`) and the query
planner (:mod:`repro.engine.planner`) read only the capabilities, never
the engine identity, so third-party engines registered through
:func:`repro.engine.register` get the same treatment as the built-ins:
automatic device defaulting, transparent query batching, prepared-index
reuse.

The ``run`` callable receives ``(queries, targets, k, ctx, **options)``
where ``ctx`` is an :class:`ExecutionContext`; engines ignore the
context fields their capabilities do not claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EngineCaps", "EngineSpec", "ExecutionContext"]


@dataclass(frozen=True)
class EngineCaps:
    """What an engine needs from, and offers to, the execution layer.

    Attributes
    ----------
    needs_device:
        Runs on the simulated GPU; the dispatcher defaults the device to
        the Tesla K20c and consults device memory for query batching.
    uses_seed:
        Consumes the landmark-selection RNG (the TI family).
    supports_prepared_index:
        Accepts a prebuilt :class:`~repro.core.ti_knn.JoinPlan` /
        :class:`~repro.engine.prepared.PreparedIndex` state and a
        ``query_subset`` restriction — the contract batched execution
        relies on for exact counter equivalence.
    supports_epsilon:
        Accepts the (1+epsilon) approximate-pruning extension.
    tiles_internally:
        Partitions oversized query sets itself (the CUBLAS baseline);
        the dispatcher then never auto-batches on top of it.
    result_kind:
        ``"knn"`` for fixed-k :class:`~repro.core.result.KNNResult`
        engines, ``"range"`` for variable-cardinality
        :class:`~repro.core.result.RangeResult` engines (ε-range,
        reverse-KNN).  The execution layer dispatches the batch/shard
        merge on the result type; the serving layer refuses ``"range"``
        engines (its responses are fixed-k).
    approximate:
        The engine's results may miss true neighbours (the graph-walk
        tier).  Exactness-checking callers (``compare``'s WARNING,
        ``serve-bench --check``) consult this to report *measured
        recall* instead of declaring a mismatch; everything else — the
        batch/shard merge, serving, stats — treats approximate results
        exactly like exact ones.
    requires:
        Optional runtime dependencies (importable module names, e.g.
        ``("numba",)`` for the native kernel tier) the engine needs.
        The registry's availability helpers
        (:func:`repro.engine.missing_requirements`) probe them, the
        dispatcher fails fast with an
        :class:`~repro.errors.EngineUnavailableError` when one is
        absent, and ``repro.METHODS.available()`` / ``repro plan`` /
        ``compare`` surface the availability to users.
    cost_hints:
        Pinned prior for the cost-model scheduler (:mod:`repro.sched`):
        ``(name, value)`` pairs — ``ref_s`` (host wall seconds on the
        scheduler's reference join, :data:`repro.sched.model
        .REFERENCE_FEATURES`) plus log-space shape exponents over the
        scheduler's feature basis.  Hints only seed the prior; a
        calibration artifact refines them from measured runs.  Engines
        that declare none inherit the deliberately pessimistic
        :data:`repro.sched.model.DEFAULT_HINTS`.
    """

    needs_device: bool = False
    uses_seed: bool = False
    supports_prepared_index: bool = False
    supports_epsilon: bool = False
    tiles_internally: bool = False
    result_kind: str = "knn"
    approximate: bool = False
    requires: tuple = ()
    cost_hints: tuple = ()


@dataclass
class ExecutionContext:
    """Per-call state the dispatcher hands to an engine's ``run``.

    ``plan``, ``query_subset`` and ``account_prepare`` are only
    populated for engines whose capabilities declare
    ``supports_prepared_index``; ``account_prepare`` is False for every
    batch but the first so the shared Step-1/level-1 preparation is
    counted exactly once in merged statistics.
    """

    rng: object = None
    device: object = None
    plan: object = None
    query_subset: object = None
    account_prepare: bool = True


@dataclass(frozen=True)
class EngineSpec:
    """A registered KNN engine: name, entry point, capabilities.

    ``required_options`` names the predicate-specific knobs (e.g.
    ``eps`` for the range-join engines) the dispatcher must see among
    the call's options; a missing knob fails fast with a
    :class:`~repro.errors.ValidationError` naming the engine and the
    CLI flag, instead of a ``TypeError`` deep inside the engine.
    """

    name: str
    run: object
    caps: EngineCaps = field(default_factory=EngineCaps)
    description: str = ""
    required_options: tuple = ()

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise ValueError("engine name must be a non-empty string")
        if not callable(self.run):
            raise ValueError("engine run must be callable")
        if not all(isinstance(name, str) for name in self.required_options):
            raise ValueError("required_options must be option-name strings")
