"""Query planner: explicit, inspectable execution plans.

This module owns the two decisions that used to be scattered across the
pipelines:

* the **adaptive configuration** (Fig. 8) — wrapped from
  :mod:`repro.core.adaptive` into an :class:`ExecutionPlan` so callers
  (the CLI ``plan`` command, the bench harness, tests) can see what a
  join *would* do without running it;
* the **memory partitioning** — the Garcia-baseline row budget
  (:func:`dense_partition_rows`, formerly private to
  :mod:`repro.baselines.cublas_knn`) and the TI row budget
  (:func:`ti_partition_rows`, formerly private to
  :mod:`repro.core.gpu_pipeline`) now live side by side in one shared
  layer, and additionally drive the dispatcher's query-batch decision
  (:class:`QueryBatchPlan`) for prepared-index engines.

The planner is deliberately cheap: it never clusters any points.  The
adaptive scheme only reads aggregate shape quantities (|Q|, |T|, k, d,
the average target-cluster size |T|/mt), all of which are known before
Step 1 runs, so the plan it reports is exactly the configuration the
engine will resolve at run time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs

__all__ = ["ExecutionPlan", "QueryBatchPlan", "plan", "plan_shape",
           "ti_partition_rows", "dense_partition_rows", "partition_ranges"]

_FLOAT = 4  # device floats are 32-bit

#: ``decide()`` overrides the planner forwards; anything else an engine
#: accepts (epsilon, mq/mt, ...) does not change the Fig. 8 decisions.
_DECIDE_KEYS = frozenset([
    "force_filter", "force_placement", "force_layout", "threads_per_query",
    "remap", "knearests_coalesced", "block_size",
])


# ----------------------------------------------------------------------
# Shared memory-partitioning budgets
# ----------------------------------------------------------------------
def ti_partition_rows(n_q, n_t, dim, k, device, threads_per_query=1,
                      filter_strength="full"):
    """Queries per level-2 tile under the TI working-set budget.

    Fixed footprint: both point matrices, cluster metadata and the
    centre-distance table.  Per-query footprint: the kNearests slots
    (or the partial filter's survivor buffer) for every sub-thread —
    ``O(k)`` per query instead of the baseline's ``O(|T|)``, which is
    why TI partitions are rare and large (Section V-B).
    """
    base = (n_q + n_t) * dim * _FLOAT          # point matrices
    base += n_t * 2 * _FLOAT                   # member ids + distances
    base += int(3 * np.sqrt(n_q)) ** 2 * _FLOAT  # bound tables (approx)
    tpq = max(1, int(threads_per_query))
    if filter_strength == "full":
        per_query = k * _FLOAT * tpq
    else:
        # Survivor buffer, conservatively 4k entries per query.
        per_query = 4 * k * _FLOAT * tpq
    per_query += 2 * _FLOAT                    # map + bookkeeping

    usable = device.global_mem_bytes - base
    if usable <= 0:
        return max(1, n_q // 8)
    return max(1, min(n_q, usable // per_query))


def dense_partition_rows(n_q, n_t, dim, device):
    """Queries per group under the Garcia-baseline budget.

    The working set per group of ``g`` queries is the ``g * |T|``
    distance matrix plus the two point matrices, in device floats.
    """
    fixed = (n_q + n_t) * dim * _FLOAT
    per_query = n_t * _FLOAT
    usable = device.global_mem_bytes - fixed
    if usable <= 0:
        # Even the inputs are close to capacity; fall back to single
        # queries per group (the allocator will raise if truly stuck).
        return 1
    return max(1, min(n_q, usable // per_query))


def partition_ranges(n, rows):
    """Split ``range(n)`` into ``(start, stop)`` tiles of ``rows`` each."""
    rows = max(1, int(rows))
    return [(start, min(start + rows, n)) for start in range(0, n, rows)]


# ----------------------------------------------------------------------
# Execution plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryBatchPlan:
    """The dispatcher's query-tiling decision for one join."""

    rows_per_batch: int
    n_batches: int

    @property
    def batched(self):
        return self.n_batches > 1

    def ranges(self, n_queries):
        return partition_ranges(n_queries, self.rows_per_batch)


@dataclass(frozen=True)
class ExecutionPlan:
    """Everything the execution layer decided for one join shape.

    ``config`` is the Fig. 8 :class:`~repro.core.adaptive.ExecutionConfig`
    for the simulated-GPU TI engines, ``None`` for the host engines and
    the dense baseline (which have no adaptive knobs).
    """

    method: str
    n_queries: int
    n_targets: int
    k: int
    dim: int
    mq: int
    mt: int
    config: object
    batching: QueryBatchPlan
    device: object = None
    sharding: object = None  # repro.parallel.ShardPlan
    decision: object = None  # repro.sched.Decision

    def describe(self):
        """Flat dict for logging (bench harness, CLI ``plan``)."""
        info = {
            "method": self.method,
            "|Q|": self.n_queries, "|T|": self.n_targets,
            "k": self.k, "d": self.dim,
            "mq": self.mq, "mt": self.mt,
            "query_batches": self.batching.n_batches,
            "rows_per_batch": self.batching.rows_per_batch,
        }
        if self.sharding is not None:
            info["workers"] = self.sharding.workers
            info["shards"] = self.sharding.n_shards
            if self.sharding.sharded:
                info["rows_per_shard"] = self.sharding.rows_per_shard
                info["pool"] = self.sharding.kind
        if self.config is not None:
            info.update(self.config.describe())
        if self.device is not None:
            info["device"] = getattr(self.device, "name", str(self.device))
        if self.decision is not None:
            for key, value in self.decision.describe().items():
                info.setdefault(key, value)
        return info


def plan_shape(n_queries, n_targets, k, dim, method="sweet", device=None,
               mq=None, mt=None, workers=None, pool=None, **overrides):
    """Plan a join from its shape alone (no point data needed).

    This is the planner core; :func:`plan` is the array-taking wrapper.
    ``workers``/``pool`` feed the sharding decision (see
    :mod:`repro.parallel`); both default to the ``REPRO_WORKERS`` /
    ``REPRO_POOL`` environment and ultimately to serial execution.
    """
    with obs.span("planner.plan", method=method, n_queries=int(n_queries),
                  n_targets=int(n_targets), k=int(k), dim=int(dim)) as sp:
        exec_plan = _plan_shape(n_queries, n_targets, k, dim, method=method,
                                device=device, mq=mq, mt=mt, workers=workers,
                                pool=pool, **overrides)
        sp.annotate(mq=exec_plan.mq, mt=exec_plan.mt,
                    rows_per_batch=exec_plan.batching.rows_per_batch,
                    query_batches=exec_plan.batching.n_batches,
                    workers=exec_plan.sharding.workers,
                    shards=exec_plan.sharding.n_shards)
        return exec_plan


def _plan_shape(n_queries, n_targets, k, dim, method="sweet", device=None,
                mq=None, mt=None, workers=None, pool=None,
                clusterability=None, **overrides):
    # Imported lazily so the planner module itself has no core/gpu
    # dependencies (several core modules import the partition budgets
    # above at import time).
    from ..core.adaptive import basic_config, decide
    from ..core.landmarks import determine_landmark_count
    from ..gpu.device import tesla_k20c
    from ..sched import decide as sched_decide
    from .registry import get_engine

    decision = sched_decide(n_queries, n_targets, k, dim, method=method,
                            clusterability=clusterability, workers=workers,
                            pool=pool)
    method = decision.engine
    spec = get_engine(method)
    caps = spec.caps
    n_queries, n_targets, k, dim = (int(n_queries), int(n_targets), int(k),
                                    int(dim))
    if caps.needs_device:
        device = device or tesla_k20c()
    budget = device.global_mem_bytes if device is not None else None

    if caps.supports_prepared_index:
        if mq is None:
            mq = determine_landmark_count(n_queries, budget)
        if mt is None:
            mt = determine_landmark_count(n_targets, budget)
    else:
        mq = mq or 0
        mt = mt or 0

    config = None
    if caps.needs_device and caps.supports_prepared_index:
        knobs = {key: value for key, value in overrides.items()
                 if key in _DECIDE_KEYS}
        if method == "ti-gpu":
            config = basic_config(n_queries, k, device)
        else:
            avg_cluster = n_targets / max(1, mt)
            config = decide(n_queries, n_targets, k, dim, avg_cluster,
                            device, **knobs)

    if caps.needs_device and caps.supports_prepared_index:
        rows = ti_partition_rows(
            n_queries, n_targets, dim, k, device,
            threads_per_query=config.parallel.threads_per_query,
            filter_strength=config.filter_strength)
    elif caps.needs_device and caps.tiles_internally:
        rows = dense_partition_rows(n_queries, n_targets, dim, device)
    else:
        rows = n_queries
    rows = max(1, int(rows))
    n_batches = max(1, -(-n_queries // rows))

    from dataclasses import replace

    from ..parallel.shard import plan_shards, resolve_pool_kind, \
        resolve_workers
    # The scheduler owns the worker count when a calibrated model chose
    # it; the fallback path resolves exactly as before.
    if decision.source == "model":
        n_workers = decision.workers
    else:
        n_workers = resolve_workers(workers)
    sharding = plan_shards(n_queries, rows, n_workers,
                           kind=resolve_pool_kind(pool))
    # Re-anchor the record on the actual shard split (the decision was
    # made before the device row budget was known).
    decision = replace(decision, workers=sharding.workers,
                       n_shards=sharding.n_shards)

    return ExecutionPlan(
        method=method, n_queries=n_queries, n_targets=n_targets, k=k,
        dim=dim, mq=int(mq), mt=int(mt), config=config,
        batching=QueryBatchPlan(rows_per_batch=rows, n_batches=n_batches),
        device=device, sharding=sharding, decision=decision)


def plan(queries, targets, k, method="sweet", device=None, mq=None, mt=None,
         **overrides):
    """Public planning API: what would ``knn_join`` decide for this input?

    Returns the :class:`ExecutionPlan` — adaptive configuration,
    landmark counts and the query-batching decision — without touching
    the data beyond reading its shape.
    """
    queries = np.asarray(queries, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if queries.ndim != 2 or targets.ndim != 2:
        raise ValueError("queries and targets must be 2-D arrays")
    return plan_shape(queries.shape[0], targets.shape[0], k,
                      queries.shape[1], method=method, device=device,
                      mq=mq, mt=mt, **overrides)
