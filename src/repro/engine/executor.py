"""Dispatch and batched execution of registered engines.

:func:`execute` is the single funnel every entry point
(:func:`repro.knn_join`, :class:`repro.SweetKNN`, the CLI) goes
through.  It resolves the query-batching decision from the planner and
either

* runs the engine once (the common case — the whole query set fits the
  device budget), or
* tiles the query set into device-memory-sized batches and merges the
  per-batch :class:`~repro.core.result.KNNResult`s.

For prepared-index engines the batched path builds the Step-1 state
(:func:`~repro.core.ti_knn.prepare_clusters`) **once**, then restricts
each engine call to a ``query_subset`` of the shared plan.  Because the
level-2 scan of a query depends only on its own cluster's candidate
list and bound, every per-query result and work counter is bit-for-bit
identical to the unbatched run, and the merged counters are exactly the
unbatched totals (the shared preparation is accounted on the first
batch only, via ``account_prepare``).  Engines without prepared-index
support are batched by plain row slicing, which is counter-additive by
construction.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..errors import ValidationError
from .base import ExecutionContext
from .planner import partition_ranges, plan_shape

__all__ = ["execute"]


def execute(spec, queries, targets, k, rng=None, device=None,
            query_batch_size=None, **options):
    """Run ``spec`` on the join, batching oversized query sets.

    Parameters
    ----------
    spec:
        A registered :class:`~repro.engine.base.EngineSpec`.
    rng, device:
        Landmark RNG and (resolved) device; forwarded via the context.
    query_batch_size:
        Force a tile size (tests, experiments).  ``None`` asks the
        planner, which only batches prepared-index device engines whose
        working set exceeds device memory.
    options:
        Engine options, forwarded verbatim.  ``plan`` (a prebuilt
        :class:`~repro.core.ti_knn.JoinPlan`) and ``mq``/``mt`` are
        intercepted where the batched path owns the preparation.
    """
    n_q = len(queries)
    with obs.span("engine.execute", engine=spec.name, n_queries=int(n_q),
                  n_targets=int(len(targets)), k=int(k)) as sp:
        result = _execute(spec, queries, targets, k, rng=rng, device=device,
                          query_batch_size=query_batch_size, **options)
        sp.annotate(method=result.method,
                    saved_fraction=round(result.stats.saved_fraction, 4))
        if result.profile is not None:
            sp.annotate(sim_time_s=result.profile.sim_time_s)
        tracer = obs.current_tracer()
        if tracer is not None:
            result.stats.publish(tracer.registry)
            if result.profile is not None:
                result.profile.publish(tracer.registry)
                tracer.add_artifact("pipeline_profile", result.profile)
        return result


def _execute(spec, queries, targets, k, rng=None, device=None,
             query_batch_size=None, **options):
    n_q = len(queries)
    prepared_plan = (options.pop("plan", None)
                     if spec.caps.supports_prepared_index else None)
    rows = _resolve_rows(spec, queries, targets, k, device,
                         query_batch_size, options)

    if rows >= n_q:
        ctx = ExecutionContext(rng=rng, device=device, plan=prepared_plan)
        return spec.run(queries, targets, k, ctx, **options)

    ranges = partition_ranges(n_q, rows)
    batches = []
    if spec.caps.supports_prepared_index:
        # Imported here: executor <-> core would otherwise cycle.
        from ..core.ti_knn import prepare_clusters
        mq = options.pop("mq", None)
        mt = options.pop("mt", None)
        shared = prepared_plan
        if shared is None:
            budget = device.global_mem_bytes if device is not None else None
            shared = prepare_clusters(queries, targets, rng, mq=mq, mt=mt,
                                      memory_budget_bytes=budget)
        for i, (start, stop) in enumerate(ranges):
            subset = np.arange(start, stop)
            ctx = ExecutionContext(rng=rng, device=device, plan=shared,
                                   query_subset=subset,
                                   account_prepare=(i == 0))
            with obs.span("engine.batch", index=i, start=int(start),
                          stop=int(stop)):
                batches.append((subset, spec.run(queries, targets, k, ctx,
                                                 **options)))
    else:
        for i, (start, stop) in enumerate(ranges):
            ctx = ExecutionContext(rng=rng, device=device)
            with obs.span("engine.batch", index=i, start=int(start),
                          stop=int(stop)):
                batches.append((np.arange(start, stop),
                                spec.run(queries[start:stop], targets, k, ctx,
                                         **options)))

    from ..core.result import merge_batch_results
    return merge_batch_results(batches, n_q, k)


def _resolve_rows(spec, queries, targets, k, device, query_batch_size,
                  options):
    """Tile size in queries; >= |Q| means a single unbatched call."""
    if query_batch_size is not None:
        rows = int(query_batch_size)
        if rows <= 0:
            raise ValidationError("query_batch_size must be positive")
        return rows
    caps = spec.caps
    if (not caps.needs_device or caps.tiles_internally
            or not caps.supports_prepared_index):
        return len(queries)
    batch_plan = plan_shape(
        len(queries), len(targets), k, np.asarray(queries).shape[1],
        method=spec.name, device=device,
        mq=options.get("mq"), mt=options.get("mt"),
        **{key: value for key, value in options.items()
           if key not in ("mq", "mt")})
    return batch_plan.batching.rows_per_batch
