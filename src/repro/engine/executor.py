"""Dispatch and batched execution of registered engines.

:func:`execute` is the single funnel every entry point
(:func:`repro.knn_join`, :class:`repro.SweetKNN`, the CLI) goes
through.  It resolves the query-batching decision from the planner and
either

* runs the engine once (the common case — the whole query set fits the
  device budget), or
* tiles the query set into device-memory-sized batches and merges the
  per-batch :class:`~repro.core.result.KNNResult`s.

For prepared-index engines the batched path builds the Step-1 state
(:func:`~repro.core.ti_knn.prepare_clusters`) **once**, then restricts
each engine call to a ``query_subset`` of the shared plan.  Because the
level-2 scan of a query depends only on its own cluster's candidate
list and bound, every per-query result and work counter is bit-for-bit
identical to the unbatched run, and the merged counters are exactly the
unbatched totals (the shared preparation is accounted on the first
batch only, via ``account_prepare``).  Engines without prepared-index
support are batched by plain row slicing, which is counter-additive by
construction.

With ``workers > 1`` the same tiles fan out across a
:mod:`repro.parallel` worker pool instead of running sequentially.
Sharded execution inherits the batched path's contract wholesale —
each worker rebuilds (or receives) the identical Step-1 plan, exactly
one shard accounts the preparation, and the per-shard results merge in
tile order — so results and summed counters stay bit-for-bit equal to
the serial run.
"""

from __future__ import annotations

import contextlib
import math
import time

import numpy as np

from .. import obs
from ..errors import EngineUnavailableError, ValidationError
from .registry import missing_requirements
from ..parallel import get_pool, plan_shards, resolve_pool_kind, \
    resolve_workers
from ..index.cache import PlanHandle
from ..parallel.worker import ShardJob, ShardTask, plan_cache_key
from .base import ExecutionContext
from .planner import partition_ranges, plan_shape

__all__ = ["execute"]


def execute(spec, queries, targets, k, rng=None, device=None,
            query_batch_size=None, workers=None, pool=None, index=None,
            explain=False, decision=None, **options):
    """Run ``spec`` on the join, batching oversized query sets.

    Parameters
    ----------
    spec:
        A registered :class:`~repro.engine.base.EngineSpec`.
    rng, device:
        Landmark RNG and (resolved) device; forwarded via the context.
    explain:
        Assemble a :class:`~repro.obs.audit.QueryAudit` — plan knobs,
        shard fan-out, funnel counts, per-span timings — and attach it
        as ``result.audit``.  Runs under a private tracer when no
        ambient one is active, so explain works without any tracing
        setup; the published counters are guarded by the idempotent
        ``JoinStats.publish``, so auditing never double-counts.
    query_batch_size:
        Force a tile size (tests, experiments).  ``None`` asks the
        planner, which only batches prepared-index device engines whose
        working set exceeds device memory.
    workers, pool:
        Fan the query tiles across a :mod:`repro.parallel` worker pool
        (``pool`` is ``"process"``/``"thread"``/``"serial"``).  Both
        default to the ``REPRO_WORKERS``/``REPRO_POOL`` environment
        and ultimately to serial execution; sharded and serial runs
        return bit-identical results and summed counters.
    index:
        The :class:`repro.index.Index` the prebuilt ``plan`` came
        from, when the caller has one.  A disk-backed index lets
        process-pool sharding ship a zero-copy
        :class:`~repro.index.cache.PlanHandle` (index path +
        ``(fingerprint, version)``) instead of pickling the target
        arrays into every worker.
    decision:
        The :class:`repro.sched.Decision` that chose this engine, when
        the caller already resolved one (``method="auto"``).  ``None``
        resolves the pinned-engine decision here, so every run carries
        an auditable record with predicted-vs-actual error in
        ``result.stats.extra["decision"]``.
    options:
        Engine options, forwarded verbatim.  ``plan`` (a prebuilt
        :class:`~repro.core.ti_knn.JoinPlan`) and ``mq``/``mt`` are
        intercepted where the batched path owns the preparation.
    """
    n_q = len(queries)
    with contextlib.ExitStack() as stack:
        tracer = obs.current_tracer()
        if explain and tracer is None:
            # Explain needs span timings; give the call a private
            # tracer when the caller didn't set one up.
            from ..obs.tracer import Tracer
            tracer = Tracer()
            stack.enter_context(obs.use_tracer(tracer))
        spans_before = len(tracer.finished_spans()) if explain else 0
        if decision is None:
            decision = _resolve_decision(spec, queries, targets, k,
                                         workers, pool, options)
        with obs.span("engine.execute", engine=spec.name,
                      n_queries=int(n_q), n_targets=int(len(targets)),
                      k=int(k)) as sp:
            obs.event("sched.decision", engine=decision.engine,
                      source=decision.source, workers=decision.workers,
                      predicted_s=decision.predicted_s,
                      reason=decision.reason)
            started = time.perf_counter()
            result = _execute(spec, queries, targets, k, rng=rng,
                              device=device,
                              query_batch_size=query_batch_size,
                              workers=workers, pool=pool, index=index,
                              explain=explain, decision=decision, **options)
            actual_s = time.perf_counter() - started
            record = _decision_record(decision, actual_s)
            result.stats.extra["decision"] = record
            obs.event("sched.outcome", engine=decision.engine,
                      source=decision.source,
                      predicted_s=record["predicted_s"],
                      actual_s=record["actual_s"],
                      log_error=record.get("log_error"))
            sp.annotate(method=result.method,
                        saved_fraction=round(result.stats.saved_fraction, 4))
            if result.profile is not None:
                sp.annotate(sim_time_s=result.profile.sim_time_s)
            if tracer is not None:
                result.stats.publish(tracer.registry)
                if result.profile is not None:
                    result.profile.publish(tracer.registry)
                    tracer.add_artifact("pipeline_profile", result.profile)
        if explain:
            result.audit = _assemble_audit(
                spec, result, device, options,
                tracer.finished_spans()[spans_before:])
        return result


def _resolve_decision(spec, queries, targets, k, workers, pool, options):
    """The pinned-engine scheduling decision for a direct ``execute``.

    Reads the clusterability proxy off a prebuilt plan when the caller
    passed one (the landmark radii are free); shape-only otherwise.
    """
    from ..sched import clusterability_from_plan, decide

    clusterability = None
    prebuilt = options.get("plan") if spec.caps.supports_prepared_index \
        else None
    if prebuilt is not None:
        clusterability = clusterability_from_plan(prebuilt)
    return decide(len(queries), len(targets), int(k),
                  int(np.asarray(queries).shape[1]), method=spec.name,
                  clusterability=clusterability, workers=workers, pool=pool)


def _decision_record(decision, actual_s):
    """The decision payload plus post-run predicted-vs-actual error."""
    record = decision.to_dict()
    record["actual_s"] = round(float(actual_s), 6)
    predicted = record.get("predicted_s")
    if predicted and actual_s > 0:
        record["error_ratio"] = round(float(actual_s) / predicted, 4)
        record["log_error"] = round(
            abs(math.log(float(actual_s) / predicted)), 4)
    return record


def _assemble_audit(spec, result, device, options, spans):
    """Build the :class:`~repro.obs.audit.QueryAudit` for one run."""
    from ..obs.audit import QueryAudit, span_timings
    from ..obs.funnel import funnel_from_stats

    stats = result.stats
    extra = stats.extra
    shards = tuple(extra.pop("shard_detail", ()))
    plan_info = {
        "mq": stats.mq, "mt": stats.mt,
        "query_batches": extra.get("query_batches", 1),
        "workers": extra.get("workers", 1),
        "shards": extra.get("shards", 1),
        "pool": extra.get("pool", "serial"),
    }
    if "zero_copy" in extra:
        plan_info["zero_copy"] = extra["zero_copy"]
    if device is not None:
        plan_info["device"] = getattr(device, "name", str(device))
    audit_options = {
        key: value for key, value in options.items()
        if key != "plan"
        and isinstance(value, (bool, int, float, str, type(None)))}
    ef = audit_options.get("ef")
    return QueryAudit(
        method=result.method or spec.name,
        k=int(stats.k), n_queries=int(stats.n_queries),
        n_targets=int(stats.n_targets), dim=int(stats.dim),
        ef=int(ef) if ef is not None else None,
        plan=plan_info, options=audit_options,
        counters=stats.summary(), funnel=funnel_from_stats(stats),
        shards=shards, timings=span_timings(spans),
        decision=extra.get("decision"))


def _execute(spec, queries, targets, k, rng=None, device=None,
             query_batch_size=None, workers=None, pool=None, index=None,
             explain=False, decision=None, **options):
    n_q = len(queries)
    missing_deps = missing_requirements(spec)
    if missing_deps:
        from ..native.support import NUMBA_INSTALL_HINT
        hint = None
        if "numba" in missing_deps:
            fallback = spec.name.replace("-native", "-flat")
            hint = NUMBA_INSTALL_HINT % fallback
        raise EngineUnavailableError(spec.name, missing_deps, hint=hint)
    missing = [name for name in spec.required_options
               if options.get(name) is None]
    if missing:
        raise ValidationError(
            "method '%s' requires the '%s' knob; pass %s=... "
            "(CLI: --%s)" % (spec.name, missing[0], missing[0],
                             missing[0].replace("_", "-")))
    prepared_plan = (options.pop("plan", None)
                     if spec.caps.supports_prepared_index else None)
    rows = _resolve_rows(spec, queries, targets, k, device,
                         query_batch_size, options)

    # A calibrated model owns the fan-out it recommended; the fallback
    # path resolves workers exactly as before.
    if decision is not None and decision.source == "model":
        n_workers = decision.workers
    else:
        n_workers = resolve_workers(workers)
    if n_workers > 1:
        shard_plan = plan_shards(n_q, rows, n_workers,
                                 kind=resolve_pool_kind(pool),
                                 fixed_rows=query_batch_size is not None)
        if shard_plan.sharded:
            return _execute_sharded(spec, queries, targets, k, shard_plan,
                                    rng=rng, device=device,
                                    prepared_plan=prepared_plan,
                                    index=index, explain=explain, **options)

    if rows >= n_q:
        ctx = ExecutionContext(rng=rng, device=device, plan=prepared_plan)
        return spec.run(queries, targets, k, ctx, **options)

    ranges = partition_ranges(n_q, rows)
    batches = []
    if spec.caps.supports_prepared_index:
        # Imported here: executor <-> core would otherwise cycle.
        from ..core.ti_knn import prepare_clusters
        mq = options.pop("mq", None)
        mt = options.pop("mt", None)
        shared = prepared_plan
        if shared is None:
            budget = device.global_mem_bytes if device is not None else None
            shared = prepare_clusters(queries, targets, rng, mq=mq, mt=mt,
                                      memory_budget_bytes=budget)
        for i, (start, stop) in enumerate(ranges):
            subset = np.arange(start, stop)
            ctx = ExecutionContext(rng=rng, device=device, plan=shared,
                                   query_subset=subset,
                                   account_prepare=(i == 0))
            with obs.span("engine.batch", index=i, start=int(start),
                          stop=int(stop)):
                batches.append((subset, spec.run(queries, targets, k, ctx,
                                                 **options)))
    else:
        for i, (start, stop) in enumerate(ranges):
            ctx = ExecutionContext(rng=rng, device=device)
            with obs.span("engine.batch", index=i, start=int(start),
                          stop=int(stop)):
                batches.append((np.arange(start, stop),
                                spec.run(queries[start:stop], targets, k, ctx,
                                         **options)))

    from ..core.result import merge_results
    return merge_results(batches, n_q, k)


def _execute_sharded(spec, queries, targets, k, shard_plan, rng=None,
                     device=None, prepared_plan=None, index=None,
                     explain=False, **options):
    """Fan the query tiles across the worker pool; merge in tile order.

    Tiles are dealt round-robin into one task per worker, so the input
    arrays (and, when the caller prebuilt one, the Step-1 plan) are
    pickled once per worker rather than once per tile.  When the plan
    comes from a disk-backed :class:`repro.index.Index` and the pool is
    process-based, the job ships a zero-copy
    :class:`~repro.index.cache.PlanHandle` — index path plus
    ``(fingerprint, version)`` — instead of the target arrays, and the
    workers reattach them via a shared read-only mmap.  Tile 0 is the
    job's accounting shard (``account_prepare``), mirroring the serial
    batched path, so summed counters equal the unbatched totals.
    """
    n_q = len(queries)
    mode = "shared" if spec.caps.supports_prepared_index else "slice"
    mq = mt = None
    plan_key = None
    handle = None
    budget = device.global_mem_bytes if device is not None else None
    if mode == "shared":
        mq = options.pop("mq", None)
        mt = options.pop("mt", None)
        if (prepared_plan is not None and index is not None
                and shard_plan.kind == "process"
                and index.source_path is not None
                and prepared_plan.target_clusters
                is index.target_clusters):
            handle = PlanHandle(index_path=index.source_path,
                                index_key=index.key,
                                query_clusters=prepared_plan.query_clusters,
                                center_dists=prepared_plan.center_dists)
        plan_key = plan_cache_key(queries, targets, rng=rng, mq=mq, mt=mt,
                                  memory_budget_bytes=budget,
                                  plan=prepared_plan, handle=handle)

    job = ShardJob(engine=spec.name, mode=mode, queries=queries,
                   targets=None if handle is not None else targets,
                   k=int(k), rng=rng, device=device,
                   options=dict(options), mq=mq, mt=mt,
                   memory_budget_bytes=budget,
                   plan=None if handle is not None else prepared_plan,
                   handle=handle, plan_key=plan_key, account_index=0)
    ranges = shard_plan.ranges(n_q)
    chunks = [[] for _ in range(shard_plan.workers)]
    for index, (start, stop) in enumerate(ranges):
        chunks[index % shard_plan.workers].append(
            (index, int(start), int(stop)))
    tasks = [ShardTask(job=job, shards=tuple(chunk))
             for chunk in chunks if chunk]

    worker_pool = get_pool(shard_plan.workers, shard_plan.kind)
    with obs.span("engine.shard_fanout", workers=shard_plan.workers,
                  shards=len(ranges), pool=worker_pool.kind,
                  rows_per_shard=shard_plan.rows_per_shard,
                  zero_copy=handle is not None):
        outcomes = worker_pool.run(tasks)
    outcomes.sort(key=lambda outcome: outcome.index)

    # Workers run without a tracer (fresh threads/processes), so the
    # parent re-emits one span per shard and publishes the pool gauges;
    # the merged stats are published once by execute()'s outer span.
    tracer = obs.current_tracer()
    if tracer is not None:
        tracer.registry.gauge("parallel.workers").set(shard_plan.workers)
        tracer.registry.counter("parallel.shards").inc(len(outcomes))
    for outcome in outcomes:
        with obs.span("engine.shard", index=outcome.index,
                      start=outcome.start, stop=outcome.stop,
                      worker=outcome.worker, cache_hit=outcome.cache_hit,
                      wall_s=round(outcome.wall_s, 6)):
            pass

    from ..core.result import merge_results
    with obs.span("engine.shard_merge", shards=len(outcomes)):
        merged = merge_results(
            [(np.arange(outcome.start, outcome.stop), outcome.result)
             for outcome in outcomes], n_q, k)
    merged.stats.extra["workers"] = shard_plan.workers
    merged.stats.extra["shards"] = len(outcomes)
    merged.stats.extra["pool"] = worker_pool.kind
    merged.stats.extra["shard_cache_hits"] = sum(
        1 for outcome in outcomes if outcome.cache_hit)
    merged.stats.extra["zero_copy"] = handle is not None
    merged.stats.extra["shard_wall_s"] = [round(outcome.wall_s, 6)
                                          for outcome in outcomes]
    if explain:
        from ..obs.funnel import funnel_from_stats
        merged.stats.extra["shard_detail"] = [
            {"shard": outcome.index, "start": outcome.start,
             "stop": outcome.stop, "worker": outcome.worker,
             "cache_hit": outcome.cache_hit,
             "wall_s": round(outcome.wall_s, 6),
             "funnel": funnel_from_stats(outcome.result.stats)}
            for outcome in outcomes]
    return merged


def _resolve_rows(spec, queries, targets, k, device, query_batch_size,
                  options):
    """Tile size in queries; >= |Q| means a single unbatched call."""
    if query_batch_size is not None:
        rows = int(query_batch_size)
        if rows <= 0:
            raise ValidationError("query_batch_size must be positive")
        return rows
    caps = spec.caps
    if (not caps.needs_device or caps.tiles_internally
            or not caps.supports_prepared_index):
        return len(queries)
    batch_plan = plan_shape(
        len(queries), len(targets), k, np.asarray(queries).shape[1],
        method=spec.name, device=device,
        mq=options.get("mq"), mt=options.get("mt"),
        **{key: value for key, value in options.items()
           if key not in ("mq", "mt")})
    return batch_plan.batching.rows_per_batch
