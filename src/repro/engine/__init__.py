"""Unified execution engine: backend registry, planner, batched execution.

Three layers (see DESIGN.md, "Architecture: engines, planner, prepared
index"):

1. :mod:`repro.engine.base` / :mod:`repro.engine.registry` — the
   :class:`EngineSpec` protocol with declared capabilities, and the
   registry that ``repro.METHODS``, the CLI method list and third-party
   engines all share.
2. :mod:`repro.engine.planner` — the public :func:`plan` API: the
   Fig. 8 adaptive configuration plus the device-memory partitioning
   budgets, wrapped in an inspectable :class:`ExecutionPlan`.
3. :mod:`repro.engine.prepared` / :mod:`repro.engine.executor` —
   :class:`PreparedIndex` ("cluster once, query many") and the batched
   dispatcher that tiles oversized query sets and merges per-batch
   results.

Heavier submodules load lazily so that core modules may import
:mod:`repro.engine.base` without cycles.
"""

from __future__ import annotations

from importlib import import_module

from .base import EngineCaps, EngineSpec, ExecutionContext
from .registry import (METHODS, MethodsView, available_engine_names,
                       engine_available, engine_names, get_engine,
                       missing_requirements, register,
                       register_requirement_probe, requirement_available,
                       unregister)

__all__ = [
    "EngineCaps", "EngineSpec", "ExecutionContext",
    "METHODS", "MethodsView", "engine_names", "get_engine",
    "register", "unregister",
    "available_engine_names", "engine_available", "missing_requirements",
    "register_requirement_probe", "requirement_available",
    "ExecutionPlan", "QueryBatchPlan", "plan", "plan_shape",
    "ti_partition_rows", "dense_partition_rows", "partition_ranges",
    "PreparedIndex", "execute",
]

_LAZY = {
    "ExecutionPlan": ".planner",
    "QueryBatchPlan": ".planner",
    "plan": ".planner",
    "plan_shape": ".planner",
    "ti_partition_rows": ".planner",
    "dense_partition_rows": ".planner",
    "partition_ranges": ".planner",
    "PreparedIndex": ".prepared",
    "execute": ".executor",
}


def __getattr__(name):
    if name in _LAZY:
        value = getattr(import_module(_LAZY[name], __name__), name)
        globals()[name] = value
        return value
    raise AttributeError("module %r has no attribute %r" % (__name__, name))


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
