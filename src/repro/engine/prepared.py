"""Compatibility shim — prepared state now lives in :mod:`repro.index`.

The TI preparation phase ("cluster once, query many", Sec. III-A) used
to be implemented here as ``PreparedIndex``.  The implementation moved
to :class:`repro.index.Index`, which adds the full lifecycle — on-disk
persistence with mmap loading, incremental ``add``/``remove`` with a
rebuild policy, a versioned ``(fingerprint, version)`` cache identity —
on top of the exact same build path and ``join_plan`` contract.

``PreparedIndex`` remains importable from here (it *is* ``Index``), as
does :func:`repro.index.fingerprint_points`, so engine-layer callers
keep working unchanged.
"""

from __future__ import annotations

from ..index import Index, fingerprint_points

__all__ = ["PreparedIndex", "fingerprint_points"]

#: The prepared target index; see :class:`repro.index.Index`.
PreparedIndex = Index
