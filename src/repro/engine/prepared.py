"""Prepared target index — "cluster once, query many" (Sec. III-A).

The TI preparation phase (landmark selection + clustering + descending
member sort) depends only on the *target* set, yet the original
``SweetKNN.query`` re-ran it per call.  :class:`PreparedIndex` performs
it exactly once and is shared by every TI engine (``sweet``,
``ti-gpu``, ``ti-cpu``): each query batch only clusters its own query
points and combines them with the prepared target side into a
:class:`~repro.core.ti_knn.JoinPlan`.

This mirrors the plan/execute split of hybrid KNN-join systems: the
expensive, query-independent state is built once, and arbitrarily many
query tiles execute against it.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..core.clustering import center_distances, cluster_points
from ..core.landmarks import (determine_landmark_count,
                              select_landmarks_random_spread)
from ..core.ti_knn import JoinPlan
from ..errors import ValidationError

__all__ = ["PreparedIndex", "fingerprint_points"]


def fingerprint_points(points):
    """Content hash of a point set: shape, dtype and raw bytes.

    Two arrays with equal values (and shape/dtype) share a fingerprint
    regardless of object identity, so an index cache keyed on it
    (:class:`repro.serve.IndexStore`) recognises the same target set
    arriving in different request payloads.
    """
    points = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    digest = hashlib.sha1()
    digest.update(repr((points.shape, points.dtype.str)).encode())
    digest.update(points.tobytes())
    return digest.hexdigest()


class PreparedIndex:
    """Landmarks + clustered, sorted target set, computed exactly once.

    Parameters
    ----------
    targets:
        (n, d) target point set.
    seed:
        Landmark-selection seed (ignored when ``rng`` is given).
    rng:
        Optional ``numpy.random.Generator`` shared with the caller, so
        an index owner like :class:`~repro.core.api.SweetKNN` keeps one
        deterministic stream across preparation and queries.
    mt:
        Optional target landmark-count override (defaults to
        ``detLmNum``'s ``3 * sqrt(|T|)``).
    memory_budget_bytes:
        Caps the landmark counts like the device memory budget does.
    """

    def __init__(self, targets, seed=0, rng=None, mt=None,
                 memory_budget_bytes=None):
        targets = np.asarray(targets, dtype=np.float64)
        if targets.ndim != 2 or targets.shape[0] == 0:
            raise ValidationError("targets must be a non-empty 2-D array")
        self.targets = targets
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._budget = memory_budget_bytes
        if mt is None:
            mt = determine_landmark_count(len(targets), memory_budget_bytes)
        landmarks = select_landmarks_random_spread(targets, mt, self._rng)
        self.target_clusters = cluster_points(targets, landmarks,
                                              sort_descending=True)
        #: Times the target side has been prepared; must stay 1 for the
        #: lifetime of the index (regression-tested).
        self.build_count = 1

    @property
    def mt(self):
        return self.target_clusters.n_clusters

    @property
    def dim(self):
        return self.targets.shape[1]

    @property
    def nbytes(self):
        """Approximate resident size of the prepared target state.

        Counts the target matrix once plus the cluster metadata (the
        centres, assignments, per-member distances and sorted member
        lists).  This is the currency of the serving layer's
        byte-budgeted index cache.
        """
        ct = self.target_clusters
        total = self.targets.nbytes
        total += ct.centers.nbytes + ct.center_indices.nbytes
        total += ct.assignment.nbytes + ct.dist_to_center.nbytes
        total += sum(m.nbytes for m in ct.members)
        total += sum(d.nbytes for d in ct.member_dists)
        if ct.radius is not None:
            total += ct.radius.nbytes
        return int(total)

    def join_plan(self, queries, mq=None, rng=None):
        """Cluster ``queries`` against the prepared target side.

        Only the query side is clustered here — the target clusters,
        their sorted member lists and radii are reused as built.

        Returns
        -------
        JoinPlan
        """
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[0] == 0:
            raise ValidationError("queries must be a non-empty 2-D array")
        if queries.shape[1] != self.dim:
            raise ValidationError(
                "dimension mismatch: queries d=%d, prepared index d=%d"
                % (queries.shape[1], self.dim))
        rng = rng if rng is not None else self._rng
        if mq is None:
            mq = determine_landmark_count(len(queries), self._budget)
        q_landmarks = select_landmarks_random_spread(queries, mq, rng)
        query_clusters = cluster_points(queries, q_landmarks,
                                        sort_descending=False)
        cdist = center_distances(query_clusters, self.target_clusters)
        return JoinPlan(query_clusters=query_clusters,
                        target_clusters=self.target_clusters,
                        center_dists=cdist)
