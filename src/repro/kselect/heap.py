"""Bounded max-heap tracking the k nearest distances ("kNearests").

This is the data structure each GPU thread keeps in Algorithm 2 of the
paper: a fixed-capacity max-heap whose root is the current k-th nearest
distance (the filtering bound ``theta``).  Inserting a closer neighbour
evicts the root, exactly the "evict kNearests.max, and put q2t into
kNearests" step of Algorithm 2 line 16.

The heap stores ``(distance, index)`` pairs; slots not yet filled with a
real neighbour hold ``(inf, -1)`` so ``max_distance`` is usable as a
bound from the first insertion attempt.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KNearestHeap"]


class KNearestHeap:
    """Fixed-capacity max-heap of the k smallest distances seen so far."""

    __slots__ = ("k", "_dists", "_idx", "_count")

    def __init__(self, k, bound=np.inf):
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = int(k)
        self._dists = np.full(self.k, float(bound), dtype=np.float64)
        self._idx = np.full(self.k, -1, dtype=np.int64)
        self._count = 0

    # ------------------------------------------------------------------
    @property
    def max_distance(self):
        """The current k-th nearest distance bound (heap root)."""
        return self._dists[0]

    @property
    def count(self):
        """Number of real neighbours inserted (excludes bound slots)."""
        return self._count

    @property
    def full(self):
        return self._count >= self.k

    def push(self, distance, index):
        """Offer a neighbour; keep it only if it beats the current root.

        Returns True when the neighbour was kept (the bound tightened
        or a free slot was filled).
        """
        if distance >= self._dists[0]:
            return False
        if self._idx[0] == -1:
            self._count += 1
        self._replace_root(distance, index)
        return True

    def _replace_root(self, distance, index):
        dists, idx = self._dists, self._idx
        dists[0] = distance
        idx[0] = index
        pos = 0
        k = self.k
        while True:
            left = 2 * pos + 1
            right = left + 1
            largest = pos
            if left < k and dists[left] > dists[largest]:
                largest = left
            if right < k and dists[right] > dists[largest]:
                largest = right
            if largest == pos:
                break
            dists[pos], dists[largest] = dists[largest], dists[pos]
            idx[pos], idx[largest] = idx[largest], idx[pos]
            pos = largest

    # ------------------------------------------------------------------
    def sorted_items(self):
        """Neighbours as ``(distances, indices)`` sorted ascending.

        Bound-only slots (no real neighbour inserted) are excluded.
        """
        mask = self._idx >= 0
        order = np.argsort(self._dists[mask], kind="stable")
        return self._dists[mask][order], self._idx[mask][order]

    def raw(self):
        """The underlying ``(distances, indices)`` arrays (heap order)."""
        return self._dists, self._idx

    def check_invariant(self):
        """True when every parent is >= its children (max-heap)."""
        for pos in range(self.k):
            for child in (2 * pos + 1, 2 * pos + 2):
                if child < self.k and self._dists[child] > self._dists[pos]:
                    return False
        return True

    def __len__(self):
        return self._count

    def __repr__(self):
        return "KNearestHeap(k=%d, count=%d, theta=%g)" % (
            self.k, self._count, self.max_distance)
