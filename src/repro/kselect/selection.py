"""k-smallest selection primitives.

Two selection paths appear in the paper:

* the CUBLAS-style baseline launches a second kernel where each thread
  selects the k smallest of a query's |T| distances
  (:func:`select_k_smallest`);
* Sweet KNN's multi-thread-per-query mode ends with a merge of several
  per-thread sorted heaps, "a technique similar to the one in merge
  sort" (Section IV-B2) — :func:`merge_sorted_lists`.

The partial level-2 filter also needs a selection over the surviving
distances stored to global memory (:func:`select_k_from_pairs`).
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["select_k_smallest", "merge_sorted_lists", "select_k_from_pairs"]


def select_k_smallest(distances, k, indices=None):
    """Return the k smallest distances (and their indices), ascending.

    Mirrors the per-query selection kernel of the Garcia et al.
    baseline.  Ties are broken by index for determinism.
    """
    distances = np.asarray(distances, dtype=np.float64)
    if indices is None:
        indices = np.arange(distances.size, dtype=np.int64)
    else:
        indices = np.asarray(indices, dtype=np.int64)
    k = min(int(k), distances.size)
    if k <= 0:
        return np.empty(0), np.empty(0, dtype=np.int64)
    part = np.argpartition(distances, k - 1)[:k]
    order = np.lexsort((indices[part], distances[part]))
    chosen = part[order]
    return distances[chosen], indices[chosen]


def merge_sorted_lists(lists, k):
    """Merge per-thread sorted ``(distances, indices)`` lists, keep k best.

    Each input list is ascending (a sorted per-thread heap); the output
    is the k globally smallest, ascending — Sweet KNN's final merge
    kernel for one query point.
    """
    merged = heapq.merge(
        *[zip(np.asarray(d, dtype=np.float64), np.asarray(i, dtype=np.int64))
          for d, i in lists])
    dists, idx = [], []
    for dist, index in merged:
        dists.append(dist)
        idx.append(index)
        if len(dists) == k:
            break
    return (np.asarray(dists, dtype=np.float64),
            np.asarray(idx, dtype=np.int64))


def select_k_from_pairs(pairs, k):
    """k smallest of an unsorted iterable of ``(distance, index)`` pairs.

    Used by the partial level-2 filter, whose surviving distances are
    written to global memory and selected by a later kernel
    (Section IV-B1).
    """
    best = heapq.nsmallest(int(k), pairs)
    if not best:
        return np.empty(0), np.empty(0, dtype=np.int64)
    dists, idx = zip(*best)
    return (np.asarray(dists, dtype=np.float64),
            np.asarray(idx, dtype=np.int64))
