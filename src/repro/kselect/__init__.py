"""k-selection data structures: the ``kNearests`` heap and merges."""

from .heap import KNearestHeap
from .insertion import InsertionSelector, insertion_select
from .selection import merge_sorted_lists, select_k_from_pairs, select_k_smallest

__all__ = ["KNearestHeap", "InsertionSelector", "insertion_select",
           "merge_sorted_lists", "select_k_from_pairs", "select_k_smallest"]
