"""Garcia-style insertion-sort k-selection (the baseline's Stage 2).

The CUBLAS-based KNN of Garcia et al. [13], [15] selects each query's
k nearest by a *partial insertion sort*: the thread keeps the k best
distances in a sorted array; each streamed candidate is compared
against the current k-th value and, if smaller, inserted by shifting
(insertion sort step).  This module implements that algorithm exactly
and counts its comparisons and shifts, which the simulated baseline
uses for cycle-accurate(ish) accounting of the selection kernel.

Compared to the heap (:mod:`repro.kselect.heap`), insertion keeps the
array fully sorted — cheap lookups of the k-th bound, more expensive
inserts (O(k) shifts vs O(log k) sifts).
"""

from __future__ import annotations

import numpy as np

__all__ = ["InsertionSelector", "insertion_select"]


class InsertionSelector:
    """A k-bounded sorted array maintained by insertion (Garcia)."""

    __slots__ = ("k", "dists", "idx", "count", "comparisons", "shifts")

    def __init__(self, k):
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = int(k)
        self.dists = np.full(self.k, np.inf, dtype=np.float64)
        self.idx = np.full(self.k, -1, dtype=np.int64)
        self.count = 0
        self.comparisons = 0
        self.shifts = 0

    @property
    def kth(self):
        """The current k-th smallest bound (inf until k inserts)."""
        return self.dists[self.k - 1]

    def offer(self, distance, index):
        """Stream one candidate; returns True when it was inserted."""
        self.comparisons += 1
        if distance >= self.dists[self.k - 1]:
            return False
        # Find the insertion point (linear scan from the tail of the
        # *filled* prefix, as the GPU kernel does) and shift the larger
        # entries down.
        pos = min(self.count, self.k - 1)
        while pos > 0 and self.dists[pos - 1] > distance:
            self.dists[pos] = self.dists[pos - 1]
            self.idx[pos] = self.idx[pos - 1]
            self.shifts += 1
            pos -= 1
        self.dists[pos] = distance
        self.idx[pos] = index
        if self.count < self.k:
            self.count += 1
        return True

    def sorted_items(self):
        """The selected neighbours, ascending (real entries only)."""
        mask = self.idx >= 0
        return self.dists[mask], self.idx[mask]


def insertion_select(distances, k, indices=None):
    """Select the k smallest by streaming insertion (exact, counted).

    Returns
    -------
    (dists, idx, selector)
        Ascending selection plus the selector with its work counters.
    """
    distances = np.asarray(distances, dtype=np.float64)
    if indices is None:
        indices = np.arange(distances.size, dtype=np.int64)
    selector = InsertionSelector(k)
    for dist, index in zip(distances.tolist(),
                           np.asarray(indices).tolist()):
        selector.offer(dist, index)
    dists, idx = selector.sorted_items()
    return dists, idx, selector
