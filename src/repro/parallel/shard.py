"""Shard planning: how a query set is split across pool workers.

The planner's query-batching layer (PR 1) already defines the unit of
independent work — a query tile executed against the shared Step-1
plan via ``query_subset``.  :func:`plan_shards` chooses the tile size
and shard count *jointly* from the join shape, the device row budget
and the worker count: tiles never exceed the device budget, shrink
toward an even ``|Q| / workers`` split when more than one worker is
available, and never fall below :data:`MIN_ROWS_PER_SHARD` (tiny
inputs collapse back to the serial path, where a pool would only add
overhead).

Worker count and pool kind resolve from explicit arguments first, then
the ``REPRO_WORKERS`` / ``REPRO_POOL`` environment variables, then the
serial defaults — so existing callers see byte-identical behaviour
until they opt in.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..errors import ValidationError

__all__ = [
    "ShardPlan", "plan_shards", "resolve_workers", "resolve_pool_kind",
    "recommend_workers", "WORKERS_ENV", "POOL_ENV", "MIN_ROWS_PER_SHARD",
    "POOL_KINDS", "POOL_SPINUP_S", "PER_WORKER_S", "FANOUT_MARGIN",
]

#: Environment override for the default worker count (``--workers`` and
#: the ``workers=`` keyword take precedence).
WORKERS_ENV = "REPRO_WORKERS"

#: Environment override for the default pool kind.
POOL_ENV = "REPRO_POOL"

#: Below this many queries per shard, splitting further only buys
#: dispatch overhead (the per-shard work is micro-seconds).
MIN_ROWS_PER_SHARD = 32

POOL_KINDS = ("process", "thread", "serial")

#: Pinned pool-overhead constants for :func:`recommend_workers` —
#: one-off pool spin-up plus per-worker dispatch/serialisation cost, in
#: seconds.  Deliberately conservative: the recorded parallel-scaling
#: trajectory shows the 4096-row kegg join *losing* time at 2–4 workers
#: (`BENCH_parallel_scaling.json`), and these constants reproduce that
#: call.
POOL_SPINUP_S = 0.25
PER_WORKER_S = 0.15

#: Fan-out must beat the predicted serial time by this factor before it
#: is recommended — inside the margin, the model error is larger than
#: the saving.
FANOUT_MARGIN = 0.8


def recommend_workers(predicted_serial_s, n_queries, max_workers=None,
                      spinup_s=POOL_SPINUP_S, per_worker_s=PER_WORKER_S,
                      margin=FANOUT_MARGIN):
    """Cost-aware worker count for a join predicted to run serially in
    ``predicted_serial_s``.

    Models fan-out as ``serial/w + spinup + w * per_worker`` and picks
    the ``w`` minimising it, but only when the winner beats serial by
    :data:`FANOUT_MARGIN`; ties and small joins stay serial.  Never
    splits below :data:`MIN_ROWS_PER_SHARD` rows per worker.
    Deterministic for fixed inputs (``max_workers`` defaults to the
    visible core count — pass it explicitly for reproducible records
    across hosts).
    """
    serial = float(predicted_serial_s)
    if serial <= 0.0:
        return 1
    limit = _cpu_count() if max_workers is None else max(1, int(max_workers))
    limit = min(limit, max(1, int(n_queries) // int(MIN_ROWS_PER_SHARD)))
    best_w, best_t = 1, serial
    for w in range(2, limit + 1):
        t = serial / w + spinup_s + per_worker_s * w
        if t < best_t:
            best_w, best_t = w, t
    if best_w > 1 and best_t <= margin * serial:
        return best_w
    return 1


def resolve_workers(workers=None):
    """Resolve a worker count: argument > ``REPRO_WORKERS`` > 1.

    ``0`` (or ``"auto"``) means one worker per available core; the
    default of 1 keeps execution serial.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        workers = raw
    if isinstance(workers, str):
        if workers.lower() == "auto":
            return _cpu_count()
        try:
            workers = int(workers)
        except ValueError:
            raise ValidationError(
                "workers must be an integer or 'auto', got %r"
                % (workers,)) from None
    workers = int(workers)
    if workers < 0:
        raise ValidationError("workers must be >= 0 (0 means auto)")
    if workers == 0:
        return _cpu_count()
    return workers


def resolve_pool_kind(kind=None):
    """Resolve a pool kind: argument > ``REPRO_POOL`` > ``"process"``."""
    if kind is None or kind == "":
        kind = os.environ.get(POOL_ENV, "").strip().lower() or "process"
    kind = str(kind).lower()
    if kind not in POOL_KINDS:
        raise ValidationError(
            "pool must be one of %s, got %r" % (", ".join(POOL_KINDS), kind))
    return kind


def _cpu_count():
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class ShardPlan:
    """The sharding decision for one join: who runs which query tile."""

    workers: int
    n_shards: int
    rows_per_shard: int
    kind: str = "process"

    @property
    def sharded(self):
        """Whether execution actually fans out (else: stay serial)."""
        return self.workers > 1 and self.n_shards > 1

    def ranges(self, n_queries):
        """The ``(start, stop)`` query ranges, in tile order."""
        rows = max(1, int(self.rows_per_shard))
        return [(start, min(start + rows, int(n_queries)))
                for start in range(0, int(n_queries), rows)]

    def describe(self):
        return {"workers": self.workers, "shards": self.n_shards,
                "rows_per_shard": self.rows_per_shard, "pool": self.kind}


def plan_shards(n_queries, budget_rows, workers, kind="process",
                min_rows=MIN_ROWS_PER_SHARD, fixed_rows=False):
    """Choose shard count and tile size jointly.

    Parameters
    ----------
    n_queries:
        |Q| for this join.
    budget_rows:
        The device-memory row budget (the serial tile size); shards
        never exceed it, so sharded tiles still fit the device.
    workers:
        Resolved worker count (see :func:`resolve_workers`).
    kind:
        Pool kind the plan is for.
    min_rows:
        Floor on the shard size — below it, fan-out costs more than it
        saves and the plan collapses to fewer (or one) worker.
    fixed_rows:
        ``True`` when the caller forced ``query_batch_size``: the tile
        size is then honoured exactly and only the assignment of tiles
        to workers changes.
    """
    n_queries = int(n_queries)
    workers = max(1, int(workers))
    if n_queries <= 0:
        return ShardPlan(workers=1, n_shards=1, rows_per_shard=1, kind=kind)
    rows = max(1, min(int(budget_rows), n_queries))
    if workers > 1 and not fixed_rows:
        even = -(-n_queries // workers)
        rows = min(rows, max(even, min(int(min_rows), n_queries)))
    n_shards = max(1, -(-n_queries // rows))
    return ShardPlan(workers=min(workers, n_shards), n_shards=n_shards,
                     rows_per_shard=rows, kind=kind)
