"""Worker pools: process-based fan-out with thread/serial fallbacks.

A :class:`WorkerPool` wraps a ``concurrent.futures`` executor and runs
:class:`~repro.parallel.worker.ShardTask`s.  The process pool uses the
``fork`` start method where available, so workers inherit the engine
registry (including test-registered engines) and imported modules;
platforms without ``fork`` get the default start method, and if a
process pool cannot be created at all the pool degrades to threads
with a logged warning rather than failing the join.

Pools are shared per ``(kind, workers)`` through :func:`get_pool` —
executors are expensive to spin up, and a long-lived worker is what
makes the worker-side prepared-state cache pay off across requests.
Every shared pool is shut down at interpreter exit.
"""

from __future__ import annotations

import atexit
import logging
import threading
from concurrent.futures import BrokenExecutor, wait

from .shard import resolve_pool_kind
from .worker import run_shard_task

__all__ = ["WorkerPool", "get_pool", "shutdown_pools"]

logger = logging.getLogger("repro.parallel")


class WorkerPool:
    """A fixed-size pool executing shard tasks.

    Parameters
    ----------
    workers:
        Maximum concurrent workers.
    kind:
        ``"process"`` (default), ``"thread"`` or ``"serial"``.  The
        serial kind runs tasks inline — it exists so every execution
        path is the same code with and without fan-out.
    """

    def __init__(self, workers, kind="process"):
        self.workers = max(1, int(workers))
        self.kind = resolve_pool_kind(kind)
        self._executor = None
        self._lock = threading.Lock()

    def _ensure_executor(self):
        with self._lock:
            if self._executor is None:
                self._executor = self._create_executor()
            return self._executor

    def _create_executor(self):
        if self.kind == "process":
            try:
                import multiprocessing
                from concurrent.futures import ProcessPoolExecutor

                if "fork" in multiprocessing.get_all_start_methods():
                    context = multiprocessing.get_context("fork")
                else:
                    context = multiprocessing.get_context()
                return ProcessPoolExecutor(max_workers=self.workers,
                                           mp_context=context)
            except (ImportError, OSError, ValueError) as exc:
                logger.warning(
                    "process pool unavailable (%s); falling back to threads",
                    exc)
                self.kind = "thread"
        from concurrent.futures import ThreadPoolExecutor

        return ThreadPoolExecutor(max_workers=self.workers,
                                  thread_name_prefix="repro-worker")

    def run(self, tasks):
        """Run shard tasks and return the flat list of ShardOutcomes.

        Every submitted task settles before this returns — on error
        the first exception is re-raised only after the remaining
        tasks finish, which keeps the executor reusable (a worker that
        raised is a failed job, not a poisoned pool).  A broken
        executor (e.g. a killed worker process) is discarded so the
        next run starts fresh.
        """
        tasks = list(tasks)
        if self.kind == "serial" or self.workers <= 1 or len(tasks) <= 1:
            outcomes = []
            for task in tasks:
                outcomes.extend(run_shard_task(task))
            return outcomes

        executor = self._ensure_executor()
        try:
            futures = [executor.submit(run_shard_task, task)
                       for task in tasks]
        except (BrokenExecutor, RuntimeError):
            self._discard_executor()
            raise
        wait(futures)
        error = None
        outcomes = []
        for future in futures:
            exc = future.exception()
            if exc is not None:
                error = error or exc
            elif error is None:
                outcomes.extend(future.result())
        if error is not None:
            if isinstance(error, BrokenExecutor):
                self._discard_executor()
            raise error
        return outcomes

    def _discard_executor(self):
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self, wait=True):
        """Shut the underlying executor down (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)

    def __repr__(self):
        return "WorkerPool(workers=%d, kind=%r)" % (self.workers, self.kind)


_pools = {}
_pools_lock = threading.Lock()


def get_pool(workers, kind="process"):
    """The shared pool for ``(kind, workers)``, created on first use."""
    kind = resolve_pool_kind(kind)
    key = (kind, max(1, int(workers)))
    with _pools_lock:
        pool = _pools.get(key)
        if pool is None:
            pool = WorkerPool(key[1], kind=kind)
            _pools[key] = pool
        return pool


def shutdown_pools():
    """Shut down every shared pool (registered at interpreter exit)."""
    with _pools_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_pools)
