"""Multi-core sharded execution (see docs/PARALLEL.md).

The engine executor's query tiles are independent by construction —
each carries its own ``query_subset`` against the shared Step-1 plan,
with preparation accounted on exactly one tile.  This package fans
those tiles across OS processes (or threads) and merges the per-shard
results back in tile order:

* :mod:`repro.parallel.shard` — :class:`ShardPlan` and the joint
  shard-count/tile-size decision (:func:`plan_shards`), plus the
  ``REPRO_WORKERS`` / ``REPRO_POOL`` resolution;
* :mod:`repro.parallel.worker` — what runs inside a worker: shard
  tasks plus the fingerprint-keyed prepared-state cache ("cluster once
  per worker, reuse across shards and requests");
* :mod:`repro.parallel.pool` — the process/thread/serial
  :class:`WorkerPool` and the shared-pool registry.

The correctness contract, enforced by the test suite: sharded results
and aggregate ``JoinStats``/funnel counters are **bit-for-bit
identical** to the serial run, for any worker count and pool kind.
"""

from .pool import WorkerPool, get_pool, shutdown_pools
from .shard import (MIN_ROWS_PER_SHARD, POOL_ENV, POOL_KINDS, ShardPlan,
                    WORKERS_ENV, plan_shards, resolve_pool_kind,
                    resolve_workers)
from .worker import (ShardJob, ShardOutcome, ShardTask, clear_prepared_cache,
                     plan_cache_key, prepared_cache_info, run_shard_task)

__all__ = [
    "WorkerPool", "get_pool", "shutdown_pools",
    "ShardPlan", "plan_shards", "resolve_workers", "resolve_pool_kind",
    "WORKERS_ENV", "POOL_ENV", "POOL_KINDS", "MIN_ROWS_PER_SHARD",
    "ShardJob", "ShardTask", "ShardOutcome", "run_shard_task",
    "plan_cache_key", "prepared_cache_info", "clear_prepared_cache",
]
