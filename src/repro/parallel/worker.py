"""Worker-side shard execution against shared prepared state.

A :class:`ShardTask` is what travels to a pool worker: one shared
:class:`ShardJob` (the join inputs) plus the list of query tiles that
worker owns.  For prepared-index engines the worker resolves the shared
Step-1 state — the :class:`~repro.core.ti_knn.JoinPlan` — through the
process-level cache in :mod:`repro.index.cache`, keyed by the same
content identity the serving layer's ``IndexStore`` uses, so each
worker process materialises a given plan once and reuses it across
shards *and* across requests.

Zero-copy: when the execution runs against a disk-backed
:class:`repro.index.Index`, the job carries a
:class:`~repro.index.cache.PlanHandle` — the index *directory path*
plus its ``(fingerprint, version)`` identity and the query-side
clusters — instead of the target arrays.  The worker reattaches the
target side via ``np.load(..., mmap_mode="r")`` through the
process-level index cache, so every worker shares one page-cache copy
of the targets and the pickled payload is O(queries), not O(targets).

Determinism: when no prebuilt plan or handle ships with the job, the
worker rebuilds the plan with the caller's pickled ``numpy`` Generator.
Pickling preserves the generator's exact state and
``prepare_clusters`` is the only consumer of randomness in the
pipeline, so every worker derives a bit-identical plan and every shard
makes exactly the decisions the serial run would.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ShardJob", "ShardTask", "ShardOutcome", "run_shard_task",
    "plan_cache_key", "prepared_cache_info", "clear_prepared_cache",
]


@dataclass(frozen=True)
class ShardJob:
    """The per-join inputs shared by every shard of one execution.

    Exactly one of three prepared-state transports applies in
    ``"shared"`` mode: a :class:`~repro.index.cache.PlanHandle`
    (disk-backed index, zero-copy), a prebuilt ``plan`` (in-memory
    index, pickled by value), or neither (the worker rebuilds from
    ``rng``).  With a handle the ``targets`` field ships as ``None``
    and the worker derives the target matrix from the resolved plan.
    """

    engine: str
    mode: str                # "shared" (prepared plan) | "slice" (row slice)
    queries: np.ndarray
    targets: np.ndarray
    k: int
    rng: object = None
    device: object = None
    options: dict = field(default_factory=dict)
    mq: object = None
    mt: object = None
    memory_budget_bytes: object = None
    plan: object = None      # prebuilt JoinPlan, when the caller has one
    handle: object = None    # PlanHandle, when the index is disk-backed
    plan_key: str = None
    account_index: int = 0   # the one shard that accounts preparation


@dataclass(frozen=True)
class ShardTask:
    """One worker's share of a job: the job plus its query tiles."""

    job: ShardJob
    shards: tuple            # ((tile index, start, stop), ...)


@dataclass
class ShardOutcome:
    """One executed tile, tagged for deterministic tile-order merging."""

    index: int
    start: int
    stop: int
    result: object
    worker: str = ""
    cache_hit: bool = False
    wall_s: float = 0.0


def plan_cache_key(queries, targets, rng=None, mq=None, mt=None,
                   memory_budget_bytes=None, plan=None, handle=None):
    """Content fingerprint identifying one shared prepared state.

    Two executions share a worker-side plan entry exactly when they
    would build (or shipped) the same Step-1 state: same query and
    target contents, same landmark knobs, and — when the plan is built
    worker-side — the same generator state.  Prebuilt plans are pinned
    by their landmark selections and centre-distance table, and handles
    by the index's ``(fingerprint, version)`` identity, so two indexes
    over identical data but different seeds (or update histories) stay
    distinct.
    """
    from ..index import fingerprint_points

    digest = hashlib.sha1()
    digest.update(fingerprint_points(queries).encode())
    if targets is not None:
        digest.update(fingerprint_points(targets).encode())
    digest.update(repr((mq, mt, memory_budget_bytes)).encode())
    if handle is not None:
        digest.update(b"handle")
        digest.update(repr(handle.index_key).encode())
        digest.update(np.ascontiguousarray(
            handle.query_clusters.center_indices).tobytes())
        digest.update(np.ascontiguousarray(handle.center_dists).tobytes())
    elif plan is not None:
        digest.update(b"prebuilt")
        digest.update(np.ascontiguousarray(
            plan.query_clusters.center_indices).tobytes())
        digest.update(np.ascontiguousarray(
            plan.target_clusters.center_indices).tobytes())
        digest.update(np.ascontiguousarray(plan.center_dists).tobytes())
    else:
        digest.update(b"build")
        state = (repr(rng.bit_generator.state) if rng is not None
                 else "no-rng")
        digest.update(state.encode())
    return digest.hexdigest()


def _worker_name():
    import multiprocessing

    process = multiprocessing.current_process().name
    if process != "MainProcess":
        return process
    return threading.current_thread().name


def _build_plan(job):
    """Materialise the job's shared JoinPlan (runs once per key)."""
    if job.handle is not None:
        return job.handle.resolve()
    if job.plan is not None:
        return job.plan
    from ..core.ti_knn import prepare_clusters

    return prepare_clusters(
        job.queries, job.targets, job.rng, mq=job.mq, mt=job.mt,
        memory_budget_bytes=job.memory_budget_bytes)


def run_shard_task(task):
    """Execute one worker's tiles; returns a list of ShardOutcomes.

    Runs inside the pool worker (or inline for the serial pool).  The
    engine call mirrors the executor's serial batched path exactly:
    prepared-index engines get the shared plan plus a ``query_subset``,
    other engines get a plain row slice; preparation work is accounted
    on the job's designated shard only, so merged counters equal the
    unbatched totals.
    """
    from ..engine.base import ExecutionContext
    from ..engine.registry import get_engine
    from ..index.cache import shared_plan

    job = task.job
    spec = get_engine(job.engine)
    worker = _worker_name()
    plan = None
    cache_hit = False
    targets = job.targets
    if job.mode == "shared":
        plan, cache_hit = shared_plan(job.plan_key,
                                      lambda: _build_plan(job))
        if targets is None:
            # Handle-shipped job: the target matrix is the mmap-backed
            # point set of the resolved plan, shared process-wide.
            targets = plan.target_clusters.points

    outcomes = []
    for index, start, stop in task.shards:
        begin = time.perf_counter()
        if job.mode == "shared":
            ctx = ExecutionContext(
                rng=job.rng, device=job.device, plan=plan,
                query_subset=np.arange(start, stop),
                account_prepare=(index == job.account_index))
            result = spec.run(job.queries, targets, job.k, ctx,
                              **job.options)
        else:
            ctx = ExecutionContext(rng=job.rng, device=job.device)
            result = spec.run(job.queries[start:stop], targets, job.k,
                              ctx, **job.options)
        outcomes.append(ShardOutcome(
            index=index, start=start, stop=stop, result=result,
            worker=worker, cache_hit=cache_hit,
            wall_s=time.perf_counter() - begin))
    return outcomes


def prepared_cache_info():
    """Snapshot of this process's prepared-state cache (tests, debug)."""
    from ..index.cache import plan_cache_info

    return plan_cache_info()


def clear_prepared_cache():
    """Drop every cached prepared state in this process."""
    from ..index.cache import clear_plan_cache

    clear_plan_cache()
