"""Worker-side shard execution and the per-worker prepared-state cache.

A :class:`ShardTask` is what travels to a pool worker: one shared
:class:`ShardJob` (the join inputs) plus the list of query tiles that
worker owns.  For prepared-index engines the worker resolves the shared
Step-1 state — the :class:`~repro.core.ti_knn.JoinPlan` — through a
module-level cache keyed by the same content fingerprint the serving
layer's ``IndexStore`` uses (:func:`repro.engine.prepared.\
fingerprint_points`), so each worker process clusters a given input
once and reuses it across shards *and* across requests.

Determinism: when no prebuilt plan ships with the job, the worker
rebuilds it with the caller's pickled ``numpy`` Generator.  Pickling
preserves the generator's exact state and ``prepare_clusters`` is the
only consumer of randomness in the pipeline, so every worker derives a
bit-identical plan and every shard makes exactly the decisions the
serial run would.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ShardJob", "ShardTask", "ShardOutcome", "run_shard_task",
    "plan_cache_key", "prepared_cache_info", "clear_prepared_cache",
]

#: Distinct prepared states kept per worker; each entry holds a full
#: JoinPlan (clusters + centre-distance matrix), so the cache is small.
PREPARED_CACHE_ENTRIES = 8

_cache = OrderedDict()       # plan key -> JoinPlan
_cache_lock = threading.Lock()
_build_locks = {}            # plan key -> per-key build lock


@dataclass(frozen=True)
class ShardJob:
    """The per-join inputs shared by every shard of one execution."""

    engine: str
    mode: str                # "shared" (prepared plan) | "slice" (row slice)
    queries: np.ndarray
    targets: np.ndarray
    k: int
    rng: object = None
    device: object = None
    options: dict = field(default_factory=dict)
    mq: object = None
    mt: object = None
    memory_budget_bytes: object = None
    plan: object = None      # prebuilt JoinPlan, when the caller has one
    plan_key: str = None
    account_index: int = 0   # the one shard that accounts preparation


@dataclass(frozen=True)
class ShardTask:
    """One worker's share of a job: the job plus its query tiles."""

    job: ShardJob
    shards: tuple            # ((tile index, start, stop), ...)


@dataclass
class ShardOutcome:
    """One executed tile, tagged for deterministic tile-order merging."""

    index: int
    start: int
    stop: int
    result: object
    worker: str = ""
    cache_hit: bool = False
    wall_s: float = 0.0


def plan_cache_key(queries, targets, rng=None, mq=None, mt=None,
                   memory_budget_bytes=None, plan=None):
    """Content fingerprint identifying one shared prepared state.

    Two executions share a worker-side plan entry exactly when they
    would build (or shipped) the same Step-1 state: same query and
    target contents, same landmark knobs, and — when the plan is built
    worker-side — the same generator state.  Prebuilt plans are pinned
    by their landmark selections and centre-distance table instead, so
    two indexes over identical data but different seeds stay distinct.
    """
    from ..engine.prepared import fingerprint_points

    digest = hashlib.sha1()
    digest.update(fingerprint_points(np.asarray(queries)).encode())
    digest.update(fingerprint_points(np.asarray(targets)).encode())
    digest.update(repr((mq, mt, memory_budget_bytes)).encode())
    if plan is not None:
        digest.update(b"prebuilt")
        digest.update(np.ascontiguousarray(
            plan.query_clusters.center_indices).tobytes())
        digest.update(np.ascontiguousarray(
            plan.target_clusters.center_indices).tobytes())
        digest.update(np.ascontiguousarray(plan.center_dists).tobytes())
    else:
        digest.update(b"build")
        state = (repr(rng.bit_generator.state) if rng is not None
                 else "no-rng")
        digest.update(state.encode())
    return digest.hexdigest()


def _worker_name():
    import multiprocessing

    process = multiprocessing.current_process().name
    if process != "MainProcess":
        return process
    return threading.current_thread().name


def _prepared_plan(job):
    """The job's shared JoinPlan, from the cache or built once per key.

    Concurrent builders of the same key serialise on a per-key lock so
    a plan is built (or adopted from the shipped copy) exactly once per
    worker; late arrivals count as cache hits.
    """
    key = job.plan_key
    with _cache_lock:
        plan = _cache.get(key)
        if plan is not None:
            _cache.move_to_end(key)
            return plan, True
        lock = _build_locks.setdefault(key, threading.Lock())
    with lock:
        with _cache_lock:
            plan = _cache.get(key)
            if plan is not None:
                _cache.move_to_end(key)
                return plan, True
        if job.plan is not None:
            plan = job.plan
        else:
            from ..core.ti_knn import prepare_clusters

            plan = prepare_clusters(
                job.queries, job.targets, job.rng, mq=job.mq, mt=job.mt,
                memory_budget_bytes=job.memory_budget_bytes)
        with _cache_lock:
            _cache[key] = plan
            while len(_cache) > PREPARED_CACHE_ENTRIES:
                _cache.popitem(last=False)
            _build_locks.pop(key, None)
        return plan, False


def run_shard_task(task):
    """Execute one worker's tiles; returns a list of ShardOutcomes.

    Runs inside the pool worker (or inline for the serial pool).  The
    engine call mirrors the executor's serial batched path exactly:
    prepared-index engines get the shared plan plus a ``query_subset``,
    other engines get a plain row slice; preparation work is accounted
    on the job's designated shard only, so merged counters equal the
    unbatched totals.
    """
    from ..engine.base import ExecutionContext
    from ..engine.registry import get_engine

    job = task.job
    spec = get_engine(job.engine)
    worker = _worker_name()
    plan = None
    cache_hit = False
    if job.mode == "shared":
        plan, cache_hit = _prepared_plan(job)

    outcomes = []
    for index, start, stop in task.shards:
        begin = time.perf_counter()
        if job.mode == "shared":
            ctx = ExecutionContext(
                rng=job.rng, device=job.device, plan=plan,
                query_subset=np.arange(start, stop),
                account_prepare=(index == job.account_index))
            result = spec.run(job.queries, job.targets, job.k, ctx,
                              **job.options)
        else:
            ctx = ExecutionContext(rng=job.rng, device=job.device)
            result = spec.run(job.queries[start:stop], job.targets, job.k,
                              ctx, **job.options)
        outcomes.append(ShardOutcome(
            index=index, start=start, stop=stop, result=result,
            worker=worker, cache_hit=cache_hit,
            wall_s=time.perf_counter() - begin))
    return outcomes


def prepared_cache_info():
    """Snapshot of this process's prepared-state cache (tests, debug)."""
    with _cache_lock:
        return {"entries": len(_cache), "keys": list(_cache)}


def clear_prepared_cache():
    """Drop every cached prepared state in this process."""
    with _cache_lock:
        _cache.clear()
        _build_locks.clear()
