"""Basic TI-based KNN on GPU — the Section III implementation.

This is the "KNN-TI" series of Fig. 9 and Table IV: the Fig. 4
algorithm ported to the GPU with the straightforward choices —

* one thread per query point, thread ``i`` → query ``i`` (no
  remapping, Table I's divergent assignment);
* the inherited column-major point layout;
* ``kNearests`` in global memory using Fig. 6's layout 2 (the basic
  implementation already picks the coalescing-friendlier of the two);
* always the full level-2 filter.

It avoids the same >99 % of distance computations as the CPU reference
but suffers the warp-efficiency collapse the paper reports (7-21 % on
most datasets), which is exactly what Sweet KNN's optimisations then
repair.
"""

from __future__ import annotations

from ..engine.base import EngineCaps, EngineSpec
from .adaptive import basic_config
from .gpu_pipeline import run_ti_gpu

__all__ = ["basic_ti_knn", "ENGINE"]


def basic_ti_knn(queries, targets, k, rng, device=None, cost_model=None,
                 mq=None, mt=None, plan=None, knearests_coalesced=True,
                 query_subset=None, account_prepare=True):
    """Run the basic (non-adaptive) TI KNN join on the simulated GPU.

    ``knearests_coalesced=False`` selects Fig. 6's layout 1 for the
    layout ablation bench.  ``query_subset``/``account_prepare`` are the
    batched-execution hooks (see :mod:`repro.engine.executor`).

    Returns
    -------
    KNNResult
    """
    def config_for(join_plan, dev):
        config = basic_config(join_plan.query_clusters.n_points, k, dev)
        if not knearests_coalesced:
            import dataclasses
            config = dataclasses.replace(config, knearests_coalesced=False)
        return config

    return run_ti_gpu(queries, targets, k, rng, config_for, device=device,
                      cost_model=cost_model, mq=mq, mt=mt, plan=plan,
                      method="knn-ti-gpu", query_subset=query_subset,
                      account_prepare=account_prepare)


# ----------------------------------------------------------------------
# Engine registration (see repro.engine)
# ----------------------------------------------------------------------
def _run_engine(queries, targets, k, ctx, **options):
    return basic_ti_knn(queries, targets, k, ctx.rng, device=ctx.device,
                        plan=ctx.plan, query_subset=ctx.query_subset,
                        account_prepare=ctx.account_prepare, **options)


ENGINE = EngineSpec(
    name="ti-gpu",
    run=_run_engine,
    caps=EngineCaps(needs_device=True, uses_seed=True,
                    supports_prepared_index=True,
                    cost_hints=(
                        # Simulated basic implementation: slowest host
                        # wall cost of the TI family (no remapping, no
                        # regularity optimisations).
                        ("ref_s", 90.0), ("log_q", 1.0), ("log_t", 0.6),
                        ("log_k", 0.3), ("log_d", 0.5),
                        ("clusterability", -1.5))),
    description="basic TI KNN on the simulated GPU (Section III)",
)
