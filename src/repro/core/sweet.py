"""Sweet KNN — the paper's contribution (Section IV).

Builds on the basic TI pipeline and adds every reconciliation
technique, resolved per problem instance by the Fig. 8 adaptive
scheme:

* elastic filter strength (full vs partial level-2 filtering),
* elastic parallelism (multiple threads per query with local heaps
  and a merge kernel),
* thread-data remapping (warps process queries of the same cluster),
* row-major point layout with float4 loads,
* adaptive ``kNearests`` placement (shared memory / registers /
  global).

All knobs can be forced for the sensitivity studies (Figs. 10-12,
Table V) and the ablation benches.
"""

from __future__ import annotations

from ..engine.base import EngineCaps, EngineSpec
from .adaptive import config_for_join
from .gpu_pipeline import run_ti_gpu

__all__ = ["sweet_knn", "ENGINE"]


def sweet_knn(queries, targets, k, rng, device=None, cost_model=None,
              mq=None, mt=None, plan=None, force_filter=None,
              force_placement=None, force_layout=None,
              threads_per_query=None, remap=True, knearests_coalesced=True,
              epsilon=0.0, query_subset=None, account_prepare=True):
    """Run Sweet KNN on the simulated GPU.

    Parameters beyond the data are experiment overrides:

    force_filter:
        ``"full"``/``"partial"`` instead of the k/d rule (Table V).
    force_placement:
        ``"global"``/``"shared"``/``"registers"`` (placement ablation).
    force_layout:
        ``"row"``/``"col"`` (layout ablation).
    threads_per_query:
        Fixed threads per query (Fig. 12 sweep).
    remap:
        Disable thread-data remapping for its ablation.
    epsilon:
        Approximation slack (extension): pruning uses
        ``theta / (1 + epsilon)``, guaranteeing the returned k-th
        distance is within ``(1 + epsilon)`` of the true one while
        saving further distance computations.  ``0.0`` = exact.
    query_subset, account_prepare:
        Batched-execution hooks (see :mod:`repro.engine.executor`):
        scan only these query indices of a shared ``plan``, and count
        the shared preparation cost only when asked.

    Returns
    -------
    KNNResult
    """
    k = int(k)

    def config_for(join_plan, dev):
        return config_for_join(
            join_plan, k, dev,
            force_filter=force_filter, force_placement=force_placement,
            force_layout=force_layout, threads_per_query=threads_per_query,
            remap=remap, knearests_coalesced=knearests_coalesced)

    return run_ti_gpu(queries, targets, k, rng, config_for, device=device,
                      cost_model=cost_model, mq=mq, mt=mt, plan=plan,
                      method="sweet-knn", epsilon=epsilon,
                      query_subset=query_subset,
                      account_prepare=account_prepare)


# ----------------------------------------------------------------------
# Engine registration (see repro.engine)
# ----------------------------------------------------------------------
def _run_engine(queries, targets, k, ctx, **options):
    return sweet_knn(queries, targets, k, ctx.rng, device=ctx.device,
                     plan=ctx.plan, query_subset=ctx.query_subset,
                     account_prepare=ctx.account_prepare, **options)


ENGINE = EngineSpec(
    name="sweet",
    run=_run_engine,
    caps=EngineCaps(needs_device=True, uses_seed=True,
                    supports_prepared_index=True, supports_epsilon=True,
                    cost_hints=(
                        # Host wall cost of the simulated-GPU pipeline
                        # (per-thread Python interpretation), not the
                        # simulated device time it reports.
                        ("ref_s", 60.0), ("log_q", 1.0), ("log_t", 0.6),
                        ("log_k", 0.3), ("log_d", 0.5),
                        ("clusterability", -1.0))),
    description="Sweet KNN on the simulated GPU (the paper's system)",
)