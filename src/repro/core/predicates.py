"""Distance predicates and their scan accumulators.

The paper's two-level triangle-inequality machinery never inspects
*what* is being collected — level-1 prunes cluster pairs against a
per-query-cluster bound, level-2 prunes members against a scan bound —
so the same filter chain can serve any monotone distance predicate.
This module is that seam: a **predicate** describes the join shape
(top-k, ε-range, reverse-KNN) and knows how to derive the level-1
bounds; an **accumulator** is the per-query scan state the level-2
loop (:func:`repro.core.filters.point_scan` and the simulated-GPU
lanes in :mod:`repro.core.scan`) prunes against and feeds accepted
pairs into.

Accumulator protocol (duck-typed; see docs/JOINS.md):

``enter_cluster(tc)``
    Called before scanning candidate cluster ``tc``'s members.
``tol_ref``
    Reference magnitude for the float comparison slack
    (:func:`~repro.core.filters.bound_comparison_tol`); for top-k this
    is the level-1 ``UB`` so decisions stay bit-identical with the
    historical inlined scan.
``limit()``
    The current pruning bound θ: members with
    ``lb > limit() + tol`` break the scan, ``lb < -(limit() + tol)``
    are skipped.  Must never tighten below a value that could prune a
    pair the predicate would accept (soundness).
``admit(t)``
    Pre-distance gate: ``False`` skips the exact distance entirely
    (the self-join engine drops trivial/self-symmetric pairs here).
``offer(dist, t) -> bool``
    Present a computed distance; returns True when the predicate
    accepts the pair.  ``accepted`` counts acceptances, ``updates``
    counts bound-state mutations (heap insertions for top-k).

The top-k accumulator wraps :class:`repro.kselect.KNearestHeap` — the
historical k-selection is just one predicate among several.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..kselect import KNearestHeap

__all__ = [
    "Level1State", "TopKAccumulator", "CollectAccumulator",
    "EpsilonRangeAccumulator", "ReverseKNNAccumulator",
    "TopKPredicate", "EpsilonRangePredicate", "ReverseKNNPredicate",
    "target_kth_distances",
]


@dataclass
class Level1State:
    """One predicate's cached level-1 output for a JoinPlan.

    ``bounds`` is the per-query-cluster initial scan bound (the top-k
    ``UB``, or ε for range predicates); ``candidates`` the per-query-
    cluster surviving target-cluster ids, ascending by centre distance.
    Reverse-KNN additionally carries the per-target k-th-NN distances
    (``kdist``), their per-target-cluster maxima (``cluster_bounds``)
    and the preparation scan's work counters (``prep_trace``), which
    the engine accounts once per join (``account_prepare``).
    """

    bounds: np.ndarray
    candidates: list
    kdist: np.ndarray = None
    cluster_bounds: np.ndarray = None
    prep_trace: object = None
    extra: dict = field(default_factory=dict)

    def candidate_pairs(self):
        return int(sum(c.size for c in self.candidates))


# ----------------------------------------------------------------------
# Accumulators (level-2 scan state)
# ----------------------------------------------------------------------
class TopKAccumulator:
    """Algorithm 2's updating-θ k-selection as an accumulator.

    ``slack > 1`` reproduces the (1+ε) approximate-pruning extension of
    the simulated-GPU scan: once the heap is full the limit tightens to
    ``θ / slack``.  ``update_bound=False`` pins θ at the level-1 ``UB``
    (the ablation knob of :mod:`repro.core.scan`).
    """

    def __init__(self, k, ub, slack=1.0, update_bound=True):
        self.heap = KNearestHeap(k)
        self.ub = float(ub)
        self.slack = float(slack)
        self.update_bound = bool(update_bound)
        self.accepted = 0
        self.updates = 0
        self._theta = float(ub)

    @property
    def tol_ref(self):
        return self.ub

    def enter_cluster(self, tc):
        pass

    def limit(self):
        return self._theta / self.slack if self.heap.full else self._theta

    def admit(self, t):
        return True

    def offer(self, dist, t):
        if self.heap.push(dist, t):
            self.accepted += 1
            self.updates += 1
            if self.update_bound and self.heap.full:
                self._theta = min(self.ub, self.heap.max_distance)
            return True
        return False

    def result(self):
        return self.heap.sorted_items()


class CollectAccumulator:
    """Sweet KNN's weakened (partial) filter: fixed bound, store all.

    θ stays at the level-1 ``UB`` and every surviving distance is kept
    (the write to global memory); a later k-selection recovers the
    answer.  ``updates`` stays 0 — there is no heap to update, which is
    exactly how the historical counters read.
    """

    def __init__(self, ub):
        self.ub = float(ub)
        self.pairs = []
        self.accepted = 0
        self.updates = 0

    @property
    def tol_ref(self):
        return self.ub

    def enter_cluster(self, tc):
        pass

    def limit(self):
        return self.ub

    def admit(self, t):
        return True

    def offer(self, dist, t):
        self.pairs.append((dist, t))
        self.accepted += 1
        return True

    def bulk(self, dists, indices):
        """Vectorised store used by the simulated-GPU partial scan."""
        self.pairs.extend(zip(dists, indices))
        self.accepted += len(dists)


class EpsilonRangeAccumulator:
    """ε-range predicate: accept every pair with ``dist <= eps``.

    The pruning bound is the constant ε itself; the comparison-slack
    widening (``eps + tol``) only ever admits extra members to the
    exact check, so acceptance stays exact.
    """

    def __init__(self, eps):
        self.eps = float(eps)
        self.pairs = []
        self.accepted = 0
        self.updates = 0

    @property
    def tol_ref(self):
        return self.eps

    def enter_cluster(self, tc):
        pass

    def limit(self):
        return self.eps

    def admit(self, t):
        return True

    def offer(self, dist, t):
        if dist <= self.eps:
            self.pairs.append((dist, t))
            self.accepted += 1
            self.updates += 1
            return True
        return False


class ReverseKNNAccumulator:
    """Reverse-KNN predicate: accept q for t when ``d(q,t) <= kdist(t)``.

    Each target carries its own threshold (its k-th NN distance within
    the target set), so the scan bound is per *cluster*: the maximum
    ``kdist`` of the cluster's members.  Breaking on
    ``lb > cluster_max + tol`` is sound because no member of the
    cluster could accept a pair the bound excludes.
    """

    def __init__(self, kdist, cluster_bounds):
        self.kdist = kdist
        self.cluster_bounds = cluster_bounds
        self.pairs = []
        self.accepted = 0
        self.updates = 0
        self._bound = 0.0

    @property
    def tol_ref(self):
        return self._bound

    def enter_cluster(self, tc):
        self._bound = float(self.cluster_bounds[tc])

    def limit(self):
        return self._bound

    def admit(self, t):
        return True

    def offer(self, dist, t):
        if dist <= self.kdist[t]:
            self.pairs.append((dist, t))
            self.accepted += 1
            self.updates += 1
            return True
        return False


# ----------------------------------------------------------------------
# Predicates (join shapes; level-1 derivation + accumulator factory)
# ----------------------------------------------------------------------
class TopKPredicate:
    """The historical k-nearest-neighbour join shape."""

    name = "topk"

    def __init__(self, k):
        self.k = int(k)
        if self.k <= 0:
            raise ValueError("k must be positive")

    def cache_key(self):
        return ("topk", self.k)

    def level1(self, plan):
        # Imported here: predicates <-> filters would otherwise cycle.
        from .filters import cluster_upper_bounds, level1_filter

        ubs = cluster_upper_bounds(plan.query_clusters, plan.target_clusters,
                                   plan.center_dists, self.k)
        candidates = level1_filter(plan.query_clusters, plan.target_clusters,
                                   plan.center_dists, ubs)
        return Level1State(bounds=ubs, candidates=candidates)

    def accumulator(self, state, qc):
        return TopKAccumulator(self.k, state.bounds[qc])


class EpsilonRangePredicate:
    """ε-range join: all pairs within distance ε."""

    name = "eps-range"

    def __init__(self, eps):
        eps = float(eps)
        if not np.isfinite(eps) or eps < 0:
            raise ValueError("eps must be a non-negative finite float")
        self.eps = eps

    def cache_key(self):
        return ("eps", self.eps)

    def level1(self, plan):
        from .filters import level1_filter

        bounds = np.full(plan.mq, self.eps, dtype=np.float64)
        candidates = level1_filter(plan.query_clusters, plan.target_clusters,
                                   plan.center_dists, bounds)
        return Level1State(bounds=bounds, candidates=candidates)

    def accumulator(self, state, qc):
        return EpsilonRangeAccumulator(self.eps)


class ReverseKNNPredicate:
    """Reverse-KNN join: the queries that have t among their context —
    formally ``rknn(q) = {t : d(q, t) <= kdist(t)}`` where ``kdist(t)``
    is t's k-th nearest-neighbour distance within the target set
    (excluding t itself).

    The level-1 bound is per target cluster — the max ``kdist`` of its
    members — so the group filter keeps a cluster pair exactly when
    some member could still accept a pair.
    """

    name = "rknn"

    def __init__(self, k):
        self.k = int(k)
        if self.k <= 0:
            raise ValueError("k must be positive")

    def cache_key(self):
        return ("rknn", self.k)

    def level1(self, plan):
        from .filters import level1_filter

        ct = plan.target_clusters
        kdist, prep_trace = target_kth_distances(ct, self.k)
        cluster_bounds = np.array(
            [float(kdist[members].max()) if members.size else 0.0
             for members in ct.members], dtype=np.float64)
        candidates = level1_filter(plan.query_clusters, ct,
                                   plan.center_dists,
                                   cluster_bounds[None, :])
        top = float(cluster_bounds.max()) if cluster_bounds.size else 0.0
        return Level1State(bounds=np.full(plan.mq, top, dtype=np.float64),
                           candidates=candidates, kdist=kdist,
                           cluster_bounds=cluster_bounds,
                           prep_trace=prep_trace)

    def accumulator(self, state, qc):
        return ReverseKNNAccumulator(state.kdist, state.cluster_bounds)


def target_kth_distances(target_clusters, k):
    """Per-target k-th NN distance within the target set, self excluded.

    Runs the TI filter chain with the target clustering on *both*
    sides — a deterministic function of the prepared plan (no RNG), so
    every shard worker derives bit-identical thresholds.  Returns the
    (|T|,) threshold array plus the preparation scan's merged
    :class:`~repro.core.filters.ScanTrace` for accounting.
    """
    from .clustering import center_distances
    from .filters import (ScanTrace, cluster_upper_bounds, level1_filter,
                          point_scan)

    ct = target_clusters
    n = ct.n_points
    k = int(k)
    if k >= n:
        raise ValueError(
            "reverse-KNN needs k < |T| (k=%d, |T|=%d): every target "
            "must have k neighbours besides itself" % (k, n))

    cdist = center_distances(ct, ct)
    ubs = cluster_upper_bounds(ct, ct, cdist, k + 1)
    candidates = level1_filter(ct, ct, cdist, ubs)

    kdist = np.empty(n, dtype=np.float64)
    prep = ScanTrace()
    for t in range(n):
        qc = int(ct.assignment[t])
        acc = TopKAccumulator(k + 1, ubs[qc])
        trace = point_scan(ct.points[t], t, ct, candidates[qc], acc)
        prep.merge(trace)
        dists, idx = acc.heap.sorted_items()
        # Drop t's own zero-distance entry when the heap kept it; when
        # ties evicted it, the k-th *other* distance is the same value.
        others = dists[idx != t]
        kdist[t] = others[k - 1]
    return kdist, prep
