"""Public API of the Sweet KNN reproduction.

Most users need exactly one call::

    import numpy as np
    from repro import knn_join

    result = knn_join(queries, targets, k=20, seed=0)
    result.indices        # (|Q|, k) neighbour ids
    result.distances      # (|Q|, k) ascending distances
    result.sim_time_s     # simulated GPU time (method="sweet" etc.)

``method`` selects the engine:

=============  ========================================================
``"sweet"``    Sweet KNN on the simulated GPU (the paper's system)
``"ti-gpu"``   basic TI-based KNN on the simulated GPU (Section III)
``"ti-cpu"``   sequential TI-based KNN (the Fig. 4 reference)
``"cublas"``   CUBLAS-style brute-force GPU baseline
``"brute"``    exact host-side brute force (the correctness oracle)
``"kdtree"``   KD-tree baseline
=============  ========================================================

:class:`SweetKNN` offers the index-like object API: cluster the target
set once, answer many query batches against it.
"""

from __future__ import annotations

import numpy as np

from ..baselines.brute_force import brute_force_knn
from ..baselines.cublas_knn import cublas_knn
from ..baselines.kdtree import kdtree_knn
from ..errors import ValidationError
from ..gpu.device import tesla_k20c
from .basic_gpu import basic_ti_knn
from .sweet import sweet_knn
from .ti_knn import prepare_clusters, ti_knn_join

__all__ = ["knn_join", "SweetKNN", "METHODS"]

METHODS = ("sweet", "ti-gpu", "ti-cpu", "cublas", "brute", "kdtree")


def _validate(queries, targets, k):
    queries = np.asarray(queries, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if queries.ndim != 2 or targets.ndim != 2:
        raise ValidationError("queries and targets must be 2-D arrays")
    if queries.shape[0] == 0 or targets.shape[0] == 0:
        raise ValidationError("queries and targets must be non-empty")
    if queries.shape[1] != targets.shape[1]:
        raise ValidationError(
            "dimension mismatch: queries d=%d, targets d=%d"
            % (queries.shape[1], targets.shape[1]))
    k = int(k)
    if k <= 0:
        raise ValidationError("k must be positive")
    if k > targets.shape[0]:
        raise ValidationError(
            "k=%d exceeds the %d target points" % (k, targets.shape[0]))
    return queries, targets, k


def knn_join(queries, targets, k, method="sweet", seed=0, device=None,
             **options):
    """Find the k nearest targets of every query point.

    Parameters
    ----------
    queries, targets:
        (n, d) arrays; pass the same array twice for a self-join (the
        paper's setting).
    k:
        Neighbours per query.
    method:
        One of :data:`METHODS` (default the paper's Sweet KNN).
    seed:
        Seed for landmark selection (ignored by the non-TI methods).
    device:
        Optional :class:`~repro.gpu.device.DeviceSpec` for the GPU
        methods (defaults to the simulated Tesla K20c).
    options:
        Forwarded to the engine (e.g. ``force_filter=...``,
        ``threads_per_query=...`` for ``"sweet"``).

    Returns
    -------
    KNNResult
    """
    queries, targets, k = _validate(queries, targets, k)
    rng = np.random.default_rng(seed)
    if method == "sweet":
        return sweet_knn(queries, targets, k, rng, device=device, **options)
    if method == "ti-gpu":
        return basic_ti_knn(queries, targets, k, rng, device=device,
                            **options)
    if method == "ti-cpu":
        return ti_knn_join(queries, targets, k, rng, **options)
    if method == "cublas":
        return cublas_knn(queries, targets, k, device=device, **options)
    if method == "brute":
        return brute_force_knn(queries, targets, k, **options)
    if method == "kdtree":
        return kdtree_knn(queries, targets, k, **options)
    raise ValidationError(
        "unknown method %r; expected one of %s" % (method, ", ".join(METHODS)))


class SweetKNN:
    """Index-style interface: cluster targets once, query many times.

    Example
    -------
    >>> index = SweetKNN(targets, seed=0)
    >>> result = index.query(queries, k=10)
    """

    def __init__(self, targets, seed=0, device=None, mt=None):
        targets = np.asarray(targets, dtype=np.float64)
        if targets.ndim != 2 or targets.shape[0] == 0:
            raise ValidationError("targets must be a non-empty 2-D array")
        self.targets = targets
        self.device = device or tesla_k20c()
        self._seed = seed
        self._mt = mt
        self._plans = {}

    def query(self, queries, k, **options):
        """k nearest targets of each query, via Sweet KNN."""
        queries, targets, k = _validate(queries, self.targets, k)
        rng = np.random.default_rng(self._seed)
        return sweet_knn(queries, targets, k, rng, device=self.device,
                         mt=self._mt, **options)

    def self_join(self, k, **options):
        """k nearest neighbours of every target within the target set."""
        return self.query(self.targets, k, **options)
