"""Public API of the Sweet KNN reproduction.

Most users need exactly one call::

    import numpy as np
    from repro import knn_join

    result = knn_join(queries, targets, k=20, seed=0)
    result.indices        # (|Q|, k) neighbour ids
    result.distances      # (|Q|, k) ascending distances
    result.sim_time_s     # simulated GPU time (method="sweet" etc.)

``method`` selects the engine.  The built-ins (see
:data:`repro.METHODS`, a live view of the engine registry):

=============  ========================================================
``"sweet"``    Sweet KNN on the simulated GPU (the paper's system)
``"ti-gpu"``   basic TI-based KNN on the simulated GPU (Section III)
``"ti-cpu"``   sequential TI-based KNN (the Fig. 4 reference)
``"cublas"``   CUBLAS-style brute-force GPU baseline
``"brute"``    exact host-side brute force (the correctness oracle)
``"kdtree"``   KD-tree baseline
=============  ========================================================

Third-party engines registered through :func:`repro.engine.register`
are dispatched the same way, by name.

:class:`SweetKNN` offers the index-like object API: cluster the target
set once (:class:`repro.index.Index`), answer many query batches
against it.  :meth:`SweetKNN.from_index` wraps a pre-built or
disk-loaded index without re-clustering.
"""

from __future__ import annotations

import numpy as np

from ..engine.executor import execute
from ..engine.planner import _DECIDE_KEYS, plan_shape
from ..engine.registry import METHODS, get_engine
from ..errors import ValidationError
from ..gpu.device import tesla_k20c
from ..index import Index
from .validate import check_points

__all__ = ["knn_join", "SweetKNN", "METHODS"]

#: Cached JoinPlans per SweetKNN index (identity-keyed on the query
#: array); small, because each entry pins its query array alive.
_JOIN_PLAN_CACHE_SIZE = 8


def _validate(queries, targets, k):
    queries = check_points(queries, name="queries", require_finite=True)
    targets = check_points(targets, name="targets", require_finite=True)
    if queries.shape[1] != targets.shape[1]:
        raise ValidationError(
            "dimension mismatch: queries d=%d, targets d=%d"
            % (queries.shape[1], targets.shape[1]))
    k = int(k)
    if k <= 0:
        raise ValidationError("k must be positive")
    if k > targets.shape[0]:
        raise ValidationError(
            "k=%d exceeds the %d target points" % (k, targets.shape[0]))
    return queries, targets, k


def knn_join(queries, targets, k, method="sweet", seed=0, device=None,
             query_batch_size=None, workers=None, pool=None, explain=False,
             **options):
    """Find the k nearest targets of every query point.

    Parameters
    ----------
    queries, targets:
        (n, d) arrays; pass the same array twice for a self-join (the
        paper's setting).
    k:
        Neighbours per query.
    method:
        A registered engine name (default the paper's Sweet KNN); see
        :data:`repro.METHODS`.  ``"auto"`` asks the cost-model
        scheduler (:mod:`repro.sched`) for the cheapest predicted exact
        engine — prior table by default, calibrated model when one is
        active (``REPRO_SCHED_MODEL`` / :func:`repro.sched.set_model`).
    seed:
        Seed for landmark selection (ignored by engines that do not
        declare ``uses_seed``).
    device:
        Optional :class:`~repro.gpu.device.DeviceSpec` for the GPU
        methods (defaults to the simulated Tesla K20c).
    query_batch_size:
        Force the dispatcher's query-tile size.  By default the planner
        batches only when a prepared-index GPU engine's working set
        exceeds device memory; batched and unbatched runs return
        identical neighbours and identical summed work counters.
    workers, pool:
        Shard the query tiles across a :mod:`repro.parallel` worker
        pool (``workers=0`` means one per core; ``pool`` is
        ``"process"``, ``"thread"`` or ``"serial"``).  Defaults follow
        ``REPRO_WORKERS``/``REPRO_POOL``; sharded runs are bit-for-bit
        identical to serial ones.
    explain:
        Attach a :class:`~repro.obs.audit.QueryAudit` to the result
        (``result.audit``): plan knobs, shard fan-out, per-stage
        funnel counts and per-span timings for this exact call.
    options:
        Forwarded to the engine (e.g. ``force_filter=...``,
        ``threads_per_query=...`` for ``"sweet"``).

    Returns
    -------
    KNNResult
    """
    queries, targets, k = _validate(queries, targets, k)
    decision = None
    if method in (None, "auto"):
        from .. import sched

        decision = sched.decide(
            queries.shape[0], targets.shape[0], k, queries.shape[1],
            method="auto", workers=workers, pool=pool,
            clusterability=sched.estimate_clusterability(targets))
        method = decision.engine
    spec = get_engine(method)
    rng = np.random.default_rng(seed) if spec.caps.uses_seed else None
    if spec.caps.needs_device:
        device = device or tesla_k20c()
    return execute(spec, queries, targets, k, rng=rng, device=device,
                   query_batch_size=query_batch_size, workers=workers,
                   pool=pool, explain=explain, decision=decision, **options)


class SweetKNN:
    """Index-style interface: cluster targets once, query many times.

    The target-side preparation (landmark selection, clustering, the
    descending member sort) is done exactly once, at construction, in a
    :class:`repro.index.Index`; every ``query`` call clusters only its
    query points and reuses the prepared target side.
    Execution plans are cached per ``(|Q|, k)`` shape, and the level-1
    bounds of a reused query batch are cached per ``k`` inside the
    shared :class:`~repro.core.ti_knn.JoinPlan`.

    ``method`` may name any prepared-index engine (``"sweet"``,
    ``"ti-gpu"``, ``"ti-cpu"``).

    Example
    -------
    >>> index = SweetKNN(targets, seed=0)
    >>> result = index.query(queries, k=10)
    """

    def __init__(self, targets, seed=0, device=None, mt=None,
                 method="sweet", workers=None, pool=None):
        targets = check_points(targets, name="targets", require_finite=True)
        spec = get_engine(method)
        if not spec.caps.supports_prepared_index:
            raise ValidationError(
                "engine %r does not support a prepared index" % method)
        self._spec = spec
        self.workers = workers
        self.pool = pool
        self.device = (device or tesla_k20c()) if spec.caps.needs_device \
            else device
        self._rng = np.random.default_rng(seed)
        budget = (self.device.global_mem_bytes
                  if self.device is not None else None)
        self.index = Index(targets, seed=seed, rng=self._rng, mt=mt,
                           memory_budget_bytes=budget)
        self._plans = {}       # (|Q|, k, mq, knobs, version) -> plan
        self._join_plans = []  # [(query array, mq, version, JoinPlan)]

    @classmethod
    def from_index(cls, index, device=None, method="sweet", workers=None,
                   pool=None):
        """Wrap an existing :class:`repro.index.Index` (e.g. one loaded
        from disk with ``Index.load``) without rebuilding anything.

        The index's own landmark RNG keeps driving query-side landmark
        selection, so a saved-and-loaded index answers queries
        bit-identically to the instance that built it.

        Example
        -------
        >>> knn = SweetKNN.from_index(Index.load("idx/"), method="ti-cpu")
        """
        if not isinstance(index, Index):
            raise ValidationError(
                "from_index expects a repro.index.Index, got %r"
                % type(index).__name__)
        spec = get_engine(method)
        if not spec.caps.supports_prepared_index:
            raise ValidationError(
                "engine %r does not support a prepared index" % method)
        self = cls.__new__(cls)
        self._spec = spec
        self.workers = workers
        self.pool = pool
        self.device = (device or tesla_k20c()) if spec.caps.needs_device \
            else device
        self._rng = index._rng
        self.index = index
        self._plans = {}
        self._join_plans = []
        return self

    @property
    def targets(self):
        """The (possibly updated) target matrix of the wrapped index."""
        return self.index.targets

    def plan(self, queries, k, mq=None, **options):
        """The :class:`~repro.engine.planner.ExecutionPlan` for a query.

        Cached per ``(|Q|, k)`` shape (and adaptive knobs), so repeated
        queries of the same shape reuse the resolved plan.
        """
        queries, _, k = _validate(queries, self.targets, k)
        return self._plan_for(queries.shape[0], k, mq, options,
                              workers=self.workers, pool=self.pool)

    def query(self, queries, k, mq=None, query_batch_size=None,
              workers=None, pool=None, **options):
        """k nearest prepared targets of each query point.

        ``workers``/``pool`` override the index-level defaults set at
        construction; the prebuilt join plan ships to the pool workers,
        where it is cached by content fingerprint across requests.
        """
        if "mt" in options:
            raise ValidationError(
                "mt is fixed when the index is built; pass it to SweetKNN()")
        queries, targets, k = _validate(queries, self.targets, k)
        workers = workers if workers is not None else self.workers
        pool = pool if pool is not None else self.pool
        join_plan = self._join_plan_for(queries, mq)
        exec_plan = self._plan_for(queries.shape[0], k, mq, options,
                                   workers=workers, pool=pool)
        sharding = exec_plan.sharding
        if query_batch_size is not None:
            rows = query_batch_size
        elif sharding is not None and sharding.sharded:
            # The planner's joint shard/tile decision: tiles shrink to
            # an even split across the workers.
            rows = sharding.rows_per_shard
        else:
            rows = exec_plan.batching.rows_per_batch
        return execute(self._spec, queries, self.targets, k, rng=self._rng,
                       device=self.device, plan=join_plan, index=self.index,
                       query_batch_size=rows, workers=workers, pool=pool,
                       **options)

    def query_one(self, point, k, **options):
        """k nearest prepared targets of a single point.

        The per-request path of the serving layer: takes one point of
        shape (d,), returns a :class:`~repro.core.result.Neighbors`
        with shape-(k,) ``distances``/``indices`` — no manual
        reshaping to (1, d) and back.

        Example
        -------
        >>> neighbours = index.query_one(point, k=10)
        >>> neighbours.indices          # (k,)
        >>> dists, ids = neighbours     # tuple-style unpacking
        """
        point = np.asarray(point, dtype=np.float64)
        if point.ndim != 1:
            raise ValidationError(
                "query_one expects a single point of shape (d,); "
                "use query() for batches")
        return self.query(point[np.newaxis, :], k, **options).row(0)

    def self_join(self, k, **options):
        """k nearest neighbours of every target within the target set."""
        return self.query(self.targets, k, **options)

    def _plan_for(self, n_queries, k, mq, options, workers=None, pool=None):
        knobs = tuple(sorted((name, options[name]) for name in options
                             if name in _DECIDE_KEYS))
        # The index version is part of the key: add/remove changes the
        # target count and (after a rebuild) mt, both plan inputs.
        key = (n_queries, k, mq, knobs, workers, pool, self.index.version)
        plan = self._plans.get(key)
        if plan is None:
            plan = plan_shape(n_queries, len(self.targets), k,
                              self.index.dim, method=self._spec.name,
                              device=self.device, mq=mq, mt=self.index.mt,
                              workers=workers, pool=pool, **dict(knobs))
            self._plans[key] = plan
        return plan

    def _join_plan_for(self, queries, mq):
        """Cluster the query side against the prepared targets.

        Identity-cached: querying with the same array object again (a
        fixed probe set, or ``self_join``) reuses the query clustering
        and, through the JoinPlan's own per-k cache, the level-1 bounds.
        """
        version = self.index.version
        for cached_queries, cached_mq, cached_version, cached_plan \
                in self._join_plans:
            if cached_queries is queries and cached_mq == mq \
                    and cached_version == version:
                return cached_plan
        join_plan = self.index.join_plan(queries, mq=mq)
        self._join_plans.append((queries, mq, version, join_plan))
        del self._join_plans[:-_JOIN_PLAN_CACHE_SIZE]
        return join_plan
