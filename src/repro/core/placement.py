"""Data placement of the per-thread ``kNearests`` array (Sec. IV-C2/D2).

When the full level-2 filter runs, every thread keeps a k-entry
max-heap.  Where that heap lives matters:

* **shared memory** — fast, but only ``th1 = shared_mem_per_SM /
  max_threads_per_SM`` bytes per thread are available without hurting
  residency (24 bytes on the K20c, i.e. k <= 6);
* **registers** — fastest, up to ``th2 = max_regs_per_thread * 4``
  bytes (1020 bytes, k <= 255), at the price of register pressure that
  lowers occupancy;
* **global memory** — unlimited but slow; the basic implementation
  keeps it there using the interleaved layout 2 of Fig. 6 so that
  simultaneous accesses by a warp coalesce.

The paper gives shared memory priority over registers because the
kernel's other register usage is the more likely occupancy limiter.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..gpu.lanelog import HEAP_IN_GLOBAL, HEAP_IN_REGISTERS, HEAP_IN_SHARED

__all__ = ["Placement", "PlacementDecision", "decide_placement",
           "BASE_REGS_PER_THREAD"]

#: Registers the level-2 kernel uses besides kNearests (pointers,
#: cursors, bounds); feeds the occupancy calculation.
BASE_REGS_PER_THREAD = 32

_FLOAT = 4


class Placement(str, Enum):
    GLOBAL = HEAP_IN_GLOBAL
    SHARED = HEAP_IN_SHARED
    REGISTERS = HEAP_IN_REGISTERS


@dataclass(frozen=True)
class PlacementDecision:
    """Outcome of the placement choice plus its occupancy inputs."""

    placement: Placement
    knearests_bytes: int
    regs_per_thread: int
    shared_bytes_per_thread: int

    def describe(self):
        return "kNearests in %s (%d bytes/thread, %d regs, %d shared B)" % (
            self.placement.value, self.knearests_bytes,
            self.regs_per_thread, self.shared_bytes_per_thread)


def decide_placement(k, device, force=None):
    """Choose where ``kNearests`` lives, per Fig. 8's middle band.

    ``k * 4 <= th1`` → shared memory; ``th1 < k * 4 <= th2`` →
    registers (local variable); otherwise global memory.  ``force``
    overrides the choice for the placement ablation bench.

    Returns
    -------
    PlacementDecision
    """
    k = int(k)
    size = k * _FLOAT
    th1 = device.shared_mem_threshold_th1
    th2 = device.register_threshold_th2

    if force is not None:
        placement = Placement(force)
    elif size <= th1:
        placement = Placement.SHARED
    elif size <= th2:
        placement = Placement.REGISTERS
    else:
        placement = Placement.GLOBAL

    regs = BASE_REGS_PER_THREAD
    shared = 0
    if placement is Placement.REGISTERS:
        # Each float occupies one 4-byte register; cap at the hardware
        # limit (beyond it the compiler would spill — modelled by the
        # adaptive scheme never choosing registers past th2, but a
        # forced ablation can get here).
        regs = min(BASE_REGS_PER_THREAD + k, device.max_registers_per_thread)
    elif placement is Placement.SHARED:
        shared = size
    return PlacementDecision(placement=placement, knearests_bytes=size,
                             regs_per_thread=regs,
                             shared_bytes_per_thread=shared)
