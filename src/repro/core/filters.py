"""The two-level TI filters (Steps 2-3 of Fig. 4; Algorithms 1-2).

This module holds the *algorithmic* filter logic, shared by the
sequential CPU reference (:mod:`repro.core.ti_knn`) and re-implemented
warp-vectorised by the GPU kernels (:mod:`repro.core.basic_gpu`,
:mod:`repro.core.sweet`) — the test suite asserts the implementations
make identical filtering decisions.

Level-1 (cluster level)
    :func:`cluster_upper_bounds` computes, per query cluster, an upper
    bound ``UB`` on every member's k-th nearest-neighbour distance by
    pooling two-landmark upper bounds over all target clusters
    (``calUB``/``getUBs``).  :func:`level1_filter` then drops every
    target cluster whose group-to-group lower bound (``getLB``) is not
    below ``UB``.

Level-2 (point level)
    :func:`point_filter_full` scans the candidate clusters' members in
    descending point-to-centre order, applying the one-landmark bound
    ``l = d(q, c_t) - d(t, c_t)`` with an *updating* bound ``theta``
    (Algorithm 2).  :func:`point_filter_partial` is Sweet KNN's
    weakened filter (Section IV-B1): ``theta`` stays at the level-1
    ``UB``, no ``kNearests`` is maintained during the scan, and the
    surviving distances are k-selected afterwards.

Deviation from the paper, documented: Algorithm 2 seeds ``kNearests``
with the query cluster's k pooled upper bounds.  Seeding the heap with
bounds whose (anonymous) witness targets may later also be inserted as
computed distances can double-count a target and over-tighten
``theta``; we instead use the scalar ``UB`` until k *computed*
distances exist, which is provably exact and only marginally weaker
early in the scan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kselect import select_k_from_pairs
from .bounds import euclidean
from .predicates import CollectAccumulator, TopKAccumulator

__all__ = [
    "cluster_upper_bounds", "level1_filter", "point_scan",
    "point_filter_full", "point_filter_partial", "ScanTrace",
    "tail_bound_matrix", "bound_comparison_tol", "center_distance_rows",
]

#: Relative slack for the level-2 bound comparisons.  ``theta`` descends
#: from the level-1 chain (pairwise centre distances + member-distance
#: tails) while the scan computes ``d(q, c_t)`` directly; the two can
#: disagree in the last ulp on degenerate inputs (e.g. duplicated
#: points), where a strict comparison would prune an exact tie and lose
#: a true neighbour.  Pruning against ``theta + tol`` instead only ever
#: widens the examined set, so exactness is preserved.
BOUND_COMPARISON_RTOL = 1e-12

#: Chunk budget (in float64 elements, ~32 MB) for the batched ``calUB``
#: pooling intermediate in :func:`cluster_upper_bounds`.
_POOL_CHUNK_ELEMS = 4_000_000


def bound_comparison_tol(q2tc, ub):
    """Absolute comparison slack for one cluster's member scan.

    Shared by the sequential reference here and the simulated GPU lanes
    (:mod:`repro.core.scan`), which must make identical decisions.
    """
    return BOUND_COMPARISON_RTOL * (abs(q2tc) + abs(ub) + 1.0)


# ----------------------------------------------------------------------
# Level-1 filtering
# ----------------------------------------------------------------------
def tail_bound_matrix(target_clusters, k):
    """Per target cluster, the k smallest member-to-centre distances.

    Returns a (|CT|, k) matrix padded with ``inf`` for clusters smaller
    than k.  Because target members are stored in *descending* order,
    the k smallest distances are the reversed tail — these are the
    ``u, v, w`` points of the paper's Fig. 5.
    """
    ct = target_clusters
    k = int(k)
    tails = np.full((ct.n_clusters, k), np.inf, dtype=np.float64)
    sizes = np.array([dists.size for dists in ct.member_dists],
                     dtype=np.int64)
    total = int(sizes.sum())
    if total == 0:
        return tails
    # One gather instead of a per-cluster Python loop: cluster ``cid``'s
    # j-th smallest distance is ``dists[size - 1 - j]`` (members are
    # stored descending), i.e. position ``end[cid] - 1 - j`` of the
    # concatenated distance array.
    flat = np.concatenate(ct.member_dists)
    ends = np.cumsum(sizes)
    cols = np.arange(k)
    valid = cols[None, :] < np.minimum(sizes, k)[:, None]
    source = ends[:, None] - 1 - cols[None, :]
    tails[valid] = flat[source[valid]]
    return tails


def cluster_upper_bounds(query_clusters, target_clusters, center_dists, k,
                         tails=None):
    """``calUB`` for every query cluster at once.

    For query cluster i and target cluster j, ``getUBs`` returns
    ``radius_q[i] + d(cq_i, ct_j) + tail_j`` (two-landmark UB, Eq. 4,
    applied to the query farthest from its centre and the k targets
    closest to theirs).  Pooling over j and taking the k-th smallest
    gives a value no smaller than any member's k-th NN distance.

    Returns
    -------
    ndarray
        (|CQ|,) array of per-query-cluster upper bounds.
    """
    if tails is None:
        tails = tail_bound_matrix(target_clusters, k)
    k = int(k)
    mq = query_clusters.n_clusters
    radius_q = np.asarray(query_clusters.radius, dtype=np.float64)
    center_dists = np.asarray(center_dists, dtype=np.float64)
    pooled_per_qc = tails.size  # |CT| * k candidate bounds per query cluster
    ubs = np.empty(mq, dtype=np.float64)
    # Batched over query clusters, in chunks that keep the pooled
    # (rows, |CT|, k) intermediate under a fixed footprint.
    chunk = max(1, int(_POOL_CHUNK_ELEMS // max(1, pooled_per_qc)))
    for start in range(0, mq, chunk):
        stop = min(start + chunk, mq)
        pooled = (radius_q[start:stop, None, None]
                  + center_dists[start:stop, :, None]
                  + tails[None, :, :]).reshape(stop - start, -1)
        if k < pooled_per_qc:
            ubs[start:stop] = np.partition(pooled, k - 1, axis=1)[:, k - 1]
        else:
            ubs[start:stop] = pooled.max(axis=1)
    return ubs


def level1_filter(query_clusters, target_clusters, center_dists, ubs):
    """``groupFilter`` (Algorithm 1) for every query cluster.

    A target cluster j survives for query cluster i when the
    group-to-group lower bound
    ``d(cq_i, ct_j) - radius_q[i] - radius_t[j]`` does not exceed
    ``UB_i``.  ``ubs`` is the per-query-cluster bound vector (|CQ|,);
    predicates whose bound lives on the *target* side (reverse-KNN's
    per-cluster max k-th distance) pass a broadcastable
    (1, |CT|)-shaped bound matrix instead.
    (The paper's pseudo-code uses a strict ``<``; we keep
    exact ties, which is required for exactness on degenerate inputs
    where the bound and the k-th distance coincide, e.g. duplicated
    points.)  Survivors are sorted by ascending centre distance (the
    ``S.sort()`` of ``pointFilter``), which both tightens ``theta``
    fast and is what the level-2 kernels expect.

    Returns
    -------
    list of ndarray
        Per query cluster, the candidate target-cluster ids.
    """
    radius_q = np.asarray(query_clusters.radius, dtype=np.float64)
    radius_t = np.asarray(target_clusters.radius, dtype=np.float64)
    sizes = np.asarray(target_clusters.cluster_sizes())
    center_dists = np.asarray(center_dists, dtype=np.float64)
    # All |CQ| x |CT| pairs at once: the per-cluster Python loop this
    # replaces computed the same lower bounds row by row.  Dropped pairs
    # are masked to inf so a single stable argsort along axis 1 yields,
    # per row, the survivors in ascending centre distance followed by
    # the masked columns — exactly ``keep[argsort(cd[keep])]`` because
    # a stable sort preserves index order among equal (inf) keys.
    bounds = np.asarray(ubs, dtype=np.float64)
    if bounds.ndim == 1:
        bounds = bounds[:, None]
    lbs = center_dists - radius_q[:, None] - radius_t[None, :]
    keep = (lbs <= bounds) & (sizes > 0)[None, :]
    masked = np.where(keep, center_dists, np.inf)
    order = np.argsort(masked, axis=1, kind="stable")
    counts = keep.sum(axis=1)
    return [order[qc, :counts[qc]].copy()
            for qc in range(query_clusters.n_clusters)]


# ----------------------------------------------------------------------
# Level-2 filtering (sequential reference scans)
# ----------------------------------------------------------------------
@dataclass
class ScanTrace:
    """Work counters for one query's level-2 scan."""

    examined: int = 0
    distance_computations: int = 0
    center_distance_computations: int = 0
    heap_updates: int = 0
    accepted: int = 0
    breaks: int = 0
    steps: int = 0  # lock-step-equivalent inner iterations

    def merge(self, other):
        self.examined += other.examined
        self.distance_computations += other.distance_computations
        self.center_distance_computations += other.center_distance_computations
        self.heap_updates += other.heap_updates
        self.accepted += other.accepted
        self.breaks += other.breaks
        self.steps += other.steps
        return self


def point_scan(query_point, query_index, target_clusters, candidate_ids,
               accumulator, center_dists_row=None):
    """One query's level-2 member scan against a predicate accumulator.

    This is Algorithm 2's loop with the bound machinery factored out:
    the accumulator supplies the pruning limit (``limit()``), the
    comparison-slack reference (``tol_ref``), a pre-distance admission
    gate (``admit``) and the acceptance check (``offer``) — the top-k,
    ε-range and reverse-KNN predicates all run through this one loop
    (see :mod:`repro.core.predicates`).

    Parameters
    ----------
    query_point:
        The query's coordinates.
    query_index:
        Its index (for self-join admission and the trace).
    target_clusters:
        :class:`~repro.core.clustering.ClusteredSet` of the targets.
    candidate_ids:
        Level-1 survivors, ascending by centre distance.
    accumulator:
        The predicate's scan state (see :mod:`repro.core.predicates`).
    center_dists_row:
        Optional precomputed distances from this query to every target
        centre; when absent they are computed (and counted) here, like
        Algorithm 2 line 6.

    Returns
    -------
    ScanTrace
        The scan's work counters; accepted pairs live in the
        accumulator.
    """
    acc = accumulator
    trace = ScanTrace()
    points = target_clusters.points

    for tc in candidate_ids:
        if center_dists_row is not None:
            q2tc = center_dists_row[tc]
        else:
            q2tc = euclidean(query_point, target_clusters.centers[tc])
        trace.center_distance_computations += 1
        member_idx = target_clusters.members[tc]
        member_dists = target_clusters.member_dists[tc]
        acc.enter_cluster(tc)
        tol = bound_comparison_tol(q2tc, acc.tol_ref)
        # ``limit()`` only changes when the accumulator's bound state
        # mutates — an accepted offer (top-k θ tightening) or cluster
        # entry (reverse-KNN) — so the ``limit() + tol`` sum is hoisted
        # out of the member loop and refreshed exactly at those points:
        # identical decisions, recomputed ~updates times instead of
        # once per member.
        limit = acc.limit() + tol

        for pos in range(member_idx.size):
            trace.steps += 1
            lb = q2tc - member_dists[pos]
            if lb > limit:
                trace.breaks += 1
                break
            if lb < -limit:
                continue
            trace.examined += 1
            t = member_idx[pos]
            if not acc.admit(t):
                continue
            dist = euclidean(query_point, points[t])
            trace.distance_computations += 1
            if acc.offer(dist, t):
                limit = acc.limit() + tol

    trace.heap_updates = acc.updates
    trace.accepted = acc.accepted
    return trace


def point_filter_full(query_point, query_index, target_clusters,
                      candidate_ids, ub, k, center_dists_row=None):
    """Algorithm 2 for one query point, with an updating ``theta``.

    A thin wrapper binding :func:`point_scan` to a
    :class:`~repro.core.predicates.TopKAccumulator` — decision-for-
    decision identical to the historical inlined scan (``theta``
    descends from ``ub`` via ``min(ub, heap.max_distance)``; the
    comparison slack is computed from ``ub``).

    Returns
    -------
    (heap, trace)
        The filled :class:`~repro.kselect.KNearestHeap` and a
        :class:`ScanTrace`.
    """
    acc = TopKAccumulator(k, ub)
    trace = point_scan(query_point, query_index, target_clusters,
                       candidate_ids, acc,
                       center_dists_row=center_dists_row)
    return acc.heap, trace


def point_filter_partial(query_point, query_index, target_clusters,
                         candidate_ids, ub, k, center_dists_row=None):
    """Sweet KNN's weakened level-2 filter (Section IV-B1).

    ``theta`` is the level-1 ``UB`` and is never updated; no
    ``kNearests`` is consulted during the scan
    (:class:`~repro.core.predicates.CollectAccumulator`).  Every
    computed distance is stored (modelling the write to global memory)
    and a final k-selection recovers the answer — "a later launched
    GPU kernel finds the k minimal distances".

    Returns
    -------
    (distances, indices, trace)
        The k nearest (ascending) and the scan trace.
    """
    acc = CollectAccumulator(ub)
    trace = point_scan(query_point, query_index, target_clusters,
                       candidate_ids, acc,
                       center_dists_row=center_dists_row)
    dists, idx = select_k_from_pairs(acc.pairs, k)
    return dists, idx, trace


def center_distance_rows(query_points, target_clusters, candidate_ids):
    """Distances from each query to each candidate cluster's centre.

    Batched form of Algorithm 2 line 6 for one query cluster: one
    (n_active, |candidates|) einsum replaces a per-query
    ``euclidean_many`` call, bit-for-bit (same subtraction and
    reduction per element).  Non-candidate columns stay NaN.
    """
    rows = np.full((len(query_points), target_clusters.n_clusters), np.nan)
    if candidate_ids.size:
        diff = (target_clusters.centers[candidate_ids][None, :, :]
                - query_points[:, None, :])
        rows[:, candidate_ids] = np.sqrt(
            np.einsum("ijk,ijk->ij", diff, diff))
    return rows
