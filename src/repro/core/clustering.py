"""Landmark clustering — Step 1 of the TI-based KNN (Fig. 4, Sec. III-A).

Each query/target point is assigned to its closest landmark, forming
clusters.  For a *query* cluster the algorithm only needs the maximal
member-to-centre distance (its radius); for a *target* cluster it needs
every member's distance to the centre, with members sorted in
**descending** order of that distance — the order that makes the
level-2 filter's early ``break`` sound (Algorithm 2 lines 10-11).

:class:`ClusteredSet` is the host-side ground truth; the GPU-side
two-kernel construction with atomic slot allocation (Section III-A's
local-ID trick) lives in :mod:`repro.core.basic_gpu` and is tested
against this implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .bounds import pairwise_distances

__all__ = ["ClusteredSet", "cluster_points", "center_distances"]

#: Row chunk used when forming the point-to-centre distance matrix, to
#: bound host memory on high-dimensional sets.
_CHUNK_ROWS = 2048


@dataclass
class ClusteredSet:
    """Points grouped around landmarks, with the per-cluster statistics
    required by the two-level TI filter.

    Attributes
    ----------
    points:
        (n, d) point matrix (float64).
    center_indices:
        Indices into ``points`` of the landmarks.
    centers:
        (m, d) landmark coordinates.
    assignment:
        For each point, the cluster it belongs to.
    dist_to_center:
        For each point, its distance to its cluster's centre.
    members:
        Per cluster, the member point indices.  When built with
        ``sort_descending=True`` (target sets) they are ordered by
        decreasing distance to the centre.
    member_dists:
        Per cluster, the member distances in the same order.
    radius:
        Per cluster, the maximal member-to-centre distance (0 for an
        empty cluster).
    init_distance_computations:
        Point-to-centre distances computed while clustering (n * m);
        part of the overhead the speedup calculations include
        (Section V-B: "the calculations of the speedups have
        considered all the overhead").
    """

    points: np.ndarray
    center_indices: np.ndarray
    centers: np.ndarray
    assignment: np.ndarray
    dist_to_center: np.ndarray
    members: list = field(default_factory=list)
    member_dists: list = field(default_factory=list)
    radius: np.ndarray = None
    init_distance_computations: int = 0

    @property
    def n_points(self):
        return self.points.shape[0]

    @property
    def n_clusters(self):
        return self.centers.shape[0]

    @property
    def dim(self):
        return self.points.shape[1]

    def cluster_sizes(self):
        return np.asarray([len(m) for m in self.members], dtype=np.int64)

    def check_invariants(self):
        """Validate membership, radii and (if sorted) ordering."""
        sizes = self.cluster_sizes()
        if sizes.sum() != self.n_points:
            return False
        for cid, (members, dists) in enumerate(
                zip(self.members, self.member_dists)):
            if not np.all(self.assignment[members] == cid):
                return False
            if dists.size and not np.isclose(
                    self.radius[cid], dists.max(), rtol=1e-12, atol=1e-12):
                return False
        return True


def cluster_points(points, center_indices, sort_descending=False):
    """Assign every point to its nearest landmark.

    Parameters
    ----------
    points:
        (n, d) array.
    center_indices:
        Landmark indices into ``points``.
    sort_descending:
        Order each cluster's members by decreasing distance to the
        centre (required for target sets).

    Returns
    -------
    ClusteredSet
    """
    points = np.asarray(points, dtype=np.float64)
    center_indices = np.asarray(center_indices, dtype=np.int64)
    centers = points[center_indices]
    n = points.shape[0]
    m = centers.shape[0]

    assignment = np.empty(n, dtype=np.int64)
    dist_to_center = np.empty(n, dtype=np.float64)
    # Bound the (rows, m, d) broadcast intermediate to ~64M elements.
    dim = points.shape[1]
    chunk = max(1, min(_CHUNK_ROWS, 2 ** 26 // max(1, m * dim)))
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        block = pairwise_distances(points[start:stop], centers)
        assignment[start:stop] = np.argmin(block, axis=1)
        dist_to_center[start:stop] = block[
            np.arange(stop - start), assignment[start:stop]]

    members = []
    member_dists = []
    radius = np.zeros(m, dtype=np.float64)
    order = np.argsort(assignment, kind="stable")
    boundaries = np.searchsorted(assignment[order], np.arange(m + 1))
    for cid in range(m):
        idx = order[boundaries[cid]:boundaries[cid + 1]]
        dists = dist_to_center[idx]
        if sort_descending and idx.size:
            sort = np.argsort(-dists, kind="stable")
            idx = idx[sort]
            dists = dists[sort]
        members.append(idx)
        member_dists.append(dists)
        if dists.size:
            radius[cid] = dists.max()

    return ClusteredSet(
        points=points,
        center_indices=center_indices,
        centers=centers,
        assignment=assignment,
        dist_to_center=dist_to_center,
        members=members,
        member_dists=member_dists,
        radius=radius,
        init_distance_computations=n * m,
    )


def center_distances(query_clusters, target_clusters):
    """|CQ| x |CT| matrix of centre-to-centre distances.

    These are the ``d(L1, L2)`` values every two-landmark bound in the
    level-1 filter reads.
    """
    return pairwise_distances(query_clusters.centers,
                              target_clusters.centers)
