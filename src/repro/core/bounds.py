"""Triangle-inequality distance bounds (Section II-B of the paper).

One landmark L (Eqs. 1-2)::

    LB(q, t) = |d(q, L) - d(t, L)|
    UB(q, t) =  d(q, L) + d(t, L)

Two landmarks L1 (near q) and L2 (near t) (Eqs. 3-4)::

    LB(q, t) = d(L1, L2) - d(q, L1) - d(L2, t)
    UB(q, t) = d(q, L1) + d(L1, L2) + d(L2, t)

The two-landmark lower bound can be negative (when the clusters
overlap); it is still a valid lower bound since distances are
non-negative.  All functions accept scalars or numpy arrays and
broadcast.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "euclidean", "euclidean_many", "pairwise_distances",
    "lb_one_landmark", "ub_one_landmark",
    "lb_two_landmarks", "ub_two_landmarks",
    "distance_flops",
]


def euclidean(a, b):
    """Euclidean distance between two points (1-D arrays)."""
    diff = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    return float(np.sqrt(np.dot(diff, diff)))


def euclidean_many(points, point):
    """Distances from each row of ``points`` to a single ``point``.

    Computed directly as sqrt(sum((x - y)^2)) — not via the expanded
    |x|^2 + |y|^2 - 2xy GEMM form — so TI bound comparisons are not
    perturbed by catastrophic cancellation.
    """
    points = np.asarray(points, dtype=np.float64)
    diff = points - np.asarray(point, dtype=np.float64)
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def pairwise_distances(a, b):
    """Dense |A| x |B| Euclidean distance matrix (direct form)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def distance_flops(d):
    """Modelled arithmetic ops for one d-dimensional distance.

    One subtract, one multiply and one add per dimension, plus the
    square root.
    """
    return 3 * int(d) + 1


def lb_one_landmark(d_q_l, d_t_l):
    """Eq. 1: lower bound from one landmark."""
    return np.abs(np.asarray(d_q_l) - np.asarray(d_t_l))


def ub_one_landmark(d_q_l, d_t_l):
    """Eq. 2: upper bound from one landmark."""
    return np.asarray(d_q_l) + np.asarray(d_t_l)


def lb_two_landmarks(d_l1_l2, d_q_l1, d_l2_t):
    """Eq. 3: lower bound from two landmarks (may be negative)."""
    return np.asarray(d_l1_l2) - np.asarray(d_q_l1) - np.asarray(d_l2_t)


def ub_two_landmarks(d_l1_l2, d_q_l1, d_l2_t):
    """Eq. 4: upper bound from two landmarks."""
    return np.asarray(d_q_l1) + np.asarray(d_l1_l2) + np.asarray(d_l2_t)
