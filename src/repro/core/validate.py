"""Input normalization at the library boundary.

Every entry point that accepts a point set — :func:`repro.knn_join`,
:class:`repro.SweetKNN`, :class:`repro.index.Index`, the serving
layer, the content fingerprint — must agree on one canonical form:
**C-contiguous float64**.  Before this helper existed the
``np.asarray(..., dtype=np.float64)`` normalization was repeated at
each boundary, and a float32 or Fortran-ordered input could reach one
code path un-normalized (e.g. the fingerprint) while another had
already converted it, producing different hashes for the same values.

:func:`as_points` is the single boundary: float32, Fortran-ordered,
strided and plain-list inputs all normalize to the same canonical
array, so they produce identical results *and* identical fingerprints
everywhere.  A point set that is already canonical is returned as the
same object — identity-keyed caches (:meth:`repro.SweetKNN.query`'s
join-plan cache, the fingerprint memo) keep working across calls.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError

__all__ = ["as_points", "check_points"]


def as_points(points, name="points"):
    """Normalize a point set to a C-contiguous float64 (n, d) array.

    Raises :class:`ValidationError` when the input is not 2-D.  An
    already-canonical ndarray passes through unchanged (same object).
    """
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim != 2:
        raise ValidationError("%s must be a 2-D array, got ndim=%d"
                              % (name, arr.ndim))
    return np.ascontiguousarray(arr)


def check_points(points, name="points", require_finite=False):
    """:func:`as_points` plus non-emptiness (and finiteness) checks."""
    arr = as_points(points, name=name)
    if arr.shape[0] == 0:
        raise ValidationError("%s must be non-empty" % name)
    if require_finite and not np.isfinite(arr).all():
        raise ValidationError("%s contain NaN or infinite values" % name)
    return arr
