"""Landmark (cluster-centre) selection — Section III-A of the paper.

The paper sets the number of landmarks to ``3 * sqrt(n)`` for an
``n``-point set (after Wang [3]), capped by the device memory budget,
and selects the landmark *positions* by repeating a random draw of the
required count 10 times and keeping the draw whose pairwise-distance
sum is largest (a cheap spread-maximisation heuristic from Ding et
al. [4]).

:func:`select_landmarks_maxmin` (farthest-point traversal) is provided
as an alternative pivot-selection technique for the ablation benches;
the paper cites this family ([3], [17]) without using it.
"""

from __future__ import annotations

import numpy as np

from .bounds import pairwise_distances

__all__ = [
    "determine_landmark_count", "select_landmarks_random_spread",
    "select_landmarks_maxmin", "LANDMARK_TRIALS",
]

#: Number of random draws tried; "empirically we find that 10 strikes a
#: good tradeoff between the overhead and the clustering quality".
LANDMARK_TRIALS = 10


def determine_landmark_count(n, memory_budget_bytes=None, float_bytes=4):
    """``detLmNum``: landmarks to create for an ``n``-point set.

    The method is ``3 * sqrt(n)``; "if the space is not enough, use the
    largest possible numbers" — the dominant landmark-related structure
    is the |CQ| x |CT| cluster-pair bound table, so the cap solves
    ``m^2 * float_bytes <= memory_budget``.
    """
    n = int(n)
    if n <= 0:
        raise ValueError("n must be positive")
    m = int(round(3 * np.sqrt(n)))
    m = max(1, min(m, n))
    if memory_budget_bytes is not None:
        cap = int(np.sqrt(max(1, memory_budget_bytes // float_bytes)))
        m = max(1, min(m, cap))
    return m


def select_landmarks_random_spread(points, m, rng, trials=LANDMARK_TRIALS):
    """Pick ``m`` landmarks by the paper's random-spread heuristic.

    Draw ``m`` random points ``trials`` times; keep the draw whose sum
    of pairwise distances ``S`` is largest.

    Parameters
    ----------
    points:
        (n, d) array.
    m:
        Number of landmarks (clamped to n).
    rng:
        ``numpy.random.Generator`` — all randomness in the library is
        injected for reproducibility.

    Returns
    -------
    ndarray
        Indices into ``points`` of the selected landmarks.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    m = min(int(m), n)
    if m <= 0:
        raise ValueError("m must be positive")
    if m == n:
        return np.arange(n, dtype=np.int64)

    best_indices = None
    best_sum = -np.inf
    for _ in range(max(1, int(trials))):
        candidate = rng.choice(n, size=m, replace=False)
        spread = _pairwise_sum(points[candidate])
        if spread > best_sum:
            best_sum = spread
            best_indices = candidate
    return np.asarray(best_indices, dtype=np.int64)


def _pairwise_sum(subset):
    """Sum of all pairwise distances within a point subset."""
    if subset.shape[0] < 2:
        return 0.0
    dists = pairwise_distances(subset, subset)
    # Each unordered pair appears twice in the full matrix.
    return float(dists.sum() / 2.0)


def select_landmarks_maxmin(points, m, rng):
    """Farthest-point (maxmin) pivot selection — ablation alternative.

    Start from a random point; repeatedly add the point whose minimum
    distance to the chosen set is largest.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    m = min(int(m), n)
    if m <= 0:
        raise ValueError("m must be positive")
    chosen = [int(rng.integers(n))]
    min_dist = np.linalg.norm(points - points[chosen[0]], axis=1)
    while len(chosen) < m:
        nxt = int(np.argmax(min_dist))
        chosen.append(nxt)
        dist = np.linalg.norm(points - points[nxt], axis=1)
        np.minimum(min_dist, dist, out=min_dist)
    return np.asarray(chosen, dtype=np.int64)
