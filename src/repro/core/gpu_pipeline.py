"""End-to-end TI-based KNN pipelines on the simulated GPU.

:func:`run_ti_gpu` executes the three steps of Fig. 4 as a sequence of
simulated kernels — init (landmarks, clustering, sort), level-1
filtering (``calUB`` + Algorithm 1) and level-2 filtering
(Algorithm 2 or its partial variant), plus the merge/selection kernels
Sweet KNN adds — under an :class:`~repro.core.adaptive.ExecutionConfig`
that encodes every basic-vs-Sweet difference:

* thread-data remapping on/off,
* point-matrix layout (row vs column major),
* ``kNearests`` placement and Fig.-6 layout,
* filter strength (full vs partial),
* threads per query (elastic parallelism).

Like the TI versions in the paper, the pipeline partitions the query
set when its per-query working set exceeds device memory — but its
per-query footprint is ``O(k)`` instead of the baseline's ``O(|T|)``,
so partitions are rare and large ("fit the processing of more query
points onto GPU in one kernel execution and hence more parallelism",
Section V-B).
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..engine.planner import partition_ranges, ti_partition_rows
from ..gpu.costmodel import default_cost_model
from ..gpu.device import tesla_k20c
from ..gpu.kernel import LaunchConfig, finalize_kernel
from ..gpu.lanelog import account_ragged, fold_warp_logs
from ..gpu.profiler import KernelProfile, PipelineProfile
from ..kselect import merge_sorted_lists, select_k_from_pairs
from .layout import point_load_transactions
from .parallelism import subscan_specs
from .remapping import identity_map, remap_by_cluster
from .result import JoinStats, KNNResult
from .scan import CODE_ENTER, scan_query_logged
from .ti_knn import prepare_clusters
from .landmarks import LANDMARK_TRIALS

__all__ = ["run_ti_gpu"]

_FLOAT = 4
_WARP = 32


def run_ti_gpu(queries, targets, k, rng, config_for, device=None,
               cost_model=None, mq=None, mt=None, plan=None, method="",
               epsilon=0.0, query_subset=None, account_prepare=True):
    """Run a TI-based KNN join on the simulated device.

    Parameters
    ----------
    queries, targets:
        (n, d) host arrays (the same object for a self-join).
    k:
        Neighbours per query.
    rng:
        ``numpy.random.Generator`` for landmark selection.
    config_for:
        Callable ``(plan, device) -> ExecutionConfig`` invoked after
        Step 1, when the cluster statistics the adaptive scheme needs
        are known.  The basic pipeline passes a constant config.
    device, cost_model:
        Simulated device and cycle model.
    mq, mt, plan:
        Optional landmark-count overrides or a prebuilt Step-1 plan.
    method:
        Name recorded on the result.
    query_subset:
        Optional array of query indices to scan (batched execution
        against a shared ``plan``); result rows follow subset order.
    account_prepare:
        Account the Step-1/level-1 kernels and their work counters in
        this call.  Batched execution enables this on the first tile
        only, so merged per-batch stats equal the unbatched totals.

    Returns
    -------
    KNNResult
        With ``profile`` set to the simulated :class:`PipelineProfile`.
    """
    queries = np.asarray(queries, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    k = int(k)
    if k <= 0:
        raise ValueError("k must be positive")
    if k > len(targets):
        raise ValueError("k cannot exceed the number of target points")
    device = device or tesla_k20c()
    cost_model = cost_model or default_cost_model()

    n_q, dim = queries.shape
    n_t = targets.shape[0]

    pipeline = PipelineProfile(name=method or "ti-gpu")

    # ------------------------------------------------------------------
    # Step 1: landmarks + clustering (init kernels)
    # ------------------------------------------------------------------
    if plan is None:
        with obs.span("prepare.clusters", n_queries=n_q, n_targets=n_t):
            plan = prepare_clusters(
                queries, targets, rng, mq=mq, mt=mt,
                memory_budget_bytes=device.global_mem_bytes)
    config = config_for(plan, device)
    # Only the level-2 kernel carries the kNearests placement's
    # register/shared-memory pressure; the other kernels launch with
    # baseline resource usage.
    launch = LaunchConfig(block_size=config.block_size)
    level2_launch = LaunchConfig(
        block_size=config.block_size,
        regs_per_thread=config.regs_per_thread,
        shared_bytes_per_thread=config.shared_bytes_per_thread)
    point_txns = point_load_transactions(dim, config.layout)
    dist_flops = 3.0 * dim + 1.0

    if account_prepare:
        with obs.span("kernel:init", mq=plan.mq, mt=plan.mt) as init_span:
            _account_init(pipeline, plan, dim, point_txns, dist_flops,
                          device, launch, cost_model, config)
            init_span.annotate(sim_time_s=sum(
                kernel.sim_time_s for kernel in pipeline.kernels))

    # ------------------------------------------------------------------
    # Step 2: level-1 filtering (calUB + Algorithm 1)
    # ------------------------------------------------------------------
    with obs.span("kernel:level1", k=k) as level1_span:
        ubs_all, candidates = plan.level1(k)
        cand_pairs = int(sum(c.size for c in candidates))
        if account_prepare:
            _account_level1(pipeline, plan, k, dim, point_txns, dist_flops,
                            device, launch, cost_model, cand_pairs)
        level1_span.annotate(candidate_cluster_pairs=cand_pairs)

    # ------------------------------------------------------------------
    # Step 3: level-2 filtering (Algorithm 2 / partial variant)
    # ------------------------------------------------------------------
    if query_subset is None:
        active = np.arange(n_q)
    else:
        active = np.asarray(query_subset, dtype=np.int64)
    n_active = len(active)
    active_mask = np.zeros(n_q, dtype=bool)
    active_mask[active] = True
    local_row = np.full(n_q, -1, dtype=np.int64)
    local_row[active] = np.arange(n_active)

    cq, ct = plan.query_clusters, plan.target_clusters
    stats = JoinStats(
        n_queries=n_active, n_targets=n_t, k=k, dim=dim,
        mq=plan.mq, mt=plan.mt,
        init_distance_computations=(
            (cq.init_distance_computations + ct.init_distance_computations)
            if account_prepare else 0),
        candidate_cluster_pairs=(cand_pairs if account_prepare else 0),
    )

    # The funnel's level-1 survivor pairs: for each active query, the
    # points inside its cluster's surviving candidate clusters.
    target_sizes = np.asarray(ct.cluster_sizes(), dtype=np.int64)
    survivors_per_qc = np.array(
        [int(target_sizes[cand].sum()) if cand.size else 0
         for cand in candidates], dtype=np.int64)
    stats.level1_survivor_pairs = int(
        survivors_per_qc[cq.assignment[active]].sum())

    partitions = _plan_ti_partitions(n_active, n_t, dim, k, config, device)
    # L2 hit fraction for scattered target-point loads (the point
    # matrix competes with the rest of the working set for L2).
    point_hit = device.l2_hit_rate(n_t * dim * _FLOAT)
    qorder = remap_by_cluster(cq)[0] if config.remap else identity_map(n_q)
    qorder = qorder[active_mask[qorder]]
    specs = subscan_specs(config.parallel)
    tpq = config.parallel.threads_per_query
    full = config.filter_strength == "full"

    level2 = KernelProfile(name="level2_filter")
    per_query = [None] * n_active

    with obs.span("kernel:level2", filter=config.filter_strength,
                  threads_per_query=tpq,
                  partitions=len(partitions)) as level2_span:
        for part_start, part_stop in partitions:
            part_queries = qorder[part_start:part_stop]
            lane_specs = [(q, spec) for q in part_queries for spec in specs]
            for first in range(0, len(lane_specs), _WARP):
                warp_lanes = lane_specs[first:first + _WARP]
                logs = []
                for q, spec in warp_lanes:
                    qc = cq.assignment[q]
                    result, trace, log = scan_query_logged(
                        queries[q], ct, candidates[qc], ubs_all[qc], k,
                        config.layout, strength=config.filter_strength,
                        spec=spec if tpq > 1 else None,
                        point_hit_rate=point_hit, epsilon=epsilon)
                    logs.append(log)
                    _merge_trace(stats, trace)
                    _store_partial_result(per_query, local_row[q], result,
                                          full, tpq)
                fold_warp_logs(
                    logs, level2, cost_model,
                    heap_placement=config.placement.placement.value,
                    heap_coalesced=config.knearests_coalesced,
                    reconverge_code=CODE_ENTER)
            level2.n_threads += len(lane_specs)
        finalize_kernel(level2, device, level2_launch, cost_model)
        if len(partitions) > 1:
            level2.sim_time_s += ((len(partitions) - 1)
                                  * cost_model.kernel_launch_cycles
                                  / device.clock_hz)
        pipeline.add(level2)
        level2_span.annotate(
            warp_efficiency=round(level2.warp_efficiency, 4),
            sim_time_s=level2.sim_time_s,
            distance_computations=stats.level2_distance_computations)

    # ------------------------------------------------------------------
    # Final merge / selection kernels
    # ------------------------------------------------------------------
    with obs.span("kernel:merge", threads_per_query=tpq):
        results = _finalize_results(per_query, n_active, k, full, tpq,
                                    pipeline, device, launch, cost_model)
        distances, indices = KNNResult.pack(results, k)

    stats.extra.update({
        "filter": config.filter_strength,
        "placement": config.placement.placement.value,
        "layout": config.layout.value,
        "remap": config.remap,
        "threads_per_query": tpq,
        "partitions": len(partitions),
    })
    return KNNResult(distances=distances, indices=indices, stats=stats,
                     profile=pipeline, method=method or "ti-gpu")


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _merge_trace(stats, trace):
    stats.level2_distance_computations += trace.distance_computations
    stats.center_distance_computations += trace.center_distance_computations
    stats.examined_points += trace.examined
    stats.heap_updates += trace.heap_updates
    stats.predicate_accepted_pairs += trace.accepted


def _store_partial_result(per_query, q, result, full, tpq):
    if tpq == 1:
        per_query[q] = result.sorted_items() if full else result
    else:
        if per_query[q] is None:
            per_query[q] = []
        per_query[q].append(result.sorted_items() if full else result)


def _finalize_results(per_query, n_q, k, full, tpq, pipeline, device, launch,
                      cost_model):
    """Resolve per-query outputs and account the merge/select kernels."""
    results = [None] * n_q
    if full and tpq == 1:
        return per_query

    if full:
        # Merge kernel: |Q| threads, each merging tpq sorted heaps.
        merge = KernelProfile(name="merge_heaps")
        lane_steps = []
        for q in range(n_q):
            lists = per_query[q]
            results[q] = merge_sorted_lists(lists, k)
            lane_steps.append(sum(len(d) for d, _ in lists))
        account_ragged(merge, lane_steps, flops_per_step=2.0,
                       l2_per_warp_step=1.0, cost_model=cost_model)
        finalize_kernel(merge, device, launch, cost_model)
        pipeline.add(merge)
        return results

    # Partial filter: a selection kernel picks the k smallest of each
    # query's surviving distances from global memory.
    select = KernelProfile(name="select_k_partial")
    lane_steps = []
    for q in range(n_q):
        survivors = per_query[q]
        if tpq > 1:
            survivors = [pair for sub in survivors for pair in sub]
        results[q] = select_k_from_pairs(survivors, k)
        lane_steps.append(max(1, len(survivors)))
    log_k = np.ceil(np.log2(max(2, k)))
    account_ragged(select, lane_steps, flops_per_step=1.0 + 0.25 * log_k,
                   txns_per_warp_step=1.0, cost_model=cost_model)
    finalize_kernel(select, device, launch, cost_model)
    pipeline.add(select)
    return results


def _plan_ti_partitions(n_q, n_t, dim, k, config, device):
    """Partition queries when the TI working set exceeds device memory.

    The row budget itself lives in the shared planner
    (:func:`repro.engine.planner.ti_partition_rows`), next to the
    Garcia-baseline budget it is contrasted with in Section V-B.
    """
    rows = ti_partition_rows(
        n_q, n_t, dim, k, device,
        threads_per_query=config.parallel.threads_per_query,
        filter_strength=config.filter_strength)
    return partition_ranges(n_q, rows)


def _account_init(pipeline, plan, dim, point_txns, dist_flops, device,
                  launch, cost_model, config):
    """Account the Step-1 kernels (Section III-A).

    * landmark selection: 10 trials of pairwise-distance sums on each
      point set;
    * query assignment: |Q| threads x mq centre distances + an atomic
      max per query for the cluster radius;
    * target assignment: |T| threads x mt centre distances + an
      atomicAdd per target for the local-ID slot;
    * target scatter: |T| threads, one store each (no atomics thanks
      to the local IDs);
    * per-cluster sort of the target members (ragged trip counts);
    * with remapping on, the query-member copy that builds the
      thread-to-query map.
    """
    cq, ct = plan.query_clusters, plan.target_clusters
    n_q, n_t = cq.n_points, ct.n_points
    mq, mt = cq.n_clusters, ct.n_clusters

    init = KernelProfile(name="init_landmarks")
    for m in (mq, mt):
        # One thread per (trial, candidate pair); the candidate points
        # are re-read by every pair and stay L2 resident.
        pairs = LANDMARK_TRIALS * m * (m - 1) // 2
        account_ragged(init, [1] * max(1, pairs),
                       flops_per_step=dist_flops,
                       l2_per_warp_step=2.0 * point_txns,
                       cost_model=cost_model)
    finalize_kernel(init, device, launch, cost_model)
    pipeline.add(init)

    assign = KernelProfile(name="init_assign")
    account_ragged(assign, [mq] * n_q, flops_per_step=dist_flops,
                   l2_per_warp_step=point_txns, atomics_total=n_q,
                   cost_model=cost_model)
    account_ragged(assign, [mt] * n_t, flops_per_step=dist_flops,
                   l2_per_warp_step=point_txns, atomics_total=n_t,
                   cost_model=cost_model)
    account_ragged(assign, [1] * n_t, flops_per_step=0.0,
                   txns_per_warp_step=32.0 * point_txns,
                   cost_model=cost_model)
    finalize_kernel(assign, device, launch, cost_model)
    pipeline.add(assign)

    sort = KernelProfile(name="init_sort_clusters")
    sizes = ct.cluster_sizes()
    lane_steps = [int(s * max(1, np.ceil(np.log2(max(2, s))))) for s in sizes]
    account_ragged(sort, lane_steps, flops_per_step=2.0,
                   l2_per_warp_step=1.0, cost_model=cost_model)
    if config.remap:
        member_copy = [int(s) for s in cq.cluster_sizes()]
        account_ragged(sort, member_copy, flops_per_step=0.0,
                       txns_per_warp_step=2.0, atomics_total=mq,
                       cost_model=cost_model)
    finalize_kernel(sort, device, launch, cost_model)
    pipeline.add(sort)


def _account_level1(pipeline, plan, k, dim, point_txns, dist_flops, device,
                    launch, cost_model, candidate_pairs):
    """Account the Step-2 kernels.

    * ``calUB``: |CQ| threads, each pooling k bounds from every target
      cluster (data dependence on the running UB keeps this at
      cluster-level parallelism — Section III-B);
    * Algorithm 1: |CQ| x |CT| threads, one pair each, recomputing the
      centre distance and appending survivors with atomicAdd.
    """
    mq, mt = plan.mq, plan.mt
    tail_txns = max(1, (k * _FLOAT) // 128 + 1)

    calub = KernelProfile(name="level1_calub")
    account_ragged(calub, [mt] * mq, flops_per_step=float(k + 2),
                   l2_per_warp_step=float(tail_txns),
                   cost_model=cost_model)
    finalize_kernel(calub, device, launch, cost_model)
    pipeline.add(calub)

    group = KernelProfile(name="level1_groupfilter")
    account_ragged(group, [1] * (mq * mt), flops_per_step=dist_flops + 4.0,
                   l2_per_warp_step=float(point_txns + dim),
                   atomics_total=candidate_pairs,
                   cost_model=cost_model)
    finalize_kernel(group, device, launch, cost_model)
    pipeline.add(group)
