"""Point-matrix memory layouts (Section IV-C3, Fig. 7 of the paper).

The CUBLAS-style baseline stores points **column-major** (all points'
dimension 0, then dimension 1, ...) because its kernels make all lanes
touch the same dimension of consecutive points — perfectly coalesced.

TI-based KNN instead accesses *scattered* points (whichever targets
survive filtering), where column-major is terrible: every dimension of
a point is a separate far-apart 4-byte access.  Sweet KNN therefore
uses a **row-major** layout read with ``float4`` vector loads: one
point's ``d`` dimensions occupy ``ceil(4d / 128)`` 128-byte segments.

This module quantifies exactly that: transactions per scattered
point load under each layout, used by the scan kernels' lane logs.
"""

from __future__ import annotations

from enum import Enum
from functools import lru_cache

__all__ = ["Layout", "point_load_transactions"]

_FLOAT = 4
_TRANSACTION = 128
_VECTOR_WIDTH = 4  # float4


class Layout(str, Enum):
    """How the (n, d) point matrix is linearised in global memory."""

    ROW_MAJOR = "row"     # Fig. 7(b): all dims of point 0, point 1, ...
    COLUMN_MAJOR = "col"  # Fig. 7(a): dim 0 of all points, dim 1, ...

    def describe(self):
        if self is Layout.ROW_MAJOR:
            return "row-major with float4 vector loads (Sweet KNN)"
        return "column-major (basic GPU KNN layout)"


#: A scattered sub-line load is issued as a 32-byte sector on Kepler,
#: i.e. a quarter of a 128-byte transaction.
_SECTOR_FRACTION = 32 / _TRANSACTION


@lru_cache(maxsize=None)
def point_load_transactions(dim, layout):
    """Memory cost of one scattered point load, in 128-byte
    transaction equivalents.  Pure in ``(dim, layout)`` and called once
    per scan step by the lane logs, so the result is memoized.

    Row-major: the point is ``4 * dim`` contiguous bytes →
    ``ceil(4 dim / 128)`` full transactions (float4 vector loads do
    not add transactions, only reduce instruction count).

    Column-major: each of the ``dim`` coordinates lives ``4 * n``
    bytes from the next; every read is its own 32-byte sector, so the
    cost is ``dim / 4`` transaction equivalents — Kepler's sectored
    access is why column major wastes "only" 8x bandwidth on 4-byte
    reads, not 32x.
    """
    dim = int(dim)
    if dim <= 0:
        raise ValueError("dim must be positive")
    layout = Layout(layout)
    if layout is Layout.ROW_MAJOR:
        return (dim * _FLOAT + _TRANSACTION - 1) // _TRANSACTION
    return dim * _SECTOR_FRACTION


@lru_cache(maxsize=None)
def point_load_instructions(dim, layout):
    """Load instructions (steps) issued to read one point; memoized
    like :func:`point_load_transactions`.

    Row-major uses ``float4`` vector loads (``ceil(d / 4)``
    instructions); column-major needs one scalar load per dimension.
    Only used for instruction-count reporting; the scan kernels fold a
    whole point access into its examining step.
    """
    dim = int(dim)
    layout = Layout(layout)
    if layout is Layout.ROW_MAJOR:
        return (dim + _VECTOR_WIDTH - 1) // _VECTOR_WIDTH
    return dim
