"""The adaptive scheme (Section IV-D, Fig. 8 of the paper).

Given a problem instance (Q, T, k, d) and the device limits, the
scheme configures Sweet KNN on the fly:

* **filter strength** — ``k / d < 8`` → full level-2 filtering with an
  updating bound; otherwise the partial filter (no ``kNearests``
  maintenance, no bound updates);
* **kNearests placement** — ``k*4 <= th1`` → shared memory,
  ``<= th2`` → registers, else global memory (full filter only);
* **parallelism** — query-level when ``|Q| >= r * max_cur``, else
  multi-level with ``ceil(r * max_cur / |Q|)`` threads per query.

:func:`basic_config` freezes the Section-III basic implementation
(column-major layout, global-memory kNearests with the Fig. 6
layout 2, no remapping, one thread per query, full filter), which is
the "KNN-TI" series of Fig. 9 / Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from .layout import Layout
from .parallelism import ParallelPlan, decide_parallelism
from .placement import BASE_REGS_PER_THREAD, PlacementDecision, decide_placement

__all__ = ["ExecutionConfig", "decide", "basic_config", "config_for_join",
           "FILTER_STRENGTH_RATIO", "filter_strength_for"]

#: Fig. 8's top decision: partial filtering pays off when k/d > 8.
FILTER_STRENGTH_RATIO = 8.0


def filter_strength_for(k, dim):
    """Fig. 8's top branch: the filter strength for a ``(k, d)`` pair.

    "the scenarios for the partial filtering to outperform the full
    filtering is when k/d > 8" — partial on strictly greater.  This is
    the pinned fallback rule the cost-model scheduler
    (:mod:`repro.sched`) defers to when no calibration artifact is
    active.
    """
    if int(k) / float(int(dim)) <= FILTER_STRENGTH_RATIO:
        return "full"
    return "partial"


@dataclass(frozen=True)
class ExecutionConfig:
    """A fully resolved execution configuration for the GPU pipelines."""

    filter_strength: str            # "full" | "partial"
    layout: Layout
    placement: PlacementDecision
    remap: bool
    parallel: ParallelPlan
    knearests_coalesced: bool = True  # Fig. 6 layout 2 vs layout 1
    block_size: int = 256

    @property
    def regs_per_thread(self):
        return self.placement.regs_per_thread

    @property
    def shared_bytes_per_thread(self):
        return self.placement.shared_bytes_per_thread

    def describe(self):
        return {
            "filter": self.filter_strength,
            "layout": self.layout.value,
            "kNearests": self.placement.placement.value,
            "remap": self.remap,
            "threads_per_query": self.parallel.threads_per_query,
        }


def decide(n_queries, n_targets, k, dim, avg_cluster_size, device,
           force_filter=None, force_placement=None, force_layout=None,
           threads_per_query=None, remap=True, knearests_coalesced=True,
           block_size=256):
    """Run the Fig. 8 decision tree; ``force_*`` hooks feed the
    sensitivity studies and ablations.

    Returns
    -------
    ExecutionConfig
    """
    k = int(k)
    dim = int(dim)

    if force_filter is not None:
        strength = force_filter
        filter_reason = "forced"
    else:
        strength = filter_strength_for(k, dim)
        filter_reason = "k/d=%.3f %s %g" % (
            k / float(dim), "<=" if strength == "full" else ">",
            FILTER_STRENGTH_RATIO)
    if strength not in ("full", "partial"):
        raise ValueError("filter strength must be 'full' or 'partial'")
    obs.event("adaptive.filter_strength", choice=strength,
              reason=filter_reason)
    obs.count("adaptive.filter.%s" % strength)

    if strength == "full":
        placement = decide_placement(k, device, force=force_placement)
    else:
        # The partial filter keeps no kNearests; only base registers.
        placement = PlacementDecision(
            placement=decide_placement(1, device).placement
            if force_placement is None else
            decide_placement(1, device, force=force_placement).placement,
            knearests_bytes=0,
            regs_per_thread=BASE_REGS_PER_THREAD,
            shared_bytes_per_thread=0)

    obs.event(
        "adaptive.placement", choice=placement.placement.value,
        reason=("forced" if force_placement is not None
                else "k*4=%d bytes vs device thresholds" % (k * 4)
                if strength == "full" else "partial filter keeps no kNearests"))
    obs.count("adaptive.placement.%s" % placement.placement.value)

    layout = Layout(force_layout) if force_layout else Layout.ROW_MAJOR

    parallel = decide_parallelism(
        n_queries, avg_cluster_size, device,
        regs_per_thread=placement.regs_per_thread,
        shared_bytes_per_thread=placement.shared_bytes_per_thread,
        block_size=block_size, threads_per_query=threads_per_query)
    obs.event(
        "adaptive.parallelism",
        threads_per_query=parallel.threads_per_query,
        reason=("forced" if threads_per_query is not None else
                "|Q|=%d vs device max concurrency" % n_queries))
    obs.count("adaptive.threads_per_query.%d" % parallel.threads_per_query)

    return ExecutionConfig(
        filter_strength=strength, layout=layout, placement=placement,
        remap=remap, parallel=parallel,
        knearests_coalesced=knearests_coalesced, block_size=block_size)


def config_for_join(join_plan, k, device, **overrides):
    """Resolve the Fig. 8 decisions for a prepared join plan.

    The scheme reads only aggregate quantities (|Q|, |T|, k, d and the
    average target-cluster size |T|/mt), so the decisions here are
    identical to what :func:`repro.engine.planner.plan` predicts from
    the shape alone — the planner's plans are the pipeline's plans.
    """
    ct = join_plan.target_clusters
    avg_cluster = ct.n_points / max(1, ct.n_clusters)
    return decide(join_plan.query_clusters.n_points, ct.n_points, int(k),
                  ct.dim, avg_cluster, device, **overrides)


def basic_config(n_queries, k, device, block_size=256):
    """The Section-III basic KNN-TI configuration (no Sweet features)."""
    placement = decide_placement(k, device, force="global")
    return ExecutionConfig(
        filter_strength="full",
        layout=Layout.COLUMN_MAJOR,
        placement=placement,
        remap=False,
        parallel=ParallelPlan(1, 1, 1, int(n_queries)),
        knearests_coalesced=True,  # the basic impl already picks layout 2
        block_size=block_size)
