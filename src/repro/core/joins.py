"""TI-filtered predicate joins: ε-range, self-join and reverse-KNN.

The two-level filter chain of Fig. 4 never inspects what is being
collected (see :mod:`repro.core.predicates`); this module drives the
same chain — Step-1 preparation, level-1 group filter, level-2 member
scan — for the non-top-k join shapes and packs the variable-
cardinality answers into :class:`~repro.core.result.RangeResult`:

``range_join``
    All pairs ``(q, t)`` with ``d(q, t) <= eps``
    (:class:`~repro.core.predicates.EpsilonRangePredicate`).
``self_range_join``
    The ε-range self-join (``queries is targets``).  Exploits the
    symmetry of the distance matrix: trivial self-matches are dropped
    at the admission gate, each unordered pair's distance is computed
    once and the accepted pair is mirrored into the partner's row —
    bit-identical both ways because ``(x - y)^2 == (y - x)^2``
    element-wise in IEEE arithmetic.
``reverse_knn_join``
    ``rknn(q) = {t : d(q, t) <= kdist(t)}`` where ``kdist(t)`` is t's
    k-th NN distance within the target set
    (:class:`~repro.core.predicates.ReverseKNNPredicate`).

All three register as engines (``method="range-join"``,
``"self-join-eps"``, ``"rknn"``) and inherit the execution layer's
batching/sharding contract: the scan of a query depends only on its
own cluster's candidate list and the predicate's (plan-deterministic)
level-1 state, so per-row results are independent of tiling.  The
self-join's *counters* are the one exception — which side of a
mirrored pair pays the distance depends on which rows share a tile —
but its result rows are a pure function of the accepted pair set and
stay bit-identical across workers.
"""

from __future__ import annotations

import numpy as np

from ..engine.base import EngineCaps, EngineSpec
from .predicates import EpsilonRangePredicate, ReverseKNNPredicate
from .result import JoinStats, RangeResult
from .ti_knn import prepare_clusters

__all__ = ["range_join", "self_range_join", "reverse_knn_join", "ENGINES"]


class _SelfJoinFilter:
    """Accumulator wrapper implementing the symmetric-tile optimisation.

    Scanning query ``q``: the trivial pair ``t == q`` is dropped, and a
    partner ``t < q`` that is *active in this call* is skipped because
    t's own scan computes ``d(t, q)`` (the same value) and the driver
    mirrors the accepted pair into q's row.  Inactive partners (rows of
    another tile/shard) are never skipped, so tiled execution stays
    exact without cross-tile communication.
    """

    def __init__(self, inner, query_index, active_mask):
        self._inner = inner
        self._q = query_index
        self._active = active_mask

    @property
    def tol_ref(self):
        return self._inner.tol_ref

    @property
    def pairs(self):
        return self._inner.pairs

    @property
    def accepted(self):
        return self._inner.accepted

    @property
    def updates(self):
        return self._inner.updates

    def enter_cluster(self, tc):
        self._inner.enter_cluster(tc)

    def limit(self):
        return self._inner.limit()

    def admit(self, t):
        if t == self._q or (t < self._q and self._active[t]):
            return False
        return self._inner.admit(t)

    def offer(self, dist, t):
        return self._inner.offer(dist, t)


def _predicate_join(queries, targets, predicate, rng, mq=None, mt=None,
                    plan=None, query_subset=None, account_prepare=True,
                    method="", k_stat=0, self_join=False):
    """Drive the TI filter chain for one predicate; pack a RangeResult.

    Mirrors :func:`~repro.core.ti_knn.ti_knn_join`'s structure — Step-1
    plan, per-query-cluster level-1 state, per-query
    :func:`~repro.core.filters.point_scan` — with the predicate
    supplying bounds and acceptance.
    """
    queries = np.asarray(queries, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)

    if plan is None:
        plan = prepare_clusters(queries, targets, rng, mq=mq, mt=mt)
    state = plan.level1_for(predicate)

    n_q = len(queries)
    if query_subset is None:
        active = np.arange(n_q)
    else:
        active = np.asarray(query_subset, dtype=np.int64)
    active_mask = np.zeros(n_q, dtype=bool)
    active_mask[active] = True
    local_row = np.full(n_q, -1, dtype=np.int64)
    local_row[active] = np.arange(len(active))

    cq, ct = plan.query_clusters, plan.target_clusters
    stats = JoinStats(
        n_queries=len(active), n_targets=len(targets), k=k_stat,
        dim=queries.shape[1], mq=plan.mq, mt=plan.mt,
        init_distance_computations=(
            (cq.init_distance_computations + ct.init_distance_computations)
            if account_prepare else 0),
        candidate_cluster_pairs=(
            state.candidate_pairs() if account_prepare else 0),
    )
    stats.extra["predicate"] = predicate.name
    prep = state.prep_trace
    if account_prepare and prep is not None:
        # Reverse-KNN's kdist preparation computes exact distances
        # inside the target set; they are part of this join's work.
        prep_dists = (prep.distance_computations
                      + prep.center_distance_computations)
        stats.init_distance_computations += prep_dists
        stats.extra["rknn_prep_distances"] = prep_dists

    target_sizes = np.asarray(ct.cluster_sizes(), dtype=np.int64)

    # Imported lazily through ti_knn's own imports to keep this module
    # free of a filters import cycle via predicates.
    from .filters import center_distance_rows, point_scan

    rows_out = [[] for _ in range(len(active))]
    for qc in range(cq.n_clusters):
        cand = state.candidates[qc]
        members = cq.members[qc]
        scanned = members[active_mask[members]] if members.size else members
        if scanned.size == 0:
            continue
        cluster_pairs = int(target_sizes[cand].sum()) if cand.size else 0
        rows = center_distance_rows(queries[scanned], ct, cand)
        for local, q in enumerate(scanned):
            stats.level1_survivor_pairs += cluster_pairs
            acc = predicate.accumulator(state, qc)
            if self_join:
                acc = _SelfJoinFilter(acc, q, active_mask)
            trace = point_scan(queries[q], q, ct, cand, acc,
                               center_dists_row=rows[local])
            stats.level2_distance_computations += trace.distance_computations
            stats.center_distance_computations += (
                trace.center_distance_computations)
            stats.examined_points += trace.examined
            stats.heap_updates += trace.heap_updates
            stats.predicate_accepted_pairs += trace.accepted
            rows_out[local_row[q]].extend(acc.pairs)
            if self_join:
                # Mirror each accepted (d, t) into active partner rows:
                # t > q here (active t < q were skipped at admission).
                for dist, t in acc.pairs:
                    if active_mask[t]:
                        rows_out[local_row[t]].append((dist, q))

    packed = []
    for pairs in rows_out:
        if not pairs:
            packed.append((np.empty(0, dtype=np.float64),
                           np.empty(0, dtype=np.int64)))
            continue
        dists = np.array([d for d, _ in pairs], dtype=np.float64)
        idx = np.array([t for _, t in pairs], dtype=np.int64)
        order = np.lexsort((idx, dists))
        packed.append((dists[order], idx[order]))

    return RangeResult.from_rows(packed, stats=stats, method=method)


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def range_join(queries, targets, eps, rng, mq=None, mt=None, plan=None,
               query_subset=None, account_prepare=True):
    """All pairs within distance ``eps``, TI-filtered.

    Exact: level-1 prunes cluster pairs whose group lower bound exceeds
    ε, level-2 prunes members on the one-landmark bound, and only pairs
    with a *computed* ``d <= eps`` are accepted.  Rows are sorted by
    (distance, index).
    """
    return _predicate_join(queries, targets, EpsilonRangePredicate(eps),
                           rng, mq=mq, mt=mt, plan=plan,
                           query_subset=query_subset,
                           account_prepare=account_prepare,
                           method="range-join")


def self_range_join(points, eps, rng, mq=None, mt=None, plan=None,
                    query_subset=None, account_prepare=True):
    """ε-range self-join over one point set.

    Drops the trivial ``(q, q)`` matches and computes each unordered
    pair's distance once (see :class:`_SelfJoinFilter`); the result
    contains both directed pairs, like the plain range join minus the
    diagonal.
    """
    return _predicate_join(points, points, EpsilonRangePredicate(eps),
                           rng, mq=mq, mt=mt, plan=plan,
                           query_subset=query_subset,
                           account_prepare=account_prepare,
                           method="self-join-eps", self_join=True)


def reverse_knn_join(queries, targets, k, rng, mq=None, mt=None, plan=None,
                     query_subset=None, account_prepare=True):
    """Reverse-KNN join: ``rknn(q) = {t : d(q, t) <= kdist(t)}``.

    ``kdist(t)`` — t's k-th NN distance within the target set, self
    excluded — is derived deterministically from the prepared plan, so
    sharded execution reproduces the serial thresholds bit-for-bit.
    """
    return _predicate_join(queries, targets, ReverseKNNPredicate(k),
                           rng, mq=mq, mt=mt, plan=plan,
                           query_subset=query_subset,
                           account_prepare=account_prepare,
                           method="rknn", k_stat=int(k))


# ----------------------------------------------------------------------
# Engine registration (see repro.engine)
# ----------------------------------------------------------------------
_RANGE_CAPS = EngineCaps(uses_seed=True, supports_prepared_index=True,
                         result_kind="range")


def _run_range(queries, targets, k, ctx, eps=None, **options):
    return range_join(queries, targets, eps, ctx.rng, plan=ctx.plan,
                      query_subset=ctx.query_subset,
                      account_prepare=ctx.account_prepare, **options)


def _run_self_join(queries, targets, k, ctx, eps=None, **options):
    if queries is not targets and not np.array_equal(queries, targets):
        raise ValueError(
            "self-join-eps joins a set with itself: pass the same points "
            "as queries and targets (use method='range-join' otherwise)")
    return self_range_join(queries, eps, ctx.rng, plan=ctx.plan,
                           query_subset=ctx.query_subset,
                           account_prepare=ctx.account_prepare, **options)


def _run_rknn(queries, targets, k, ctx, **options):
    return reverse_knn_join(queries, targets, k, ctx.rng, plan=ctx.plan,
                            query_subset=ctx.query_subset,
                            account_prepare=ctx.account_prepare, **options)


ENGINES = (
    EngineSpec(
        name="range-join",
        run=_run_range,
        caps=_RANGE_CAPS,
        description="TI-filtered ε-range join (all pairs within eps)",
        required_options=("eps",),
    ),
    EngineSpec(
        name="self-join-eps",
        run=_run_self_join,
        caps=_RANGE_CAPS,
        description="ε-range self-join exploiting symmetric tiles",
        required_options=("eps",),
    ),
    EngineSpec(
        name="rknn",
        run=_run_rknn,
        caps=_RANGE_CAPS,
        description="TI-filtered reverse-KNN join (q in knn-of-t sense)",
    ),
)
