"""Result and statistics containers for KNN joins."""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

import numpy as np

__all__ = ["JoinStats", "KNNResult", "Neighbors", "RangeResult",
           "merge_batch_results", "merge_range_batches", "merge_results"]

#: Counter fields that add up across query batches of one join.
_SUMMED_FIELDS = (
    "n_queries",
    "level2_distance_computations",
    "center_distance_computations",
    "init_distance_computations",
    "examined_points",
    "candidate_cluster_pairs",
    "level1_survivor_pairs",
    "heap_updates",
    "predicate_accepted_pairs",
)


@dataclass
class JoinStats:
    """Work counters for one KNN join run.

    ``saved_fraction`` reproduces Table IV's "saved comp." column:
    ``(|Q| * |T| - level2_distance_computations) / (|Q| * |T|)``,
    counting only the exact point-to-point distances of the level-2
    filter, as the paper's profiling variable does.
    """

    n_queries: int = 0
    n_targets: int = 0
    k: int = 0
    dim: int = 0
    mq: int = 0
    mt: int = 0
    level2_distance_computations: int = 0
    center_distance_computations: int = 0
    init_distance_computations: int = 0
    examined_points: int = 0
    candidate_cluster_pairs: int = 0
    level1_survivor_pairs: int = 0
    heap_updates: int = 0
    #: Pairs the join's distance predicate accepted at check time (heap
    #: insertions for top-k; pairs within ε / within kdist for the range
    #: predicates).  Always <= level2_distance_computations, because only
    #: computed distances are offered to the predicate.
    predicate_accepted_pairs: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def total_pairs(self):
        return self.n_queries * self.n_targets

    @property
    def saved_fraction(self):
        if self.total_pairs == 0:
            return 0.0
        saved = self.total_pairs - self.level2_distance_computations
        return saved / self.total_pairs

    @classmethod
    def merged(cls, stats_list):
        """Combine per-batch stats into the whole-join totals.

        Counters sum; the shape fields (|T|, k, d, mq, mt) come from the
        first batch, which shares them with every other batch because
        batched execution runs against one prepared plan.  Numeric
        ``extra`` entries (e.g. ``partitions``) sum as well; other
        entries keep the first batch's value.
        """
        stats_list = list(stats_list)
        if not stats_list:
            raise ValueError("cannot merge an empty stats list")
        first = stats_list[0]
        merged = cls(n_targets=first.n_targets, k=first.k, dim=first.dim,
                     mq=first.mq, mt=first.mt)
        for name in _SUMMED_FIELDS:
            setattr(merged, name,
                    sum(getattr(s, name) for s in stats_list))
        merged.extra = dict(first.extra)
        for key, value in first.extra.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            merged.extra[key] = sum(s.extra.get(key, 0) for s in stats_list)
        merged.extra["query_batches"] = len(stats_list)
        return merged

    def summary(self):
        return {
            "|Q|": self.n_queries, "|T|": self.n_targets, "k": self.k,
            "d": self.dim, "mq": self.mq, "mt": self.mt,
            "level2_distances": self.level2_distance_computations,
            "saved_fraction": round(self.saved_fraction, 4),
            "candidate_cluster_pairs": self.candidate_cluster_pairs,
            "level1_survivor_pairs": self.level1_survivor_pairs,
            "examined_points": self.examined_points,
            "predicate_accepted_pairs": self.predicate_accepted_pairs,
            **self.extra,
        }

    def publish(self, registry, force=False):
        """Publish this join's counters into a metrics registry.

        Writes the ``join.*`` work counters and the ``funnel.*`` stage
        counters (see :mod:`repro.obs.funnel`) — the single
        accumulation path the tracer, the bench harness and the CLI
        ``trace`` command all read from.

        Idempotent per registry: a second publish of the same stats
        object into the same registry is a no-op, so retry paths and
        explain/audit re-assembly cannot double-count.  ``force=True``
        republishes anyway (deliberate re-accounting only).  The guard
        holds registries weakly and is dropped on pickling, so stats
        that cross a process-pool boundary publish normally on the
        other side.
        """
        from ..obs.funnel import funnel_from_stats

        published = self.__dict__.get("_published_registries")
        if published is None:
            published = weakref.WeakSet()
            self.__dict__["_published_registries"] = published
        if registry in published and not force:
            return registry
        published.add(registry)
        registry.counter("join.runs").inc()
        registry.counter("join.queries").inc(self.n_queries)
        for name in _SUMMED_FIELDS[1:]:
            registry.counter("join." + name).inc(getattr(self, name))
        for stage, value in funnel_from_stats(self).items():
            registry.counter("funnel." + stage).inc(value)
        return registry

    def __getstate__(self):
        # WeakSets don't pickle; the guard is per-process anyway — the
        # receiving side's registries are different objects.
        state = dict(self.__dict__)
        state.pop("_published_registries", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)


@dataclass(frozen=True)
class Neighbors:
    """One query point's neighbour list: (k,) distances and indices.

    The single-query counterpart of :class:`KNNResult` — returned by
    :meth:`KNNResult.row`, :meth:`repro.SweetKNN.query_one` and the
    serving layer's per-request responses.  Iterable as
    ``(distances, indices)`` for tuple-style unpacking.
    """

    distances: np.ndarray
    indices: np.ndarray

    @property
    def k(self):
        return self.distances.shape[0]

    def __iter__(self):
        return iter((self.distances, self.indices))


@dataclass
class KNNResult:
    """k nearest neighbours for every query point.

    Attributes
    ----------
    distances:
        (|Q|, k) array, ascending per row.
    indices:
        (|Q|, k) array of target indices aligned with ``distances``.
    stats:
        :class:`JoinStats` work counters.
    profile:
        Optional :class:`~repro.gpu.profiler.PipelineProfile` when the
        join ran on the simulated GPU.
    method:
        Human-readable name of the algorithm that produced the result.
    audit:
        Optional :class:`~repro.obs.audit.QueryAudit` attached when the
        join ran with ``explain=True``.
    """

    distances: np.ndarray
    indices: np.ndarray
    stats: JoinStats
    profile: object = None
    method: str = ""
    audit: object = None

    @property
    def k(self):
        return self.distances.shape[1]

    @property
    def sim_time_s(self):
        """Simulated GPU time, when available."""
        return self.profile.sim_time_s if self.profile is not None else None

    def row(self, i):
        """The i-th query's :class:`Neighbors` (shape-(k,) views)."""
        return Neighbors(distances=self.distances[i],
                         indices=self.indices[i])

    def matches(self, other, rtol=1e-9, atol=2e-3):
        """True when both results report the same neighbour distances.

        Indices are allowed to differ on exact distance ties, so the
        comparison is on the sorted distance rows.  This is the loose
        *cross-method* comparator: its absolute tolerance absorbs the
        GEMM-formulation cancellation of the CUBLAS-style baseline,
        whose computed ``sqrt(|q|^2+|t|^2-2qt)`` carries an absolute
        error around ``|q| * sqrt(d * eps)`` — up to ~1e-3 on the
        large-norm, high-dimensional stand-ins.  Exactness of the TI
        methods themselves is asserted against brute force at 1e-9 in
        the test suite.
        """
        return np.allclose(self.distances, other.distances,
                           rtol=rtol, atol=atol)

    @staticmethod
    def pack(heaps_or_pairs, k):
        """Build (distances, indices) matrices from per-query results.

        Accepts per-query ``(dists, idx)`` pairs; rows shorter than k
        (possible only when |T| < k) are padded with ``inf`` / -1.
        """
        n = len(heaps_or_pairs)
        distances = np.full((n, k), np.inf, dtype=np.float64)
        indices = np.full((n, k), -1, dtype=np.int64)
        for row, (dists, idx) in enumerate(heaps_or_pairs):
            take = min(k, len(dists))
            distances[row, :take] = dists[:take]
            indices[row, :take] = idx[:take]
        return distances, indices


@dataclass
class RangeResult:
    """Variable-cardinality join result in CSR layout.

    The predicate joins (ε-range, self-join, reverse-KNN) return a
    different number of pairs per query, so the fixed-(|Q|, k) matrices
    of :class:`KNNResult` do not fit; instead the rows are concatenated
    with an index pointer, exactly a CSR sparse-matrix layout:

    Attributes
    ----------
    indptr:
        (|Q| + 1,) row offsets; query i's pairs live at
        ``[indptr[i], indptr[i+1])``.
    indices:
        (nnz,) partner indices, per row sorted by (distance, index).
    distances:
        (nnz,) distances aligned with ``indices``.
    stats:
        :class:`JoinStats` work counters.
    profile:
        Present for API symmetry with :class:`KNNResult` (the predicate
        joins run on the host, so this stays ``None``).
    method:
        Human-readable name of the algorithm that produced the result.
    audit:
        Optional :class:`~repro.obs.audit.QueryAudit` attached when the
        join ran with ``explain=True``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    distances: np.ndarray
    stats: JoinStats
    profile: object = None
    method: str = ""
    audit: object = None

    @property
    def n_queries(self):
        return int(self.indptr.shape[0] - 1)

    @property
    def n_pairs(self):
        return int(self.indices.shape[0])

    @property
    def sim_time_s(self):
        """Simulated GPU time, when available (host joins: ``None``)."""
        return self.profile.sim_time_s if self.profile is not None else None

    def counts(self):
        """Per-query pair counts, shape (|Q|,)."""
        return np.diff(self.indptr)

    def row(self, i):
        """The i-th query's :class:`Neighbors` (variable-length views)."""
        start, stop = self.indptr[i], self.indptr[i + 1]
        return Neighbors(distances=self.distances[start:stop],
                         indices=self.indices[start:stop])

    def matches(self, other, rtol=1e-9, atol=1e-9):
        """True when both results report the same pairs per query.

        Rows are canonically sorted by (distance, index), so two exact
        implementations agree element-wise: identical row sizes,
        identical partner indices, distances equal to tolerance.
        """
        return bool(
            np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.allclose(self.distances, other.distances,
                            rtol=rtol, atol=atol))

    @staticmethod
    def from_rows(rows, stats=None, method="", profile=None):
        """Build a CSR result from per-query ``(distances, indices)``
        pairs (each already sorted by (distance, index))."""
        counts = np.array([len(dists) for dists, _ in rows],
                          dtype=np.int64)
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        if counts.sum():
            distances = np.concatenate(
                [np.asarray(dists, dtype=np.float64) for dists, _ in rows
                 if len(dists)])
            indices = np.concatenate(
                [np.asarray(idx, dtype=np.int64) for dists, idx in rows
                 if len(dists)])
        else:
            distances = np.empty(0, dtype=np.float64)
            indices = np.empty(0, dtype=np.int64)
        return RangeResult(indptr=indptr, indices=indices,
                           distances=distances,
                           stats=stats if stats is not None else JoinStats(),
                           profile=profile, method=method)


def merge_batch_results(batches, n_queries, k):
    """Stitch per-batch :class:`KNNResult` objects into one result.

    Parameters
    ----------
    batches:
        Sequence of ``(query_indices, KNNResult)`` pairs, where
        ``query_indices`` gives the global query row of each result row.
    n_queries, k:
        Shape of the merged result.

    Rows covered by several batches (overlapping tiles) are merged with
    the same sorted-list k-merge Sweet KNN's final kernel uses, so the
    closest k survive regardless of which tile found them.  Simulated
    GPU profiles concatenate kernel-by-kernel, keeping ``sim_time_s``
    and the warp-efficiency accessors meaningful for the whole join.
    """
    from ..kselect import merge_sorted_lists

    batches = list(batches)
    if not batches:
        raise ValueError("cannot merge an empty batch list")
    k = int(k)

    per_row = [[] for _ in range(int(n_queries))]
    for query_indices, result in batches:
        query_indices = np.asarray(query_indices, dtype=np.int64)
        if len(query_indices) != len(result.distances):
            raise ValueError("batch index list does not match result rows")
        for local, q in enumerate(query_indices):
            per_row[q].append((result.distances[local],
                               result.indices[local]))
    rows = []
    for q, candidates in enumerate(per_row):
        if not candidates:
            raise ValueError("query %d is covered by no batch" % q)
        if len(candidates) == 1:
            rows.append(candidates[0])
        else:
            rows.append(merge_sorted_lists(candidates, k))
    distances, indices = KNNResult.pack(rows, k)

    stats = JoinStats.merged([result.stats for _, result in batches])
    first = batches[0][1]
    profile = None
    profiles = [result.profile for _, result in batches
                if result.profile is not None]
    if profiles:
        from ..gpu.profiler import PipelineProfile
        profile = PipelineProfile(
            name="batched(%s)" % (first.method or "knn"),
            kernels=[kernel for p in profiles for kernel in p.kernels],
            host_time_s=sum(p.host_time_s for p in profiles))
    return KNNResult(distances=distances, indices=indices, stats=stats,
                     profile=profile, method=first.method)


def merge_range_batches(batches, n_queries):
    """Stitch per-batch :class:`RangeResult` objects into one result.

    Parameters
    ----------
    batches:
        Sequence of ``(query_indices, RangeResult)`` pairs, where
        ``query_indices`` gives the global query row of each result row.
    n_queries:
        Row count of the merged result.

    Rows covered by several batches (overlapping tiles) concatenate,
    re-sort by (distance, index) and drop duplicate partners — the
    variable-cardinality counterpart of the top-k shard merge, with
    the same determinism contract: because every tile computes
    bit-identical distances for the pairs it covers, the merged rows
    are a pure function of the pair *set*, independent of tiling.
    """
    batches = list(batches)
    if not batches:
        raise ValueError("cannot merge an empty batch list")

    per_row = [[] for _ in range(int(n_queries))]
    for query_indices, result in batches:
        query_indices = np.asarray(query_indices, dtype=np.int64)
        if len(query_indices) != result.n_queries:
            raise ValueError("batch index list does not match result rows")
        for local, q in enumerate(query_indices):
            per_row[q].append(result.row(local))

    rows = []
    for q, segments in enumerate(per_row):
        if not segments:
            raise ValueError("query %d is covered by no batch" % q)
        if len(segments) == 1:
            rows.append((segments[0].distances, segments[0].indices))
            continue
        dists = np.concatenate([seg.distances for seg in segments])
        idx = np.concatenate([seg.indices for seg in segments])
        order = np.lexsort((idx, dists))
        dists, idx = dists[order], idx[order]
        if idx.size:
            keep = np.ones(idx.size, dtype=bool)
            keep[1:] = idx[1:] != idx[:-1]
            dists, idx = dists[keep], idx[keep]
        rows.append((dists, idx))

    stats = JoinStats.merged([result.stats for _, result in batches])
    first = batches[0][1]
    return RangeResult.from_rows(rows, stats=stats, method=first.method)


def merge_results(batches, n_queries, k):
    """Merge per-batch results, dispatching on the result kind.

    The execution layer (batched and sharded paths alike) calls this
    single entry point; fixed-k :class:`KNNResult` batches take the
    sorted k-merge, variable-cardinality :class:`RangeResult` batches
    the CSR row merge.
    """
    batches = list(batches)
    if batches and isinstance(batches[0][1], RangeResult):
        return merge_range_batches(batches, n_queries)
    return merge_batch_results(batches, n_queries, k)
