"""Elastic multi-level parallelism (Sections IV-B2 and IV-D3).

With one thread per query, parallelism equals |Q| — not enough to fill
the device when the query set is small (*arcene* has 100 points).
Sweet KNN then assigns ``r * max_cur / |Q|`` threads to each query
(``max_cur`` = maximum concurrently resident threads, ``r = 0.25`` the
cache-conflict factor the paper carries over from [21]) and splits the
level-2 loop nest between them: the inner member loop by a factor of
about the average cluster size ``|T| / |CT|``, the outer candidate
loop by the rest.

Each sub-thread keeps its own local heap (race-free); a final merge
kernel combines the per-thread sorted heaps per query, "a technique
similar to the one in merge sort".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ParallelPlan", "SubscanSpec", "decide_parallelism",
           "subscan_specs", "CACHE_CONFLICT_FACTOR"]

#: The paper's empirical r: "r = 0.25 consistently works well".
CACHE_CONFLICT_FACTOR = 0.25


@dataclass(frozen=True)
class ParallelPlan:
    """How the level-2 work of one query is split across threads."""

    threads_per_query: int
    outer_factor: int  # parallelisation of the candidate-cluster loop
    inner_factor: int  # parallelisation of the member loop
    total_threads: int

    @property
    def multi_threaded(self):
        return self.threads_per_query > 1


@dataclass(frozen=True)
class SubscanSpec:
    """One sub-thread's share: strided clusters and strided members."""

    cluster_offset: int
    cluster_stride: int
    member_offset: int
    member_stride: int


def decide_parallelism(n_queries, avg_cluster_size, device,
                       regs_per_thread=32, shared_bytes_per_thread=0,
                       block_size=256, r=CACHE_CONFLICT_FACTOR,
                       threads_per_query=None):
    """Pick the thread budget and loop split for the level-2 kernel.

    ``threads_per_query`` forces a specific value (the Fig. 12 sweep);
    otherwise the paper's rule applies: query-level parallelism only
    when ``|Q| >= r * max_cur``, else ``ceil(r * max_cur / |Q|)``
    threads per query.
    """
    n_queries = int(n_queries)
    max_cur = device.concurrent_threads(regs_per_thread,
                                        shared_bytes_per_thread, block_size)
    budget = r * max_cur

    if threads_per_query is None:
        if n_queries >= budget:
            tpq = 1
        else:
            tpq = max(1, math.ceil(budget / n_queries))
    else:
        tpq = max(1, int(threads_per_query))

    if tpq == 1:
        return ParallelPlan(1, 1, 1, n_queries)

    if threads_per_query is None:
        inner = max(1, min(tpq, int(round(avg_cluster_size)) or 1))
        outer = max(1, math.ceil(tpq / inner))
        # The adaptive rule keeps the factor product (may round the
        # budget up slightly, as the paper's formula does).
        tpq = inner * outer
    else:
        # A forced sweep value (Fig. 12) must be honoured exactly:
        # pick the largest divisor of tpq not exceeding the average
        # cluster size as the inner factor.
        inner = max(d for d in range(1, tpq + 1)
                    if tpq % d == 0 and d <= max(1, avg_cluster_size))
        outer = tpq // inner
    return ParallelPlan(threads_per_query=tpq, outer_factor=outer,
                        inner_factor=inner, total_threads=n_queries * tpq)


def subscan_specs(plan):
    """Enumerate the sub-thread work splits of a :class:`ParallelPlan`.

    Sub-thread ``s`` handles candidate clusters
    ``candidates[s // inner :: outer]`` and within each, members
    ``members[s % inner :: inner]`` — a strided split that preserves
    the descending member order each stride needs for the sound early
    ``break``.
    """
    specs = []
    for s in range(plan.threads_per_query):
        specs.append(SubscanSpec(
            cluster_offset=s // plan.inner_factor,
            cluster_stride=plan.outer_factor,
            member_offset=s % plan.inner_factor,
            member_stride=plan.inner_factor,
        ))
    return specs
