"""Core algorithms: TI bounds, filters, Sweet KNN and its GPU pipelines."""

from .adaptive import ExecutionConfig, basic_config, config_for_join, decide
from .api import METHODS, SweetKNN, knn_join
from .basic_gpu import basic_ti_knn
from .bounds import (euclidean, euclidean_many, lb_one_landmark,
                     lb_two_landmarks, pairwise_distances, ub_one_landmark,
                     ub_two_landmarks)
from .clustering import ClusteredSet, center_distances, cluster_points
from .joins import range_join, reverse_knn_join, self_range_join
from .landmarks import (determine_landmark_count, select_landmarks_maxmin,
                        select_landmarks_random_spread)
from .predicates import (EpsilonRangePredicate, ReverseKNNPredicate,
                         TopKPredicate)
from .result import (JoinStats, KNNResult, RangeResult, merge_batch_results,
                     merge_range_batches, merge_results)
from .sweet import sweet_knn
from .ti_knn import JoinPlan, prepare_clusters, ti_knn_join

__all__ = [
    "ExecutionConfig", "basic_config", "config_for_join", "decide",
    "METHODS", "SweetKNN", "knn_join",
    "basic_ti_knn", "sweet_knn",
    "euclidean", "euclidean_many", "pairwise_distances",
    "lb_one_landmark", "ub_one_landmark",
    "lb_two_landmarks", "ub_two_landmarks",
    "ClusteredSet", "center_distances", "cluster_points",
    "determine_landmark_count", "select_landmarks_maxmin",
    "select_landmarks_random_spread",
    "JoinStats", "KNNResult", "RangeResult", "merge_batch_results",
    "merge_range_batches", "merge_results",
    "JoinPlan", "prepare_clusters", "ti_knn_join",
    "range_join", "self_range_join", "reverse_knn_join",
    "TopKPredicate", "EpsilonRangePredicate", "ReverseKNNPredicate",
]
