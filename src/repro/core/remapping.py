"""Thread-data remapping (Section IV-C1, Tables I/II of the paper).

The basic implementation assigns thread ``i`` to query point ``i``.
Queries of the same cluster share their candidate target clusters and
scan lengths, but consecutive query *indices* usually belong to
different clusters, so the 32 lanes of a warp end up with wildly
different trip counts and candidate sets — heavy divergence.

Sweet KNN builds a map from thread IDs to query IDs such that threads
of the same warp work on queries of the same cluster: each query
cluster copies its member IDs into a contiguous segment of the map
(the segment start handed out by ``atomicAdd(&start_addr,
memberSize)``).
"""

from __future__ import annotations

import numpy as np

from ..gpu.atomics import AtomicCounter

__all__ = ["identity_map", "remap_by_cluster"]


def identity_map(n_queries):
    """The basic implementation's mapping: thread i → query i."""
    return np.arange(int(n_queries), dtype=np.int64)


def remap_by_cluster(query_clusters):
    """Sweet KNN's map: warps see queries from the same cluster.

    Mirrors the construction in the paper: every cluster reserves a
    contiguous segment of the map with an atomic bump allocation and
    copies its member IDs into it.

    Returns
    -------
    (map, atomic_ops)
        ``map[thread_id] = query_id`` and the number of atomic
        operations spent building it (for the init-kernel accounting).
    """
    start_addr = AtomicCounter()
    thread_to_query = np.empty(query_clusters.n_points, dtype=np.int64)
    for members in query_clusters.members:
        if members.size == 0:
            continue
        start = start_addr.fetch_add(members.size)
        thread_to_query[start:start + members.size] = members
    return thread_to_query, start_addr.operations
