"""The level-2 filtering scan of one simulated GPU thread.

This is Algorithm 2 (and its partial-filter variant) as executed by
one lane, producing both the numeric result and a
:class:`~repro.gpu.lanelog.LaneLog` — one entry per lock-step warp
step — that the warp folding turns into divergence, coalescing and
cycle accounting.

Step codes (divergence is "active lanes disagree on the code"):

====  =======================================================
code  meaning
====  =======================================================
5     kernel prologue: load the query point
0     enter the next candidate cluster, compute ``d(q, c_t)``
1     bound exceeded, ``break`` out of the cluster
2     ``lb < -theta``: skip this member, keep scanning
3     bound passed: compute the exact distance (no heap update)
4     computed distance entered ``kNearests`` (the update branch)
====  =======================================================

Codes 3 and 4 are distinct because the update path is a real branch:
"the divergences could happen when different queries have different
updates to kNearests" (Section IV-A) — lanes that insert while their
warp-mates only compare serialize the step.

A :class:`~repro.core.parallelism.SubscanSpec` restricts the scan to a
strided share of the clusters and members (multi-thread-per-query
mode); member strides preserve the descending order that makes the
early ``break`` sound.

Implementation note — the scan follows Algorithm 2's sequential
semantics *exactly* (the test suite asserts step-for-step parity with
the reference filter in :mod:`repro.core.filters`), but exploits that
``lb = d(q, c_t) - d(t, c_t)`` is ascending along a cluster's sorted
member list: runs of skips are located with ``searchsorted`` and
logged in bulk, and exact distances are computed in vectorised windows
that are then *walked* sequentially so bound updates keep their exact
effect.
"""

from __future__ import annotations

import math

import numpy as np

from ..gpu.lanelog import LaneLog
from .filters import ScanTrace, bound_comparison_tol
from .layout import point_load_transactions
from .predicates import CollectAccumulator, TopKAccumulator

__all__ = ["scan_query_logged", "CODE_PROLOGUE", "CODE_ENTER", "CODE_BREAK",
           "CODE_SKIP", "CODE_COMPUTE", "CODE_COMPUTE_UPDATE"]

CODE_PROLOGUE = 5
CODE_ENTER = 0
CODE_BREAK = 1
CODE_SKIP = 2
CODE_COMPUTE = 3
CODE_COMPUTE_UPDATE = 4

#: Arithmetic ops of a bound check: subtract, two compares.
_CHECK_FLOPS = 3.0

#: Members whose exact distances are computed per vectorised batch.
_WINDOW = 64


def scan_query_logged(query_point, target_clusters, candidate_ids, ub, k,
                      layout, strength="full", spec=None,
                      update_bound=True, point_hit_rate=0.0, epsilon=0.0):
    """Run one thread's level-2 scan, logging every warp step.

    Parameters
    ----------
    query_point:
        Coordinates of the query this thread serves.
    target_clusters:
        :class:`~repro.core.clustering.ClusteredSet` of the targets.
    candidate_ids:
        Level-1 survivors in ascending centre-distance order.
    ub:
        The query cluster's level-1 upper bound.
    k:
        Neighbours to keep.
    layout:
        :class:`~repro.core.layout.Layout` of the point matrices.
    strength:
        ``"full"`` maintains a per-thread heap with an updating bound;
        ``"partial"`` keeps the bound fixed and stores survivors.
    spec:
        Optional :class:`SubscanSpec` for multi-thread-per-query mode.
    update_bound:
        Full filter only: allow tightening ``theta`` (disabled in some
        ablations).
    point_hit_rate:
        L2 hit fraction for scattered target-point loads (the centre
        and member-distance arrays are small enough to always be L2
        resident; the point matrix competes with everything else).
    epsilon:
        Approximation slack (an *extension* beyond the paper, in the
        spirit of the approximate methods its related work cites).
        Once the heap holds k real neighbours, pruning uses the
        tightened bound ``theta / (1 + epsilon)``: every point pruned
        under slack is farther than ``theta / (1 + epsilon) >=
        kth_returned / (1 + epsilon)``, so the returned k-th distance
        is at most ``(1 + epsilon)`` times the true one — and the heap
        always fills because pruning stays exact until it does.  Only
        the full filter applies slack (the partial filter has no heap
        to certify k results with); ``0.0`` (default) is exact.

    Returns
    -------
    (heap_or_survivors, trace, log)
        For the full filter a :class:`KNearestHeap`; for the partial
        filter a list of ``(distance, target_index)`` survivors.
    """
    dim = target_clusters.dim
    point_txns = point_load_transactions(dim, layout)
    dist_flops = 3.0 * dim + 1.0
    log = LaneLog()
    trace = ScanTrace()
    # Each lane streams its clusters' member-distance arrays
    # sequentially, so a 128-byte transaction covers 32/stride of its
    # 4-byte reads (per-lane amortisation; no cross-lane sharing).
    md_txn = (spec.member_stride if spec is not None else 1) / 32.0
    hit = min(1.0, max(0.0, float(point_hit_rate)))
    point_dram = point_txns * (1.0 - hit)
    point_l2 = point_txns * hit
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    slack = 1.0 + float(epsilon)
    full = strength == "full"
    # The scan's bound machinery is a predicate accumulator (see
    # repro.core.predicates): the full filter is the updating-θ top-k
    # accumulator (with the (1+ε) slack folded into its limit()), the
    # partial filter the fixed-bound collector.
    acc = (TopKAccumulator(k, ub, slack=slack, update_bound=update_bound)
           if full else CollectAccumulator(ub))
    heap_update_ops = 2.0 * math.log2(max(2, k))

    log.step(flops=0.0, txns=point_dram, l2=point_l2, code=CODE_PROLOGUE)
    qp = np.asarray(query_point, dtype=np.float64)
    points = target_clusters.points
    centers = target_clusters.centers

    if spec is None:
        my_clusters = candidate_ids
        member_offset, member_stride = 0, 1
    else:
        my_clusters = candidate_ids[spec.cluster_offset::spec.cluster_stride]
        member_offset, member_stride = spec.member_offset, spec.member_stride

    compute_flops = _CHECK_FLOPS + dist_flops
    compute_l2 = md_txn + point_l2

    # All centre distances of this thread's clusters in one shot
    # (numerically identical to per-cluster evaluation; the kernel
    # computes them one per cluster entry — the logging below keeps
    # that cost structure).
    if len(my_clusters):
        c_diffs = centers[my_clusters] - qp
        q2tc_all = np.sqrt(np.einsum("ij,ij->i", c_diffs, c_diffs))
    log_step = log.step

    for ci in range(len(my_clusters)):
        tc = my_clusters[ci]
        q2tc = q2tc_all[ci]
        trace.center_distance_computations += 1
        # Centre coordinates are a hot, L2-resident structure.
        log_step(flops=dist_flops, l2=point_txns, code=CODE_ENTER)

        member_idx = target_clusters.members[tc][member_offset::member_stride]
        md = target_clusters.member_dists[tc][member_offset::member_stride]
        if md.size == 0:
            continue
        lb = q2tc - md  # ascending: members are sorted descending
        tol = bound_comparison_tol(q2tc, ub)

        if full:
            _scan_cluster_full(
                lb, member_idx, points, qp, acc, log, trace,
                md_txn, compute_flops, compute_l2, point_dram,
                heap_update_ops, tol)
        else:
            # The partial filter keeps exact bounds: with no heap it
            # cannot certify k results under slackened pruning.
            _scan_cluster_partial(
                lb, member_idx, points, qp, acc, log, trace, md_txn,
                compute_flops, compute_l2, point_dram, tol)

    trace.accepted = acc.accepted
    result = acc.heap if full else acc.pairs
    return result, trace, log


def _scan_cluster_full(lb, member_idx, points, qp, acc, log, trace,
                       md_txn, compute_flops, compute_l2, point_dram,
                       heap_update_ops, tol=0.0):
    """Algorithm 2's member loop over one cluster.

    The accumulator owns the bound: ``acc.limit()`` is ``theta``
    (tightened to ``theta / slack`` in approximate mode once the heap
    is full — until then pruning stays exact so the heap is guaranteed
    to fill).  ``tol`` is the float comparison slack
    (:func:`~repro.core.filters.bound_comparison_tol`), matching the
    sequential reference decision for decision.
    """
    size = lb.shape[0]
    pos = 0
    while pos < size:
        limit = acc.limit() + tol
        value = lb[pos]
        if value > limit:
            trace.steps += 1
            trace.breaks += 1
            log.step(flops=_CHECK_FLOPS, l2=md_txn, code=CODE_BREAK)
            return
        if value < -limit:
            # A run of skips: lb is ascending, so every position up to
            # the first lb >= -limit is skipped under the current
            # bound (which cannot change while skipping).
            run_end = max(int(np.searchsorted(lb, -limit, side="left")),
                          pos + 1)
            count = run_end - pos
            trace.steps += count
            log.bulk(count, flops=_CHECK_FLOPS, l2=md_txn, code=CODE_SKIP)
            pos = run_end
            continue
        # Compute phase: batch the exact distances for a window, then
        # walk it sequentially so theta updates keep exact semantics
        # (distances precomputed for steps the walk later skips or
        # breaks on are wall-clock waste only — never logged/counted).
        stop = int(np.searchsorted(lb, limit, side="right"))
        window_end = min(stop, pos + _WINDOW, size)
        w_idx = member_idx[pos:window_end]
        diffs = points[w_idx] - qp
        w_dists = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
        for j in range(pos, window_end):
            limit = acc.limit() + tol
            value = lb[j]
            if value > limit:
                trace.steps += 1
                trace.breaks += 1
                log.step(flops=_CHECK_FLOPS, l2=md_txn, code=CODE_BREAK)
                return
            if value < -limit:
                trace.steps += 1
                log.step(flops=_CHECK_FLOPS, l2=md_txn, code=CODE_SKIP)
                continue
            trace.steps += 1
            trace.examined += 1
            trace.distance_computations += 1
            dist = w_dists[j - pos]
            heap_ops = 1.0  # compare against the root
            code = CODE_COMPUTE
            if acc.offer(dist, member_idx[j]):
                trace.heap_updates += 1
                heap_ops += heap_update_ops
                code = CODE_COMPUTE_UPDATE
            log.step(flops=compute_flops, txns=point_dram, l2=compute_l2,
                     heap_ops=heap_ops, code=code)
        pos = window_end
    return


def _scan_cluster_partial(lb, member_idx, points, qp, acc, log, trace,
                          md_txn, compute_flops, compute_l2, point_dram,
                          tol=0.0):
    """The weakened filter's member loop: theta fixed, so the skip
    prefix, compute range and break point are pure positional
    thresholds and everything vectorises."""
    size = lb.shape[0]
    theta = acc.limit()
    skip_end = int(np.searchsorted(lb, -(theta + tol), side="left"))
    stop = int(np.searchsorted(lb, theta + tol, side="right"))

    if skip_end:
        trace.steps += skip_end
        log.bulk(skip_end, flops=_CHECK_FLOPS, l2=md_txn, code=CODE_SKIP)

    count = stop - skip_end
    if count > 0:
        w_idx = member_idx[skip_end:stop]
        diffs = points[w_idx] - qp
        w_dists = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
        acc.bulk(w_dists.tolist(), w_idx.tolist())
        trace.steps += count
        trace.examined += count
        trace.distance_computations += count
        # The surviving distance is stored as a scattered 4-byte
        # write: one 32-byte sector.
        log.bulk(count, flops=compute_flops, txns=point_dram + 0.25,
                 l2=compute_l2, code=CODE_COMPUTE)

    if stop < size:
        trace.steps += 1
        trace.breaks += 1
        log.step(flops=_CHECK_FLOPS, l2=md_txn, code=CODE_BREAK)
