"""Sequential TI-based KNN join — the Fig. 4 reference algorithm.

This is the CPU algorithm of Ding et al. [4] as the paper reviews it in
Section II-C: landmark clustering, cluster-level filtering (``calUB`` +
``groupFilter``) and point-level filtering (``pointFilter``).  It is
the semantic ground truth the GPU pipelines are tested against, and
the source of the filtering-decision counters.

Use :func:`ti_knn_join` for the end-to-end join, or
:func:`prepare_clusters` to reuse the Step-1 state across runs (the
sensitivity benches sweep k over fixed clusters).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..engine.base import EngineCaps, EngineSpec
from .clustering import center_distances, cluster_points
from .filters import (center_distance_rows, point_filter_full,
                      point_filter_partial)
from .landmarks import determine_landmark_count, select_landmarks_random_spread
from .predicates import TopKPredicate
from .result import JoinStats, KNNResult

__all__ = ["JoinPlan", "prepare_clusters", "ti_knn_join", "ENGINE"]


@dataclass
class JoinPlan:
    """Step-1 + Step-2 state shared by every level-2 variant.

    Holds the clustered query/target sets, the centre-distance matrix,
    the per-query-cluster upper bounds and the level-1 candidate lists.
    """

    query_clusters: object
    target_clusters: object
    center_dists: np.ndarray
    ubs: np.ndarray = None
    candidates: list = None
    _level1_cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self):
        self._level1_lock = threading.Lock()

    def __getstate__(self):
        # A JoinPlan is shipped to pool workers by pickle; the lock is
        # process-local state and is recreated on unpickling.
        state = self.__dict__.copy()
        state.pop("_level1_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._level1_lock = threading.Lock()

    @property
    def mq(self):
        return self.query_clusters.n_clusters

    @property
    def mt(self):
        return self.target_clusters.n_clusters

    def level1_for(self, predicate):
        """The cached :class:`~repro.core.predicates.Level1State` of a
        predicate.

        Thread-safe and non-mutating: shard workers sharing one plan
        (possibly with different predicates) each read a consistent
        state instead of racing on the ``ubs``/``candidates``
        attributes.  An index queried many times (or a batched join
        re-entering the pipeline per tile) pays the level-1 cost once
        per distinct ``predicate.cache_key()``.
        """
        key = predicate.cache_key()
        cached = self._level1_cache.get(key)
        if cached is None:
            with self._level1_lock:
                cached = self._level1_cache.get(key)
                if cached is None:
                    cached = predicate.level1(self)
                    self._level1_cache[key] = cached
        return cached

    def level1(self, k):
        """The ``(ubs, candidates)`` pair for top-k, cached per ``k``.

        The historical top-k entry point, now a view over
        :meth:`level1_for` with a
        :class:`~repro.core.predicates.TopKPredicate`.
        """
        state = self.level1_for(TopKPredicate(k))
        return state.bounds, state.candidates

    def run_level1(self, k):
        """Compute and store the bounds and candidate lists for ``k``.

        Mutating convenience wrapper around :meth:`level1` (the stored
        ``ubs``/``candidates`` attributes are what single-threaded
        callers and older tests read).
        """
        self.ubs, self.candidates = self.level1(k)
        return self

    def candidate_pairs(self):
        return int(sum(c.size for c in self.candidates))


def prepare_clusters(queries, targets, rng, mq=None, mt=None,
                     memory_budget_bytes=None):
    """Step 1 of Fig. 4: landmarks, clustering, centre distances.

    ``mq``/``mt`` default to ``detLmNum``'s ``3 * sqrt(n)`` (capped by
    the optional memory budget).  The same array object may be passed
    as both ``queries`` and ``targets`` (the paper's self-join setting);
    clustering is still performed independently per role because the
    query side needs only radii while the target side needs sorted
    member lists.
    """
    queries = np.asarray(queries, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if mq is None:
        mq = determine_landmark_count(len(queries), memory_budget_bytes)
    if mt is None:
        mt = determine_landmark_count(len(targets), memory_budget_bytes)

    q_landmarks = select_landmarks_random_spread(queries, mq, rng)
    t_landmarks = select_landmarks_random_spread(targets, mt, rng)
    query_clusters = cluster_points(queries, q_landmarks,
                                    sort_descending=False)
    target_clusters = cluster_points(targets, t_landmarks,
                                     sort_descending=True)
    cdist = center_distances(query_clusters, target_clusters)
    return JoinPlan(query_clusters=query_clusters,
                    target_clusters=target_clusters,
                    center_dists=cdist)


def ti_knn_join(queries, targets, k, rng, mq=None, mt=None, plan=None,
                filter_strength="full", query_subset=None,
                account_prepare=True):
    """Sequential TI-based KNN join (the full Fig. 4 pipeline).

    Parameters
    ----------
    queries, targets:
        (n, d) arrays (may be the same object for a self-join).
    k:
        Number of nearest neighbours per query.
    rng:
        ``numpy.random.Generator`` for landmark selection.
    mq, mt:
        Optional landmark-count overrides.
    plan:
        Optional pre-built :class:`JoinPlan` (skips Step 1).
    filter_strength:
        ``"full"`` (Algorithm 2) or ``"partial"`` (Sweet KNN's weakened
        level-2 filter) — exposed here so the filter designs can be
        compared independently of the GPU machinery.
    query_subset:
        Optional array of query indices to scan (batched execution
        against a shared ``plan``); result rows follow subset order.
    account_prepare:
        Count the Step-1/level-1 preparation in the returned stats.
        Batched execution sets this on the first tile only so merged
        counters equal the unbatched totals.

    Returns
    -------
    KNNResult
    """
    queries = np.asarray(queries, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    k = int(k)
    if k <= 0:
        raise ValueError("k must be positive")
    if k > len(targets):
        raise ValueError("k cannot exceed the number of target points")
    if filter_strength not in ("full", "partial"):
        raise ValueError("filter_strength must be 'full' or 'partial'")

    if plan is None:
        plan = prepare_clusters(queries, targets, rng, mq=mq, mt=mt)
    ubs_all, candidates = plan.level1(k)

    n_q = len(queries)
    if query_subset is None:
        active = np.arange(n_q)
    else:
        active = np.asarray(query_subset, dtype=np.int64)
    active_mask = np.zeros(n_q, dtype=bool)
    active_mask[active] = True
    local_row = np.full(n_q, -1, dtype=np.int64)
    local_row[active] = np.arange(len(active))

    cq, ct = plan.query_clusters, plan.target_clusters
    stats = JoinStats(
        n_queries=len(active), n_targets=len(targets), k=k,
        dim=queries.shape[1], mq=plan.mq, mt=plan.mt,
        init_distance_computations=(
            (cq.init_distance_computations + ct.init_distance_computations)
            if account_prepare else 0),
        candidate_cluster_pairs=(
            int(sum(c.size for c in candidates)) if account_prepare else 0),
    )

    target_sizes = np.asarray(ct.cluster_sizes(), dtype=np.int64)

    per_query = [None] * len(active)
    for qc in range(cq.n_clusters):
        ub = ubs_all[qc]
        cand = candidates[qc]
        members = cq.members[qc]
        scanned = members[active_mask[members]] if members.size else members
        if scanned.size == 0:
            continue
        # Points inside this cluster's level-1 survivors: the funnel's
        # "level-1 survivor pairs" contribution of each member query.
        cluster_pairs = int(target_sizes[cand].sum()) if cand.size else 0
        # Algorithm 2 line 6 computes the query-to-centre distances
        # inside the scan; precomputing the rows — batched over every
        # active member of this cluster — keeps the counters identical
        # while letting numpy do the arithmetic once per cluster.
        rows = center_distance_rows(queries[scanned], ct, cand)
        for local, q in enumerate(scanned):
            stats.level1_survivor_pairs += cluster_pairs
            query_point = queries[q]
            row = rows[local]
            if filter_strength == "full":
                heap, trace = point_filter_full(
                    query_point, q, ct, cand, ub, k, center_dists_row=row)
                per_query[local_row[q]] = heap.sorted_items()
            else:
                dists, idx, trace = point_filter_partial(
                    query_point, q, ct, cand, ub, k, center_dists_row=row)
                per_query[local_row[q]] = (dists, idx)
            stats.level2_distance_computations += trace.distance_computations
            stats.center_distance_computations += (
                trace.center_distance_computations)
            stats.examined_points += trace.examined
            stats.heap_updates += trace.heap_updates
            stats.predicate_accepted_pairs += trace.accepted

    distances, indices = KNNResult.pack(per_query, k)
    return KNNResult(distances=distances, indices=indices, stats=stats,
                     method="ti-knn-cpu/%s" % filter_strength)


# ----------------------------------------------------------------------
# Engine registration (see repro.engine)
# ----------------------------------------------------------------------
def _run_engine(queries, targets, k, ctx, **options):
    return ti_knn_join(queries, targets, k, ctx.rng, plan=ctx.plan,
                       query_subset=ctx.query_subset,
                       account_prepare=ctx.account_prepare, **options)


ENGINE = EngineSpec(
    name="ti-cpu",
    run=_run_engine,
    caps=EngineCaps(uses_seed=True, supports_prepared_index=True,
                    cost_hints=(
                        ("ref_s", 2.4), ("log_q", 1.0), ("log_t", 0.3),
                        ("log_k", 0.3), ("log_d", 0.7),
                        ("clusterability", -1.5))),
    description="sequential TI-based KNN (the Fig. 4 reference)",
)
