"""Span tracing: nested, thread-aware spans with a no-op default.

Instrumented code calls the module-level helpers
(:func:`span`, :func:`event`, :func:`annotate`, :func:`count`), which
resolve the *active tracer* from a :class:`contextvars.ContextVar`.
When no tracer is active — the default — every helper returns a shared
no-op object and does no bookkeeping, so production joins pay nothing
for being instrumented.  Activating a tracer is explicit and scoped::

    from repro import obs

    tracer = obs.Tracer()
    with obs.use_tracer(tracer):
        knn_join(points, points, k=10)
    tracer.finished_spans()        # nested spans with timings

Threads started *inside* a ``use_tracer`` block do **not** inherit the
active tracer (each thread begins with a fresh context); cross-thread
components such as :class:`~repro.serve.KNNServer` take an explicit
``tracer=`` and re-activate it on their worker threads, carrying
request identity through explicit ``parent=`` / ``trace_id=`` links.

Span relationships:

* ``span_id`` — unique per span within a tracer;
* ``parent_id`` — the enclosing span at creation (context-var nesting
  on one thread, or an explicit ``parent=``);
* ``trace_id`` — the request/flow identity: inherited from the parent,
  or set explicitly (the serving layer sets one id per request so the
  queue → batch → kernel spans of a request correlate end to end).
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time

from .metrics import MetricsRegistry

__all__ = ["Span", "Tracer", "NULL_SPAN", "current_tracer", "use_tracer",
           "span", "event", "annotate", "count"]

_ACTIVE = contextvars.ContextVar("repro_obs_tracer", default=None)


class Span:
    """One timed, attributed operation.

    Usable as a context manager (nests under the thread's current span
    via the tracer's context variable) or started/finished manually
    across threads with :meth:`Tracer.start_span` /
    :meth:`Tracer.finish_span`.
    """

    __slots__ = ("tracer", "name", "span_id", "parent_id", "trace_id",
                 "start_s", "end_s", "attributes", "events", "thread_id",
                 "thread_name", "_token")

    def __init__(self, tracer, name, span_id, parent_id, trace_id,
                 attributes):
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.start_s = None
        self.end_s = None
        self.attributes = attributes
        self.events = []
        thread = threading.current_thread()
        self.thread_id = thread.ident
        self.thread_name = thread.name
        self._token = None

    # -- recording -----------------------------------------------------
    def annotate(self, **attributes):
        """Attach attributes to this span."""
        self.attributes.update(attributes)
        return self

    def event(self, name, **attributes):
        """Record a point-in-time event inside this span."""
        self.events.append({"ts_s": self.tracer._clock(), "name": name,
                            **attributes})
        return self

    @property
    def finished(self):
        return self.end_s is not None

    @property
    def duration_s(self):
        if self.start_s is None or self.end_s is None:
            return None
        return self.end_s - self.start_s

    def to_dict(self):
        """JSON-ready representation (the JSONL exporter's row)."""
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "attributes": dict(self.attributes),
            "events": list(self.events),
        }

    # -- context-manager protocol --------------------------------------
    def __enter__(self):
        self.tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc is not None:
            self.attributes.setdefault("error", repr(exc))
        self.tracer._exit(self)
        return False

    def __repr__(self):
        return "Span(%r, id=%s, parent=%s, trace=%r)" % (
            self.name, self.span_id, self.parent_id, self.trace_id)


class _NullSpan:
    """Shared no-op stand-in used when no tracer is active.

    Stateless and reentrant: every method is a no-op returning ``self``
    so instrumented code never branches on whether tracing is on.
    """

    __slots__ = ()
    name = None
    span_id = None
    parent_id = None
    trace_id = None
    attributes = {}
    events = ()

    def annotate(self, **attributes):
        return self

    def event(self, name, **attributes):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans, instant events and metrics for one run.

    Parameters
    ----------
    registry:
        The :class:`~repro.obs.metrics.MetricsRegistry` instrumented
        code publishes into while this tracer is active (a fresh one by
        default).
    clock:
        Monotonic time source (tests inject a fake).
    """

    def __init__(self, registry=None, clock=time.perf_counter):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._clock = clock
        self._lock = threading.Lock()
        self._finished = []
        self._instants = []
        self._artifacts = []
        self._ids = itertools.count(1)
        self._current = contextvars.ContextVar(
            "repro_obs_current_span", default=None)

    # -- span construction ---------------------------------------------
    def _new_span(self, name, parent, trace_id, attributes):
        span_id = next(self._ids)
        parent_id = parent.span_id if parent is not None else None
        if trace_id is None:
            trace_id = (parent.trace_id if parent is not None
                        else "trace-%d" % span_id)
        return Span(self, name, span_id, parent_id, trace_id, attributes)

    def span(self, name, parent=None, trace_id=None, **attributes):
        """A context-managed span.

        Without an explicit ``parent`` the span nests under the
        thread's current span at ``__enter__`` time.
        """
        span = self._new_span(name, parent, trace_id, attributes)
        if parent is None:
            # Parent resolution is deferred to __enter__ so a span
            # constructed on one thread and entered on another nests
            # under the *entering* thread's context.
            span.parent_id = None
            span.trace_id = trace_id
        return span

    def start_span(self, name, parent=None, trace_id=None, **attributes):
        """Start a span immediately, without touching the context.

        The manual half of the API: the serving layer starts request
        and queue spans on the caller's thread and finishes them from
        the scheduler thread with :meth:`finish_span`.
        """
        span = self._new_span(name, parent, trace_id, attributes)
        span.start_s = self._clock()
        return span

    def finish_span(self, span):
        """Finish a manually started span and record it."""
        if span is None or span is NULL_SPAN or span.finished:
            return span
        span.end_s = self._clock()
        self._record(span)
        return span

    # -- context-manager internals -------------------------------------
    def _enter(self, span):
        current = self._current.get()
        if span.parent_id is None and current is not None:
            span.parent_id = current.span_id
            if span.trace_id is None:
                span.trace_id = current.trace_id
        if span.trace_id is None:
            span.trace_id = "trace-%d" % span.span_id
        thread = threading.current_thread()
        span.thread_id = thread.ident
        span.thread_name = thread.name
        span._token = self._current.set(span)
        span.start_s = self._clock()

    def _exit(self, span):
        span.end_s = self._clock()
        if span._token is not None:
            self._current.reset(span._token)
            span._token = None
        self._record(span)

    def _record(self, span):
        with self._lock:
            self._finished.append(span)

    # -- queries ---------------------------------------------------------
    def current(self):
        """This thread's innermost open span, or ``None``."""
        return self._current.get()

    def finished_spans(self, name=None, trace_id=None):
        """Finished spans in completion order, optionally filtered."""
        with self._lock:
            spans = list(self._finished)
        if name is not None:
            spans = [s for s in spans if s.name == name]
        if trace_id is not None:
            spans = [s for s in spans if s.trace_id == trace_id]
        return spans

    # -- instant events and artifacts ------------------------------------
    def instant(self, name, **attributes):
        """Record a point-in-time event outside any span."""
        thread = threading.current_thread()
        record = {"ts_s": self._clock(), "name": name,
                  "thread_id": thread.ident, "thread_name": thread.name,
                  **attributes}
        with self._lock:
            self._instants.append(record)
        return record

    def instants(self):
        with self._lock:
            return list(self._instants)

    def add_artifact(self, kind, payload):
        """Attach a non-span artifact (e.g. a simulated GPU profile).

        The Chrome-trace exporter turns ``"pipeline_profile"``
        artifacts into simulated-timeline tracks.
        """
        with self._lock:
            self._artifacts.append((kind, payload))

    def artifacts(self, kind=None):
        with self._lock:
            pairs = list(self._artifacts)
        if kind is None:
            return pairs
        return [payload for artifact_kind, payload in pairs
                if artifact_kind == kind]


# ----------------------------------------------------------------------
# Active-tracer plumbing (the zero-overhead default path)
# ----------------------------------------------------------------------
def current_tracer():
    """The active :class:`Tracer` of this context, or ``None``."""
    return _ACTIVE.get()


class use_tracer:
    """Context manager activating a tracer for the current context.

    Scoped to the current thread's context: worker threads spawned
    elsewhere stay untraced unless they activate the tracer themselves
    (see :class:`~repro.serve.KNNServer`'s ``tracer=`` hook).
    """

    def __init__(self, tracer):
        self.tracer = tracer
        self._token = None

    def __enter__(self):
        self._token = _ACTIVE.set(self.tracer)
        return self.tracer

    def __exit__(self, exc_type, exc, tb):
        _ACTIVE.reset(self._token)
        return False


def span(name, parent=None, trace_id=None, **attributes):
    """A span on the active tracer; :data:`NULL_SPAN` when untraced."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, parent=parent, trace_id=trace_id, **attributes)


def event(name, **attributes):
    """An event on the current span (or tracer-level when outside one)."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return
    current = tracer.current()
    if current is not None:
        current.event(name, **attributes)
    else:
        tracer.instant(name, **attributes)


def annotate(**attributes):
    """Attributes onto the current span; silently dropped untraced."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return
    current = tracer.current()
    if current is not None:
        current.annotate(**attributes)


def count(name, n=1):
    """Increment a counter on the active tracer's registry."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return
    tracer.registry.counter(name).inc(n)
