"""The filtering funnel: candidates → survivors → exact distances.

The paper's whole argument is that triangle-inequality filtering
removes redundant distance computations (Table IV's "saved comp."
column); the funnel is that argument as four monotone counters:

``funnel.candidates``
    Every (query, target) pair: ``|Q| * |T|``.
``funnel.level1_survivors``
    Pairs inside the cluster pairs that survived the level-1 group
    filter (Algorithm 1) — the work the level-2 scan could touch.
``funnel.level2_survivors``
    Pairs that also survived the level-2 point filter (Algorithm 2)
    and therefore required an exact point-to-point distance.
``funnel.predicate_survivors``
    Pairs the join's distance predicate accepted at check time (heap
    insertions for top-k; pairs within ε / within ``kdist`` for the
    range predicates).  Only computed distances are ever offered to
    the predicate, so always <= ``level2_survivors``.
``funnel.exact_distances``
    All exact distances actually computed, including the Step-1
    clustering and centre-distance recomputations the pipeline pays
    outside the filter chain (always >= ``level2_survivors``).

The invariant ``predicate_survivors <= level2_survivors <=
level1_survivors <= candidates`` holds for every TI engine by
construction and is asserted as a lint-style check in CI
(``python -m repro trace --check-funnel ...``).  Engines that do no
level-1 filtering (brute force, CUBLAS, KD-tree) report
``level1_survivors = candidates`` and ``predicate_survivors`` equal to
the ``|Q| * k`` pairs they emit.
"""

from __future__ import annotations

__all__ = ["FUNNEL_STAGES", "funnel_from_stats", "funnel_counts",
           "funnel_table", "check_funnel"]

FUNNEL_STAGES = ("candidates", "level1_survivors", "level2_survivors",
                 "predicate_survivors", "exact_distances")


def funnel_from_stats(stats):
    """The five funnel counters of one join's :class:`JoinStats`."""
    candidates = stats.total_pairs
    level1 = stats.level1_survivor_pairs
    if level1 == 0 and stats.candidate_cluster_pairs == 0:
        # No level-1 filter ran (brute force, CUBLAS, KD-tree): nothing
        # was filtered, every candidate pair survives to level 2.
        level1 = candidates
    level2 = stats.level2_distance_computations
    exact = (stats.level2_distance_computations
             + stats.center_distance_computations
             + stats.init_distance_computations)
    return {
        "candidates": int(candidates),
        "level1_survivors": int(level1),
        "level2_survivors": int(level2),
        "predicate_survivors": int(stats.predicate_accepted_pairs),
        "exact_distances": int(exact),
    }


def funnel_counts(registry):
    """The accumulated ``funnel.*`` counters of a metrics registry."""
    return {stage: int(registry.value("funnel." + stage))
            for stage in FUNNEL_STAGES}


def funnel_table(counts, title="filtering funnel"):
    """Render funnel counts as a bench-style table with survival %."""
    # Imported here: funnel <- core.result <- ... <- bench.harness
    # would otherwise cycle through repro.bench.__init__.
    from ..bench.reporting import format_table

    candidates = counts.get("candidates", 0)
    rows = []
    for stage in FUNNEL_STAGES:
        value = counts.get(stage, 0)
        percent = (100.0 * value / candidates) if candidates else None
        rows.append([stage, value, percent])
    return format_table(title, ["stage", "pairs", "% of candidates"], rows)


def check_funnel(counts):
    """Violations of the funnel invariant (empty list = healthy).

    Checks ``predicate_survivors <= level2_survivors <=
    level1_survivors <= candidates`` and ``exact_distances >=
    level2_survivors``.  ``predicate_survivors`` is read with a
    default of 0 so funnels recorded before the stage existed still
    check cleanly.
    """
    violations = []
    if counts["level1_survivors"] > counts["candidates"]:
        violations.append(
            "level-1 survivors (%d) exceed candidates (%d)"
            % (counts["level1_survivors"], counts["candidates"]))
    if counts["level2_survivors"] > counts["level1_survivors"]:
        violations.append(
            "level-2 survivors (%d) exceed level-1 survivors (%d)"
            % (counts["level2_survivors"], counts["level1_survivors"]))
    if counts.get("predicate_survivors", 0) > counts["level2_survivors"]:
        violations.append(
            "predicate survivors (%d) exceed level-2 survivors (%d)"
            % (counts["predicate_survivors"], counts["level2_survivors"]))
    if counts["exact_distances"] < counts["level2_survivors"]:
        violations.append(
            "exact distances (%d) below level-2 survivors (%d)"
            % (counts["exact_distances"], counts["level2_survivors"]))
    return violations
