"""Metrics registry: named counters, gauges and histograms.

One :class:`MetricsRegistry` is the single accumulation substrate the
formerly-disconnected statistics silos publish into:

* :class:`~repro.core.result.JoinStats` publishes the join funnel and
  work counters (``join.*`` / ``funnel.*``);
* :class:`~repro.gpu.profiler.KernelProfile` /
  :class:`~repro.gpu.profiler.PipelineProfile` publish per-kernel
  simulated-GPU counters (``gpu.*``);
* the serving layer's :class:`~repro.serve.stats.StatsCollector` is
  built directly on a registry (``serve.*``).

Metric names are dotted strings; the taxonomy is documented in
``docs/OBSERVABILITY.md``.  All metric types are thread-safe.
Empty-sample aggregates (mean, percentiles, max of a histogram that
never observed a value) are ``float("nan")``, never an exception.
"""

from __future__ import annotations

import math
import threading

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

_NAN = float("nan")


class Counter:
    """A monotonically increasing integer counter."""

    kind = "counter"

    def __init__(self, name):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n=1):
        with self._lock:
            self._value += int(n)
        return self

    @property
    def value(self):
        return self._value

    def describe(self):
        return self._value


class Gauge:
    """A last-value-wins measurement; ``nan`` until first set."""

    kind = "gauge"

    def __init__(self, name):
        self.name = name
        self._value = _NAN

    def set(self, value):
        self._value = float(value)
        return self

    @property
    def value(self):
        return self._value

    def describe(self):
        return self._value


class Histogram:
    """A sample distribution keeping every observed value.

    Sample counts in this repository are bounded (per-request
    latencies, per-batch occupancies, per-kernel times), so the
    histogram keeps exact samples and computes exact percentiles
    rather than bucketing.
    """

    kind = "histogram"

    def __init__(self, name):
        self.name = name
        self._lock = threading.Lock()
        self._values = []

    def observe(self, value):
        with self._lock:
            self._values.append(float(value))
        return self

    @property
    def count(self):
        return len(self._values)

    @property
    def total(self):
        with self._lock:
            return math.fsum(self._values)

    def values(self):
        """Snapshot of every observed sample, in observation order."""
        with self._lock:
            return tuple(self._values)

    @property
    def mean(self):
        values = self.values()
        return float(np.mean(values)) if values else _NAN

    @property
    def max(self):
        values = self.values()
        return max(values) if values else _NAN

    def percentile(self, q):
        """Exact percentile of the samples (``q`` in [0, 100]).

        ``nan`` for the empty histogram — empty-sample aggregates never
        raise.
        """
        values = self.values()
        if not values:
            return _NAN
        return float(np.percentile(np.asarray(values), q))

    def describe(self):
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max,
        }


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    ``counter``/``gauge``/``histogram`` return the existing metric when
    the name is already registered (so independent publishers
    accumulate into one instrument) and raise when the name is bound to
    a different metric type.
    """

    _TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics = {}

    def _get_or_create(self, kind, name):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._TYPES[kind](name)
                self._metrics[name] = metric
            elif metric.kind != kind:
                raise ValueError(
                    "metric %r is a %s, not a %s"
                    % (name, metric.kind, kind))
            return metric

    def counter(self, name):
        return self._get_or_create("counter", name)

    def gauge(self, name):
        return self._get_or_create("gauge", name)

    def histogram(self, name):
        return self._get_or_create("histogram", name)

    def get(self, name):
        """The registered metric, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def value(self, name, default=0):
        """A counter/gauge value by name (``default`` when absent)."""
        metric = self.get(name)
        return default if metric is None else metric.value

    def names(self):
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self):
        """Flat ``{name: described value}`` dict of every metric."""
        with self._lock:
            metrics = list(self._metrics.values())
        return {metric.name: metric.describe() for metric in metrics}
